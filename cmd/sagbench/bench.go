package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sagrelay/internal/benchprob"
	"sagrelay/internal/core"
	"sagrelay/internal/experiment"
	"sagrelay/internal/geom"
	"sagrelay/internal/incr"
	"sagrelay/internal/lower"
	"sagrelay/internal/lp"
	"sagrelay/internal/milp"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// benchSchema versions the BENCH_*.json layout so downstream tooling can
// detect format changes across PRs.
const benchSchema = "sagbench/bench/v1"

// benchEntry is one benchmark's record in the JSON document. Solver-effort
// fields (bb_nodes, lp_pivots, warm/cold solves) are per-op for the micro
// benches and whole-run totals for the figure benches; both are exact —
// measured on deterministic workloads, not sampled.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Seconds     float64 `json:"seconds"`
	BBNodes     float64 `json:"bb_nodes,omitempty"`
	LPPivots    float64 `json:"lp_pivots,omitempty"`
	WarmSolves  float64 `json:"warm_solves,omitempty"`
	ColdSolves  float64 `json:"cold_solves,omitempty"`
	// Incremental re-solve benches only: zones spliced from the zone-level
	// stores vs zones actually re-solved.
	ZonesReused   int64 `json:"zones_reused,omitempty"`
	ZonesResolved int64 `json:"zones_resolved,omitempty"`
}

type benchDoc struct {
	Schema  string       `json:"schema"`
	Go      string       `json:"go"`
	When    string       `json:"when"`
	Benches []benchEntry `json:"benches"`
}

// solverCounters snapshots the process-wide solver-effort metrics so a
// workload's exact cost can be reported as a delta.
type solverCounters struct {
	nodes      int64
	pivots     float64
	warm, cold int64
}

func snapshotCounters() solverCounters {
	var pivots float64
	for _, h := range obs.Default.Histograms() {
		if h.Name() == "sag_lp_pivots_per_solve" {
			pivots = h.Sum()
		}
	}
	warm, cold := lp.WarmStats()
	return solverCounters{nodes: milp.TotalNodes(), pivots: pivots, warm: warm, cold: cold}
}

func (c solverCounters) delta() solverCounters {
	now := snapshotCounters()
	return solverCounters{
		nodes:  now.nodes - c.nodes,
		pivots: now.pivots - c.pivots,
		warm:   now.warm - c.warm,
		cold:   now.cold - c.cold,
	}
}

// runBenchJSON runs the internal/lp and internal/milp micro-benchmarks plus
// two representative figure benches (one GAC, one IAC artifact) and writes
// the results as JSON to path, so the perf trajectory is tracked across
// PRs in BENCH_<n>.json files.
func runBenchJSON(path string) error {
	fmt.Fprintf(os.Stderr, "running benchmark suite (this takes a minute)...\n")
	doc := benchDoc{
		Schema: benchSchema,
		Go:     runtime.Version(),
		When:   time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()

	// --- internal/lp micro-benches on the shared ILPQC relaxation. ---
	rel := benchprob.ILPQCRelaxation()
	solver := lp.NewSolver()
	probe, err := solver.Solve(rel, nil, nil)
	if err != nil {
		return fmt.Errorf("bench lp cold: %w", err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solver.Solve(rel, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, entryFrom("lp/ilpqc-cold-reused", r, benchEntry{
		LPPivots: float64(probe.Iterations),
	}))

	parent, err := solver.WarmSolve(ctx, rel, nil, nil, nil)
	if err != nil {
		return fmt.Errorf("bench lp warm parent: %w", err)
	}
	fix := map[int]float64{0: 1}
	warmProbe, err := solver.WarmSolve(ctx, rel, fix, nil, parent.Basis)
	if err != nil {
		return fmt.Errorf("bench lp warm: %w", err)
	}
	if !warmProbe.WarmStarted {
		return fmt.Errorf("bench lp warm: warm start fell back to cold on the fixture")
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solver.WarmSolve(ctx, rel, fix, nil, parent.Basis); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, entryFrom("lp/ilpqc-warm-child", r, benchEntry{
		LPPivots:   float64(warmProbe.Iterations),
		WarmSolves: 1,
	}))

	// --- internal/milp micro-bench: full branch-and-bound on ILPQC. ---
	prob, isInt := benchprob.ILPQC()
	milpProbe, err := milp.Solve(ctx, prob, isInt, milp.Options{})
	if err != nil {
		return fmt.Errorf("bench milp: %w", err)
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := milp.Solve(ctx, prob, isInt, milp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, entryFrom("milp/ilpqc-bnb", r, benchEntry{
		BBNodes:    float64(milpProbe.Nodes),
		LPPivots:   float64(milpProbe.Pivots),
		WarmSolves: float64(milpProbe.WarmSolves),
		ColdSolves: float64(milpProbe.ColdSolves),
	}))

	// --- Representative figure benches: fig3a (GAC sweep) and fig4b (IAC
	// runtime artifact), one deterministic run each, whole-run totals. ---
	for _, id := range []string{"fig3a", "fig4b"} {
		cfg := experiment.Config{
			Runs:    1,
			Seed:    1,
			Workers: 1,
			Ctx:     ctx,
			ILP:     lower.ILPOptions{MaxNodes: 250, TimeLimit: time.Hour, Workers: 1},
		}
		before := snapshotCounters()
		start := time.Now()
		if _, err := experiment.Run(id, cfg); err != nil {
			return fmt.Errorf("bench %s: %w", id, err)
		}
		elapsed := time.Since(start)
		d := before.delta()
		doc.Benches = append(doc.Benches, benchEntry{
			Name:       "experiment/" + id,
			NsPerOp:    float64(elapsed.Nanoseconds()),
			Iterations: 1,
			Seconds:    elapsed.Seconds(),
			BBNodes:    float64(d.nodes),
			LPPivots:   d.pivots,
			WarmSolves: float64(d.warm),
			// Nodes not warm-started were solved cold: the per-zone tree
			// roots plus the warm-start fallbacks (d.cold of the latter).
			ColdSolves: float64(d.nodes - d.warm),
		})
	}

	// --- Incremental re-solve bench: the ISSUE's headline workload. One
	// subscriber moves a few meters; the cold path re-solves everything, the
	// incremental path re-solves only the dirty zone and splices the rest. ---
	incrBenches, err := benchIncremental(ctx)
	if err != nil {
		return fmt.Errorf("bench incr: %w", err)
	}
	doc.Benches = append(doc.Benches, incrBenches...)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d benches to %s\n", len(doc.Benches), path)
	return nil
}

// benchIncremental measures the cold-vs-incremental gap for a single
// subscriber move on a multi-zone IAC instance. Both solves are timed once
// on identical inputs (the workloads are deterministic), with exact
// branch-and-bound node counts and zone reuse counters as deltas of the
// process-wide odometers.
func benchIncremental(ctx context.Context) ([]benchEntry, error) {
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 1400, NumSS: 48, NumBS: 3, SNRdB: -15, Seed: 9,
	})
	if err != nil {
		return nil, err
	}
	s0 := sc.Subscribers[0]
	d := &scenario.Delta{Version: scenario.DeltaVersion, Ops: []scenario.DeltaOp{
		{Op: scenario.OpMoveSS, ID: s0.ID, Pos: &geom.Point{X: s0.Pos.X + 6, Y: s0.Pos.Y + 5}},
	}}
	mut, err := d.Apply(sc)
	if err != nil {
		return nil, err
	}
	mkCfg := func() core.Config {
		return core.Config{
			Coverage:          core.CoverIAC,
			CoveragePower:     core.PowerGreen,
			Connectivity:      core.ConnMBMC,
			ConnectivityPower: core.PowerGreen,
			Workers:           1,
		}
	}

	// Cold: the mutated scenario from scratch, no caches anywhere.
	cfgCold := mkCfg()
	before := snapshotCounters()
	start := time.Now()
	if _, err := core.Run(ctx, mut, cfgCold); err != nil {
		return nil, fmt.Errorf("cold solve: %w", err)
	}
	coldElapsed := time.Since(start)
	coldDelta := before.delta()

	// Incremental: warm the stores on the base, then re-solve the mutation.
	cfgIncr := mkCfg()
	incr.NewStores(0).Wire(&cfgIncr)
	if _, err := core.Run(ctx, sc, cfgIncr); err != nil {
		return nil, fmt.Errorf("base warm solve: %w", err)
	}
	reused0, resolved0 := incr.ZonesReused(), incr.ZonesResolved()
	before = snapshotCounters()
	start = time.Now()
	if _, err := core.Run(ctx, mut, cfgIncr); err != nil {
		return nil, fmt.Errorf("incremental solve: %w", err)
	}
	incrElapsed := time.Since(start)
	incrDelta := before.delta()

	return []benchEntry{
		{
			Name:       "incr/1ss-move-full-cold",
			NsPerOp:    float64(coldElapsed.Nanoseconds()),
			Iterations: 1,
			Seconds:    coldElapsed.Seconds(),
			BBNodes:    float64(coldDelta.nodes),
			LPPivots:   coldDelta.pivots,
		},
		{
			Name:          "incr/1ss-move-resolve",
			NsPerOp:       float64(incrElapsed.Nanoseconds()),
			Iterations:    1,
			Seconds:       incrElapsed.Seconds(),
			BBNodes:       float64(incrDelta.nodes),
			LPPivots:      incrDelta.pivots,
			ZonesReused:   incr.ZonesReused() - reused0,
			ZonesResolved: incr.ZonesResolved() - resolved0,
		},
	}, nil
}

// entryFrom merges a testing.BenchmarkResult with the workload's exact
// per-op solver metrics.
func entryFrom(name string, r testing.BenchmarkResult, extra benchEntry) benchEntry {
	return benchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
		Seconds:     r.T.Seconds(),
		BBNodes:     extra.BBNodes,
		LPPivots:    extra.LPPivots,
		WarmSolves:  extra.WarmSolves,
		ColdSolves:  extra.ColdSolves,
	}
}
