package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestMissingExp(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -exp accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope", "-runs", "1"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCheapArtifactWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	// table2 is SAMC+MST only: cheap enough for a unit test at 1 run.
	if err := run([]string{"-exp", "table2", "-runs", "1", "-quiet", "-csv", dir, "-chart"}); err != nil {
		t.Fatalf("table2: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV written")
	}
}
