// Command sagbench regenerates the tables and figures of the paper's
// evaluation (Section IV).
//
// Usage:
//
//	sagbench -exp fig3a            # one artifact, ASCII table to stdout
//	sagbench -exp all -runs 10     # everything, paper-strength averaging
//	sagbench -exp fig7b -csv out/  # also write CSV files into a directory
//	sagbench -list                 # list artifact IDs
//	sagbench -bench-json BENCH.json  # machine-readable solver benchmarks
//
// Figures involving the ILP solvers (IAC/GAC) take minutes at full runs;
// -runs 1 gives a quick qualitative pass.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sagrelay/internal/experiment"
	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sagbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sagbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment id (or 'all')")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		runs     = fs.Int("runs", 3, "seeded repetitions per data point (paper: 10)")
		seed     = fs.Int64("seed", 1, "base seed")
		csvDir   = fs.String("csv", "", "directory to also write <id>.csv files into")
		svgDir   = fs.String("svg", "", "directory to write fig6 SVG panels into (fig6 only)")
		grid     = fs.Float64("grid", 15, "GAC grid size (where not swept)")
		maxNodes = fs.Int("max-nodes", 0, "branch-and-bound node cap per zone (0 = default)")
		zoneTO   = fs.Duration("zone-timeout", 0, "branch-and-bound time cap per zone (0 = default)")
		timeout  = fs.Duration("timeout", 0, "deadline for the whole invocation, e.g. 10m (0 = unbounded)")
		workers  = fs.Int("workers", 0, "concurrent solves per experiment (0 = all CPUs, 1 = sequential)")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
		chart    = fs.Bool("chart", false, "also render each artifact as an ASCII chart")
		traceOut = fs.String("trace-out", "",
			"write the invocation's span tree (every solve of every experiment) as JSON to this file")
		benchJSON = fs.String("bench-json", "",
			"run the solver benchmark suite and write machine-readable results (BENCH_<n>.json) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchJSON != "" {
		return runBenchJSON(*benchJSON)
	}
	if *list {
		fmt.Println(strings.Join(experiment.IDs(), "\n"))
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("sagbench")
		ctx = obs.WithTrace(ctx, tr)
	}
	cfg := experiment.Config{
		Runs:    *runs,
		Seed:    *seed,
		Workers: *workers,
		Ctx:     ctx,
		ILP: lower.ILPOptions{
			GridSize:  *grid,
			MaxNodes:  *maxNodes,
			TimeLimit: *zoneTO,
			Workers:   *workers,
		},
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiment.Run(id, cfg)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("%s abandoned: deadline of %v exceeded", id, *timeout)
			}
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.ASCII())
		if *chart {
			fmt.Println(tbl.Chart(0, 0))
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				return err
			}
		}
		if id == "fig6" && *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			paths, err := experiment.Fig6SVGs(cfg, *svgDir)
			if err != nil {
				return fmt.Errorf("fig6 SVGs: %w", err)
			}
			fmt.Printf("wrote %d SVG panels to %s\n", len(paths), *svgDir)
		}
	}
	if tr != nil {
		tr.Finish()
		doc, err := json.MarshalIndent(tr.Doc(), "", "  ")
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := os.WriteFile(*traceOut, append(doc, '\n'), 0o644); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	return nil
}
