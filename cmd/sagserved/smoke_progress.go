package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
)

// syncBuffer is a mutex-guarded log sink: the smoke gate reads captured log
// lines while server goroutines may still be writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runSmokeProgress is the live-introspection end-to-end gate:
//
//  1. start a server logging JSON to a captured sink, submit a multi-zone
//     IAC solve asynchronously;
//  2. tail GET /v1/jobs/{id}/progress?stream=1 and require at least one
//     mid-solve snapshot carrying a per-zone gap before the terminal one,
//     with monotone node counts;
//  3. fetch the finished job's flight record at /debug/flight/{id} and
//     require the span tree, the final progress snapshot and a non-empty
//     convergence curve;
//  4. find one captured JSON log line ("job done") whose job_id matches,
//     proving the correlation fields flow end to end;
//  5. SIGQUIT-equivalent: dump the flight ring and require it to parse.
func runSmokeProgress(opts serve.Options) error {
	var logBuf syncBuffer
	logger, err := obs.NewLogger(io.MultiWriter(os.Stderr, &logBuf), "json", slog.LevelInfo)
	if err != nil {
		return err
	}
	opts.Logger = logger
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	fh := srv.FlightHandler()
	mux.Handle("GET /debug/flight", fh)
	mux.Handle("GET /debug/flight/", fh)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	log.Printf("smoke-progress: serving on %s", base)

	// Multi-zone, branch-and-bound-heavy instance: slow enough that the
	// stream reliably catches the solve mid-flight.
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 600, NumSS: 24, NumBS: 2, SNRdB: -15, Seed: 3,
	})
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.SolveRequest{
		Scenario: sc,
		Options:  serve.SolveOptions{Coverage: "IAC", TimeoutMS: 600_000},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var submitted struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		return fmt.Errorf("smoke-progress: submit answered %s (%v)", resp.Status, err)
	}
	jobID := submitted.ID

	// Stage 2: tail the live stream to completion.
	stream, err := http.Get(base + "/v1/jobs/" + jobID + "/progress?stream=1")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("smoke-progress: stream Content-Type = %q", ct)
	}
	type zoneLine struct {
		Zone   int     `json:"zone"`
		Gap    float64 `json:"gap"`
		HasGap bool    `json:"has_gap"`
	}
	type progressLine struct {
		JobID string     `json:"job_id"`
		Nodes int        `json:"nodes"`
		Final bool       `json:"final"`
		Zones []zoneLine `json:"zones"`
	}
	var lines []progressLine
	scanner := bufio.NewScanner(stream.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var pl progressLine
		if err := json.Unmarshal(scanner.Bytes(), &pl); err != nil {
			return fmt.Errorf("smoke-progress: bad NDJSON line %q: %w", scanner.Text(), err)
		}
		lines = append(lines, pl)
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("smoke-progress: stream read: %w", err)
	}
	if len(lines) < 2 {
		return fmt.Errorf("smoke-progress: stream emitted %d snapshots, want >= 2", len(lines))
	}
	last := lines[len(lines)-1]
	if !last.Final {
		return errors.New("smoke-progress: stream did not close with a final snapshot")
	}
	midGap := false
	prevNodes := -1
	for i, pl := range lines {
		if pl.JobID != jobID {
			return fmt.Errorf("smoke-progress: line %d job_id = %q, want %q", i, pl.JobID, jobID)
		}
		if pl.Nodes < prevNodes {
			return fmt.Errorf("smoke-progress: nodes went backwards (%d -> %d)", prevNodes, pl.Nodes)
		}
		prevNodes = pl.Nodes
		if !pl.Final {
			for _, z := range pl.Zones {
				if z.HasGap {
					midGap = true
				}
			}
		}
	}
	if !midGap {
		return errors.New("smoke-progress: no mid-solve snapshot carried a per-zone gap")
	}

	// Stage 3: the flight record must carry the postmortem evidence. The
	// record lands just after the job's done channel closes, so allow a
	// moment for it to appear.
	var fresp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		fresp, err = http.Get(base + "/debug/flight/" + jobID)
		if err != nil {
			return err
		}
		if fresp.StatusCode == http.StatusOK {
			break
		}
		io.Copy(io.Discard, fresp.Body)
		fresp.Body.Close()
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke-progress: /debug/flight/%s answered %s", jobID, fresp.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer fresp.Body.Close()
	var rec struct {
		Outcome string `json:"outcome"`
		Detail  struct {
			Trace    *json.RawMessage `json:"trace"`
			Progress struct {
				Final     bool `json:"final"`
				ZonesSeen int  `json:"zones_seen"`
			} `json:"progress"`
			Curve []json.RawMessage `json:"curve"`
		} `json:"detail"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&rec); err != nil {
		return fmt.Errorf("smoke-progress: flight record not JSON: %w", err)
	}
	if rec.Outcome != "done" {
		return fmt.Errorf("smoke-progress: flight outcome = %q, want done", rec.Outcome)
	}
	if rec.Detail.Trace == nil {
		return errors.New("smoke-progress: flight record has no span tree")
	}
	if !rec.Detail.Progress.Final || rec.Detail.Progress.ZonesSeen == 0 {
		return fmt.Errorf("smoke-progress: flight progress final=%v zones=%d",
			rec.Detail.Progress.Final, rec.Detail.Progress.ZonesSeen)
	}
	if len(rec.Detail.Curve) == 0 {
		return errors.New("smoke-progress: flight record has no convergence curve")
	}

	// Stage 4: one captured JSON log line must correlate by job_id.
	found := false
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if line == "" {
			continue
		}
		var entry struct {
			Msg   string `json:"msg"`
			JobID string `json:"job_id"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			return fmt.Errorf("smoke-progress: captured log line is not JSON: %q", line)
		}
		if entry.Msg == "job done" && entry.JobID == jobID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("smoke-progress: no JSON log line with msg=%q job_id=%q", "job done", jobID)
	}

	// Stage 5: the SIGQUIT dump path must produce a parseable document.
	dump := srv.FlightRecorder().Dump()
	var dumped struct {
		Schema string `json:"schema"`
		Count  int    `json:"count"`
	}
	if err := json.Unmarshal(dump, &dumped); err != nil {
		return fmt.Errorf("smoke-progress: flight dump not JSON: %w", err)
	}
	if dumped.Count < 1 {
		return fmt.Errorf("smoke-progress: flight dump count = %d, want >= 1", dumped.Count)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	log.Printf("smoke-progress: ok (%d stream snapshots, mid-solve gap, flight record with trace+curve, correlated log line, parseable dump)", len(lines))
	return nil
}
