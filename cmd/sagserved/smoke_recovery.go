package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
)

// runSmokeRecovery is the crash-recovery end-to-end gate:
//
//  1. spawn a child sagserved with a journal (-data-dir) and a fault plan
//     that slows every simplex solve to a crawl, so the submitted job is
//     reliably still running when the axe falls;
//  2. submit a GAC solve, wait until the child reports it running, then
//     kill -9 the child — no drain, no goodbye, a torn journal tail is fair;
//  3. restart the service in-process on the same data dir (without the
//     slowdown) and assert the journal replays the job under its original
//     ID to a served 200 result;
//  4. bounce the service once more and assert the finished job is restored
//     from disk byte-identically with zero solver work.
func runSmokeRecovery(opts serve.Options) error {
	dir, err := os.MkdirTemp("", "sagserved-recovery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	exe, err := os.Executable()
	if err != nil {
		return err
	}

	// Stage 1: child server, journaled, deliberately slow.
	child := exec.Command(exe,
		"-addr", "127.0.0.1:0",
		"-data-dir", dir,
		"-workers", "2",
		"-fault", "lp.pivot=delay:d=5ms",
		"-fault-seed", "1",
	)
	stderr, err := child.StderrPipe()
	if err != nil {
		return err
	}
	if err := child.Start(); err != nil {
		return err
	}
	defer func() {
		if child.Process != nil {
			child.Process.Kill()
			child.Wait()
		}
	}()

	base, err := scanListenAddr(stderr)
	if err != nil {
		return fmt.Errorf("recovery: child did not report a listen address: %w", err)
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained
	log.Printf("recovery: child serving on %s (journal %s)", base, dir)

	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 10, NumBS: 2, SNRdB: -15, Seed: 42,
	})
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.SolveRequest{
		Scenario: sc,
		Options:  serve.SolveOptions{Coverage: "GAC", TimeoutMS: 600_000},
	})
	if err != nil {
		return err
	}

	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		return fmt.Errorf("recovery: submit answered %s (%v)", resp.Status, err)
	}
	jobID := submitted.ID

	// Wait for the job to actually be solving, so the kill lands mid-run.
	if err := pollState(base, jobID, "running", 30*time.Second); err != nil {
		return err
	}
	log.Printf("recovery: job %s running; killing child with SIGKILL", jobID)
	if err := child.Process.Kill(); err != nil {
		return err
	}
	child.Wait()
	child.Process = nil

	// Stage 2: restart on the same journal, full speed. The replay must
	// resurrect the job under its original ID and drive it to completion.
	srv, err := serve.NewServer(serve.Options{Workers: opts.Workers, DataDir: dir})
	if err != nil {
		return fmt.Errorf("recovery: restart: %w", err)
	}
	if m := srv.MetricsSnapshot(); m["journal_replayed_jobs"] != 1 {
		return fmt.Errorf("recovery: journal_replayed_jobs = %d, want 1", m["journal_replayed_jobs"])
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base = "http://" + ln.Addr().String()
	log.Printf("recovery: restarted on %s; polling replayed job %s", base, jobID)

	result, err := pollResult(base, jobID, 120*time.Second)
	if err != nil {
		return fmt.Errorf("recovery: replayed job: %w", err)
	}
	var doc serve.ResultDoc
	if err := json.Unmarshal(result, &doc); err != nil {
		return fmt.Errorf("recovery: result not JSON: %w", err)
	}
	if !doc.Feasible {
		return fmt.Errorf("recovery: replayed solve infeasible: %s", result)
	}
	// The re-run produced live evidence: the replayed job must have a flight
	// record in the new process (the ring lands it just after completion).
	flightDeadline := time.Now().Add(5 * time.Second)
	for {
		if rec, ok := srv.FlightRecorder().Get(jobID); ok {
			// A replay may settle "done" or "degraded" (the ladder can fire
			// on a re-run); either way the ring has live evidence.
			if rec.Outcome != "done" && rec.Outcome != "degraded" {
				return fmt.Errorf("recovery: replayed job flight outcome = %q, want done or degraded", rec.Outcome)
			}
			break
		}
		if time.Now().After(flightDeadline) {
			return errors.New("recovery: replayed job has no flight record after restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}

	// Stage 3: one more restart. The finished job must now be restored from
	// the journal and served byte-identically with no solver work at all.
	srv2, err := serve.NewServer(serve.Options{Workers: opts.Workers, DataDir: dir})
	if err != nil {
		return fmt.Errorf("recovery: second restart: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv2 := &http.Server{Handler: srv2.Handler()}
	go httpSrv2.Serve(ln2)
	defer httpSrv2.Close()
	restored, err := pollResult("http://"+ln2.Addr().String(), jobID, 10*time.Second)
	if err != nil {
		return fmt.Errorf("recovery: restored job: %w", err)
	}
	if !bytes.Equal(restored, result) {
		return errors.New("recovery: restored result is not byte-identical to the solved one")
	}
	m := srv2.MetricsSnapshot()
	if m["journal_restored_jobs"] < 1 || m["solves"] != 0 {
		return fmt.Errorf("recovery: second restart restored=%d solves=%d, want >=1 and 0",
			m["journal_restored_jobs"], m["solves"])
	}
	// The flight ring is memory-only and died with each process — the
	// journal-restored job has no record, and its loss must not have
	// affected recovery: the result above is still byte-identical.
	if n := srv2.FlightRecorder().Len(); n != 0 {
		return fmt.Errorf("recovery: restored-only restart has %d flight records, want 0 (ring is volatile)", n)
	}
	log.Printf("recovery: ok (kill -9 mid-solve, journal replayed %s to a 200 with a fresh flight record, restored byte-identically with 0 solves and an empty ring)", jobID)
	return nil
}

// scanListenAddr reads the child's stderr until the "listening on" line and
// returns the base URL.
func scanListenAddr(r io.Reader) (string, error) {
	scanner := bufio.NewScanner(r)
	deadline := time.Now().Add(30 * time.Second)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			// The address may be the tail of a quoted slog message
			// (msg="listening on http://...") — strip the closing quote.
			return strings.Trim(strings.TrimSpace(line[i+len("listening on "):]), `"`), nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		return "", err
	}
	return "", errors.New("stderr closed before the listen line")
}

// pollState waits until GET /v1/jobs/{id} reports the wanted state.
func pollState(base, id, want string, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if st.State == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pollResult waits until GET /v1/jobs/{id}/result answers 200 and returns
// the document.
func pollResult(base, id string, within time.Duration) ([]byte, error) {
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			return nil, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return b, nil
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("job %s did not finish within %v", id, within)
			}
			time.Sleep(50 * time.Millisecond)
		default:
			return nil, fmt.Errorf("result: %s: %s", resp.Status, b)
		}
	}
}
