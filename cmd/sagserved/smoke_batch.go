package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"sagrelay/internal/experiment"
	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
)

// runSmokeBatch is the CI gate for the batch engine: it streams a seeded
// grid batch over NDJSON, then re-requests every cell through /v1/solve and
// requires the individual answers to be byte-identical to the streamed ones
// — served from cache, with zero additional solver work. It also checks the
// batch counters, the sagmetrics/6 schema, and the batch status document.
func runSmokeBatch(opts serve.Options) error {
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	log.Printf("smoke-batch: serving on %s", base)

	// The grid the server will expand, and its local twin for verification.
	template := serve.GridTemplate{FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15}
	dims := []experiment.GridDim{{Name: experiment.DimUsers, Values: []float64{6, 8}}}
	const gridRuns, gridSeed = 2, 5
	spec := experiment.GridSpec{
		Base: scenario.GenConfig{FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15},
		Dims: dims, Runs: gridRuns, Seed: gridSeed,
	}
	cells, err := spec.Expand()
	if err != nil {
		return err
	}

	body, err := json.Marshal(serve.BatchRequest{
		Grid: &serve.BatchGrid{Template: template, Dims: dims, Runs: gridRuns, Seed: gridSeed},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/batch?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("smoke-batch post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("smoke-batch post: %s: %s", resp.Status, data)
	}

	batchID, streamed, err := readBatchStream(resp.Body, len(cells))
	if err != nil {
		return fmt.Errorf("smoke-batch stream: %w", err)
	}
	log.Printf("smoke-batch: batch %s streamed %d items", batchID, len(streamed))

	// Every cell re-requested individually must come back byte-identical to
	// the streamed result document: same bytes means same cache entry, which
	// the solve counter below proves cost no further solver work.
	for i, cell := range cells {
		sc, err := scenario.Generate(cell.Gen)
		if err != nil {
			return err
		}
		req, err := json.Marshal(serve.SolveRequest{Scenario: sc})
		if err != nil {
			return err
		}
		r, err := http.Post(base+"/v1/solve?wait=1", "application/json", bytes.NewReader(req))
		if err != nil {
			return fmt.Errorf("smoke-batch solve %d: %w", i, err)
		}
		doc, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return err
		}
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke-batch solve %d: %s: %s", i, r.Status, doc)
		}
		if !bytes.Equal(bytes.TrimSpace(doc), bytes.TrimSpace(streamed[i])) {
			return fmt.Errorf("smoke-batch: item %d individual solve is not byte-identical to the streamed result", i)
		}
	}

	m := srv.MetricsSnapshot()
	n := int64(len(cells))
	if m["batches_total"] != 1 || m["batch_items_total"] != n || m["batch_items_shed"] != 0 {
		return fmt.Errorf("smoke-batch: batch counters off: %d batches, %d items, %d shed",
			m["batches_total"], m["batch_items_total"], m["batch_items_shed"])
	}
	if m["solves"] != n || m["cache_hits"] != n {
		return fmt.Errorf("smoke-batch: want %d solves and %d cache hits (batch solved once, solo calls all hit), got %d / %d",
			n, n, m["solves"], m["cache_hits"])
	}

	// The JSON metrics document must carry the v5 schema and batch counters.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	var mdoc struct {
		Schema     string `json:"schema"`
		Batches    int64  `json:"batches_total"`
		BatchItems int64  `json:"batch_items_total"`
	}
	if err := json.Unmarshal(mbody, &mdoc); err != nil {
		return fmt.Errorf("smoke-batch metrics: %w", err)
	}
	if mdoc.Schema != "sagmetrics/6" {
		return fmt.Errorf("smoke-batch: metrics schema %q, want sagmetrics/6", mdoc.Schema)
	}
	if mdoc.Batches != 1 || mdoc.BatchItems != n {
		return fmt.Errorf("smoke-batch: metrics doc says %d batches / %d items", mdoc.Batches, mdoc.BatchItems)
	}

	// The batch status document must agree and carry the finished span tree.
	sresp, err := http.Get(base + "/v1/batch/" + batchID)
	if err != nil {
		return err
	}
	sbody, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		return err
	}
	if sresp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke-batch status: %s: %s", sresp.Status, sbody)
	}
	var status struct {
		Schema    string          `json:"schema"`
		State     string          `json:"state"`
		ItemsDone int             `json:"items_done"`
		Trace     json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(sbody, &status); err != nil {
		return err
	}
	if status.Schema != "sagbatch/1" || status.State != "done" || status.ItemsDone != len(cells) {
		return fmt.Errorf("smoke-batch: status doc %s state=%s done=%d, want sagbatch/1 done %d",
			status.Schema, status.State, status.ItemsDone, len(cells))
	}
	if len(status.Trace) == 0 {
		return fmt.Errorf("smoke-batch: finished batch status has no trace")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke-batch http shutdown: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke-batch server shutdown: %w", err)
	}
	log.Printf("smoke-batch: ok (%d items streamed, byte-identical solo replays from cache, counters + sagmetrics/6 + status doc, clean shutdown)", len(cells))
	return nil
}

// readBatchStream consumes a batch NDJSON stream, returning the batch ID
// from the header and the raw result document per item index. It fails on a
// missing header, a non-done item, a missing item, or an incomplete trailer.
func readBatchStream(r io.Reader, want int) (string, map[int][]byte, error) {
	dec := json.NewDecoder(r)
	var (
		batchID string
		results = make(map[int][]byte)
		trailer bool
	)
	for dec.More() {
		var line struct {
			Schema   string          `json:"schema"`
			ID       string          `json:"id"`
			Item     *int            `json:"item"`
			State    string          `json:"state"`
			Result   json.RawMessage `json:"result"`
			Error    *serve.APIError `json:"error"`
			Done     *bool           `json:"done"`
			Complete bool            `json:"complete"`
		}
		if err := dec.Decode(&line); err != nil {
			return "", nil, err
		}
		switch {
		case line.Done != nil:
			trailer = true
			if !line.Complete {
				return "", nil, fmt.Errorf("trailer reports an incomplete batch")
			}
		case line.Schema != "":
			if line.Schema != "sagbatch/1" {
				return "", nil, fmt.Errorf("stream header schema %q, want sagbatch/1", line.Schema)
			}
			batchID = line.ID
		case line.Item != nil:
			if line.State != "done" {
				detail := line.State
				if line.Error != nil {
					detail = fmt.Sprintf("%s: %s", line.Error.Code, line.Error.Message)
				}
				return "", nil, fmt.Errorf("item %d not done (%s)", *line.Item, detail)
			}
			var doc struct {
				Schema string `json:"schema"`
			}
			if err := json.Unmarshal(line.Result, &doc); err != nil || doc.Schema != "sagresult/1" {
				return "", nil, fmt.Errorf("item %d result schema %q, want sagresult/1", *line.Item, doc.Schema)
			}
			results[*line.Item] = append([]byte(nil), line.Result...)
		}
	}
	if batchID == "" {
		return "", nil, fmt.Errorf("stream had no header line")
	}
	if !trailer {
		return "", nil, fmt.Errorf("stream ended without a trailer")
	}
	if len(results) != want {
		return "", nil, fmt.Errorf("streamed %d items, want %d", len(results), want)
	}
	return batchID, results, nil
}
