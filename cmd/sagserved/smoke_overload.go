package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/fault"
	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
)

// runSmokeOverload is the overload-resilience end-to-end gate:
//
//  1. determinism: a seeded admit.shed fault storm over a fixed submission
//     sequence must shed exactly the same requests on two fresh servers —
//     the shed pattern is a function of (spec, seed, order), not of timing;
//  2. isolation: with shedding forced on every request, rejected jobs must
//     never reach the solver — zero branch-and-bound nodes, zero solves —
//     and once the storm lifts, an accepted result must be byte-identical
//     (modulo its wall-clock trace) to an unloaded server's answer;
//  3. liveness: while a delay storm grinds through a queue-saturating burst,
//     /healthz must keep answering in under 100ms;
//  4. recovery: a journaled server whose WAL loses one committed mid-file
//     record to bit rot must quarantine exactly that record on restart,
//     restore the surviving job byte-identically, and re-solve the wounded
//     one under its original ID.
func runSmokeOverload(opts serve.Options) error {
	if err := overloadDeterminism(opts); err != nil {
		return fmt.Errorf("overload determinism: %w", err)
	}
	if err := overloadShedIsolation(opts); err != nil {
		return fmt.Errorf("overload shed isolation: %w", err)
	}
	if err := overloadHealthz(opts); err != nil {
		return fmt.Errorf("overload healthz: %w", err)
	}
	if err := overloadJournalRecovery(opts); err != nil {
		return fmt.Errorf("overload journal recovery: %w", err)
	}
	log.Printf("smoke-overload: ok (deterministic shedding, zero solver work for shed jobs, healthz under storm, checksummed-journal recovery)")
	return nil
}

func overloadScenario(seed int64) (*scenario.Scenario, error) {
	return scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15, Seed: seed,
	})
}

// shedFingerprint runs the fixed storm sequence on a fresh server and
// returns which submission indices were shed, e.g. "2,3,7,11".
func shedFingerprint(opts serve.Options) (string, error) {
	srv, err := serve.NewServer(opts)
	if err != nil {
		return "", err
	}
	defer shutdownServe(srv)
	if err := fault.EnableSpec("admit.shed=error:p=0.4", 7); err != nil {
		return "", err
	}
	defer fault.Disable()

	var shed []string
	var jobs []*serve.Job
	for i := 0; i < 24; i++ {
		sc, err := overloadScenario(int64(500 + i))
		if err != nil {
			return "", err
		}
		job, err := srv.Submit(serve.SolveRequest{Scenario: sc})
		if err != nil {
			var se *admit.ShedError
			if !errors.As(err, &se) {
				return "", fmt.Errorf("submit %d: unexpected error %v", i, err)
			}
			shed = append(shed, fmt.Sprint(i))
			continue
		}
		jobs = append(jobs, job)
	}
	if len(shed) == 0 || len(jobs) == 0 {
		return "", fmt.Errorf("degenerate storm: %d shed, %d accepted", len(shed), len(jobs))
	}
	if got := srv.MetricsSnapshot()["jobs_shed_total"]; got != int64(len(shed)) {
		return "", fmt.Errorf("jobs_shed_total = %d, want %d", got, len(shed))
	}
	for i, job := range jobs {
		if err := waitJob(job, 2*time.Minute); err != nil {
			return "", fmt.Errorf("accepted job %d: %w", i, err)
		}
	}
	return strings.Join(shed, ","), nil
}

func overloadDeterminism(opts serve.Options) error {
	first, err := shedFingerprint(opts)
	if err != nil {
		return err
	}
	second, err := shedFingerprint(opts)
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("shed pattern not deterministic: run 1 shed [%s], run 2 shed [%s]", first, second)
	}
	log.Printf("smoke-overload: deterministic shedding, both runs shed indices [%s]", first)
	return nil
}

func overloadShedIsolation(opts serve.Options) error {
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	defer shutdownServe(srv)

	before := srv.MetricsSnapshot()
	if err := fault.EnableSpec("admit.shed=error:p=1", 7); err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		sc, err := overloadScenario(int64(600 + i))
		if err != nil {
			return err
		}
		_, err = srv.Submit(serve.SolveRequest{
			Scenario: sc,
			Options:  serve.SolveOptions{Coverage: "GAC"},
		})
		var se *admit.ShedError
		if !errors.As(err, &se) {
			fault.Disable()
			return fmt.Errorf("submit %d under p=1 shedding: err = %v, want every request shed", i, err)
		}
	}
	fault.Disable()
	after := srv.MetricsSnapshot()
	if d := after["bb_nodes_total"] - before["bb_nodes_total"]; d != 0 {
		return fmt.Errorf("shed jobs explored %d branch-and-bound nodes, want 0", d)
	}
	if d := after["solves"] - before["solves"]; d != 0 {
		return fmt.Errorf("shed jobs performed %d solves, want 0", d)
	}
	if after["jobs_shed_total"] != 6 {
		return fmt.Errorf("jobs_shed_total = %d, want 6", after["jobs_shed_total"])
	}

	// Storm lifted: the same server's accepted answer must match an
	// unloaded server's, bit for bit outside the trace.
	sc, err := overloadScenario(699)
	if err != nil {
		return err
	}
	req := serve.SolveRequest{Scenario: sc, Options: serve.SolveOptions{Coverage: "GAC"}}
	stormed, err := solveOn(srv, req)
	if err != nil {
		return err
	}
	fresh, err := serve.NewServer(serve.Options{Workers: opts.Workers})
	if err != nil {
		return err
	}
	defer shutdownServe(fresh)
	unloaded, err := solveOn(fresh, req)
	if err != nil {
		return err
	}
	a, err := stripTraceField(stormed)
	if err != nil {
		return err
	}
	b, err := stripTraceField(unloaded)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return errors.New("post-storm result differs from the unloaded server's")
	}
	log.Printf("smoke-overload: 6 shed jobs cost zero solver work; accepted result matches unloaded server")
	return nil
}

func overloadHealthz(opts serve.Options) error {
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	defer shutdownServe(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	if err := fault.EnableSpec("lp.pivot=delay:p=0.3:d=2ms,serve.job=delay:p=0.8:d=10ms", 7); err != nil {
		return err
	}
	defer fault.Disable()

	var wg sync.WaitGroup
	jobCh := make(chan *serve.Job, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sc, err := overloadScenario(seed)
			if err != nil {
				return
			}
			job, err := srv.Submit(serve.SolveRequest{
				Scenario: sc,
				Options:  serve.SolveOptions{Coverage: "GAC"},
			})
			if err == nil {
				jobCh <- job
			}
		}(int64(700 + i))
	}

	// Probe liveness while the burst grinds through the delay storm.
	var worst time.Duration
	for i := 0; i < 25; i++ {
		t0 := time.Now()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return fmt.Errorf("healthz probe %d: %w", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if d := time.Since(t0); d > worst {
			worst = d
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz probe %d: %s", i, resp.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if worst >= 100*time.Millisecond {
		return fmt.Errorf("worst healthz latency %v under storm, want < 100ms", worst)
	}

	wg.Wait()
	close(jobCh)
	for job := range jobCh {
		if err := waitJob(job, 2*time.Minute); err != nil {
			return fmt.Errorf("storm job: %w", err)
		}
	}
	log.Printf("smoke-overload: healthz stayed live under storm (worst probe %v)", worst)
	return nil
}

func overloadJournalRecovery(opts serve.Options) error {
	dir, err := os.MkdirTemp("", "sagserved-overload-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	jopts := opts
	jopts.Workers = 1 // sequential: j-1's records precede j-2's in the WAL
	jopts.DataDir = dir
	srv, err := serve.NewServer(jopts)
	if err != nil {
		return err
	}
	docs := map[string][]byte{}
	for i := 0; i < 2; i++ {
		sc, err := overloadScenario(int64(800 + i))
		if err != nil {
			return err
		}
		job, err := srv.Submit(serve.SolveRequest{Scenario: sc})
		if err != nil {
			return err
		}
		if err := waitJob(job, 2*time.Minute); err != nil {
			return err
		}
		doc, _ := job.ResultDocument()
		docs[job.ID] = doc
	}
	if err := shutdownServe(srv); err != nil {
		return err
	}

	// Bit rot strikes j-1's committed done record, mid-file.
	path := dir + "/journal.jsonl"
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.Split(string(raw), "\n")
	target := -1
	for i, line := range lines {
		if strings.Contains(line, `"t":"done"`) && strings.Contains(line, `"id":"j-1"`) {
			target = i
			break
		}
	}
	if target < 0 {
		return errors.New("no done record for j-1 in the journal")
	}
	b := []byte(lines[target])
	b[len(b)/2] ^= 0x40
	lines[target] = string(b)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		return err
	}

	srv2, err := serve.NewServer(jopts)
	if err != nil {
		return err
	}
	defer shutdownServe(srv2)
	if got := srv2.MetricsSnapshot()["journal_corrupt_records"]; got != 1 {
		return fmt.Errorf("journal_corrupt_records = %d, want 1", got)
	}
	j2, ok := srv2.Job("j-2")
	if !ok {
		return errors.New("j-2 not restored")
	}
	doc2, state := j2.ResultDocument()
	if state != serve.StateDone {
		return fmt.Errorf("j-2 restored as %v, want done", state)
	}
	if !bytes.Equal(doc2, docs["j-2"]) {
		return errors.New("j-2's restored document is not byte-identical")
	}
	j1, ok := srv2.Job("j-1")
	if !ok {
		return errors.New("j-1 not restored")
	}
	if err := waitJob(j1, 2*time.Minute); err != nil {
		return fmt.Errorf("j-1 re-run: %w", err)
	}
	doc1, state := j1.ResultDocument()
	if state != serve.StateDone {
		return fmt.Errorf("j-1 re-ran to %v, want done", state)
	}
	a, err := stripTraceField(doc1)
	if err != nil {
		return err
	}
	bref, err := stripTraceField(docs["j-1"])
	if err != nil {
		return err
	}
	if !bytes.Equal(a, bref) {
		return errors.New("j-1's re-solved answer differs from the original beyond its trace")
	}
	log.Printf("smoke-overload: corrupt record quarantined, intact job restored byte-identically, wounded job re-solved")
	return nil
}

// solveOn submits req and returns the finished result document.
func solveOn(srv *serve.Server, req serve.SolveRequest) ([]byte, error) {
	job, err := srv.Submit(req)
	if err != nil {
		return nil, err
	}
	if err := waitJob(job, 2*time.Minute); err != nil {
		return nil, err
	}
	doc, state := job.ResultDocument()
	if state != serve.StateDone {
		return nil, fmt.Errorf("job finished %v", state)
	}
	return doc, nil
}

func waitJob(job *serve.Job, within time.Duration) error {
	select {
	case <-job.Done():
	case <-time.After(within):
		return fmt.Errorf("job still unfinished after %v", within)
	}
	return nil
}

func shutdownServe(srv *serve.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// stripTraceField removes the wall-clock trace from a result document so two
// solves of the same request compare equal exactly when their answers agree.
func stripTraceField(doc []byte) ([]byte, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, err
	}
	delete(m, "trace")
	return json.Marshal(m)
}
