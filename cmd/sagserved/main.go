// Command sagserved runs the sagrelay solve service: an HTTP JSON API that
// accepts scenario solve jobs, runs them on a bounded worker pool with
// cooperative cancellation, and answers repeated requests from a
// content-addressed result cache. With -data-dir it is also crash-safe:
// every job is journaled to disk and replayed after a restart.
//
// Usage:
//
//	sagserved -addr :8080
//	sagserved -addr 127.0.0.1:0 -workers 4 -max-job-time 30s
//	sagserved -data-dir /var/lib/sagserved      # durable journal + results
//	sagserved -fault 'milp.node=error:p=0.01'   # chaos: arm fault injection
//	sagserved -pprof-addr 127.0.0.1:6060        # net/http/pprof side server
//	sagserved -rate 5 -burst 10                 # per-client rate limiting
//	sagserved -log-format json -log-level debug # structured logs on stderr
//	sagserved -smoke            # self-test: solve twice, assert cache hit
//	sagserved -smoke-recovery   # self-test: kill -9 mid-solve, replay journal
//	sagserved -smoke-overload   # self-test: shedding, breaker, journal checksums
//	sagserved -smoke-batch      # self-test: grid batch stream, cache-hit replays
//	sagserved -smoke-progress   # self-test: live progress stream, flight record
//
// Logs go to stderr through log/slog with job_id/batch_id/client correlation
// fields. The -pprof-addr side listener additionally serves the flight
// recorder at /debug/flight (last K completed jobs, failures retained
// preferentially); SIGQUIT dumps the ring to stderr without stopping the
// process.
//
// See the README quickstart for the curl workflow and the crash-recovery
// runbook for -data-dir operations.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers for the -pprof-addr side server
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/fault"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sagserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sagserved", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks one)")
		workers    = fs.Int("workers", 0, "concurrent solve jobs (0 = all CPUs)")
		queue      = fs.Int("queue", 64, "queued-job bound before submissions get 429")
		cacheEnts  = fs.Int("cache", 256, "result cache entries")
		maxJobTime = fs.Duration("max-job-time", 2*time.Minute, "default and maximum per-job deadline")
		dataDir    = fs.String("data-dir", "", "durable job journal + results directory (empty = in-memory only)")
		faultSpec  = fs.String("fault", os.Getenv("SAGFAULT"),
			"fault-injection spec, e.g. 'milp.node=error:p=0.01,serve.job=panic:n=3' (default $SAGFAULT; empty = off)")
		faultSeed       = fs.Int64("fault-seed", 1, "fault-injection rng seed")
		shutdownTimeout = fs.Duration("shutdown-timeout", 10*time.Second,
			"SIGINT/SIGTERM drain budget before in-flight solves are cancelled (and journaled as interrupted)")
		pprofAddr = fs.String("pprof-addr", "",
			"listen address for a net/http/pprof side server (empty = profiling off; keep it loopback-only)")
		rate = fs.Float64("rate", 0,
			"per-client request rate limit in requests/second (0 = no rate limiting)")
		burst = fs.Int("burst", 0,
			"per-client token-bucket burst (0 = derive from -rate)")
		maxInflight = fs.Int("max-inflight", 0,
			"AIMD adaptive-concurrency ceiling (0 = the worker count)")
		breakerThreshold = fs.Float64("breaker-threshold", 0,
			"degrade circuit breaker bad-outcome fraction that trips heuristic-first mode (0 = default 0.5)")
		smoke    = fs.Bool("smoke", false, "run the self-test (ephemeral port, solve twice, assert cache hit) and exit")
		smokeRec = fs.Bool("smoke-recovery", false,
			"run the crash-recovery self-test (kill -9 a child server mid-solve, replay its journal) and exit")
		smokeOverload = fs.Bool("smoke-overload", false,
			"run the overload-resilience self-test (deterministic shedding, healthz under storm, checksummed-journal recovery) and exit")
		smokeBatch = fs.Bool("smoke-batch", false,
			"run the batch-engine self-test (stream a seeded grid batch, byte-identical solo replays, batch counters) and exit")
		smokeProgress = fs.Bool("smoke-progress", false,
			"run the introspection self-test (tail a live progress stream, fetch the flight record, match a JSON log line) and exit")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		flightRec = fs.Int("flight-records", obs.DefaultFlightRecords,
			"completed-job flight records retained in memory (failures kept preferentially)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	lvl, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, lvl)
	if err != nil {
		return err
	}

	if *faultSpec != "" {
		if err := fault.EnableSpec(*faultSpec, *faultSeed); err != nil {
			return err
		}
		logger.Warn("fault injection armed", "spec", *faultSpec, "seed", *faultSeed)
	}

	opts := serve.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cacheEnts,
		MaxJobTime:    *maxJobTime,
		DataDir:       *dataDir,
		FlightRecords: *flightRec,
		Logger:        logger,
		Admit: admit.Options{
			Rate:             *rate,
			Burst:            *burst,
			MaxInflight:      *maxInflight,
			BreakerThreshold: *breakerThreshold,
		},
	}
	if *smoke {
		return runSmoke(opts)
	}
	if *smokeRec {
		return runSmokeRecovery(opts)
	}
	if *smokeOverload {
		return runSmokeOverload(opts)
	}
	if *smokeBatch {
		return runSmokeBatch(opts)
	}
	if *smokeProgress {
		return runSmokeProgress(opts)
	}

	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		m := srv.MetricsSnapshot()
		logger.Info("journal opened", "dir", *dataDir,
			"restored", m["journal_restored_jobs"], "replaying", m["journal_replayed_jobs"])
	}

	// The flight recorder rides the pprof side listener: both are debug
	// surfaces that must never share a port with the job API.
	fh := srv.FlightHandler()
	http.Handle("GET /debug/flight", fh)
	http.Handle("GET /debug/flight/", fh)
	if *pprofAddr != "" {
		// The pprof import registered its handlers on http.DefaultServeMux;
		// serve that mux on a separate listener so profiling never shares a
		// port (or an exposure surface) with the job API.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		go func() {
			logger.Info(fmt.Sprintf("pprof and flight recorder on http://%s", pln.Addr()))
			if err := http.Serve(pln, nil); err != nil {
				logger.Error("pprof server stopped", "err", err)
			}
		}()
	}

	// SIGQUIT dumps the flight ring to stderr and keeps serving — the
	// in-flight postmortem tool for a wedged or misbehaving deployment.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			logger.Warn("SIGQUIT: dumping flight recorder")
			os.Stderr.Write(srv.FlightRecorder().Dump())
			os.Stderr.Write([]byte("\n"))
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Info(fmt.Sprintf("listening on http://%s", ln.Addr()))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "budget", shutdownTimeout.String())
	}

	// Graceful shutdown: stop the listener, then drain in-flight jobs; past
	// the budget every remaining solve is cancelled via its context and, with
	// a journal, recorded as interrupted so the next start re-runs it.
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	httpErr := httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain budget expired, in-flight jobs interrupted", "err", err)
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	logger.Info("shut down cleanly")
	return nil
}

// runSmoke exercises the full service loop against itself on an ephemeral
// port: submit a tiny scenario twice, assert the second answer is a
// byte-identical cache hit with no extra solver work, then shut down
// cleanly. CI runs this as the service's end-to-end gate.
func runSmoke(opts serve.Options) error {
	srv, err := serve.NewServer(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	log.Printf("smoke: serving on %s", base)

	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 10, NumBS: 2, SNRdB: -15, Seed: 42,
	})
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.SolveRequest{Scenario: sc})
	if err != nil {
		return err
	}

	post := func() ([]byte, error) {
		resp, err := http.Post(base+"/v1/solve?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		doc, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("solve: %s: %s", resp.Status, doc)
		}
		return doc, nil
	}

	first, err := post()
	if err != nil {
		return fmt.Errorf("smoke first solve: %w", err)
	}
	second, err := post()
	if err != nil {
		return fmt.Errorf("smoke second solve: %w", err)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("smoke: second response is not byte-identical to the first")
	}

	m := srv.MetricsSnapshot()
	if m["cache_hits"] != 1 || m["cache_misses"] != 1 || m["solves"] != 1 {
		return fmt.Errorf("smoke: expected 1 hit / 1 miss / 1 solve, got metrics %v", m)
	}

	if err := checkResultTrace(first); err != nil {
		return fmt.Errorf("smoke trace: %w", err)
	}
	if err := checkPrometheus(base, m); err != nil {
		return fmt.Errorf("smoke prometheus: %w", err)
	}

	// /healthz and /metrics must answer over HTTP too.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("smoke %s: %w", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke %s: %s", path, resp.Status)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke http shutdown: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("smoke server shutdown: %w", err)
	}
	log.Printf("smoke: ok (1 solve, 1 cache hit, byte-identical replay, trace + prometheus gates, clean shutdown)")
	return nil
}

// spanDoc mirrors the serialized span tree for the smoke gate.
type spanDoc struct {
	Name  string            `json:"name"`
	DurNS int64             `json:"dur_ns"`
	Attrs map[string]string `json:"attrs"`
	Spans []*spanDoc        `json:"spans"`
}

// checkResultTrace asserts the result document embeds a span tree covering
// at least four distinct pipeline stages, each with a non-zero duration.
func checkResultTrace(doc []byte) error {
	var res struct {
		Trace *spanDoc `json:"trace"`
	}
	if err := json.Unmarshal(doc, &res); err != nil {
		return err
	}
	if res.Trace == nil {
		return errors.New("result document has no trace")
	}
	stages := make(map[string]bool)
	var walk func(*spanDoc) error
	walk = func(s *spanDoc) error {
		if s.DurNS <= 0 {
			return fmt.Errorf("span %q has non-positive duration %d", s.Name, s.DurNS)
		}
		stages[s.Name] = true
		for _, c := range s.Spans {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(res.Trace); err != nil {
		return err
	}
	for _, want := range []string{"solve", "coverage", "connectivity", "connectivity_power"} {
		if !stages[want] {
			return fmt.Errorf("trace lacks pipeline stage %q (have %v)", want, stages)
		}
	}
	if len(stages) < 4 {
		return fmt.Errorf("trace has %d distinct span names, want >= 4", len(stages))
	}
	return nil
}

// checkPrometheus fetches /metrics?format=prometheus, grammar-checks every
// line, requires at least five histograms, and cross-checks counter values
// against the JSON snapshot.
func checkPrometheus(base string, jsonVals map[string]int64) error {
	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	lineRE := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+|)$`)
	samples := make(map[string]float64)
	histograms := 0
	for _, line := range strings.Split(string(body), "\n") {
		if !lineRE.MatchString(line) {
			return fmt.Errorf("exposition line fails grammar: %q", line)
		}
		if strings.Contains(line, `_bucket{le="+Inf"}`) {
			histograms++
		}
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("bad sample in %q: %w", line, err)
		}
		samples[fields[0]] = v
	}
	if histograms < 5 {
		return fmt.Errorf("exposition has %d histograms, want >= 5", histograms)
	}
	for _, key := range []string{"jobs_accepted", "jobs_completed", "cache_hits", "cache_misses", "solves"} {
		if got, want := samples["sag_"+key], float64(jsonVals[key]); got != want {
			return fmt.Errorf("sag_%s = %v, JSON snapshot says %v", key, got, want)
		}
	}
	return nil
}
