package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sagrelay/internal/core"
)

func TestParseScheme(t *testing.T) {
	tests := []struct {
		in       string
		cover    core.CoverageMethod
		conn     core.ConnectivityMethod
		wantsErr bool
	}{
		{"SAMC+MBMC", core.CoverSAMC, core.ConnMBMC, false},
		{"iac+must", core.CoverIAC, core.ConnMUST, false},
		{"GAC+MBMC", core.CoverGAC, core.ConnMBMC, false},
		{"SAMC", 0, 0, true},
		{"XXX+MBMC", 0, 0, true},
		{"SAMC+XXX", 0, 0, true},
	}
	for _, tt := range tests {
		cfg, err := parseScheme(tt.in)
		if tt.wantsErr {
			if err == nil {
				t.Errorf("parseScheme(%q) accepted", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseScheme(%q): %v", tt.in, err)
			continue
		}
		if cfg.Coverage != tt.cover || cfg.Connectivity != tt.conn {
			t.Errorf("parseScheme(%q) = %+v", tt.in, cfg)
		}
	}
}

func TestMissingOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestSingleSchemeRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := filepath.Join(t.TempDir(), "topo.svg")
	err := run([]string{"-out", out, "-scheme", "SAMC+MBMC", "-users", "8", "-field", "300", "-bs", "2"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}
