// Command sagviz renders deployment topologies as SVG (the paper's Fig. 6).
//
// Usage:
//
//	sagviz -out fig6/                           # all four Fig. 6 panels
//	sagviz -scenario sc.json -scheme SAMC+MBMC -out topo.svg
//	sagviz -users 30 -field 600 -scheme SAMC+MUST -out topo.svg
//	sagviz -scenario sc.json -delta d.json -scheme SAMC+MBMC -out diff.svg
//
// With -delta the scenario is the delta's base: both the base and the
// mutated deployment are solved and the output is a diff rendering — added
// relays green, removed relays red, moved relays joined by arrows.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"sagrelay/internal/core"
	"sagrelay/internal/experiment"
	"sagrelay/internal/scenario"
	"sagrelay/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sagviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sagviz", flag.ContinueOnError)
	var (
		out     = fs.String("out", "", "output file (single scheme) or directory (all panels)")
		scheme  = fs.String("scheme", "", "scheme: IAC+MBMC, GAC+MBMC, SAMC+MBMC or SAMC+MUST (empty = all four panels)")
		scPath  = fs.String("scenario", "", "scenario JSON file (empty = generate)")
		users   = fs.Int("users", 30, "generated subscribers")
		field   = fs.Float64("field", 600, "generated field side")
		numBS   = fs.Int("bs", 4, "generated base stations")
		seed    = fs.Int64("seed", 1, "generation seed")
		circles = fs.Bool("circles", false, "draw feasible coverage circles")
		deltaIn = fs.String("delta", "", "scenario delta JSON; renders a deployment diff against -scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("missing -out")
	}
	if *scheme == "" {
		// All four Fig. 6 panels into the directory.
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		paths, err := experiment.Fig6SVGs(experiment.Config{Runs: 1, Seed: *seed}, *out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d panels: %s\n", len(paths), strings.Join(paths, ", "))
		return nil
	}
	var sc *scenario.Scenario
	var err error
	if *scPath != "" {
		sc, err = scenario.Load(*scPath)
	} else {
		sc, err = scenario.Generate(scenario.GenConfig{
			FieldSide: *field, NumSS: *users, NumBS: *numBS, Seed: *seed,
		})
	}
	if err != nil {
		return err
	}
	cfg, err := parseScheme(*scheme)
	if err != nil {
		return err
	}
	sol, err := core.Run(context.Background(), sc, cfg)
	if err != nil {
		return err
	}
	if !sol.Feasible {
		fmt.Fprintln(os.Stderr, "warning: coverage infeasible; rendering the bare scenario")
		sol = nil
	}
	if *deltaIn != "" {
		d, err := scenario.LoadDelta(*deltaIn)
		if err != nil {
			return err
		}
		mutated, err := d.Apply(sc)
		if err != nil {
			return err
		}
		newSol, err := core.Run(context.Background(), mutated, cfg)
		if err != nil {
			return err
		}
		if !newSol.Feasible {
			fmt.Fprintln(os.Stderr, "warning: mutated coverage infeasible; diff shows removals only")
			newSol = nil
		}
		style := viz.Style{Title: *scheme + " delta"}
		if err := viz.RenderDiffToFile(sc, mutated, sol, newSol, style, *out); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
		return nil
	}
	style := viz.Style{ShowEdges: true, ShowCircles: *circles, Title: *scheme}
	if err := viz.RenderToFile(sc, sol, style, *out); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

func parseScheme(s string) (core.Config, error) {
	parts := strings.SplitN(s, "+", 2)
	if len(parts) != 2 {
		return core.Config{}, fmt.Errorf("scheme %q is not <coverage>+<connectivity>", s)
	}
	var cfg core.Config
	switch strings.ToUpper(parts[0]) {
	case "SAMC":
		cfg.Coverage = core.CoverSAMC
	case "IAC":
		cfg.Coverage = core.CoverIAC
	case "GAC":
		cfg.Coverage = core.CoverGAC
	default:
		return cfg, fmt.Errorf("unknown coverage method %q", parts[0])
	}
	switch strings.ToUpper(parts[1]) {
	case "MBMC":
		cfg.Connectivity = core.ConnMBMC
	case "MUST":
		cfg.Connectivity = core.ConnMUST
	default:
		return cfg, fmt.Errorf("unknown connectivity method %q", parts[1])
	}
	return cfg, nil
}
