package main

import (
	"context"
	"testing"

	"sagrelay/internal/core"
	"sagrelay/internal/scenario"
)

func TestSweepValidation(t *testing.T) {
	bad := [][]string{
		{"-step", "0"},
		{"-from", "10", "-to", "5"},
		{"-dim", "zzz", "-from", "5", "-to", "5", "-runs", "1"},
		{"-metric", "zzz", "-from", "5", "-to", "5", "-users", "3", "-bs", "1", "-runs", "1"},
		{"-coverage", "zzz"},
		{"-not-a-flag"},
		{"-dim", "users", "-from", "-5", "-to", "-5"},
	}
	for i, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("bad args %d accepted: %v", i, args)
		}
	}
}

func TestSweepUsersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{
		"-dim", "users", "-from", "4", "-to", "8", "-step", "4",
		"-field", "300", "-bs", "2", "-runs", "1", "-metric", "total-relays", "-chart",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepPointMetrics(t *testing.T) {
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 300, NumSS: 5, NumBS: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"total-power", "coverage-power", "conn-power",
		"coverage-relays", "conn-relays", "total-relays", "runtime-ms",
	} {
		v, err := sweepPoint(context.Background(), sc, core.Config{}, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if v < 0 {
			t.Errorf("%s = %v", m, v)
		}
	}
	if _, err := sweepPoint(context.Background(), sc, core.Config{}, "nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestSweepDeliveryRatioMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 300, NumSS: 5, NumBS: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sweepPoint(context.Background(), sc, core.Config{}, "delivery-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Errorf("delivery ratio %v outside [0,1]", v)
	}
}
