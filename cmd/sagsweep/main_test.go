package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
)

func TestSweepValidation(t *testing.T) {
	bad := [][]string{
		{"-step", "0"},
		{"-from", "10", "-to", "5"},
		{"-dim", "zzz", "-from", "5", "-to", "5", "-runs", "1"},
		{"-metric", "zzz", "-from", "5", "-to", "5", "-users", "3", "-bs", "1", "-runs", "1"},
		{"-coverage", "zzz"},
		{"-not-a-flag"},
		{"-dim", "users", "-from", "-5", "-to", "-5"},
	}
	for i, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("bad args %d accepted: %v", i, args)
		}
	}
}

func TestSweepUsersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{
		"-dim", "users", "-from", "4", "-to", "8", "-step", "4",
		"-field", "300", "-bs", "2", "-runs", "1", "-metric", "total-relays", "-chart",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepPointMetrics(t *testing.T) {
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 300, NumSS: 5, NumBS: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"total-power", "coverage-power", "conn-power",
		"coverage-relays", "conn-relays", "total-relays", "runtime-ms",
	} {
		v, err := sweepPoint(context.Background(), sc, core.Config{}, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if v < 0 {
			t.Errorf("%s = %v", m, v)
		}
	}
	if _, err := sweepPoint(context.Background(), sc, core.Config{}, "nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

// TestServerSweepMatchesLocal runs the same sweep twice — once solving in
// process, once through a live batch server — and requires the rendered
// tables to be byte-identical. This is the contract -server advertises:
// shipping a sweep to a shared solver changes where the work runs, never
// what the table says.
func TestServerSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, err := serve.NewServer(serve.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	base := []string{
		"-dim", "users", "-from", "4", "-to", "8", "-step", "2",
		"-runs", "2", "-seed", "7", "-field", "300", "-bs", "2",
		"-metric", "total-power",
	}
	local, _, err := sweep(base)
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	remote, _, err := sweep(append(append([]string(nil), base...), "-server", ts.URL))
	if err != nil {
		t.Fatalf("server sweep: %v", err)
	}
	if local.ASCII() != remote.ASCII() {
		t.Errorf("server table differs from local\nlocal:\n%s\nserver:\n%s", local.ASCII(), remote.ASCII())
	}

	// A relay-count metric takes the integer extraction path; check it too.
	relays := append(append([]string(nil), base...), "-metric", "total-relays")
	localR, _, err := sweep(relays)
	if err != nil {
		t.Fatalf("local relay sweep: %v", err)
	}
	remoteR, _, err := sweep(append(append([]string(nil), relays...), "-server", ts.URL))
	if err != nil {
		t.Fatalf("server relay sweep: %v", err)
	}
	if localR.ASCII() != remoteR.ASCII() {
		t.Errorf("relay table differs from local\nlocal:\n%s\nserver:\n%s", localR.ASCII(), remoteR.ASCII())
	}
}

// TestServerSweepRejectsLocalOnlyMetrics checks that the two metrics a
// result document cannot answer fail fast instead of shipping a batch.
func TestServerSweepRejectsLocalOnlyMetrics(t *testing.T) {
	for _, metric := range []string{"runtime-ms", "delivery-ratio"} {
		_, _, err := sweep([]string{
			"-dim", "users", "-from", "4", "-to", "4", "-step", "2",
			"-runs", "1", "-metric", metric, "-server", "http://127.0.0.1:1",
		})
		if err == nil || !strings.Contains(err.Error(), "drop -server") {
			t.Errorf("metric %s: want local-only rejection, got %v", metric, err)
		}
	}
}

func TestSweepDeliveryRatioMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 300, NumSS: 5, NumBS: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sweepPoint(context.Background(), sc, core.Config{}, "delivery-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 1 {
		t.Errorf("delivery ratio %v outside [0,1]", v)
	}
}
