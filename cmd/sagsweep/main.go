// Command sagsweep runs custom parameter sweeps over any pipeline — the
// generalization of the paper's fixed figures for exploring new operating
// points.
//
// Usage:
//
//	sagsweep -dim users -from 5 -to 50 -step 5 -metric total-power
//	sagsweep -dim snr -from -25 -to -10 -step 2.5 -metric coverage-relays
//	sagsweep -dim field -from 300 -to 900 -step 200 -metric conn-relays -chart
//	sagsweep -dim users -from 5 -to 30 -step 5 -coverage GAC -metric runtime-ms
//	sagsweep -dim users -from 5 -to 30 -step 5 -server http://localhost:8080
//
// Dimensions: users, snr, field, bs. Metrics: total-power, coverage-power,
// conn-power, coverage-relays, conn-relays, total-relays, runtime-ms,
// delivery-ratio.
//
// With -server URL the sweep ships its scenarios to a sagserved instance as
// one POST /v1/batch?wait=1 call and folds the streamed NDJSON results into
// the same table a local run prints — byte-identical, because both modes
// expand the identical experiment.GridSpec and aggregate in the same order.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/experiment"
	"sagrelay/internal/scenario"
	"sagrelay/internal/serve"
	"sagrelay/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sagsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	tbl, chart, err := sweep(args)
	if err != nil {
		return err
	}
	fmt.Println(tbl.ASCII())
	if chart {
		fmt.Println(tbl.Chart(0, 0))
	}
	return nil
}

// sweepPoint solves one scenario locally and extracts the requested metric.
func sweepPoint(ctx context.Context, sc *scenario.Scenario, cfg core.Config, metric string) (float64, error) {
	sol, err := core.Run(ctx, sc, cfg)
	if err != nil {
		return 0, err
	}
	if !sol.Feasible {
		return math.NaN(), nil
	}
	switch metric {
	case "total-power":
		return sol.PTotal, nil
	case "coverage-power":
		return sol.PL, nil
	case "conn-power":
		return sol.PH, nil
	case "coverage-relays":
		return float64(sol.Coverage.NumRelays()), nil
	case "conn-relays":
		return float64(sol.Connectivity.NumRelays()), nil
	case "total-relays":
		return float64(sol.TotalRelays()), nil
	case "runtime-ms":
		return float64(sol.Elapsed.Microseconds()) / 1000, nil
	case "delivery-ratio":
		rep, err := sim.RunTraffic(sc, sol, sim.TrafficOptions{Slots: 300, Seed: 1})
		if err != nil {
			return 0, err
		}
		return rep.DeliveryRatio(), nil
	default:
		return 0, fmt.Errorf("unknown metric %q", metric)
	}
}

// metricFromDoc extracts the requested metric from a server result document.
// It mirrors sweepPoint exactly for the metrics a ResultDoc can answer; the
// two runtime-observable metrics need the local solve and are rejected up
// front by sweep.
func metricFromDoc(doc serve.ResultDoc, metric string) (float64, error) {
	if !doc.Feasible {
		return math.NaN(), nil
	}
	switch metric {
	case "total-power":
		return doc.PTotal, nil
	case "coverage-power":
		return doc.PL, nil
	case "conn-power":
		return doc.PH, nil
	case "coverage-relays":
		return float64(doc.NumCoverage), nil
	case "conn-relays":
		return float64(doc.NumConnectivity), nil
	case "total-relays":
		return float64(doc.NumCoverage + doc.NumConnectivity), nil
	default:
		return 0, fmt.Errorf("unknown metric %q", metric)
	}
}

// sweep parses flags, runs the sweep locally or against a server, and
// returns the finished table plus whether a chart was requested. run prints;
// sweep stays side-effect free so tests can compare tables across modes.
func sweep(args []string) (*experiment.Table, bool, error) {
	fs := flag.NewFlagSet("sagsweep", flag.ContinueOnError)
	var (
		dim      = fs.String("dim", "users", "sweep dimension: users, snr, field or bs")
		from     = fs.Float64("from", 5, "first value")
		to       = fs.Float64("to", 50, "last value (inclusive)")
		step     = fs.Float64("step", 5, "increment")
		metric   = fs.String("metric", "total-power", "metric to record")
		users    = fs.Int("users", 30, "subscribers (when not swept)")
		field    = fs.Float64("field", 500, "field side (when not swept)")
		numBS    = fs.Int("bs", 4, "base stations (when not swept)")
		snr      = fs.Float64("snr", -15, "SNR threshold dB (when not swept)")
		runs     = fs.Int("runs", 3, "seeded repetitions per point")
		seed     = fs.Int64("seed", 1, "base seed")
		coverage = fs.String("coverage", "SAMC", "coverage method: SAMC, IAC or GAC")
		workers  = fs.Int("workers", 0, "concurrent per-zone solves (0 = all CPUs, 1 = sequential)")
		timeout  = fs.Duration("timeout", 0, "deadline for the whole sweep, e.g. 2m (0 = unbounded)")
		server   = fs.String("server", "", "base URL of a sagserved instance; runs the sweep via POST /v1/batch")
		chart    = fs.Bool("chart", false, "render an ASCII chart")
	)
	if err := fs.Parse(args); err != nil {
		return nil, false, err
	}
	if *runs < 1 {
		return nil, false, fmt.Errorf("runs %d must be at least 1", *runs)
	}
	values, err := experiment.SeqValues(*from, *to, *step)
	if err != nil {
		return nil, false, err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var cfg core.Config
	cfg.Workers = *workers
	switch *coverage {
	case "SAMC", "samc":
		cfg.Coverage = core.CoverSAMC
	case "IAC", "iac":
		cfg.Coverage = core.CoverIAC
	case "GAC", "gac":
		cfg.Coverage = core.CoverGAC
	default:
		return nil, false, fmt.Errorf("unknown coverage method %q", *coverage)
	}

	spec := experiment.GridSpec{
		Base: scenario.GenConfig{
			FieldSide: *field, NumSS: *users, NumBS: *numBS, SNRdB: *snr,
		},
		Dims: []experiment.GridDim{{Name: *dim, Values: values}},
		Runs: *runs,
		Seed: *seed,
	}
	cells, err := spec.Expand()
	if err != nil {
		return nil, false, err
	}

	// One metric value per cell, in expansion order; NaN means infeasible.
	var vals []float64
	if *server != "" {
		opts := serve.SolveOptions{Coverage: *coverage, Workers: *workers}
		vals, err = serverSweep(ctx, *server, cells, opts, *metric)
	} else {
		vals, err = localSweep(ctx, cells, cfg, *metric, *dim, *timeout)
	}
	if err != nil {
		return nil, false, err
	}

	tbl := &experiment.Table{
		ID:      "sweep",
		Title:   fmt.Sprintf("%s vs %s (%s coverage)", *metric, *dim, cfg.Coverage),
		XLabel:  *dim,
		Columns: []string{*metric},
	}
	// Fold runs into per-point means in run order, so local and server modes
	// perform identical float additions and the tables match byte for byte.
	for pi, x := range values {
		sum, n := 0.0, 0
		for r := 0; r < *runs; r++ {
			if v := vals[pi**runs+r]; !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		val := math.NaN()
		if n > 0 {
			val = sum / float64(n)
		}
		if err := tbl.AddRow(x, val); err != nil {
			return nil, false, err
		}
	}
	return tbl, *chart, nil
}

// localSweep solves every cell in process, in expansion order.
func localSweep(ctx context.Context, cells []experiment.GridCell, cfg core.Config, metric, dim string, timeout time.Duration) ([]float64, error) {
	vals := make([]float64, len(cells))
	for i, cell := range cells {
		sc, err := scenario.Generate(cell.Gen)
		if err != nil {
			return nil, err
		}
		v, err := sweepPoint(ctx, sc, cfg, metric)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("sweep abandoned at %s=%v: deadline of %v exceeded", dim, cell.Values[0], timeout)
			}
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// serverSweep generates every cell's scenario locally (the same bytes a
// local run would solve), ships them as one explicit-items POST /v1/batch
// and reads the NDJSON stream, mapping each item line back to its cell.
func serverSweep(ctx context.Context, baseURL string, cells []experiment.GridCell, opts serve.SolveOptions, metric string) ([]float64, error) {
	switch metric {
	case "runtime-ms", "delivery-ratio":
		return nil, fmt.Errorf("metric %q is measured during a local solve and is not part of the server's result document; drop -server", metric)
	case "total-power", "coverage-power", "conn-power", "coverage-relays", "conn-relays", "total-relays":
	default:
		return nil, fmt.Errorf("unknown metric %q", metric)
	}
	req := serve.BatchRequest{Options: opts}
	for _, cell := range cells {
		sc, err := scenario.Generate(cell.Gen)
		if err != nil {
			return nil, err
		}
		req.Items = append(req.Items, serve.BatchItemRequest{Scenario: sc})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/batch?wait=1"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var env struct {
			Error serve.APIError `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return nil, fmt.Errorf("server rejected batch (%s): %s", env.Error.Code, env.Error.Message)
		}
		return nil, fmt.Errorf("server rejected batch: HTTP %d", resp.StatusCode)
	}

	vals := make([]float64, len(cells))
	got := make([]bool, len(cells))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	sawTrailer, complete := false, false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var msg struct {
			Schema   string          `json:"schema"`
			Item     *int            `json:"item"`
			State    string          `json:"state"`
			Result   json.RawMessage `json:"result"`
			Error    *serve.APIError `json:"error"`
			Done     *bool           `json:"done"`
			Complete bool            `json:"complete"`
		}
		if err := json.Unmarshal(line, &msg); err != nil {
			return nil, fmt.Errorf("bad stream line from server: %w", err)
		}
		switch {
		case msg.Done != nil: // trailer
			sawTrailer, complete = true, msg.Complete
		case msg.Schema != "": // header
		case msg.Item != nil: // per-item result
			i := *msg.Item
			if i < 0 || i >= len(cells) {
				return nil, fmt.Errorf("server streamed unknown item index %d", i)
			}
			if msg.State != "done" {
				detail := msg.State
				if msg.Error != nil {
					detail = fmt.Sprintf("%s: %s", msg.Error.Code, msg.Error.Message)
				}
				return nil, fmt.Errorf("batch item %d did not complete (%s)", i, detail)
			}
			var doc serve.ResultDoc
			if err := json.Unmarshal(msg.Result, &doc); err != nil {
				return nil, fmt.Errorf("bad result document for item %d: %w", i, err)
			}
			v, err := metricFromDoc(doc, metric)
			if err != nil {
				return nil, err
			}
			vals[i], got[i] = v, true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading batch stream: %w", err)
	}
	if !sawTrailer || !complete {
		return nil, fmt.Errorf("batch stream ended before all %d items finished", len(cells))
	}
	for i, ok := range got {
		if !ok {
			return nil, fmt.Errorf("server never streamed a result for item %d", i)
		}
	}
	return vals, nil
}
