// Command sagsweep runs custom parameter sweeps over any pipeline — the
// generalization of the paper's fixed figures for exploring new operating
// points.
//
// Usage:
//
//	sagsweep -dim users -from 5 -to 50 -step 5 -metric total-power
//	sagsweep -dim snr -from -25 -to -10 -step 2.5 -metric coverage-relays
//	sagsweep -dim field -from 300 -to 900 -step 200 -metric conn-relays -chart
//	sagsweep -dim users -from 5 -to 30 -step 5 -coverage GAC -metric runtime-ms
//
// Dimensions: users, snr, field, bs. Metrics: total-power, coverage-power,
// conn-power, coverage-relays, conn-relays, total-relays, runtime-ms,
// delivery-ratio.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"sagrelay/internal/core"
	"sagrelay/internal/experiment"
	"sagrelay/internal/scenario"
	"sagrelay/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sagsweep:", err)
		os.Exit(1)
	}
}

// sweepPoint solves one scenario and extracts the requested metric.
func sweepPoint(ctx context.Context, sc *scenario.Scenario, cfg core.Config, metric string) (float64, error) {
	sol, err := core.Run(ctx, sc, cfg)
	if err != nil {
		return 0, err
	}
	if !sol.Feasible {
		return math.NaN(), nil
	}
	switch metric {
	case "total-power":
		return sol.PTotal, nil
	case "coverage-power":
		return sol.PL, nil
	case "conn-power":
		return sol.PH, nil
	case "coverage-relays":
		return float64(sol.Coverage.NumRelays()), nil
	case "conn-relays":
		return float64(sol.Connectivity.NumRelays()), nil
	case "total-relays":
		return float64(sol.TotalRelays()), nil
	case "runtime-ms":
		return float64(sol.Elapsed.Microseconds()) / 1000, nil
	case "delivery-ratio":
		rep, err := sim.RunTraffic(sc, sol, sim.TrafficOptions{Slots: 300, Seed: 1})
		if err != nil {
			return 0, err
		}
		return rep.DeliveryRatio(), nil
	default:
		return 0, fmt.Errorf("unknown metric %q", metric)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sagsweep", flag.ContinueOnError)
	var (
		dim      = fs.String("dim", "users", "sweep dimension: users, snr, field or bs")
		from     = fs.Float64("from", 5, "first value")
		to       = fs.Float64("to", 50, "last value (inclusive)")
		step     = fs.Float64("step", 5, "increment")
		metric   = fs.String("metric", "total-power", "metric to record")
		users    = fs.Int("users", 30, "subscribers (when not swept)")
		field    = fs.Float64("field", 500, "field side (when not swept)")
		numBS    = fs.Int("bs", 4, "base stations (when not swept)")
		snr      = fs.Float64("snr", -15, "SNR threshold dB (when not swept)")
		runs     = fs.Int("runs", 3, "seeded repetitions per point")
		seed     = fs.Int64("seed", 1, "base seed")
		coverage = fs.String("coverage", "SAMC", "coverage method: SAMC, IAC or GAC")
		workers  = fs.Int("workers", 0, "concurrent per-zone solves (0 = all CPUs, 1 = sequential)")
		timeout  = fs.Duration("timeout", 0, "deadline for the whole sweep, e.g. 2m (0 = unbounded)")
		chart    = fs.Bool("chart", false, "render an ASCII chart")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *step <= 0 {
		return fmt.Errorf("step %v must be positive", *step)
	}
	if *to < *from {
		return fmt.Errorf("empty range [%v,%v]", *from, *to)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var cfg core.Config
	cfg.Workers = *workers
	switch *coverage {
	case "SAMC", "samc":
		cfg.Coverage = core.CoverSAMC
	case "IAC", "iac":
		cfg.Coverage = core.CoverIAC
	case "GAC", "gac":
		cfg.Coverage = core.CoverGAC
	default:
		return fmt.Errorf("unknown coverage method %q", *coverage)
	}

	tbl := &experiment.Table{
		ID:      "sweep",
		Title:   fmt.Sprintf("%s vs %s (%s coverage)", *metric, *dim, cfg.Coverage),
		XLabel:  *dim,
		Columns: []string{*metric},
	}
	for x := *from; x <= *to+1e-9; x += *step {
		gen := scenario.GenConfig{
			FieldSide: *field, NumSS: *users, NumBS: *numBS, SNRdB: *snr,
		}
		switch *dim {
		case "users":
			gen.NumSS = int(x)
		case "snr":
			gen.SNRdB = x
		case "field":
			gen.FieldSide = x
		case "bs":
			gen.NumBS = int(x)
		default:
			return fmt.Errorf("unknown dimension %q", *dim)
		}
		if gen.NumSS <= 0 || gen.NumBS <= 0 || gen.FieldSide <= 0 {
			return fmt.Errorf("dimension value %v yields an invalid scenario", x)
		}
		sum, n := 0.0, 0
		for r := 0; r < *runs; r++ {
			gen.Seed = *seed + int64(r) + int64(x*7919)
			sc, err := scenario.Generate(gen)
			if err != nil {
				return err
			}
			v, err := sweepPoint(ctx, sc, cfg, *metric)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					return fmt.Errorf("sweep abandoned at %s=%v: deadline of %v exceeded", *dim, x, *timeout)
				}
				return err
			}
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		val := math.NaN()
		if n > 0 {
			val = sum / float64(n)
		}
		if err := tbl.AddRow(x, val); err != nil {
			return err
		}
	}
	fmt.Println(tbl.ASCII())
	if *chart {
		fmt.Println(tbl.Chart(0, 0))
	}
	return nil
}
