// Command sagcli solves a relay deployment for a scenario and prints the
// placement as JSON.
//
// Usage:
//
//	sagcli -gen -users 30 -field 500 -save sc.json   # generate + save
//	sagcli -scenario sc.json                          # solve with SAG
//	sagcli -scenario sc.json -coverage GAC -power baseline
//	sagcli -scenario sc.json -trace-out trace.json   # dump the span tree
//	sagcli -scenario sc.json -coverage IAC -progress  # live gap meter on stderr
//	sagcli -base sc.json -delta d.json                # incremental re-solve
//	sagcli -base sc.json -delta d.json -save sc2.json # apply delta + save
//
// With -base and -delta the base scenario is solved first to warm the
// zone-level stores, then the mutated scenario is solved through them, so
// unchanged zones splice from cache; the reuse counts go to stderr. The
// result is byte-identical to solving the mutated scenario alone.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/geom"
	"sagrelay/internal/incr"
	"sagrelay/internal/milp"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// output is the JSON document sagcli prints for a solved deployment.
type output struct {
	Method          string       `json:"method"`
	Feasible        bool         `json:"feasible"`
	CoverageRelays  []relayOut   `json:"coverage_relays,omitempty"`
	ConnectivityRSs []geom.Point `json:"connectivity_relays,omitempty"`
	PL              float64      `json:"coverage_power,omitempty"`
	PH              float64      `json:"connectivity_power,omitempty"`
	PTotal          float64      `json:"total_power,omitempty"`
	NumCoverage     int          `json:"num_coverage_relays"`
	NumConnectivity int          `json:"num_connectivity_relays"`
	ElapsedMillis   float64      `json:"elapsed_ms"`
	SNRThresholdDB  float64      `json:"snr_threshold_db"`
	NumSubscribers  int          `json:"num_subscribers"`
	NumBaseStations int          `json:"num_base_stations"`
}

type relayOut struct {
	Pos    geom.Point `json:"pos"`
	Power  float64    `json:"power"`
	Covers []int      `json:"covers"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sagcli:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sagcli", flag.ContinueOnError)
	var (
		scPath    = fs.String("scenario", "", "scenario JSON file to solve")
		gen       = fs.Bool("gen", false, "generate a scenario instead of solving")
		save      = fs.String("save", "", "write the generated scenario to this file")
		users     = fs.Int("users", 30, "generated subscribers")
		field     = fs.Float64("field", 500, "generated field side")
		numBS     = fs.Int("bs", 4, "generated base stations")
		snr       = fs.Float64("snr", -15, "SNR threshold (dB)")
		seed      = fs.Int64("seed", 1, "generation seed")
		coverage  = fs.String("coverage", "SAMC", "coverage method: SAMC, IAC or GAC")
		power     = fs.String("power", "green", "power stages: green, baseline or optimal")
		conn      = fs.String("connectivity", "MBMC", "connectivity method: MBMC or MUST")
		workers   = fs.Int("workers", 0, "concurrent per-zone solves (0 = all CPUs, 1 = sequential)")
		timeout   = fs.Duration("timeout", 0, "overall solve deadline, e.g. 30s (0 = unbounded)")
		progress  = fs.Bool("progress", false, "print a live convergence meter (zones done, nodes, worst gap) to stderr during IAC/GAC solves")
		traceOut  = fs.String("trace-out", "", "write the solve's span tree as JSON to this file ('-' = stderr)")
		basePath  = fs.String("base", "", "base scenario file for -delta (defaults to -scenario)")
		deltaPath = fs.String("delta", "", "scenario delta JSON to apply to the base scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gen {
		sc, err := scenario.Generate(scenario.GenConfig{
			FieldSide: *field, NumSS: *users, NumBS: *numBS, SNRdB: *snr, Seed: *seed,
		})
		if err != nil {
			return err
		}
		if *save == "" {
			return fmt.Errorf("-gen requires -save <file>")
		}
		if err := scenario.Save(sc, *save); err != nil {
			return err
		}
		fmt.Println("wrote", *save)
		return nil
	}
	var sc, warm *scenario.Scenario
	switch {
	case *deltaPath != "":
		bp := *basePath
		if bp == "" {
			bp = *scPath
		}
		if bp == "" {
			return fmt.Errorf("-delta requires -base (or -scenario) <file>")
		}
		base, err := scenario.Load(bp)
		if err != nil {
			return err
		}
		d, err := scenario.LoadDelta(*deltaPath)
		if err != nil {
			return err
		}
		mutated, err := d.Apply(base)
		if err != nil {
			return err
		}
		if *save != "" {
			if err := scenario.Save(mutated, *save); err != nil {
				return err
			}
			fmt.Println("wrote", *save)
			return nil
		}
		sc, warm = mutated, base
	case *scPath != "":
		loaded, err := scenario.Load(*scPath)
		if err != nil {
			return err
		}
		sc = loaded
	default:
		fs.Usage()
		return fmt.Errorf("missing -scenario (or -gen)")
	}
	cfg, err := buildConfig(*coverage, *power, *conn)
	if err != nil {
		return err
	}
	cfg.Workers = *workers
	ctx, cancel := solveContext(*timeout)
	defer cancel()

	// Incremental mode: solve the base first through fresh zone-level
	// stores, then let the mutated solve splice every unchanged zone.
	var reused0, resolved0 int64
	if warm != nil {
		incr.NewStores(0).Wire(&cfg)
		if _, err := core.Run(ctx, warm, cfg); err != nil {
			return fmt.Errorf("base solve: %w", err)
		}
		reused0, resolved0 = incr.ZonesReused(), incr.ZonesResolved()
	}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("sagcli")
		ctx = obs.WithTrace(ctx, tr)
	}
	// Arm the meter after the warm base solve so it only narrates the solve
	// whose result is printed. Progress is observational: the placement is
	// byte-identical with or without it.
	var meter *progressMeter
	if *progress {
		meter = newProgressMeter(os.Stderr)
		ctx = milp.WithProgress(ctx, meter.observe)
	}
	sol, err := core.Run(ctx, sc, cfg)
	if meter != nil {
		meter.finish()
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("solve abandoned: deadline of %v exceeded", *timeout)
		}
		return err
	}
	if tr != nil {
		tr.Finish()
		if err := writeTrace(*traceOut, tr); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if warm != nil {
		fmt.Fprintf(os.Stderr, "sagcli: incremental: %d zones reused, %d re-solved\n",
			incr.ZonesReused()-reused0, incr.ZonesResolved()-resolved0)
	}
	out := output{
		Method:          sol.Method,
		Feasible:        sol.Feasible,
		ElapsedMillis:   float64(sol.Elapsed.Microseconds()) / 1000,
		SNRThresholdDB:  sc.SNRThresholdDB,
		NumSubscribers:  sc.NumSS(),
		NumBaseStations: len(sc.BaseStations),
	}
	if sol.Feasible {
		out.PL, out.PH, out.PTotal = sol.PL, sol.PH, sol.PTotal
		out.NumCoverage = sol.Coverage.NumRelays()
		out.NumConnectivity = sol.Connectivity.NumRelays()
		for i, r := range sol.Coverage.Relays {
			out.CoverageRelays = append(out.CoverageRelays, relayOut{
				Pos:    r.Pos,
				Power:  sol.CoveragePower.Powers[i],
				Covers: r.Covers,
			})
		}
		for _, r := range sol.Connectivity.Relays {
			out.ConnectivityRSs = append(out.ConnectivityRSs, r.Pos)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeTrace dumps a finished trace as indented JSON; "-" writes to stderr
// so the span tree never interleaves with the result document on stdout.
func writeTrace(path string, tr *obs.Trace) error {
	doc, err := json.MarshalIndent(tr.Doc(), "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(doc)
		return err
	}
	return os.WriteFile(path, doc, 0o644)
}

// solveContext bounds the solve by the -timeout flag; 0 means no deadline.
func solveContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

func buildConfig(coverage, power, conn string) (core.Config, error) {
	var cfg core.Config
	switch strings.ToUpper(coverage) {
	case "SAMC":
		cfg.Coverage = core.CoverSAMC
	case "IAC":
		cfg.Coverage = core.CoverIAC
	case "GAC":
		cfg.Coverage = core.CoverGAC
	default:
		return cfg, fmt.Errorf("unknown coverage method %q", coverage)
	}
	switch strings.ToLower(power) {
	case "green":
		cfg.CoveragePower, cfg.ConnectivityPower = core.PowerGreen, core.PowerGreen
	case "baseline":
		cfg.CoveragePower, cfg.ConnectivityPower = core.PowerBaseline, core.PowerBaseline
	case "optimal":
		cfg.CoveragePower, cfg.ConnectivityPower = core.PowerOptimal, core.PowerGreen
	default:
		return cfg, fmt.Errorf("unknown power stage %q", power)
	}
	switch strings.ToUpper(conn) {
	case "MBMC":
		cfg.Connectivity = core.ConnMBMC
	case "MUST":
		cfg.Connectivity = core.ConnMUST
	default:
		return cfg, fmt.Errorf("unknown connectivity method %q", conn)
	}
	return cfg, nil
}
