package main

import (
	"path/filepath"
	"testing"

	"sagrelay/internal/core"
)

func TestGenerateAndSolve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := run([]string{"-gen", "-users", "8", "-field", "300", "-save", path}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if err := run([]string{"-scenario", path, "-power", "baseline", "-connectivity", "MUST"}); err != nil {
		t.Fatalf("solve baseline: %v", err)
	}
}

func TestGenRequiresSave(t *testing.T) {
	if err := run([]string{"-gen"}); err == nil {
		t.Error("-gen without -save accepted")
	}
}

func TestMissingScenario(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -scenario accepted")
	}
	if err := run([]string{"-scenario", filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Error("absent scenario file accepted")
	}
}

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("gac", "optimal", "must")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Coverage != core.CoverGAC || cfg.CoveragePower != core.PowerOptimal ||
		cfg.ConnectivityPower != core.PowerGreen || cfg.Connectivity != core.ConnMUST {
		t.Errorf("config wrong: %+v", cfg)
	}
	if _, err := buildConfig("zzz", "green", "MBMC"); err == nil {
		t.Error("bad coverage accepted")
	}
	if _, err := buildConfig("SAMC", "zzz", "MBMC"); err == nil {
		t.Error("bad power accepted")
	}
	if _, err := buildConfig("SAMC", "green", "zzz"); err == nil {
		t.Error("bad connectivity accepted")
	}
}
