package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"sagrelay/internal/milp"
)

// meterInterval throttles the -progress stderr meter: at most one line per
// interval, plus one final summary line.
const meterInterval = 100 * time.Millisecond

// progressMeter renders milp progress events as a live convergence meter on
// w. observe is installed via milp.WithProgress and is called concurrently
// from every zone worker.
type progressMeter struct {
	w    io.Writer
	mu   sync.Mutex
	rows map[int]*meterRow
	last time.Time
}

type meterRow struct {
	nodes  int
	gap    float64
	hasGap bool
	done   bool
}

func newProgressMeter(w io.Writer) *progressMeter {
	return &progressMeter{w: w, rows: make(map[int]*meterRow)}
}

func (m *progressMeter) observe(ev milp.Progress) {
	m.mu.Lock()
	defer m.mu.Unlock()
	row := m.rows[ev.Zone]
	if row == nil {
		row = &meterRow{}
		m.rows[ev.Zone] = row
	}
	if ev.Kind == milp.KindZoneReused {
		row.done = true
	} else {
		row.nodes = ev.Nodes
		if ev.HasIncumbent {
			row.gap, row.hasGap = ev.Gap, true
		}
		row.done = ev.Final
	}
	now := time.Now()
	if now.Sub(m.last) < meterInterval {
		return
	}
	m.last = now
	m.printLocked("")
}

// finish prints the terminal meter line once the solve returns.
func (m *progressMeter) finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.rows) == 0 {
		return
	}
	m.printLocked(" (final)")
}

func (m *progressMeter) printLocked(suffix string) {
	var zones, done, nodes int
	worst := -1.0
	for _, row := range m.rows {
		zones++
		nodes += row.nodes
		if row.done {
			done++
		} else if row.hasGap && row.gap > worst {
			worst = row.gap
		}
	}
	line := fmt.Sprintf("sagcli: zones %d/%d done, %d nodes", done, zones, nodes)
	if worst >= 0 {
		line += fmt.Sprintf(", worst gap %.2f%%", worst*100)
	}
	fmt.Fprintln(m.w, line+suffix)
}
