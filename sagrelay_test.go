package sagrelay

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 500, NumSS: 12, NumBS: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("SAG infeasible")
	}
	if sol.TotalRelays() <= 0 || sol.PTotal <= 0 {
		t.Errorf("relays=%d power=%v", sol.TotalRelays(), sol.PTotal)
	}
}

func TestFacadeTierAPIs(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 500, NumSS: 10, NumBS: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	zones, err := ZonePartition(sc)
	if err != nil || len(zones) == 0 {
		t.Fatalf("ZonePartition: %v (%d zones)", err, len(zones))
	}
	cover, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !cover.Feasible {
		t.Fatalf("SAMC: %v", err)
	}
	pro, err := PRO(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimalCoveragePower(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Total > pro.Total+1e-6 {
		t.Errorf("optimal %v above PRO %v", opt.Total, pro.Total)
	}
	conn, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	must, err := MUST(context.Background(), sc, cover, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conn.NumRelays() > must.NumRelays() {
		t.Errorf("MBMC %d above MUST %d", conn.NumRelays(), must.NumRelays())
	}
	ucpo, err := UCPO(context.Background(), sc, cover, conn)
	if err != nil {
		t.Fatal(err)
	}
	if ucpo.Total < 0 {
		t.Errorf("UCPO total %v", ucpo.Total)
	}
}

func TestFacadeDBHelpers(t *testing.T) {
	if math.Abs(DBToLinear(-15)-0.03162277) > 1e-6 {
		t.Error("DBToLinear wrong")
	}
	if math.Abs(LinearToDB(10)-10) > 1e-12 {
		t.Error("LinearToDB wrong")
	}
	if DefaultRadioModel().Alpha != 3 {
		t.Error("default model alpha")
	}
	f := SquareField(500)
	if f.Width() != 500 || !f.Center().AlmostEqual(Pt(0, 0), 0) {
		t.Error("SquareField wrong")
	}
}

func TestFacadeScenarioIO(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 4, NumBS: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := SaveScenario(sc, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSS() != 4 {
		t.Error("round trip lost subscribers")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 18 {
		t.Errorf("got %d experiment ids", len(ids))
	}
	if _, err := RunExperiment(context.Background(), "bogus", ExperimentConfig{}); err == nil {
		t.Error("bogus experiment accepted")
	}
}

func TestFacadeRender(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 5, NumBS: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	svg, err := RenderSVG(sc, nil, VizStyle{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") {
		t.Error("render output not SVG")
	}
}

func TestFacadeDARP(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 8, NumBS: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	darp, err := DARP(context.Background(), sc, CoverSAMC, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sag, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sag.Feasible && darp.Feasible && sag.PTotal > darp.PTotal {
		t.Errorf("SAG %v above DARP %v", sag.PTotal, darp.PTotal)
	}
}

func TestFacadeCustomPipeline(t *testing.T) {
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 6, NumBS: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := RunPipeline(context.Background(), sc, Config{
		Coverage:          CoverSAMC,
		CoveragePower:     PowerOptimal,
		Connectivity:      ConnMUST,
		ConnectivityPower: PowerBaseline,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible && sol.PH != float64(sol.Connectivity.NumRelays())*sc.PMax {
		t.Error("baseline upper-tier power wrong")
	}
}
