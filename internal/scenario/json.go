package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON-friendly round-trips: Scenario already carries json tags on
// every field; these helpers add file I/O with validation for the CLI tools.

// Save writes the scenario to path as indented JSON. The scenario is
// validated first, so a document produced by Save always loads back: in
// particular NaN/Inf values — which encoding/json cannot represent and
// which Validate rejects with typed errors — never reach the file.
func Save(sc *Scenario, path string) error {
	if sc == nil {
		return fmt.Errorf("scenario: cannot save nil scenario")
	}
	if err := sc.Validate(); err != nil {
		return fmt.Errorf("scenario: refusing to save invalid scenario: %w", err)
	}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: write %s: %w", path, err)
	}
	return nil
}

// Load reads and validates a scenario from a JSON file. Invalid numeric
// fields (NaN/Inf coordinates, non-positive field sizes or power caps) are
// rejected here with *ValueError diagnostics rather than flowing silently
// into geometry and the LP.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read %s: %w", path, err)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return &sc, nil
}
