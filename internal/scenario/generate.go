package scenario

import (
	"fmt"
	"math/rand"

	"sagrelay/internal/geom"
	"sagrelay/internal/radio"
)

// Defaults for the evaluation setup of Section IV-A. Power is in abstract
// linear units; DefaultPMax is calibrated so that plotted power magnitudes
// land in the paper's ranges (see EXPERIMENTS.md).
const (
	// DefaultPMax is the maximum relay transmit power.
	DefaultPMax = 50.0
	// DefaultNMax is the ignorable-noise bound; with the default model
	// (G=1, alpha=3) it yields dmax = (PMax/NMax)^(1/3) ~= 150 units.
	DefaultNMax = 1.5e-5
	// DefaultDistMin and DefaultDistMax bound the subscribers' distance
	// requirements: "randomly distributed in [30,40]" (Section IV-A).
	DefaultDistMin = 30.0
	DefaultDistMax = 40.0
	// DefaultSNRdB is the headline SNR threshold used by most figures.
	DefaultSNRdB = -15.0
)

// GenConfig configures the uniform scenario generator of Section IV-A.
type GenConfig struct {
	// FieldSide is the playing-field side length (300, 500 or 800 in the
	// paper); the field is centred at the origin.
	FieldSide float64
	// NumSS is the number of subscriber stations, uniformly placed.
	NumSS int
	// NumBS is the number of base stations, uniformly placed.
	NumBS int
	// DistMin and DistMax bound the per-subscriber distance requirement;
	// zero values default to [30,40].
	DistMin, DistMax float64
	// SNRdB is the SNR threshold; zero defaults to -15 dB. (A literal 0 dB
	// threshold is outside the paper's parameter space, so zero-as-default
	// is safe here.)
	SNRdB float64
	// PMax is the maximum relay power; zero defaults to DefaultPMax.
	PMax float64
	// NMax is the ignorable-noise bound; zero defaults to DefaultNMax.
	NMax float64
	// Seed seeds the deterministic generator; runs with equal configs and
	// seeds produce identical scenarios.
	Seed int64
	// Model optionally overrides the radio model; the zero Model selects
	// radio.DefaultModel().
	Model radio.Model
}

func (c GenConfig) withDefaults() GenConfig {
	if c.DistMin == 0 {
		c.DistMin = DefaultDistMin
	}
	if c.DistMax == 0 {
		c.DistMax = DefaultDistMax
	}
	if c.SNRdB == 0 {
		c.SNRdB = DefaultSNRdB
	}
	if c.PMax == 0 {
		c.PMax = DefaultPMax
	}
	if c.NMax == 0 {
		c.NMax = DefaultNMax
	}
	if c.Model == (radio.Model{}) {
		c.Model = radio.DefaultModel()
	}
	return c
}

// Generate builds a random scenario: NumSS subscribers and NumBS base
// stations uniformly distributed in the square field, distance requirements
// uniform in [DistMin, DistMax], shared SNR threshold (Section IV-A).
func Generate(cfg GenConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	if cfg.FieldSide <= 0 {
		return nil, fmt.Errorf("scenario: field side %v must be positive", cfg.FieldSide)
	}
	if cfg.NumSS <= 0 {
		return nil, fmt.Errorf("scenario: NumSS %d must be positive", cfg.NumSS)
	}
	if cfg.NumBS <= 0 {
		return nil, fmt.Errorf("scenario: NumBS %d must be positive", cfg.NumBS)
	}
	if cfg.DistMin <= 0 || cfg.DistMax < cfg.DistMin {
		return nil, fmt.Errorf("scenario: invalid distance requirement range [%v,%v]", cfg.DistMin, cfg.DistMax)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	field := geom.SquareField(cfg.FieldSide)
	uniform := func() geom.Point {
		return geom.Pt(
			field.Min.X+rng.Float64()*field.Width(),
			field.Min.Y+rng.Float64()*field.Height(),
		)
	}
	sc := &Scenario{
		Field:          field,
		Model:          cfg.Model,
		PMax:           cfg.PMax,
		SNRThresholdDB: cfg.SNRdB,
		NMax:           cfg.NMax,
	}
	sc.Subscribers = make([]Subscriber, cfg.NumSS)
	for i := range sc.Subscribers {
		d := cfg.DistMin + rng.Float64()*(cfg.DistMax-cfg.DistMin)
		sc.Subscribers[i] = Subscriber{
			ID:         i,
			Pos:        uniform(),
			DistReq:    d,
			MinRxPower: sc.DeriveMinRxPower(d),
		}
	}
	sc.BaseStations = make([]BaseStation, cfg.NumBS)
	for i := range sc.BaseStations {
		sc.BaseStations[i] = BaseStation{ID: i, Pos: uniform()}
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated instance invalid: %w", err)
	}
	return sc, nil
}
