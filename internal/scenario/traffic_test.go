package scenario

import (
	"math"
	"testing"
	"testing/quick"
)

func defaultClasses() []TrafficClass {
	return []TrafficClass{
		{Name: "anchor", Rate: 8, Bandwidth: 1, Weight: 1},
		{Name: "shop", Rate: 6, Bandwidth: 1, Weight: 2},
		{Name: "kiosk", Rate: 4, Bandwidth: 1, Weight: 3},
	}
}

func TestGenerateTraffic(t *testing.T) {
	sc, err := GenerateTraffic(TrafficConfig{
		FieldSide: 500, NumSS: 20, NumBS: 2, Seed: 1,
		Classes: defaultClasses(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSS() != 20 {
		t.Fatalf("generated %d subscribers", sc.NumSS())
	}
	for _, s := range sc.Subscribers {
		if s.DistReq <= 0 || s.DistReq > 250 {
			t.Errorf("subscriber %d distance requirement %v out of range", s.ID, s.DistReq)
		}
	}
}

// Higher rate classes must produce shorter distance requirements: the
// monotonicity at the heart of the Section II-A transformation.
func TestTrafficRateDistanceMonotone(t *testing.T) {
	gen := func(rate float64) float64 {
		sc, err := GenerateTraffic(TrafficConfig{
			FieldSide: 800, NumSS: 1, NumBS: 1, Seed: 9,
			Classes: []TrafficClass{{Name: "c", Rate: rate, Bandwidth: 1, Weight: 1}},
		})
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		return sc.Subscribers[0].DistReq
	}
	d4, d8 := gen(4), gen(8)
	if d8 >= d4 {
		t.Errorf("rate 8 distance %v not below rate 4 distance %v", d8, d4)
	}
}

func TestGenerateTrafficValidation(t *testing.T) {
	base := TrafficConfig{FieldSide: 500, NumSS: 5, NumBS: 1, Classes: defaultClasses()}
	bad := []func(*TrafficConfig){
		func(c *TrafficConfig) { c.FieldSide = 0 },
		func(c *TrafficConfig) { c.NumSS = 0 },
		func(c *TrafficConfig) { c.NumBS = 0 },
		func(c *TrafficConfig) { c.Classes = nil },
		func(c *TrafficConfig) { c.Classes = []TrafficClass{{Rate: 0, Bandwidth: 1, Weight: 1}} },
		func(c *TrafficConfig) { c.Classes = []TrafficClass{{Rate: 1, Bandwidth: 0, Weight: 1}} },
		func(c *TrafficConfig) { c.Classes = []TrafficClass{{Rate: 1, Bandwidth: 1, Weight: -1}} },
		func(c *TrafficConfig) { c.Classes = []TrafficClass{{Rate: 1, Bandwidth: 1, Weight: 0}} },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateTraffic(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateTrafficDeterministic(t *testing.T) {
	cfg := TrafficConfig{FieldSide: 500, NumSS: 10, NumBS: 2, Seed: 4, Classes: defaultClasses()}
	a, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Subscribers {
		if a.Subscribers[i].DistReq != b.Subscribers[i].DistReq {
			t.Fatal("same seed, different distances")
		}
	}
}

func TestGenerateClustered(t *testing.T) {
	sc, err := GenerateClustered(ClusterConfig{
		FieldSide: 800, NumClusters: 3, NumSS: 30, NumBS: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSS() != 30 {
		t.Fatalf("generated %d subscribers", sc.NumSS())
	}
	for _, s := range sc.Subscribers {
		if !sc.Field.Contains(s.Pos, 0) {
			t.Errorf("subscriber %d at %v outside field", s.ID, s.Pos)
		}
	}
}

// Clustered workloads should have a smaller subscriber bounding spread than
// uniform ones at the same size — the whole point of the generator.
func TestClusteredTighterThanUniform(t *testing.T) {
	spread := func(sc *Scenario) float64 {
		sum := 0.0
		n := 0
		for i := range sc.Subscribers {
			for j := i + 1; j < len(sc.Subscribers); j++ {
				sum += sc.Subscribers[i].Pos.Dist(sc.Subscribers[j].Pos)
				n++
			}
		}
		return sum / float64(n)
	}
	tight, err := GenerateClustered(ClusterConfig{
		FieldSide: 800, NumClusters: 2, NumSS: 30, NumBS: 2, Seed: 11, Spread: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Generate(GenConfig{FieldSide: 800, NumSS: 30, NumBS: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Two tight clusters: most pair distances are either ~0 or the
	// inter-cluster distance; mean should still undercut uniform's ~415.
	if spread(tight) >= spread(loose) {
		t.Errorf("clustered spread %v not below uniform %v", spread(tight), spread(loose))
	}
}

func TestGenerateClusteredValidation(t *testing.T) {
	base := ClusterConfig{FieldSide: 500, NumClusters: 2, NumSS: 10, NumBS: 1}
	bad := []func(*ClusterConfig){
		func(c *ClusterConfig) { c.FieldSide = -1 },
		func(c *ClusterConfig) { c.NumClusters = 0 },
		func(c *ClusterConfig) { c.NumSS = 0 },
		func(c *ClusterConfig) { c.NumBS = 0 },
		func(c *ClusterConfig) { c.Spread = -5 },
		func(c *ClusterConfig) { c.DistMin = 50; c.DistMax = 40 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateClustered(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Property: every clustered scenario validates and respects its distance
// bounds.
func TestClusteredInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		sc, err := GenerateClustered(ClusterConfig{
			FieldSide: 600, NumClusters: 1 + n%4, NumSS: n, NumBS: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		for _, s := range sc.Subscribers {
			if s.DistReq < DefaultDistMin-1e-9 || s.DistReq > DefaultDistMax+1e-9 {
				return false
			}
			want := sc.DeriveMinRxPower(s.DistReq)
			if math.Abs(s.MinRxPower-want) > 1e-9 {
				return false
			}
		}
		return sc.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
