package scenario

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"sagrelay/internal/geom"
	"sagrelay/internal/radio"
)

func genOrFail(t *testing.T, cfg GenConfig) *Scenario {
	t.Helper()
	sc, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

func TestGenerateBasics(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 500, NumSS: 30, NumBS: 4, Seed: 1})
	if sc.NumSS() != 30 || len(sc.BaseStations) != 4 {
		t.Fatalf("sizes = %d SS, %d BS", sc.NumSS(), len(sc.BaseStations))
	}
	for _, s := range sc.Subscribers {
		if !sc.Field.Contains(s.Pos, 0) {
			t.Errorf("subscriber %d at %v outside field", s.ID, s.Pos)
		}
		if s.DistReq < DefaultDistMin || s.DistReq > DefaultDistMax {
			t.Errorf("subscriber %d distance requirement %v outside [30,40]", s.ID, s.DistReq)
		}
		want := sc.Model.ReceivedPower(sc.PMax, s.DistReq)
		if math.Abs(s.MinRxPower-want) > 1e-12 {
			t.Errorf("subscriber %d MinRxPower inconsistent: %v vs %v", s.ID, s.MinRxPower, want)
		}
	}
	for _, b := range sc.BaseStations {
		if !sc.Field.Contains(b.Pos, 0) {
			t.Errorf("base station %d outside field", b.ID)
		}
	}
	if sc.SNRThresholdDB != DefaultSNRdB {
		t.Errorf("default SNR = %v", sc.SNRThresholdDB)
	}
	if got := sc.Beta(); math.Abs(got-radio.DBToLinear(-15)) > 1e-12 {
		t.Errorf("Beta = %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{FieldSide: 500, NumSS: 10, NumBS: 2, Seed: 99}
	a := genOrFail(t, cfg)
	b := genOrFail(t, cfg)
	for i := range a.Subscribers {
		if !a.Subscribers[i].Pos.AlmostEqual(b.Subscribers[i].Pos, 0) {
			t.Fatal("same seed produced different scenarios")
		}
	}
	c := genOrFail(t, GenConfig{FieldSide: 500, NumSS: 10, NumBS: 2, Seed: 100})
	same := true
	for i := range a.Subscribers {
		if !a.Subscribers[i].Pos.AlmostEqual(c.Subscribers[i].Pos, 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical scenarios")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{FieldSide: 0, NumSS: 5, NumBS: 1},
		{FieldSide: 500, NumSS: 0, NumBS: 1},
		{FieldSide: 500, NumSS: 5, NumBS: 0},
		{FieldSide: 500, NumSS: 5, NumBS: 1, DistMin: -3, DistMax: 10},
		{FieldSide: 500, NumSS: 5, NumBS: 1, DistMin: 40, DistMax: 30},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 300, NumSS: 3, NumBS: 1, Seed: 5})
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no-subscribers", func(s *Scenario) { s.Subscribers = nil }},
		{"no-bs", func(s *Scenario) { s.BaseStations = nil }},
		{"bad-pmax", func(s *Scenario) { s.PMax = 0 }},
		{"bad-nmax", func(s *Scenario) { s.NMax = -1 }},
		{"bad-distreq", func(s *Scenario) { s.Subscribers[0].DistReq = 0 }},
		{"negative-rx", func(s *Scenario) { s.Subscribers[0].MinRxPower = -1 }},
		{"dup-ss-id", func(s *Scenario) { s.Subscribers[1].ID = s.Subscribers[0].ID }},
		{"bad-model", func(s *Scenario) { s.Model.Alpha = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := genOrFail(t, GenConfig{FieldSide: 300, NumSS: 3, NumBS: 1, Seed: 5})
			tt.mutate(c)
			if err := c.Validate(); err == nil {
				t.Error("mutated scenario validated")
			}
		})
	}
}

func TestDuplicateBSID(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 300, NumSS: 3, NumBS: 2, Seed: 5})
	sc.BaseStations[1].ID = sc.BaseStations[0].ID
	if err := sc.Validate(); err == nil {
		t.Error("duplicate BS id validated")
	}
}

func TestFeasibleCircles(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 300, NumSS: 5, NumBS: 1, Seed: 2})
	cs := sc.FeasibleCircles()
	if len(cs) != 5 {
		t.Fatalf("got %d circles", len(cs))
	}
	for i, c := range cs {
		if !c.Center.AlmostEqual(sc.Subscribers[i].Pos, 0) || c.R != sc.Subscribers[i].DistReq {
			t.Errorf("circle %d mismatch", i)
		}
	}
}

func TestMaxNoiseDistance(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 300, NumSS: 3, NumBS: 1, Seed: 1})
	d, err := sc.MaxNoiseDistance()
	if err != nil {
		t.Fatal(err)
	}
	// PMax=50, NMax=1.5e-5, alpha=3: d = (50/1.5e-5)^(1/3) ~ 149.38.
	want := math.Pow(DefaultPMax/DefaultNMax, 1.0/3)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("dmax = %v, want %v", d, want)
	}
}

func TestTierString(t *testing.T) {
	if TierCoverage.String() != "coverage" || TierConnectivity.String() != "connectivity" {
		t.Error("tier strings wrong")
	}
	if Tier(0).String() == "coverage" {
		t.Error("zero tier should not stringify as a valid tier")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 500, NumSS: 8, NumBS: 2, Seed: 77})
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := Save(sc, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSS() != sc.NumSS() || got.PMax != sc.PMax || got.SNRThresholdDB != sc.SNRThresholdDB {
		t.Error("round trip lost scalar fields")
	}
	for i := range sc.Subscribers {
		if !got.Subscribers[i].Pos.AlmostEqual(sc.Subscribers[i].Pos, 0) {
			t.Fatalf("subscriber %d position changed in round trip", i)
		}
		if got.Subscribers[i].DistReq != sc.Subscribers[i].DistReq {
			t.Fatalf("subscriber %d distance requirement changed", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	if err := Save(nil, filepath.Join(t.TempDir(), "nil.json")); err == nil {
		t.Error("nil scenario saved")
	}
}

// Property: generated subscribers always live inside the field and their
// derived MinRxPower is achievable at PMax within DistReq.
func TestGenerateInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		sc, err := Generate(GenConfig{FieldSide: 500, NumSS: n, NumBS: 2, Seed: seed})
		if err != nil {
			return false
		}
		for _, s := range sc.Subscribers {
			if !sc.Field.Contains(s.Pos, 0) {
				return false
			}
			// Received power at DistReq with PMax meets MinRxPower exactly.
			got := sc.Model.ReceivedPower(sc.PMax, s.DistReq)
			if math.Abs(got-s.MinRxPower) > 1e-9*math.Max(1, s.MinRxPower) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeriveMinRxPowerMonotone(t *testing.T) {
	sc := genOrFail(t, GenConfig{FieldSide: 300, NumSS: 3, NumBS: 1, Seed: 1})
	if sc.DeriveMinRxPower(30) <= sc.DeriveMinRxPower(40) {
		t.Error("shorter distance requirement should demand more received power")
	}
}

func TestSubscriberCircle(t *testing.T) {
	s := Subscriber{ID: 1, Pos: geom.Pt(3, 4), DistReq: 7}
	c := s.Circle()
	if !c.Center.AlmostEqual(geom.Pt(3, 4), 0) || c.R != 7 {
		t.Errorf("Circle = %v", c)
	}
}
