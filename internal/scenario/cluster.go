package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"sagrelay/internal/geom"
	"sagrelay/internal/radio"
)

// ClusterConfig generates non-uniform workloads: subscribers concentrated
// in Gaussian clusters (retail strips, malls, town centres — the paper's
// motivating deployments) rather than uniformly spread. Clustered fields
// are where Zone Partition (Alg. 2) produces genuinely independent zones.
type ClusterConfig struct {
	// FieldSide is the square field side (centred at the origin).
	FieldSide float64
	// NumClusters is the number of Gaussian clusters; cluster centres are
	// uniform in the inner 80% of the field.
	NumClusters int
	// NumSS subscribers are distributed round-robin over the clusters.
	NumSS int
	// Spread is the cluster standard deviation; 0 means FieldSide/20.
	Spread float64
	// NumBS base stations are placed uniformly.
	NumBS int
	// DistMin and DistMax bound distance requirements; zeros mean [30,40].
	DistMin, DistMax float64
	// SNRdB, PMax, NMax and Seed mirror GenConfig (zeros take defaults).
	SNRdB float64
	PMax  float64
	NMax  float64
	Seed  int64
}

// GenerateClustered builds a clustered scenario.
func GenerateClustered(cfg ClusterConfig) (*Scenario, error) {
	if cfg.FieldSide <= 0 {
		return nil, fmt.Errorf("scenario: field side %v must be positive", cfg.FieldSide)
	}
	if cfg.NumClusters <= 0 {
		return nil, fmt.Errorf("scenario: NumClusters %d must be positive", cfg.NumClusters)
	}
	if cfg.NumSS <= 0 || cfg.NumBS <= 0 {
		return nil, fmt.Errorf("scenario: NumSS=%d and NumBS=%d must be positive", cfg.NumSS, cfg.NumBS)
	}
	if cfg.Spread == 0 {
		cfg.Spread = cfg.FieldSide / 20
	}
	if cfg.Spread <= 0 {
		return nil, fmt.Errorf("scenario: spread %v must be positive", cfg.Spread)
	}
	if cfg.DistMin == 0 {
		cfg.DistMin = DefaultDistMin
	}
	if cfg.DistMax == 0 {
		cfg.DistMax = DefaultDistMax
	}
	if cfg.DistMin <= 0 || cfg.DistMax < cfg.DistMin {
		return nil, fmt.Errorf("scenario: invalid distance range [%v,%v]", cfg.DistMin, cfg.DistMax)
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = DefaultSNRdB
	}
	if cfg.PMax == 0 {
		cfg.PMax = DefaultPMax
	}
	if cfg.NMax == 0 {
		cfg.NMax = DefaultNMax
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	field := geom.SquareField(cfg.FieldSide)
	inner := field.Expand(-cfg.FieldSide * 0.1)
	centers := make([]geom.Point, cfg.NumClusters)
	for i := range centers {
		centers[i] = geom.Pt(
			inner.Min.X+rng.Float64()*inner.Width(),
			inner.Min.Y+rng.Float64()*inner.Height(),
		)
	}
	sc := &Scenario{
		Field:          field,
		Model:          radio.DefaultModel(),
		PMax:           cfg.PMax,
		SNRThresholdDB: cfg.SNRdB,
		NMax:           cfg.NMax,
	}
	for i := 0; i < cfg.NumSS; i++ {
		c := centers[i%cfg.NumClusters]
		// Box-Muller Gaussian offset, clamped into the field.
		u1, u2 := rng.Float64(), rng.Float64()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		r := cfg.Spread * math.Sqrt(-2*math.Log(u1))
		pos := field.Clamp(c.Add(geom.Pt(
			r*math.Cos(2*math.Pi*u2),
			r*math.Sin(2*math.Pi*u2),
		)))
		d := cfg.DistMin + rng.Float64()*(cfg.DistMax-cfg.DistMin)
		sc.Subscribers = append(sc.Subscribers, Subscriber{
			ID:         i,
			Pos:        pos,
			DistReq:    d,
			MinRxPower: sc.DeriveMinRxPower(d),
		})
	}
	for i := 0; i < cfg.NumBS; i++ {
		sc.BaseStations = append(sc.BaseStations, BaseStation{
			ID: i,
			Pos: geom.Pt(
				field.Min.X+rng.Float64()*field.Width(),
				field.Min.Y+rng.Float64()*field.Height(),
			),
		})
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated clustered instance invalid: %w", err)
	}
	return sc, nil
}
