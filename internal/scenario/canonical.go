package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// Canonical encoding — a deterministic byte serialization of a scenario for
// content addressing. Two Scenario values that would drive the solvers
// identically produce identical bytes, and any semantic difference changes
// them. The solve service hashes this (together with its canonical options
// encoding) with SHA-256 to key its result cache.
//
// Properties the encoding guarantees:
//
//   - Floats are written as exact hexadecimal float64 literals
//     (strconv 'x'), so every distinct bit pattern is distinct text and no
//     decimal shortening can collide or drift across Go versions.
//   - Entity order is preserved, not sorted: subscriber and base-station
//     order is part of the problem statement (zone construction and result
//     indexing follow it), so reordering is a different instance.
//   - Every field is prefixed by a label and terminated by a newline, so
//     adjacent fields can never re-associate ("ab","c" vs "a","bc").
//   - A leading format version tag makes future encoding changes safe: a
//     new version invalidates old cache keys instead of silently aliasing
//     them.
//
// The encoding intentionally covers only solver-relevant state. IDs are
// included (they name entities in result documents); nothing else exists
// on the types today.

// canonicalVersion tags the encoding format; bump it whenever the byte
// layout or the covered field set changes.
const canonicalVersion = "sagsc/1"

// canonicalBuf accumulates labeled fields of the canonical form.
type canonicalBuf struct{ bytes.Buffer }

func (b *canonicalBuf) field(label string, vals ...float64) {
	b.WriteString(label)
	for _, v := range vals {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	b.WriteByte('\n')
}

func (b *canonicalBuf) count(label string, n int) {
	b.WriteString(label)
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(n))
	b.WriteByte('\n')
}

// CanonicalBytes returns the canonical byte encoding of the scenario.
func (sc *Scenario) CanonicalBytes() []byte {
	var b canonicalBuf
	b.WriteString(canonicalVersion)
	b.WriteByte('\n')
	b.field("field", sc.Field.Min.X, sc.Field.Min.Y, sc.Field.Max.X, sc.Field.Max.Y)
	b.field("model", sc.Model.Gt, sc.Model.Gr, sc.Model.Ht, sc.Model.Hr, sc.Model.Alpha, sc.Model.MinDist)
	b.field("pmax", sc.PMax)
	b.field("snrdb", sc.SNRThresholdDB)
	b.field("nmax", sc.NMax)
	b.count("ss", len(sc.Subscribers))
	for _, s := range sc.Subscribers {
		b.count("id", s.ID)
		b.field("s", s.Pos.X, s.Pos.Y, s.DistReq, s.MinRxPower)
	}
	b.count("bs", len(sc.BaseStations))
	for _, bs := range sc.BaseStations {
		b.count("id", bs.ID)
		b.field("b", bs.Pos.X, bs.Pos.Y)
	}
	return b.Bytes()
}

// CanonicalHash returns the SHA-256 of CanonicalBytes as lowercase hex —
// the scenario's content address.
func (sc *Scenario) CanonicalHash() string {
	sum := sha256.Sum256(sc.CanonicalBytes())
	return hex.EncodeToString(sum[:])
}
