package scenario

import (
	"fmt"
	"math/rand"

	"sagrelay/internal/geom"
	"sagrelay/internal/radio"
)

// TrafficClass describes a category of subscriber demand in physical terms:
// a data-rate request over a channel. Section II-A of the paper transforms
// such requests into distance requirements ("the capacity requests of SS
// are equivalent to distance requests"); this type performs that
// transformation explicitly so workloads can be specified the way the
// paper's motivation describes them (anchor stores, restaurants, gas
// stations with different demands).
type TrafficClass struct {
	// Name labels the class (diagnostics only).
	Name string
	// Rate is the requested data rate (same unit family as Bandwidth, e.g.
	// Mbps over MHz).
	Rate float64
	// Bandwidth is the channel bandwidth backing the Shannon capacity.
	Bandwidth float64
	// Weight is the relative frequency of the class when sampling.
	Weight float64
}

// TrafficConfig generates a scenario from rate-based demand classes.
type TrafficConfig struct {
	// FieldSide, NumSS, NumBS, Seed, PMax, NMax, SNRdB and Model mirror
	// GenConfig.
	FieldSide float64
	NumSS     int
	NumBS     int
	Seed      int64
	PMax      float64
	NMax      float64
	SNRdB     float64
	Model     radio.Model
	// Classes are the demand classes to sample from (Weight-proportional).
	Classes []TrafficClass
	// NoiseFloor is the thermal noise N0 at the receivers used by the
	// capacity-to-distance transformation; 0 means 1e-6.
	NoiseFloor float64
}

// GenerateTraffic builds a scenario whose distance requirements are derived
// from sampled traffic classes via the two-ray model and Shannon capacity
// (Section II-A): d_i is the largest distance at which a PMax transmitter
// still delivers the class's rate.
func GenerateTraffic(cfg TrafficConfig) (*Scenario, error) {
	if cfg.FieldSide <= 0 {
		return nil, fmt.Errorf("scenario: field side %v must be positive", cfg.FieldSide)
	}
	if cfg.NumSS <= 0 || cfg.NumBS <= 0 {
		return nil, fmt.Errorf("scenario: NumSS=%d and NumBS=%d must be positive", cfg.NumSS, cfg.NumBS)
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("scenario: no traffic classes")
	}
	if cfg.PMax == 0 {
		cfg.PMax = DefaultPMax
	}
	if cfg.NMax == 0 {
		cfg.NMax = DefaultNMax
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = DefaultSNRdB
	}
	if cfg.Model == (radio.Model{}) {
		cfg.Model = radio.DefaultModel()
	}
	if cfg.NoiseFloor <= 0 {
		cfg.NoiseFloor = 1e-6
	}
	totalW := 0.0
	for i, c := range cfg.Classes {
		if c.Rate <= 0 || c.Bandwidth <= 0 {
			return nil, fmt.Errorf("scenario: class %d (%s) needs positive rate and bandwidth", i, c.Name)
		}
		if c.Weight < 0 {
			return nil, fmt.Errorf("scenario: class %d (%s) has negative weight", i, c.Name)
		}
		totalW += c.Weight
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("scenario: class weights sum to %v", totalW)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	field := geom.SquareField(cfg.FieldSide)
	uniform := func() geom.Point {
		return geom.Pt(
			field.Min.X+rng.Float64()*field.Width(),
			field.Min.Y+rng.Float64()*field.Height(),
		)
	}
	pick := func() TrafficClass {
		r := rng.Float64() * totalW
		for _, c := range cfg.Classes {
			if r < c.Weight {
				return c
			}
			r -= c.Weight
		}
		return cfg.Classes[len(cfg.Classes)-1]
	}
	sc := &Scenario{
		Field:          field,
		Model:          cfg.Model,
		PMax:           cfg.PMax,
		SNRThresholdDB: cfg.SNRdB,
		NMax:           cfg.NMax,
	}
	for i := 0; i < cfg.NumSS; i++ {
		class := pick()
		d, err := cfg.Model.FeasibleDistance(class.Rate, class.Bandwidth, cfg.NoiseFloor, cfg.PMax)
		if err != nil {
			return nil, fmt.Errorf("scenario: class %s: %w", class.Name, err)
		}
		// Clamp absurd ranges: a trivial rate would otherwise cover the
		// whole field and make coverage degenerate.
		if max := cfg.FieldSide / 2; d > max {
			d = max
		}
		sc.Subscribers = append(sc.Subscribers, Subscriber{
			ID:         i,
			Pos:        uniform(),
			DistReq:    d,
			MinRxPower: sc.DeriveMinRxPower(d),
		})
	}
	for i := 0; i < cfg.NumBS; i++ {
		sc.BaseStations = append(sc.BaseStations, BaseStation{ID: i, Pos: uniform()})
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated traffic instance invalid: %w", err)
	}
	return sc, nil
}
