// Package scenario models the wireless relay network instances of the
// paper: static subscriber stations (SS) with distance (capacity) and SNR
// requirements, base stations (BS), the playing field, and the radio model.
// It also provides the seeded uniform generator used by the evaluation
// (Section IV-A) and JSON serialization for the CLI tools.
package scenario

import (
	"errors"
	"fmt"
	"math"

	"sagrelay/internal/geom"
	"sagrelay/internal/radio"
)

// ErrNonFinite reports a NaN or ±Inf where a finite number is required.
// NaN coordinates poison every geometric predicate downstream (distance
// comparisons silently evaluate false), so they are rejected at the edge.
var ErrNonFinite = errors.New("scenario: non-finite value")

// ErrNonPositive reports a zero or negative value where a strictly
// positive one is required (field extents, distance requirements, power
// caps).
var ErrNonPositive = errors.New("scenario: non-positive value")

// ErrCoincident reports two same-type entities at the exact same position.
// Coincident subscribers create zero-area feasible-circle intersections and
// duplicate rows in the coverage formulations; coincident base stations make
// nearest-BS attachment ambiguous. Both are degenerate inputs, so they are
// rejected at the edge with a typed error instead of ill-conditioning the
// geometry downstream.
var ErrCoincident = errors.New("scenario: coincident entities")

// CoincidentError identifies the colliding pair. It wraps ErrCoincident so
// errors.Is classifies the failure while Kind and the two IDs name the
// offenders for diagnostics.
type CoincidentError struct {
	// Kind is "subscriber" or "base_station".
	Kind string
	// ID1, ID2 are the IDs of the colliding entities (ID1 appears first).
	ID1, ID2 int
}

func (e *CoincidentError) Error() string {
	return fmt.Sprintf("%v: %ss %d and %d share a position", ErrCoincident, e.Kind, e.ID1, e.ID2)
}

// Unwrap exposes the category sentinel to errors.Is.
func (e *CoincidentError) Unwrap() error { return ErrCoincident }

// ValueError pinpoints an invalid numeric field in a scenario document. It
// wraps ErrNonFinite or ErrNonPositive, so errors.Is classifies the
// failure while the Field path names the offending entry for diagnostics.
type ValueError struct {
	// Field is the path of the offending field, e.g. "subscriber[3].pos.x".
	Field string
	// Value is the rejected number.
	Value float64
	// Err is the category sentinel: ErrNonFinite or ErrNonPositive.
	Err error
}

func (e *ValueError) Error() string {
	return fmt.Sprintf("%v: %s = %v", e.Err, e.Field, e.Value)
}

// Unwrap exposes the category sentinel to errors.Is.
func (e *ValueError) Unwrap() error { return e.Err }

// finite returns a ValueError when v is NaN or infinite.
func finite(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &ValueError{Field: field, Value: v, Err: ErrNonFinite}
	}
	return nil
}

// positive returns a ValueError when v is non-finite or <= 0.
func positive(field string, v float64) error {
	if err := finite(field, v); err != nil {
		return err
	}
	if v <= 0 {
		return &ValueError{Field: field, Value: v, Err: ErrNonPositive}
	}
	return nil
}

// Subscriber is a static subscriber station (SS): a fixed user with a large
// traffic demand (the paper's examples: retail stores, gas stations). Its
// data-rate request has already been transformed into a distance requirement
// DistReq = d_i per Section II-A; MinRxPower is P_ss^i, the minimum received
// power that sustains the requested rate.
type Subscriber struct {
	ID  int        `json:"id"`
	Pos geom.Point `json:"pos"`
	// DistReq is the feasible coverage distance d_i: a relay provides enough
	// access-link capacity iff it is within DistReq of the subscriber.
	DistReq float64 `json:"dist_req"`
	// MinRxPower is P_ss^i, the minimum received power (linear units)
	// required to sustain the subscriber's data rate.
	MinRxPower float64 `json:"min_rx_power"`
}

// Circle returns the subscriber's feasible coverage circle c_i.
func (s Subscriber) Circle() geom.Circle { return geom.C(s.Pos, s.DistReq) }

// BaseStation is a macro base station; upper-tier relay trees terminate at
// base stations.
type BaseStation struct {
	ID  int        `json:"id"`
	Pos geom.Point `json:"pos"`
}

// Tier identifies which tier a placed relay serves.
type Tier int

// Relay tiers. (Enums start at 1 so the zero value is invalid.)
const (
	// TierCoverage relays cover subscribers on the lower tier.
	TierCoverage Tier = iota + 1
	// TierConnectivity relays forward traffic between coverage relays and
	// base stations on the upper tier.
	TierConnectivity
)

// String renders the tier.
func (t Tier) String() string {
	switch t {
	case TierCoverage:
		return "coverage"
	case TierConnectivity:
		return "connectivity"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Relay is a placed relay station with its allocated transmit power.
type Relay struct {
	ID    int        `json:"id"`
	Pos   geom.Point `json:"pos"`
	Power float64    `json:"power"`
	Tier  Tier       `json:"tier"`
}

// Scenario is a full problem instance for the SAG problem (Definition 3).
type Scenario struct {
	// Field is the playing field; stations are placed inside it.
	Field geom.Rect `json:"field"`
	// Subscribers are the SSs to cover.
	Subscribers []Subscriber `json:"subscribers"`
	// BaseStations are the BSs terminating upper-tier trees.
	BaseStations []BaseStation `json:"base_stations"`
	// Model is the two-ray propagation model.
	Model radio.Model `json:"model"`
	// PMax is the maximum relay transmission power (Definition 3 allocates
	// powers in [0, PMax]).
	PMax float64 `json:"p_max"`
	// SNRThresholdDB is beta in dB; every subscriber shares the same
	// threshold (Section II-A assumption).
	SNRThresholdDB float64 `json:"snr_threshold_db"`
	// NMax is the maximum ignorable noise for Zone Partition (Alg. 2).
	NMax float64 `json:"n_max"`
}

// Beta returns the linear SNR threshold.
func (sc *Scenario) Beta() float64 { return radio.DBToLinear(sc.SNRThresholdDB) }

// NumSS returns the number of subscribers.
func (sc *Scenario) NumSS() int { return len(sc.Subscribers) }

// FeasibleCircles returns every subscriber's feasible coverage circle, in
// subscriber order.
func (sc *Scenario) FeasibleCircles() []geom.Circle {
	cs := make([]geom.Circle, len(sc.Subscribers))
	for i, s := range sc.Subscribers {
		cs[i] = s.Circle()
	}
	return cs
}

// Validate checks structural invariants of the instance: positive power
// caps and field extents, finite coordinates everywhere, positive distance
// requirements, unique IDs, and no two same-type entities at the same
// position (*CoincidentError wrapping ErrCoincident). Numeric failures are
// *ValueError values
// wrapping ErrNonFinite / ErrNonPositive, so loaders can classify bad
// input without string matching; NaN and Inf are rejected here rather than
// being allowed to flow into geometry and the LP, where they would corrupt
// results silently (every comparison against NaN is false).
func (sc *Scenario) Validate() error {
	if err := sc.Model.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	for _, check := range []error{
		finite("field.min.x", sc.Field.Min.X),
		finite("field.min.y", sc.Field.Min.Y),
		finite("field.max.x", sc.Field.Max.X),
		finite("field.max.y", sc.Field.Max.Y),
		positive("field.width", sc.Field.Width()),
		positive("field.height", sc.Field.Height()),
		positive("p_max", sc.PMax),
		positive("n_max", sc.NMax),
		finite("snr_threshold_db", sc.SNRThresholdDB),
	} {
		if check != nil {
			return check
		}
	}
	if len(sc.Subscribers) == 0 {
		return errors.New("scenario: no subscribers")
	}
	if len(sc.BaseStations) == 0 {
		return errors.New("scenario: no base stations")
	}
	seen := make(map[int]bool, len(sc.Subscribers))
	atPos := make(map[geom.Point]int, len(sc.Subscribers))
	for i, s := range sc.Subscribers {
		for _, check := range []error{
			finite(fmt.Sprintf("subscriber[%d].pos.x", i), s.Pos.X),
			finite(fmt.Sprintf("subscriber[%d].pos.y", i), s.Pos.Y),
			positive(fmt.Sprintf("subscriber[%d].dist_req", i), s.DistReq),
			finite(fmt.Sprintf("subscriber[%d].min_rx_power", i), s.MinRxPower),
		} {
			if check != nil {
				return check
			}
		}
		if s.MinRxPower < 0 {
			return fmt.Errorf("scenario: subscriber %d has negative MinRxPower %v", s.ID, s.MinRxPower)
		}
		if seen[s.ID] {
			return fmt.Errorf("scenario: duplicate subscriber id %d", s.ID)
		}
		seen[s.ID] = true
		if j, dup := atPos[s.Pos]; dup {
			return &CoincidentError{Kind: "subscriber", ID1: sc.Subscribers[j].ID, ID2: s.ID}
		}
		atPos[s.Pos] = i
	}
	seenBS := make(map[int]bool, len(sc.BaseStations))
	atPosBS := make(map[geom.Point]int, len(sc.BaseStations))
	for i, b := range sc.BaseStations {
		for _, check := range []error{
			finite(fmt.Sprintf("base_station[%d].pos.x", i), b.Pos.X),
			finite(fmt.Sprintf("base_station[%d].pos.y", i), b.Pos.Y),
		} {
			if check != nil {
				return check
			}
		}
		if seenBS[b.ID] {
			return fmt.Errorf("scenario: duplicate base station id %d", b.ID)
		}
		seenBS[b.ID] = true
		if j, dup := atPosBS[b.Pos]; dup {
			return &CoincidentError{Kind: "base_station", ID1: sc.BaseStations[j].ID, ID2: b.ID}
		}
		atPosBS[b.Pos] = i
	}
	return nil
}

// MaxNoiseDistance returns dmax of Zone Partition: the distance beyond which
// a PMax transmitter's contribution is at most NMax (Alg. 2, Step 1).
func (sc *Scenario) MaxNoiseDistance() (float64, error) {
	d, err := sc.Model.IgnorableNoiseDistance(sc.PMax, sc.NMax)
	if err != nil {
		return 0, fmt.Errorf("scenario: %w", err)
	}
	return d, nil
}

// DeriveMinRxPower returns the P_ss value consistent with a distance
// requirement d: the power received at distance exactly d from a PMax
// transmitter. Using it makes "within distance d at max power" and
// "received power >= P_ss" the same condition, which is how the paper's
// capacity-to-distance transformation is defined.
func (sc *Scenario) DeriveMinRxPower(d float64) float64 {
	return sc.Model.ReceivedPower(sc.PMax, d)
}
