package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func testScenario(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Generate(GenConfig{FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

func TestCanonicalBytesDeterministic(t *testing.T) {
	sc := testScenario(t)
	a := sc.CanonicalBytes()
	b := sc.CanonicalBytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical encoding not deterministic")
	}
	// An equal scenario built independently (same generator inputs) must
	// encode identically.
	sc2 := testScenario(t)
	if !bytes.Equal(a, sc2.CanonicalBytes()) {
		t.Fatalf("equal scenarios produced different canonical bytes")
	}
	if sc.CanonicalHash() != sc2.CanonicalHash() {
		t.Fatalf("equal scenarios produced different hashes")
	}
}

func TestCanonicalBytesSensitivity(t *testing.T) {
	base := testScenario(t)
	baseHash := base.CanonicalHash()

	mutations := map[string]func(*Scenario){
		"pmax":        func(sc *Scenario) { sc.PMax *= 1.0000001 },
		"snr":         func(sc *Scenario) { sc.SNRThresholdDB += 1e-9 },
		"subscriber":  func(sc *Scenario) { sc.Subscribers[0].Pos.X += 1e-9 },
		"distreq":     func(sc *Scenario) { sc.Subscribers[3].DistReq += 1e-9 },
		"basestation": func(sc *Scenario) { sc.BaseStations[1].Pos.Y -= 1e-9 },
		"field":       func(sc *Scenario) { sc.Field.Max.X += 1e-9 },
		"model":       func(sc *Scenario) { sc.Model.Alpha += 1e-12 },
		"ss-order": func(sc *Scenario) {
			sc.Subscribers[0], sc.Subscribers[1] = sc.Subscribers[1], sc.Subscribers[0]
		},
		"drop-ss": func(sc *Scenario) { sc.Subscribers = sc.Subscribers[:len(sc.Subscribers)-1] },
	}
	for name, mutate := range mutations {
		sc := testScenario(t)
		mutate(sc)
		if sc.CanonicalHash() == baseHash {
			t.Errorf("%s: mutation did not change the canonical hash", name)
		}
	}
}

func TestCanonicalBytesExactFloats(t *testing.T) {
	// Two floats that round-trip identically through short decimal printing
	// must still be distinguished: the encoding uses exact hex floats.
	a := testScenario(t)
	b := testScenario(t)
	b.Subscribers[0].Pos.X = math.Nextafter(a.Subscribers[0].Pos.X, math.Inf(1))
	if bytes.Equal(a.CanonicalBytes(), b.CanonicalBytes()) {
		t.Fatalf("adjacent float64 values encoded identically")
	}
}

func TestCanonicalBytesNegativeZero(t *testing.T) {
	// +0 and -0 compare equal as float64 but are different bit patterns, and
	// the encoding promises distinct text per bit pattern: a scenario built
	// with -0 coordinates must not alias one built with +0.
	a := testScenario(t)
	b := testScenario(t)
	a.Subscribers[0].Pos.X = 0
	b.Subscribers[0].Pos.X = math.Copysign(0, -1)
	if a.Subscribers[0].Pos.X != b.Subscribers[0].Pos.X {
		t.Fatal("test premise broken: +0 != -0")
	}
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Fatal("-0 and +0 coordinates produced the same canonical hash")
	}
}

func TestCanonicalBytesSubnormals(t *testing.T) {
	// Subnormal floats sit where decimal printing is most likely to lose
	// bits; the hex encoding must keep adjacent subnormals distinct, and a
	// JSON round-trip of the scenario must preserve the hash exactly.
	sc := testScenario(t)
	sc.Subscribers[0].DistReq = math.SmallestNonzeroFloat64
	neighbor := testScenario(t)
	neighbor.Subscribers[0].DistReq = math.Nextafter(math.SmallestNonzeroFloat64, 1)
	if sc.CanonicalHash() == neighbor.CanonicalHash() {
		t.Fatal("adjacent subnormals produced the same canonical hash")
	}

	blob, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.CanonicalHash() != sc.CanonicalHash() {
		t.Fatal("JSON round-trip changed the canonical hash of a subnormal scenario")
	}
}

func TestCanonicalBytesEmptyEntityLists(t *testing.T) {
	// Degenerate scenarios still need unambiguous encodings: no subscribers,
	// no base stations, and neither must all hash apart (the count prefix
	// carries the information), while nil and empty slices must agree.
	base := testScenario(t)
	noSS := testScenario(t)
	noSS.Subscribers = nil
	noBS := testScenario(t)
	noBS.BaseStations = nil
	empty := testScenario(t)
	empty.Subscribers = nil
	empty.BaseStations = nil

	hashes := map[string]bool{
		base.CanonicalHash():  true,
		noSS.CanonicalHash():  true,
		noBS.CanonicalHash():  true,
		empty.CanonicalHash(): true,
	}
	if len(hashes) != 4 {
		t.Fatalf("empty-list variants collided: %d distinct hashes, want 4", len(hashes))
	}

	emptySlices := testScenario(t)
	emptySlices.Subscribers = []Subscriber{}
	emptySlices.BaseStations = []BaseStation{}
	if emptySlices.CanonicalHash() != empty.CanonicalHash() {
		t.Fatal("nil and empty entity slices encoded differently")
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	cases := map[string]func(*Scenario){
		"nan-ss-x":    func(sc *Scenario) { sc.Subscribers[2].Pos.X = math.NaN() },
		"inf-ss-y":    func(sc *Scenario) { sc.Subscribers[0].Pos.Y = math.Inf(1) },
		"nan-bs":      func(sc *Scenario) { sc.BaseStations[0].Pos.X = math.NaN() },
		"nan-distreq": func(sc *Scenario) { sc.Subscribers[1].DistReq = math.NaN() },
		"inf-pmax":    func(sc *Scenario) { sc.PMax = math.Inf(1) },
		"nan-snr":     func(sc *Scenario) { sc.SNRThresholdDB = math.NaN() },
		"nan-field":   func(sc *Scenario) { sc.Field.Min.X = math.NaN() },
	}
	for name, mutate := range cases {
		sc := testScenario(t)
		mutate(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a non-finite value", name)
			continue
		}
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: error %v is not ErrNonFinite", name, err)
		}
		var ve *ValueError
		if !errors.As(err, &ve) || ve.Field == "" {
			t.Errorf("%s: error %v lacks a field path", name, err)
		}
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	cases := map[string]func(*Scenario){
		"empty-field-w": func(sc *Scenario) { sc.Field.Max.X = sc.Field.Min.X },
		"neg-field-h":   func(sc *Scenario) { sc.Field.Max.Y = sc.Field.Min.Y - 5 },
		"zero-pmax":     func(sc *Scenario) { sc.PMax = 0 },
		"zero-distreq":  func(sc *Scenario) { sc.Subscribers[0].DistReq = 0 },
	}
	for name, mutate := range cases {
		sc := testScenario(t)
		mutate(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a non-positive value", name)
			continue
		}
		if !errors.Is(err, ErrNonPositive) {
			t.Errorf("%s: error %v is not ErrNonPositive", name, err)
		}
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(t)
	good := filepath.Join(dir, "good.json")
	if err := Save(sc, good); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Corrupt the document on disk: a zero-width field must be rejected at
	// load time with the typed error.
	flat := *sc
	flat.Field.Max.X = flat.Field.Min.X
	bad, err := json.Marshal(&flat)
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); !errors.Is(err, ErrNonPositive) {
		t.Fatalf("Load of zero-size field: got %v, want ErrNonPositive", err)
	}

	// Save must refuse a scenario that cannot round-trip.
	sc.Subscribers[0].Pos.X = math.NaN()
	if err := Save(sc, filepath.Join(dir, "nan.json")); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Save with NaN: got %v, want ErrNonFinite", err)
	}
}
