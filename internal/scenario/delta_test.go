package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"sagrelay/internal/geom"
)

func deltaTestScenario(t *testing.T, seed int64, numSS int) *Scenario {
	t.Helper()
	sc, err := Generate(GenConfig{FieldSide: 400, NumSS: numSS, NumBS: 2, SNRdB: -15, Seed: seed})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

func TestDeltaJSONRoundTrip(t *testing.T) {
	d := &Delta{
		Version: DeltaVersion,
		Ops: []DeltaOp{
			{Op: OpAddSS, ID: 99, Pos: &geom.Point{X: 10, Y: 20}, DistReq: 30},
			{Op: OpMoveSS, ID: 0, Pos: &geom.Point{X: 1, Y: 2}},
			{Op: OpRemoveSS, ID: 1},
			{Op: OpTrafficSS, ID: 2, DistReq: 25},
			{Op: OpAddBS, ID: 7, Pos: &geom.Point{X: 5, Y: 5}},
			{Op: OpRemoveBS, ID: 1},
		},
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDelta(data)
	if err != nil {
		t.Fatalf("ParseDelta: %v", err)
	}
	data2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", data, data2)
	}
}

func TestDeltaValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
	}{
		{"bad version", Delta{Version: "sagdelta/0"}},
		{"unknown op", Delta{Version: DeltaVersion, Ops: []DeltaOp{{Op: "teleport_ss", ID: 1}}}},
		{"add_ss missing pos", Delta{Version: DeltaVersion, Ops: []DeltaOp{{Op: OpAddSS, ID: 1, DistReq: 10}}}},
		{"add_ss bad dist", Delta{Version: DeltaVersion, Ops: []DeltaOp{{Op: OpAddSS, ID: 1, Pos: &geom.Point{}, DistReq: -3}}}},
		{"move_ss missing pos", Delta{Version: DeltaVersion, Ops: []DeltaOp{{Op: OpMoveSS, ID: 1}}}},
		{"traffic_ss empty", Delta{Version: DeltaVersion, Ops: []DeltaOp{{Op: OpTrafficSS, ID: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.d.Validate()
			if !errors.Is(err, ErrBadDelta) {
				t.Fatalf("err = %v, want ErrBadDelta", err)
			}
			var de *DeltaError
			if !errors.As(err, &de) {
				t.Fatalf("err %T is not *DeltaError", err)
			}
		})
	}
}

func TestDeltaApplyUnknownEntity(t *testing.T) {
	sc := deltaTestScenario(t, 1, 8)
	cases := []DeltaOp{
		{Op: OpMoveSS, ID: 9999, Pos: &geom.Point{X: 1, Y: 1}},
		{Op: OpRemoveSS, ID: 9999},
		{Op: OpTrafficSS, ID: 9999, DistReq: 20},
		{Op: OpRemoveBS, ID: 9999},
		{Op: OpAddSS, ID: sc.Subscribers[0].ID, Pos: &geom.Point{X: 1, Y: 1}, DistReq: 20}, // duplicate ID
		{Op: OpAddBS, ID: sc.BaseStations[0].ID, Pos: &geom.Point{X: 2, Y: 2}},
	}
	for _, op := range cases {
		t.Run(op.Op, func(t *testing.T) {
			d := &Delta{Version: DeltaVersion, Ops: []DeltaOp{op}}
			if _, err := d.Apply(sc); !errors.Is(err, ErrUnknownEntity) {
				t.Fatalf("err = %v, want ErrUnknownEntity", err)
			}
		})
	}
}

func TestDeltaApplyPureAndOrdered(t *testing.T) {
	sc := deltaTestScenario(t, 2, 8)
	before := string(sc.CanonicalBytes())
	d := &Delta{Version: DeltaVersion, Ops: []DeltaOp{
		{Op: OpAddSS, ID: 500, Pos: &geom.Point{X: 50, Y: 60}, DistReq: 25},
		{Op: OpMoveSS, ID: 500, Pos: &geom.Point{X: 70, Y: 80}}, // addresses the op-1 add
		{Op: OpRemoveSS, ID: sc.Subscribers[0].ID},
	}}
	mut, err := d.Apply(sc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := string(sc.CanonicalBytes()); got != before {
		t.Fatal("Apply modified the base scenario")
	}
	j := mut.findSS(500)
	if j < 0 {
		t.Fatal("added subscriber missing")
	}
	if mut.Subscribers[j].Pos != (geom.Point{X: 70, Y: 80}) {
		t.Fatalf("ops not applied in order: pos = %v", mut.Subscribers[j].Pos)
	}
	if mut.Subscribers[j].MinRxPower <= 0 {
		t.Fatalf("add_ss did not derive min_rx_power: %v", mut.Subscribers[j].MinRxPower)
	}
	if mut.findSS(sc.Subscribers[0].ID) >= 0 {
		t.Fatal("removed subscriber still present")
	}
}

func TestValidateRejectsCoincident(t *testing.T) {
	sc := deltaTestScenario(t, 3, 6)
	sc.Subscribers[2].Pos = sc.Subscribers[4].Pos
	err := sc.Validate()
	if !errors.Is(err, ErrCoincident) {
		t.Fatalf("err = %v, want ErrCoincident", err)
	}
	var ce *CoincidentError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not *CoincidentError", err)
	}
	if ce.Kind != "subscriber" || ce.ID1 != sc.Subscribers[2].ID || ce.ID2 != sc.Subscribers[4].ID {
		t.Fatalf("CoincidentError = %+v", ce)
	}

	sc2 := deltaTestScenario(t, 3, 6)
	sc2.BaseStations[0].Pos = sc2.BaseStations[1].Pos
	if err := sc2.Validate(); !errors.Is(err, ErrCoincident) {
		t.Fatalf("bs err = %v, want ErrCoincident", err)
	}

	// A subscriber and a base station may share a position: the coincident
	// rule is same-type only.
	sc3 := deltaTestScenario(t, 3, 6)
	sc3.Subscribers[0].Pos = sc3.BaseStations[0].Pos
	if err := sc3.Validate(); err != nil {
		t.Fatalf("cross-type coincidence rejected: %v", err)
	}

	// Deltas surface it too: moving one subscriber onto another fails.
	sc4 := deltaTestScenario(t, 3, 6)
	d := &Delta{Version: DeltaVersion, Ops: []DeltaOp{
		{Op: OpMoveSS, ID: sc4.Subscribers[0].ID, Pos: &sc4.Subscribers[1].Pos},
	}}
	if _, err := d.Apply(sc4); !errors.Is(err, ErrCoincident) {
		t.Fatalf("delta err = %v, want ErrCoincident", err)
	}
}

// TestDeltaApplyHashConsistency fuzzes random valid deltas: applying the
// same delta to the same base twice must produce identical canonical bytes,
// and a delta that changes any subscriber must change the canonical hash.
func TestDeltaApplyHashConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := deltaTestScenario(t, 4, 12)
	nextID := 1000
	for round := 0; round < 50; round++ {
		d := randomDelta(rng, sc, &nextID)
		m1, err1 := d.Apply(sc)
		m2, err2 := d.Apply(sc)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round %d: nondeterministic error: %v vs %v", round, err1, err2)
		}
		if err1 != nil {
			continue // e.g. a random move landed on another subscriber
		}
		if m1.CanonicalHash() != m2.CanonicalHash() {
			t.Fatalf("round %d: same delta, different hashes", round)
		}
		if len(d.Ops) > 0 && m1.CanonicalHash() == sc.CanonicalHash() {
			t.Fatalf("round %d: mutation did not change the canonical hash (%+v)", round, d.Ops)
		}
		sc = m1 // walk the chain so later rounds hit varied shapes
	}
}

// TestDeltaApplyEqualsDirectConstruction: applying a delta must hash
// identically to building the same mutated scenario by hand — Apply adds no
// hidden state of its own.
func TestDeltaApplyEqualsDirectConstruction(t *testing.T) {
	sc := deltaTestScenario(t, 6, 10)
	moveTo := geom.Point{X: 333, Y: 222}
	addPos := geom.Point{X: 44, Y: 55}
	d := &Delta{Version: DeltaVersion, Ops: []DeltaOp{
		{Op: OpMoveSS, ID: sc.Subscribers[3].ID, Pos: &moveTo},
		{Op: OpRemoveSS, ID: sc.Subscribers[7].ID},
		{Op: OpAddSS, ID: 777, Pos: &addPos, DistReq: 26},
	}}
	mut, err := d.Apply(sc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	direct := sc.clone()
	direct.Subscribers[3].Pos = moveTo
	direct.Subscribers = append(direct.Subscribers[:7], direct.Subscribers[8:]...)
	direct.Subscribers = append(direct.Subscribers, Subscriber{
		ID: 777, Pos: addPos, DistReq: 26, MinRxPower: direct.DeriveMinRxPower(26),
	})
	if err := direct.Validate(); err != nil {
		t.Fatalf("direct construction invalid: %v", err)
	}
	if mut.CanonicalHash() != direct.CanonicalHash() {
		t.Fatalf("Apply hash %s != directly-constructed hash %s",
			mut.CanonicalHash(), direct.CanonicalHash())
	}
}

func randomDelta(rng *rand.Rand, sc *Scenario, nextID *int) *Delta {
	pick := func() int { return sc.Subscribers[rng.Intn(len(sc.Subscribers))].ID }
	pos := func() *geom.Point {
		return &geom.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400}
	}
	var op DeltaOp
	switch rng.Intn(4) {
	case 0:
		*nextID++
		op = DeltaOp{Op: OpAddSS, ID: *nextID, Pos: pos(), DistReq: 15 + rng.Float64()*30}
	case 1:
		op = DeltaOp{Op: OpMoveSS, ID: pick(), Pos: pos()}
	case 2:
		if len(sc.Subscribers) <= 2 {
			op = DeltaOp{Op: OpMoveSS, ID: pick(), Pos: pos()}
		} else {
			op = DeltaOp{Op: OpRemoveSS, ID: pick()}
		}
	default:
		op = DeltaOp{Op: OpTrafficSS, ID: pick(), DistReq: 15 + rng.Float64()*30}
	}
	return &Delta{Version: DeltaVersion, Ops: []DeltaOp{op}}
}

func TestZoneHashVariants(t *testing.T) {
	sc := deltaTestScenario(t, 5, 10)
	zone := []int{0, 2, 4}

	// Stable under re-hashing, sensitive to membership and order.
	if sc.CanonicalZoneHash(zone, ZoneHashCoverage) != sc.CanonicalZoneHash(zone, ZoneHashCoverage) {
		t.Fatal("zone hash not deterministic")
	}
	if sc.CanonicalZoneHash(zone, ZoneHashCoverage) == sc.CanonicalZoneHash([]int{0, 2, 5}, ZoneHashCoverage) {
		t.Fatal("different membership, same hash")
	}

	// Subscriber IDs are excluded: renumbering IDs must not change the hash.
	renum := sc.clone()
	for i := range renum.Subscribers {
		renum.Subscribers[i].ID += 1000
	}
	if sc.CanonicalZoneHash(zone, ZoneHashCoverage) != renum.CanonicalZoneHash(zone, ZoneHashCoverage) {
		t.Fatal("ID renumbering changed the coverage zone hash")
	}

	// MinRxPower matters to the full variant only.
	bumped := sc.clone()
	bumped.Subscribers[2].MinRxPower *= 2
	if sc.CanonicalZoneHash(zone, ZoneHashCoverage) != bumped.CanonicalZoneHash(zone, ZoneHashCoverage) {
		t.Fatal("MinRxPower changed the coverage-variant hash")
	}
	if sc.CanonicalZoneHash(zone, ZoneHashFull) == bumped.CanonicalZoneHash(zone, ZoneHashFull) {
		t.Fatal("MinRxPower did not change the full-variant hash")
	}

	// A subscriber outside the zone is invisible to the zone hash.
	other := sc.clone()
	other.Subscribers[1].Pos.X += 17
	if sc.CanonicalZoneHash(zone, ZoneHashFull) != other.CanonicalZoneHash(zone, ZoneHashFull) {
		t.Fatal("non-member change affected the zone hash")
	}
}
