package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"sagrelay/internal/geom"
)

// Scenario deltas — the typed, versioned mutation format consumed by the
// incremental re-solve engine (internal/incr) and the /v1/resolve endpoint.
// A Delta is an ordered list of entity-level operations against a base
// scenario; Apply is pure (the base is never modified) and deterministic, so
// applying the same delta to the same base always yields byte-identical
// canonical encodings. That determinism is what lets an incremental solve be
// compared byte-for-byte against a cold solve of the mutated scenario.

// DeltaVersion tags the delta JSON format; bump it whenever the op set or
// field semantics change so stale clients fail loudly instead of silently
// misapplying mutations.
const DeltaVersion = "sagdelta/1"

// Delta op kinds. Entities are addressed by their stable ID, never by slice
// index: indices shift when entities are removed, IDs do not.
const (
	// OpAddSS appends a subscriber (id, pos, dist_req required;
	// min_rx_power derived from dist_req when omitted).
	OpAddSS = "add_ss"
	// OpRemoveSS removes the subscriber with the given id.
	OpRemoveSS = "remove_ss"
	// OpMoveSS repositions the subscriber with the given id.
	OpMoveSS = "move_ss"
	// OpTrafficSS changes a subscriber's demand: dist_req and/or
	// min_rx_power. When dist_req is given and min_rx_power is not, the
	// receive-power floor is re-derived from the new distance so the two
	// stay consistent (DeriveMinRxPower).
	OpTrafficSS = "traffic_ss"
	// OpAddBS appends a base station (id, pos required).
	OpAddBS = "add_bs"
	// OpRemoveBS removes the base station with the given id.
	OpRemoveBS = "remove_bs"
)

// ErrUnknownEntity reports a delta op addressing an ID that does not exist
// in the scenario it is applied to (or an add of an ID that already does).
var ErrUnknownEntity = errors.New("scenario: delta references unknown entity")

// ErrBadDelta reports a structurally invalid delta: wrong version, unknown
// op kind, or an op missing a required field.
var ErrBadDelta = errors.New("scenario: invalid delta")

// DeltaError pinpoints the failing op inside a delta. It wraps
// ErrUnknownEntity or ErrBadDelta so callers classify with errors.Is while
// the op index and kind name the offender for diagnostics.
type DeltaError struct {
	// Index is the position of the failing op in Delta.Ops.
	Index int
	// Op is the op kind ("move_ss", ...); empty when the delta itself is
	// malformed (bad version).
	Op string
	// ID is the entity ID the op addressed, when it has one.
	ID int
	// Err is the category sentinel: ErrUnknownEntity or ErrBadDelta.
	Err error
	// Detail is a human-readable elaboration.
	Detail string
}

func (e *DeltaError) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("%v: %s", e.Err, e.Detail)
	}
	return fmt.Sprintf("%v: op[%d] %s id=%d: %s", e.Err, e.Index, e.Op, e.ID, e.Detail)
}

// Unwrap exposes the category sentinel to errors.Is.
func (e *DeltaError) Unwrap() error { return e.Err }

// DeltaOp is one mutation. Which fields are read depends on Op; unread
// fields are ignored (and omitted from JSON).
type DeltaOp struct {
	// Op is the op kind: one of the Op* constants.
	Op string `json:"op"`
	// ID addresses the target entity (required by every op).
	ID int `json:"id"`
	// Pos is the new/initial position (add_ss, move_ss, add_bs).
	Pos *geom.Point `json:"pos,omitempty"`
	// DistReq is the new/initial distance requirement (add_ss, traffic_ss).
	// Zero means "not given" for traffic_ss.
	DistReq float64 `json:"dist_req,omitempty"`
	// MinRxPower is the new/initial receive-power floor (add_ss,
	// traffic_ss). Zero means "derive from DistReq".
	MinRxPower float64 `json:"min_rx_power,omitempty"`
}

// Delta is a versioned, ordered list of mutations to a base scenario.
type Delta struct {
	Version string    `json:"version"`
	Ops     []DeltaOp `json:"ops"`
}

// Validate checks the delta's version tag and each op's structural
// requirements (known kind, required fields present and finite). It does
// not check entity existence — that depends on the base scenario and is
// Apply's job.
func (d *Delta) Validate() error {
	if d.Version != DeltaVersion {
		return &DeltaError{Err: ErrBadDelta, Detail: fmt.Sprintf("version %q, want %q", d.Version, DeltaVersion)}
	}
	for i, op := range d.Ops {
		bad := func(detail string) error {
			return &DeltaError{Index: i, Op: op.Op, ID: op.ID, Err: ErrBadDelta, Detail: detail}
		}
		needPos := func() error {
			if op.Pos == nil {
				return bad("missing pos")
			}
			if err := finite("pos.x", op.Pos.X); err != nil {
				return bad(err.Error())
			}
			if err := finite("pos.y", op.Pos.Y); err != nil {
				return bad(err.Error())
			}
			return nil
		}
		switch op.Op {
		case OpAddSS:
			if err := needPos(); err != nil {
				return err
			}
			if err := positive("dist_req", op.DistReq); err != nil {
				return bad(err.Error())
			}
			if err := finite("min_rx_power", op.MinRxPower); err != nil {
				return bad(err.Error())
			}
			if op.MinRxPower < 0 {
				return bad("negative min_rx_power")
			}
		case OpMoveSS, OpAddBS:
			if err := needPos(); err != nil {
				return err
			}
		case OpTrafficSS:
			if op.DistReq == 0 && op.MinRxPower == 0 {
				return bad("traffic_ss needs dist_req and/or min_rx_power")
			}
			if op.DistReq != 0 {
				if err := positive("dist_req", op.DistReq); err != nil {
					return bad(err.Error())
				}
			}
			if op.MinRxPower != 0 {
				if err := positive("min_rx_power", op.MinRxPower); err != nil {
					return bad(err.Error())
				}
			}
		case OpRemoveSS, OpRemoveBS:
			// ID alone suffices.
		default:
			return bad("unknown op")
		}
	}
	return nil
}

// Apply returns a new scenario with the delta's ops applied in order to a
// deep copy of base; base is never modified. The result is validated, so a
// delta that produces a degenerate instance (coincident entities, empty
// subscriber set) fails here with the scenario's own typed errors. An op
// addressing a missing ID — or adding an ID that already exists — fails
// with a *DeltaError wrapping ErrUnknownEntity.
func (d *Delta) Apply(base *Scenario) (*Scenario, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	sc := base.clone()
	for i, op := range d.Ops {
		missing := func(detail string) error {
			return &DeltaError{Index: i, Op: op.Op, ID: op.ID, Err: ErrUnknownEntity, Detail: detail}
		}
		switch op.Op {
		case OpAddSS:
			if sc.findSS(op.ID) >= 0 {
				return nil, missing("subscriber id already exists")
			}
			mrp := op.MinRxPower
			if mrp == 0 {
				mrp = sc.DeriveMinRxPower(op.DistReq)
			}
			sc.Subscribers = append(sc.Subscribers, Subscriber{
				ID: op.ID, Pos: *op.Pos, DistReq: op.DistReq, MinRxPower: mrp,
			})
		case OpRemoveSS:
			j := sc.findSS(op.ID)
			if j < 0 {
				return nil, missing("no such subscriber")
			}
			sc.Subscribers = append(sc.Subscribers[:j], sc.Subscribers[j+1:]...)
		case OpMoveSS:
			j := sc.findSS(op.ID)
			if j < 0 {
				return nil, missing("no such subscriber")
			}
			sc.Subscribers[j].Pos = *op.Pos
		case OpTrafficSS:
			j := sc.findSS(op.ID)
			if j < 0 {
				return nil, missing("no such subscriber")
			}
			if op.DistReq != 0 {
				sc.Subscribers[j].DistReq = op.DistReq
				if op.MinRxPower == 0 {
					sc.Subscribers[j].MinRxPower = sc.DeriveMinRxPower(op.DistReq)
				}
			}
			if op.MinRxPower != 0 {
				sc.Subscribers[j].MinRxPower = op.MinRxPower
			}
		case OpAddBS:
			if sc.findBS(op.ID) >= 0 {
				return nil, missing("base station id already exists")
			}
			sc.BaseStations = append(sc.BaseStations, BaseStation{ID: op.ID, Pos: *op.Pos})
		case OpRemoveBS:
			j := sc.findBS(op.ID)
			if j < 0 {
				return nil, missing("no such base station")
			}
			sc.BaseStations = append(sc.BaseStations[:j], sc.BaseStations[j+1:]...)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// clone deep-copies the scenario (the entity slices are the only
// reference-typed fields).
func (sc *Scenario) clone() *Scenario {
	out := *sc
	out.Subscribers = append([]Subscriber(nil), sc.Subscribers...)
	out.BaseStations = append([]BaseStation(nil), sc.BaseStations...)
	return &out
}

// findSS returns the index of the subscriber with the given id, or -1.
func (sc *Scenario) findSS(id int) int {
	for i, s := range sc.Subscribers {
		if s.ID == id {
			return i
		}
	}
	return -1
}

// findBS returns the index of the base station with the given id, or -1.
func (sc *Scenario) findBS(id int) int {
	for i, b := range sc.BaseStations {
		if b.ID == id {
			return i
		}
	}
	return -1
}

// ParseDelta decodes and validates a delta document.
func ParseDelta(data []byte) (*Delta, error) {
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("scenario: parse delta: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// LoadDelta reads and validates a delta document from a file.
func LoadDelta(path string) (*Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: load delta: %w", err)
	}
	return ParseDelta(data)
}
