package scenario

import (
	"crypto/sha256"
	"encoding/hex"
)

// Per-zone canonical sub-hashing. The zone partition (Alg. 2) decomposes the
// lower tier into independent subproblems, so a zone's solver inputs can be
// content-addressed independently of the rest of the field: two zones with
// identical geometry and demands — in the same or in *different* scenarios —
// hash identically and can share cached coverage solutions.
//
// The encoding follows the whole-scenario canonical form (hex floats,
// labeled fields, version tag) with two deliberate differences:
//
//   - Subscribers are written in zone-local order, not global order, and
//     WITHOUT their IDs or global indices. A zone that drifts to a new spot
//     in the subscriber list (because an unrelated subscriber was removed)
//     still hashes the same, which is exactly what makes zone-level reuse
//     effective under deltas.
//   - The traffic dimension is selectable. Coverage placement (SAMC/IAC/GAC)
//     never reads MinRxPower, so the coverage-variant hash excludes it and a
//     pure receive-power change leaves coverage caches warm; the full
//     variant includes it for consumers that key power allocations.
//
// Globals that parameterize every zone solve (field, model, PMax, SNR
// threshold, NMax) are folded into each zone's bytes: they are tiny, and
// including them means a single zone hash is a complete content address
// with no side-channel.

// zoneCanonicalVersion tags the per-zone encoding; bump on any layout or
// field-set change so stale cache keys die instead of aliasing.
const zoneCanonicalVersion = "sagzone/1"

// ZoneHashVariant selects which solver-relevant fields a zone hash covers.
type ZoneHashVariant int

const (
	// ZoneHashCoverage covers the inputs of coverage placement: positions
	// and distance requirements, excluding MinRxPower and entity IDs.
	ZoneHashCoverage ZoneHashVariant = iota
	// ZoneHashFull additionally covers MinRxPower, for keying artifacts
	// that depend on receive-power floors (power allocation).
	ZoneHashFull
)

// CanonicalZoneBytes returns the canonical byte encoding of one zone's
// solver inputs. zone lists the member subscribers as indices into
// sc.Subscribers, in zone order (the order ZonePartition emits).
func (sc *Scenario) CanonicalZoneBytes(zone []int, variant ZoneHashVariant) []byte {
	var b canonicalBuf
	b.WriteString(zoneCanonicalVersion)
	b.WriteByte('\n')
	if variant == ZoneHashFull {
		b.count("traffic", 1)
	} else {
		b.count("traffic", 0)
	}
	b.field("field", sc.Field.Min.X, sc.Field.Min.Y, sc.Field.Max.X, sc.Field.Max.Y)
	b.field("model", sc.Model.Gt, sc.Model.Gr, sc.Model.Ht, sc.Model.Hr, sc.Model.Alpha, sc.Model.MinDist)
	b.field("pmax", sc.PMax)
	b.field("snrdb", sc.SNRThresholdDB)
	b.field("nmax", sc.NMax)
	b.count("ss", len(zone))
	for _, i := range zone {
		s := sc.Subscribers[i]
		if variant == ZoneHashFull {
			b.field("s", s.Pos.X, s.Pos.Y, s.DistReq, s.MinRxPower)
		} else {
			b.field("s", s.Pos.X, s.Pos.Y, s.DistReq)
		}
	}
	return b.Bytes()
}

// CanonicalZoneHash returns the SHA-256 of CanonicalZoneBytes as lowercase
// hex — the zone's content address.
func (sc *Scenario) CanonicalZoneHash(zone []int, variant ZoneHashVariant) string {
	sum := sha256.Sum256(sc.CanonicalZoneBytes(zone, variant))
	return hex.EncodeToString(sum[:])
}
