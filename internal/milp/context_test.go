package milp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sagrelay/internal/lp"
)

// hardCovering builds a covering instance large enough that branch-and-bound
// cannot finish within a tight deadline: n binary variables with jittered
// costs under m random >=1 covering constraints.
func hardCovering(t *testing.T, n, m int, seed int64) (*lp.Problem, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + rng.Float64()
	}
	p, isInt := binProblem(costs)
	for k := 0; k < m; k++ {
		var terms []lp.Term
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				terms = append(terms, lp.Term{Var: i, Coef: 1})
			}
		}
		if len(terms) == 0 {
			terms = []lp.Term{{Var: k % n, Coef: 1}}
		}
		if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	return p, isInt
}

// TestContextDeadline is the ISSUE's cancellation acceptance check: an
// oversized instance under a 50ms deadline must come back with
// context.DeadlineExceeded well before it could ever finish, not run to
// completion. The elapsed bound is generous (2s) to stay robust on loaded
// CI machines; the point is "promptly", not "exactly 50ms".
func TestContextDeadline(t *testing.T) {
	p, isInt := hardCovering(t, 48, 90, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := Solve(ctx, p, isInt, Options{MaxNodes: 1 << 30})
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return after the 50ms deadline", elapsed)
	}
}

func TestContextPreCancelled(t *testing.T) {
	p, isInt := binProblem([]float64{1, 1})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, isInt, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestContextDoesNotChangeResults: a solve that completes under a context
// must be identical to the plain solve — cancellation checks only abort
// work, they never reorder it.
func TestContextDoesNotChangeResults(t *testing.T) {
	p, isInt := hardCovering(t, 12, 20, 3)
	plain, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	under, err := Solve(ctx, p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != under.Status || plain.Objective != under.Objective || plain.Nodes != under.Nodes {
		t.Errorf("context changed the solve: %+v vs %+v", plain, under)
	}
	for i := range plain.X {
		if plain.X[i] != under.X[i] {
			t.Errorf("x[%d]: %v vs %v", i, plain.X[i], under.X[i])
		}
	}
}
