package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sagrelay/internal/lp"
)

// coveringInstance builds a random covering MILP and returns it with its
// brute-force optimum.
func coveringInstance(seed int64, n, m int) (*lp.Problem, []bool, float64) {
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	p := lp.NewProblem()
	isInt := make([]bool, n)
	for i := range costs {
		costs[i] = 1 + rng.Float64()*4
		v := p.AddVariable("t", costs[i])
		_ = p.SetUpperBound(v, 1)
		isInt[i] = true
	}
	rowsets := make([][]int, m)
	for k := 0; k < m; k++ {
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				rowsets[k] = append(rowsets[k], i)
			}
		}
		if len(rowsets[k]) == 0 {
			rowsets[k] = []int{rng.Intn(n)}
		}
		terms := make([]lp.Term, len(rowsets[k]))
		for i, v := range rowsets[k] {
			terms[i] = lp.Term{Var: v, Coef: 1}
		}
		_ = p.AddConstraint(terms, lp.GE, 1)
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, rs := range rowsets {
			hit := false
			for _, v := range rs {
				if mask&(1<<v) != 0 {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		c := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				c += costs[i]
			}
		}
		if c < best {
			best = c
		}
	}
	return p, isInt, best
}

// Every strategy combination must find the same optimum.
func TestStrategiesAgree(t *testing.T) {
	strategies := []Options{
		{},
		{Order: OrderBestBound},
		{Branch: BranchFirstFractional},
		{Order: OrderBestBound, Branch: BranchFirstFractional},
		{DisableRounding: true},
		{Order: OrderBestBound, DisableRounding: true},
	}
	f := func(seed int64) bool {
		p, isInt, want := coveringInstance(seed, 2+int(uint(seed)%5), 1+int(uint(seed)%7))
		for _, opts := range strategies {
			res, err := Solve(context.Background(), p, isInt, opts)
			if err != nil {
				return false
			}
			if math.IsInf(want, 1) {
				if res.Status != Infeasible {
					return false
				}
				continue
			}
			if res.Status != Optimal || math.Abs(res.Objective-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The rounding heuristic must never degrade results and usually saves
// nodes on pure covering models (where round-up is always feasible).
func TestRoundingSavesNodesOnCovering(t *testing.T) {
	p, isInt, want := coveringInstance(7, 12, 18)
	with, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(context.Background(), p, isInt, Options{DisableRounding: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Status != Optimal || without.Status != Optimal {
		t.Fatalf("status: %v / %v", with.Status, without.Status)
	}
	if math.Abs(with.Objective-want) > 1e-6 || math.Abs(without.Objective-want) > 1e-6 {
		t.Errorf("objectives %v / %v, want %v", with.Objective, without.Objective, want)
	}
	if with.Nodes > without.Nodes {
		t.Logf("note: rounding used more nodes (%d vs %d) on this instance", with.Nodes, without.Nodes)
	}
}

func TestBestBoundProvesOptimalityEarly(t *testing.T) {
	// On instances with a tight LP relaxation, best-bound should not need
	// dramatically more nodes than DFS; sanity-check both terminate with
	// identical objectives.
	p, isInt, want := coveringInstance(11, 10, 14)
	dfs, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Solve(context.Background(), p, isInt, Options{Order: OrderBestBound})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dfs.Objective-bb.Objective) > 1e-6 || math.Abs(dfs.Objective-want) > 1e-6 {
		t.Errorf("objectives differ: dfs %v, best-bound %v, want %v", dfs.Objective, bb.Objective, want)
	}
}

func TestBoundHeapOrdering(t *testing.T) {
	h := &boundHeap{}
	for _, b := range []float64{5, 1, 3, 2, 4} {
		h.push(node{bound: b})
	}
	prev := math.Inf(-1)
	for h.len() > 0 {
		n, ok := h.pop()
		if !ok {
			t.Fatal("pop failed with items left")
		}
		if n.bound < prev {
			t.Fatalf("heap emitted %v after %v", n.bound, prev)
		}
		prev = n.bound
	}
	if _, ok := h.pop(); ok {
		t.Error("pop on empty heap succeeded")
	}
}

func TestDfsStackOrdering(t *testing.T) {
	s := &dfsStack{}
	s.push(node{bound: 1})
	s.push(node{bound: 2})
	if n, ok := s.pop(); !ok || n.bound != 2 {
		t.Error("stack not LIFO")
	}
	if s.len() != 1 {
		t.Error("len wrong")
	}
	if _, ok := (&dfsStack{}).pop(); ok {
		t.Error("pop on empty stack succeeded")
	}
}

func TestPickBranchRules(t *testing.T) {
	x := []float64{0.1, 0.5, 0.9}
	isInt := []bool{true, true, true}
	if got := pickBranch(x, isInt, 1e-6, BranchMostFractional); got != 1 {
		t.Errorf("most-fractional picked %d, want 1", got)
	}
	if got := pickBranch(x, isInt, 1e-6, BranchFirstFractional); got != 0 {
		t.Errorf("first-fractional picked %d, want 0", got)
	}
	if got := pickBranch([]float64{1, 0, 2}, isInt, 1e-6, BranchMostFractional); got != -1 {
		t.Errorf("integral point picked %d", got)
	}
}

func TestTryRounding(t *testing.T) {
	// min x0+x1 s.t. x0+x1 >= 1, binaries. Fractional point (0.5, 0.5):
	// nearest rounds to (1,1) (0.5 rounds up), feasible with obj 2 — any
	// feasible rounding is acceptable as an incumbent seed.
	p := lp.NewProblem()
	a := p.AddVariable("a", 1)
	b := p.AddVariable("b", 1)
	_ = p.SetUpperBound(a, 1)
	_ = p.SetUpperBound(b, 1)
	_ = p.AddConstraint([]lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.GE, 1)
	x, obj, ok := tryRounding(p, []float64{0.5, 0.5}, []bool{true, true}, make([]float64, 2), make([]float64, 2))
	if !ok {
		t.Fatal("rounding failed on a trivially roundable point")
	}
	if feasible, _ := p.CheckFeasible(x, 1e-9); !feasible {
		t.Error("rounded point infeasible")
	}
	if obj < 1-1e-9 {
		t.Errorf("objective %v below LP bound", obj)
	}
	// An unroundable point: equality constraint x0 == 0.5.
	p2 := lp.NewProblem()
	c := p2.AddVariable("c", 1)
	_ = p2.SetUpperBound(c, 1)
	_ = p2.AddConstraint([]lp.Term{{Var: c, Coef: 1}}, lp.EQ, 0.5)
	if _, _, ok := tryRounding(p2, []float64{0.5}, []bool{true}, make([]float64, 1), make([]float64, 1)); ok {
		t.Error("rounding claimed success on an integer-infeasible model")
	}
}
