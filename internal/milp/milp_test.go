package milp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sagrelay/internal/lp"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// binProblem builds a problem with n binary variables and the given costs.
func binProblem(costs []float64) (*lp.Problem, []bool) {
	p := lp.NewProblem()
	isInt := make([]bool, len(costs))
	for i, c := range costs {
		v := p.AddVariable("t", c)
		_ = p.SetUpperBound(v, 1)
		isInt[i] = true
	}
	return p, isInt
}

func TestKnapsackStyle(t *testing.T) {
	// max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binary.
	// Optimum: a=1, c=1 (values 5+3=8, weight 3) vs a=1,b=1 (9, weight 5) ->
	// a=1,b=1 wins with value 9.
	p, isInt := binProblem([]float64{-5, -4, -3})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 3}, {Var: 2, Coef: 1}}, lp.LE, 5); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !almost(res.Objective, -9, 1e-6) {
		t.Errorf("objective = %v, want -9", res.Objective)
	}
	if !almost(res.X[0], 1, 1e-6) || !almost(res.X[1], 1, 1e-6) || !almost(res.X[2], 0, 1e-6) {
		t.Errorf("solution = %v, want (1,1,0)", res.X)
	}
}

func TestSetCover(t *testing.T) {
	// Universe {0,1,2,3}; sets A={0,1}, B={2,3}, C={0,1,2,3} cost 1 each.
	// Optimum: {C} with cost 1.
	p, isInt := binProblem([]float64{1, 1, 1})
	cover := [][]int{{0, 2}, {0, 2}, {1, 2}, {1, 2}} // element -> sets containing it
	for _, sets := range cover {
		terms := make([]lp.Term, len(sets))
		for i, s := range sets {
			terms[i] = lp.Term{Var: s, Coef: 1}
		}
		if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almost(res.Objective, 1, 1e-6) {
		t.Fatalf("got %v obj=%v, want optimal obj=1", res.Status, res.Objective)
	}
	if !almost(res.X[2], 1, 1e-6) {
		t.Errorf("expected set C chosen: %v", res.X)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p, isInt := binProblem([]float64{1})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 0.6); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p, isInt := binProblem([]float64{1})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 2); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedModel(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable("x", -1) // continuous, unbounded below in objective
	y := p.AddVariable("t", 1)
	_ = p.SetUpperBound(y, 1)
	_ = x
	res, err := Solve(context.Background(), p, []bool{false, true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -t - 0.5y  s.t. t binary, 0 <= y <= 2.5, t + y <= 3.
	// Optimum: t=1, y=2 -> obj -2.
	p := lp.NewProblem()
	tv := p.AddVariable("t", -1)
	_ = p.SetUpperBound(tv, 1)
	y := p.AddVariable("y", -0.5)
	_ = p.SetUpperBound(y, 2.5)
	if err := p.AddConstraint([]lp.Term{{Var: tv, Coef: 1}, {Var: y, Coef: 1}}, lp.LE, 3); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, []bool{true, false}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almost(res.Objective, -2, 1e-6) {
		t.Fatalf("got %v obj=%v, want optimal -2", res.Status, res.Objective)
	}
	if !almost(res.X[tv], 1, 1e-6) || !almost(res.X[y], 2, 1e-6) {
		t.Errorf("solution = %v", res.X)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(context.Background(), nil, nil, Options{}); err == nil {
		t.Error("nil problem accepted")
	}
	p, _ := binProblem([]float64{1})
	if _, err := Solve(context.Background(), p, []bool{true, true}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Solve(context.Background(), p, []bool{false}, Options{}); !errors.Is(err, ErrNoIntegers) {
		t.Errorf("want ErrNoIntegers, got %v", err)
	}
}

func TestWarmStartPrunes(t *testing.T) {
	// Incumbent equal to the optimum should come back optimal (possibly the
	// same point) with few nodes.
	p, isInt := binProblem([]float64{1, 1})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 1); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, isInt, Options{Incumbent: []float64{1, 0}, IncumbentObj: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !almost(res.Objective, 1, 1e-6) {
		t.Errorf("got %v obj=%v", res.Status, res.Objective)
	}
}

func TestNodeLimitGivesFeasible(t *testing.T) {
	// A model the solver cannot finish in one node, with a warm start, must
	// report Feasible (not Optimal) under MaxNodes=1.
	rng := rand.New(rand.NewSource(42))
	n := 14
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + rng.Float64()
	}
	p, isInt := binProblem(costs)
	for k := 0; k < 25; k++ {
		var terms []lp.Term
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, lp.Term{Var: i, Coef: 1})
			}
		}
		if len(terms) == 0 {
			terms = []lp.Term{{Var: 0, Coef: 1}}
		}
		if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	all := make([]float64, n)
	total := 0.0
	for i := range all {
		all[i] = 1
		total += costs[i]
	}
	res, err := Solve(context.Background(), p, isInt, Options{MaxNodes: 1, Incumbent: all, IncumbentObj: total})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal && res.Objective == total {
		t.Error("node-limited search claimed optimality of the warm start")
	}
	if res.X == nil {
		t.Error("warm start lost")
	}
}

func TestTimeLimit(t *testing.T) {
	p, isInt := binProblem([]float64{1, 1, 1})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, lp.GE, 2); err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline must stop before the first node.
	res, err := Solve(context.Background(), p, isInt, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 0 {
		t.Errorf("explored %d nodes despite expired deadline", res.Nodes)
	}
	if res.Status != Limit {
		t.Errorf("status = %v, want limit", res.Status)
	}
	if !res.DeadlineHit {
		t.Error("wall-clock limit stopped the search but DeadlineHit is false")
	}
}

func TestNodeLimitIsNotDeadlineHit(t *testing.T) {
	// A node-cap stop is deterministic and must not carry the
	// load-dependent DeadlineHit marker.
	p, isInt := binProblem([]float64{1, 1, 1})
	if err := p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, lp.GE, 2); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, isInt, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineHit {
		t.Errorf("node-limited search (status %v) marked DeadlineHit", res.Status)
	}
}

// Property: on random covering instances, branch-and-bound matches brute
// force exactly.
func TestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6) // up to 7 binaries -> brute force 128 points
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 1 + rng.Float64()*4
		}
		p, isInt := binProblem(costs)
		m := 1 + rng.Intn(8)
		rowsets := make([][]int, m)
		for k := 0; k < m; k++ {
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					rowsets[k] = append(rowsets[k], i)
				}
			}
			if len(rowsets[k]) == 0 {
				rowsets[k] = []int{rng.Intn(n)}
			}
			terms := make([]lp.Term, len(rowsets[k]))
			for i, v := range rowsets[k] {
				terms[i] = lp.Term{Var: v, Coef: 1}
			}
			if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
				return false
			}
		}
		res, err := Solve(context.Background(), p, isInt, Options{})
		if err != nil {
			return false
		}
		// Brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, rs := range rowsets {
				hit := false
				for _, v := range rs {
					if mask&(1<<v) != 0 {
						hit = true
						break
					}
				}
				if !hit {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			c := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					c += costs[i]
				}
			}
			if c < best {
				best = c
			}
		}
		if math.IsInf(best, 1) {
			return res.Status == Infeasible
		}
		return res.Status == Optimal && almost(res.Objective, best, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the reported bound never exceeds the objective for minimization.
func TestBoundBelowObjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 1 + rng.Float64()
		}
		p, isInt := binProblem(costs)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			terms[i] = lp.Term{Var: i, Coef: 1}
		}
		if err := p.AddConstraint(terms, lp.GE, 1+float64(rng.Intn(n))); err != nil {
			return false
		}
		res, err := Solve(context.Background(), p, isInt, Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		return res.Bound <= res.Objective+1e-6 && res.Gap() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
