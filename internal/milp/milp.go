// Package milp implements a branch-and-bound mixed-integer linear
// programming solver over the simplex relaxations of sagrelay/internal/lp.
//
// Together with the big-M linearization in sagrelay/internal/lower, this is
// the substitute for Gurobi 5.0's integer path: the paper's ILPQC coverage
// formulation (eqs. 3.1-3.5) has binary placement/assignment variables and a
// quadratic SNR constraint whose products of binaries linearize exactly, so
// the solved model is identical — only wall-clock behaviour differs, and the
// paper reports that behaviour (exponential growth; Figs. 4b, 5b) rather
// than relying on it.
package milp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"sagrelay/internal/fault"
	"sagrelay/internal/lp"
	"sagrelay/internal/obs"
)

// bbNodesPerSolve is the process-wide distribution of branch-and-bound
// nodes explored per Solve call.
var bbNodesPerSolve = obs.Default.NewHistogram(
	"sag_bb_nodes_per_solve",
	"Branch-and-bound nodes explored per MILP solve.",
	obs.CountBuckets,
)

// totalNodes counts branch-and-bound nodes explored process-wide, across
// all solves and goroutines. It feeds expvar-style observability (the
// serve subsystem's /metrics endpoint) without threading counters through
// every caller.
var totalNodes atomic.Int64

// siteNode is the fault-injection point checked before each
// branch-and-bound node expansion; one atomic load when injection is off.
var siteNode = fault.Register("milp.node")

// TotalNodes returns the number of branch-and-bound nodes explored by this
// process so far.
func TotalNodes() int64 { return totalNodes.Load() }

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes. (Enums start at 1 so the zero value is invalid.)
const (
	// Optimal means the search proved the incumbent optimal.
	Optimal Status = iota + 1
	// Feasible means a limit stopped the search with an incumbent in hand.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// Limit means a limit stopped the search before any incumbent was found.
	Limit
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// NodeOrder selects the search-tree exploration strategy.
type NodeOrder int

// Node orders. (Enums start at 1 so the zero value selects the default.)
const (
	// OrderDFS explores depth-first (default): low memory, finds integer
	// incumbents fast on covering models.
	OrderDFS NodeOrder = iota + 1
	// OrderBestBound always expands the node with the smallest parent
	// bound: fewer nodes to prove optimality, more memory.
	OrderBestBound
)

// BranchRule selects the fractional variable to branch on.
type BranchRule int

// Branch rules. (Enums start at 1 so the zero value selects the default.)
const (
	// BranchMostFractional picks the variable farthest from integrality
	// (default).
	BranchMostFractional BranchRule = iota + 1
	// BranchFirstFractional picks the lowest-index fractional variable
	// (Bland-style; cheap, often deeper trees).
	BranchFirstFractional
)

// Options tune the branch-and-bound search. The zero value gives sensible
// defaults via (Options).withDefaults.
type Options struct {
	// MaxNodes caps explored nodes (0 = default 200000).
	MaxNodes int
	// TimeLimit caps wall-clock search time (0 = none).
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
	// Incumbent, when non-nil, warm-starts the search with a known
	// integer-feasible point (e.g. from a greedy heuristic); its objective
	// prunes the tree from the first node.
	Incumbent []float64
	// IncumbentObj is the objective of Incumbent.
	IncumbentObj float64
	// Order selects the node exploration strategy (0 = OrderDFS).
	Order NodeOrder
	// Branch selects the branching rule (0 = BranchMostFractional).
	Branch BranchRule
	// DisableRounding turns off the rounding primal heuristic that tries
	// to convert each fractional node relaxation into an incumbent.
	DisableRounding bool
	// SeedBasis, when non-nil, warm-starts the ROOT relaxation from a
	// stored simplex basis (e.g. the final basis of a previous solve of a
	// closely related model) instead of solving it cold. The basis must
	// cover variables + constraints columns of the current model; a
	// mismatched length is ignored. Like every warm start, this changes
	// only which vertex of a degenerate optimal face the simplex lands on
	// — callers with a byte-reproducibility contract must not seed.
	SeedBasis *lp.Basis
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if o.Order == 0 {
		o.Order = OrderDFS
	}
	if o.Branch == 0 {
		o.Branch = BranchMostFractional
	}
	return o
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	X         []float64
	Objective float64
	// Bound is the best proven lower bound on the optimum (minimization).
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Pivots is the total simplex pivot count across all node relaxations.
	Pivots int
	// WarmSolves counts node relaxations completed by the warm-started dual
	// simplex; ColdSolves counts the rest (the root, warm-start fallbacks,
	// and nodes without a usable parent basis).
	WarmSolves int
	ColdSolves int
	// DeadlineHit reports that the wall-clock Options.TimeLimit stopped the
	// search. Such a result is load-dependent: how many nodes fit inside a
	// wall-clock budget varies with machine speed and load, so the incumbent
	// (Status Feasible) or the absence of one (Status Limit) may differ
	// between runs. A MaxNodes-limited search, by contrast, is deterministic
	// and leaves DeadlineHit false. Callers with a reproducibility contract
	// must treat DeadlineHit results as approximate (see internal/lower's
	// Truncated flag and the solve service's no-cache rule).
	DeadlineHit bool
	// Basis is the optimal simplex basis of the node relaxation that
	// produced the final incumbent, when that incumbent was adopted from an
	// integer-feasible relaxation (nil when the incumbent came from the
	// rounding heuristic or the Options.Incumbent seed, or when there is no
	// incumbent). Stored by zone caches and replayed through
	// Options.SeedBasis to warm-start re-solves of closely related models.
	Basis *lp.Basis
}

// Gap returns the relative optimality gap |obj-bound|/max(1,|obj|), or 0
// when the result is proven optimal.
func (r *Result) Gap() float64 {
	if r.Status == Optimal {
		return 0
	}
	return math.Abs(r.Objective-r.Bound) / math.Max(1, math.Abs(r.Objective))
}

// ErrNoIntegers reports a Solve call with no integer variables; use the lp
// package directly for pure LPs.
var ErrNoIntegers = errors.New("milp: no integer variables marked")

type node struct {
	lower map[int]float64 // variable -> tightened lower bound
	upper map[int]float64 // variable -> tightened upper bound
	bound float64         // parent LP objective (lower bound for the subtree)
	// basis is the parent relaxation's optimal basis, warm-starting this
	// node's solve via the dual simplex. Memory trade-off: one byte per LP
	// column (variables + constraints), shared by pointer between siblings
	// — a few hundred bytes per open node on per-zone ILPQC instances,
	// dwarfed by the node's own bound maps, even under OrderBestBound's
	// wide frontiers. nil (root) means a cold solve.
	basis *lp.Basis
}

// Solve minimizes the problem with the variables marked in isInt restricted
// to integer values. The base problem is not modified. Infeasible and
// unbounded models are reported via Result.Status with a nil error.
//
// Cancellation is cooperative: the search checks ctx before expanding each
// node and the node relaxations poll it between simplex pivots, so a
// cancelled context aborts the solve promptly even mid-relaxation.
// Cancellation is reported as an error wrapping ctx.Err() (errors.Is
// against context.Canceled / context.DeadlineExceeded works); it is
// distinct from Options.TimeLimit, which stops the search but still
// returns the incumbent via Result.Status, flagging the load-dependent
// truncation in Result.DeadlineHit.
//
// Each call records a "bnb" span (nodes, pivots, status, gap) when ctx
// carries a trace, and observes the node count on the process-wide
// histogram registry.
func Solve(ctx context.Context, base *lp.Problem, isInt []bool, opts Options) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "bnb")
	res, err := solve(ctx, base, isInt, opts)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return res, err
	}
	span.SetInt("nodes", int64(res.Nodes))
	span.SetInt("pivots", int64(res.Pivots))
	span.SetInt("warm_solves", int64(res.WarmSolves))
	span.SetInt("cold_solves", int64(res.ColdSolves))
	span.SetAttr("status", res.Status.String())
	span.SetFloat("gap", res.Gap())
	if res.DeadlineHit {
		span.SetBool("deadline_hit", true)
	}
	span.End()
	bbNodesPerSolve.Observe(float64(res.Nodes))
	return res, nil
}

func solve(ctx context.Context, base *lp.Problem, isInt []bool, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if base == nil {
		return nil, errors.New("milp: nil problem")
	}
	if len(isInt) != base.NumVariables() {
		return nil, fmt.Errorf("milp: isInt length %d != %d variables", len(isInt), base.NumVariables())
	}
	anyInt := false
	for _, b := range isInt {
		if b {
			anyInt = true
			break
		}
	}
	if !anyInt {
		return nil, ErrNoIntegers
	}
	opts = opts.withDefaults()

	// Armed at most once per solve; nil when no ProgressFunc is installed,
	// in which case every emit below is a single pointer comparison.
	progress := ProgressFrom(ctx)

	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	res := &Result{Status: Limit, Objective: math.Inf(1), Bound: math.Inf(-1)}
	if opts.Incumbent != nil {
		res.X = append([]float64(nil), opts.Incumbent...)
		res.Objective = opts.IncumbentObj
		res.Status = Feasible
	}

	front := newFrontier(opts.Order)
	root := node{lower: nil, upper: nil, bound: math.Inf(-1)}
	if opts.SeedBasis != nil && opts.SeedBasis.Len() == base.NumVariables()+base.NumConstraints() {
		root.basis = opts.SeedBasis
	}
	front.push(root)
	rootSolved := false

	// One Solver serves every node: the base problem is never cloned — each
	// node's tightened bounds are passed straight into the solve, and the
	// dense tableau memory is recycled across the whole search tree.
	solver := lp.NewSolver()
	// Rounding-heuristic scratch, likewise reused across nodes.
	numVars := base.NumVariables()
	roundNearest := make([]float64, numVars)
	roundUp := make([]float64, numVars)

	for front.len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("milp: cancelled after %d nodes: %w", res.Nodes, err)
		}
		if err := fault.Check(siteNode); err != nil {
			return nil, fmt.Errorf("milp: after %d nodes: %w", res.Nodes, err)
		}
		if res.Nodes >= opts.MaxNodes {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.DeadlineHit = true
			break
		}
		nd, _ := front.pop()
		if nd.bound >= res.Objective-1e-9 {
			continue // parent bound already dominated
		}
		res.Nodes++
		totalNodes.Add(1)

		sol, err := solver.WarmSolve(ctx, base, nd.lower, nd.upper, nd.basis)
		if sol != nil {
			res.Pivots += sol.Iterations
			if sol.WarmStarted {
				res.WarmSolves++
			} else {
				res.ColdSolves++
			}
		}
		if progress != nil && res.Nodes%progressNodes == 0 {
			emitProgress(progress, KindSample, res, false)
		}
		if err != nil {
			if errors.Is(err, lp.ErrIterationLimit) {
				// Treat a stalled relaxation as unexplorable; skip the node.
				continue
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("milp: cancelled after %d nodes: %w", res.Nodes, err)
			}
			return nil, fmt.Errorf("milp: node relaxation: %w", err)
		}
		if !rootSolved {
			rootSolved = true
			switch sol.Status {
			case lp.Infeasible:
				if res.X == nil {
					res.Status = Infeasible
					if progress != nil {
						emitProgress(progress, KindFinal, res, true)
					}
					return res, nil
				}
			case lp.Unbounded:
				res.Status = Unbounded
				if progress != nil {
					emitProgress(progress, KindFinal, res, true)
				}
				return res, nil
			case lp.Optimal:
				res.Bound = sol.Objective
			}
		}
		if sol.Status != lp.Optimal {
			continue // infeasible subtree
		}
		if math.IsNaN(sol.Objective) {
			// Defensive: a NaN bound would poison every pruning comparison
			// below (NaN comparisons are all false). The relaxation layer
			// reports breakdowns as lp.ErrNumerical, so this should be
			// unreachable — fail loudly rather than search on garbage.
			return nil, fmt.Errorf("milp: node relaxation: %w", lp.ErrNumerical)
		}
		if sol.Objective >= res.Objective-1e-9 {
			continue // bound prune
		}
		branchVar := pickBranch(sol.X, isInt, opts.IntTol, opts.Branch)
		if branchVar < 0 {
			// Integer feasible: new incumbent. sol.X is freshly allocated per
			// solve, so it can be adopted without copying.
			res.X = sol.X
			res.Objective = sol.Objective
			res.Status = Feasible
			res.Basis = sol.Basis
			if progress != nil {
				emitProgress(progress, KindIncumbent, res, false)
			}
			continue
		}
		if !opts.DisableRounding {
			if x, obj, ok := tryRounding(base, sol.X, isInt, roundNearest, roundUp); ok && obj < res.Objective-1e-9 {
				res.X = x
				res.Objective = obj
				res.Status = Feasible
				res.Basis = nil
				if progress != nil {
					emitProgress(progress, KindIncumbent, res, false)
				}
			}
		}
		v := sol.X[branchVar]
		floorN := nodeWith(nd, branchVar, math.Floor(v), false, sol.Objective)
		ceilN := nodeWith(nd, branchVar, math.Ceil(v), true, sol.Objective)
		// Both children warm-start from this node's optimal basis, which
		// stays dual feasible under the one tightened bound. The Basis is
		// immutable, so sharing the pointer costs nothing extra.
		floorN.basis = sol.Basis
		ceilN.basis = sol.Basis
		// Push the floor branch first so DFS pops the ceil ("place it")
		// branch first — covering models find incumbents faster that way.
		front.push(floorN)
		front.push(ceilN)
	}

	if res.X != nil {
		// The loop only breaks with nodes still queued; an empty frontier
		// means the search space was exhausted and the incumbent is optimal.
		if front.len() == 0 {
			res.Status = Optimal
			res.Bound = res.Objective
		}
		if progress != nil {
			emitProgress(progress, KindFinal, res, true)
		}
		return res, nil
	}
	if front.len() == 0 {
		res.Status = Infeasible
	}
	if progress != nil {
		emitProgress(progress, KindFinal, res, true)
	}
	return res, nil
}

// tryRounding attempts to convert a fractional relaxation point into an
// integer-feasible incumbent: first nearest-integer rounding, then
// rounding every fractional integer variable up (the natural repair for
// covering constraints). Continuous variables are kept as-is. nearest and
// up are caller-owned scratch buffers (len(x)) reused across nodes; on
// success the returned point is a fresh copy the caller may keep.
func tryRounding(base *lp.Problem, x []float64, isInt []bool, nearest, up []float64) ([]float64, float64, bool) {
	copy(nearest, x)
	copy(up, x)
	for i, xi := range x {
		if !isInt[i] {
			continue
		}
		nearest[i] = math.Round(xi)
		up[i] = math.Ceil(xi)
	}
	for _, cand := range [2][]float64{nearest, up} {
		ok, err := base.CheckFeasible(cand, 1e-6)
		if err != nil || !ok {
			continue
		}
		obj, err := base.Objective(cand)
		if err != nil {
			continue
		}
		return append([]float64(nil), cand...), obj, true
	}
	return nil, 0, false
}

// frontier abstracts the open-node container.
type frontier interface {
	push(node)
	pop() (node, bool)
	len() int
}

func newFrontier(order NodeOrder) frontier {
	if order == OrderBestBound {
		return &boundHeap{}
	}
	return &dfsStack{}
}

// dfsStack is a LIFO frontier.
type dfsStack struct{ nodes []node }

func (s *dfsStack) push(n node) { s.nodes = append(s.nodes, n) }

func (s *dfsStack) pop() (node, bool) {
	if len(s.nodes) == 0 {
		return node{}, false
	}
	n := s.nodes[len(s.nodes)-1]
	s.nodes = s.nodes[:len(s.nodes)-1]
	return n, true
}

func (s *dfsStack) len() int { return len(s.nodes) }

// boundHeap is a min-heap on node bounds.
type boundHeap struct{ nodes []node }

func (h *boundHeap) push(n node) {
	h.nodes = append(h.nodes, n)
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.nodes[parent].bound <= h.nodes[i].bound {
			break
		}
		h.nodes[parent], h.nodes[i] = h.nodes[i], h.nodes[parent]
		i = parent
	}
}

func (h *boundHeap) pop() (node, bool) {
	if len(h.nodes) == 0 {
		return node{}, false
	}
	top := h.nodes[0]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes = h.nodes[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.nodes) && h.nodes[l].bound < h.nodes[smallest].bound {
			smallest = l
		}
		if r < len(h.nodes) && h.nodes[r].bound < h.nodes[smallest].bound {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.nodes[i], h.nodes[smallest] = h.nodes[smallest], h.nodes[i]
		i = smallest
	}
	return top, true
}

func (h *boundHeap) len() int { return len(h.nodes) }

// pickBranch returns the integer variable to branch on per the rule, or -1
// when all integer variables are integral within tol.
func pickBranch(x []float64, isInt []bool, tol float64, rule BranchRule) int {
	best := -1
	bestFrac := tol
	for i, xi := range x {
		if !isInt[i] {
			continue
		}
		frac := math.Abs(xi - math.Round(xi))
		if frac <= tol {
			continue
		}
		if rule == BranchFirstFractional {
			return i
		}
		if frac > bestFrac {
			// Most fractional: distance from nearest integer, maximized.
			best, bestFrac = i, frac
		}
	}
	return best
}

// nodeWith derives a child node from parent with one bound tightened.
func nodeWith(parent node, v int, bound float64, isLower bool, parentObj float64) node {
	child := node{
		lower: copyBounds(parent.lower),
		upper: copyBounds(parent.upper),
		bound: parentObj,
	}
	if isLower {
		if cur, ok := child.lower[v]; !ok || bound > cur {
			child.lower[v] = bound
		}
	} else {
		if cur, ok := child.upper[v]; !ok || bound < cur {
			child.upper[v] = bound
		}
	}
	return child
}

func copyBounds(m map[int]float64) map[int]float64 {
	c := make(map[int]float64, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}
