package milp_test

import (
	"context"
	"testing"

	"sagrelay/internal/benchprob"
	"sagrelay/internal/milp"
)

// BenchmarkMILPSolve measures a full branch-and-bound solve of the
// representative per-zone ILPQC instance (built by
// sagrelay/internal/benchprob) — the unit of work that every IAC/GAC
// figure repeats per zone per run per data point. Custom metrics expose
// the solver-level work: nodes, total LP pivots, and the warm/cold solve
// split.
func BenchmarkMILPSolve(b *testing.B) {
	p, isInt := benchprob.ILPQC()
	b.ReportAllocs()
	var nodes, pivots, warm, cold int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := milp.Solve(context.Background(), p, isInt, milp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != milp.Optimal && res.Status != milp.Feasible {
			b.Fatalf("status %v", res.Status)
		}
		nodes += res.Nodes
		pivots += res.Pivots
		warm += res.WarmSolves
		cold += res.ColdSolves
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
	b.ReportMetric(float64(warm)/float64(b.N), "warm/op")
	b.ReportMetric(float64(cold)/float64(b.N), "cold/op")
}
