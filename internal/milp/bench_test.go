package milp_test

import (
	"context"
	"math"
	"testing"

	"sagrelay/internal/lp"
	"sagrelay/internal/milp"
)

// buildILPQC constructs a representative per-zone ILPQC coverage instance
// (eqs. 3.1-3.5): binary placement variables T_i, assignment variables
// T_ij, the coverage/link constraints (3.2)-(3.3) and the big-M linearized
// SNR rows (3.5). It mirrors what sagrelay/internal/lower builds for each
// Zone-Partition zone, sized at the MaxZoneSS default.
func buildILPQC(tb testing.TB) (*lp.Problem, []bool) {
	tb.Helper()
	const (
		n    = 8
		nC   = 14
		beta = 0.05
	)
	w := make([][]float64, nC)
	covers := make([][]bool, nC)
	for i := 0; i < nC; i++ {
		w[i] = make([]float64, n)
		covers[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			d := math.Abs(float64(10*i) - float64(10*j+3))
			if d < 1 {
				d = 1
			}
			w[i][j] = 1 / (d * d * d)
			covers[i][j] = d <= 25
		}
	}

	p := lp.NewProblem()
	tVar := make([]int, nC)
	for i := range tVar {
		tVar[i] = p.AddVariable("T", 1)
		if err := p.SetUpperBound(tVar[i], 1); err != nil {
			tb.Fatal(err)
		}
	}
	pairVar := make(map[[2]int]int)
	for i := 0; i < nC; i++ {
		for j := 0; j < n; j++ {
			if covers[i][j] {
				v := p.AddVariable("Tij", 0)
				if err := p.SetUpperBound(v, 1); err != nil {
					tb.Fatal(err)
				}
				pairVar[[2]int{i, j}] = v
			}
		}
	}
	for i := 0; i < nC; i++ {
		low := []lp.Term{{Var: tVar[i], Coef: 1}}
		high := []lp.Term{{Var: tVar[i], Coef: -float64(n)}}
		for j := 0; j < n; j++ {
			if v, ok := pairVar[[2]int{i, j}]; ok {
				low = append(low, lp.Term{Var: v, Coef: -1})
				high = append(high, lp.Term{Var: v, Coef: 1})
			}
		}
		if err := p.AddConstraint(low, lp.LE, 0); err != nil {
			tb.Fatal(err)
		}
		if err := p.AddConstraint(high, lp.LE, 0); err != nil {
			tb.Fatal(err)
		}
	}
	for j := 0; j < n; j++ {
		var terms []lp.Term
		for i := 0; i < nC; i++ {
			if v, ok := pairVar[[2]int{i, j}]; ok {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
		}
		if len(terms) == 0 {
			tb.Fatal("subscriber uncovered in fixture")
		}
		if err := p.AddConstraint(terms, lp.EQ, 1); err != nil {
			tb.Fatal(err)
		}
	}
	for j := 0; j < n; j++ {
		mj := 0.0
		for k := 0; k < nC; k++ {
			mj += w[k][j]
		}
		for i := 0; i < nC; i++ {
			v, ok := pairVar[[2]int{i, j}]
			if !ok {
				continue
			}
			terms := make([]lp.Term, 0, nC+2)
			for k := 0; k < nC; k++ {
				terms = append(terms, lp.Term{Var: tVar[k], Coef: w[k][j]})
			}
			terms = append(terms, lp.Term{Var: tVar[i], Coef: -w[i][j]})
			terms = append(terms, lp.Term{Var: v, Coef: mj})
			if err := p.AddConstraint(terms, lp.LE, w[i][j]/beta+mj); err != nil {
				tb.Fatal(err)
			}
		}
	}
	isInt := make([]bool, p.NumVariables())
	for i := range isInt {
		isInt[i] = true
	}
	return p, isInt
}

// BenchmarkMILPSolve measures a full branch-and-bound solve of the
// representative per-zone ILPQC instance — the unit of work that every
// IAC/GAC figure repeats per zone per run per data point.
func BenchmarkMILPSolve(b *testing.B) {
	p, isInt := buildILPQC(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := milp.Solve(context.Background(), p, isInt, milp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != milp.Optimal && res.Status != milp.Feasible {
			b.Fatalf("status %v", res.Status)
		}
	}
}
