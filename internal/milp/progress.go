package milp

import (
	"context"
	"math"
)

// Progress event kinds. A consumer that only cares about convergence can
// filter on KindIncumbent; KindSample events fire on a fixed node cadence
// so even a solve that never improves its incumbent stays visibly alive.
const (
	// KindSample is the periodic heartbeat, emitted every progressNodes
	// explored nodes.
	KindSample = "sample"
	// KindIncumbent is emitted whenever the search adopts a better
	// integer-feasible point (from a node relaxation or the rounding
	// heuristic).
	KindIncumbent = "incumbent"
	// KindFinal is emitted exactly once per successful solve, after the
	// search has settled Result.Status. Error returns (cancellation, fault
	// injection, numerical breakdown) emit nothing final.
	KindFinal = "final"
	// KindZoneReused is emitted by callers that satisfy a whole sub-solve
	// from a cache instead of running the search (see internal/lower's
	// zone-level reuse); Nodes/Pivots are zero and Final is true.
	KindZoneReused = "zone_reused"
)

// progressNodes is the sampling period: one KindSample event per this many
// explored nodes. Incumbent updates are always emitted regardless of the
// cadence.
const progressNodes = 64

// Progress is a point-in-time observation of a branch-and-bound search.
// Values are snapshots passed by value to the ProgressFunc; the callback
// must not retain pointers into the solver (there are none to retain).
//
// Zone and Subscribers are -1/0 at this layer; internal/lower stamps them
// when fanning a solve across zone partitions so per-zone rows can be
// reconstructed downstream.
type Progress struct {
	Kind        string
	Zone        int // zone index stamped by lower; -1 when not zone-scoped
	Subscribers int // zone population stamped by lower; 0 when unknown

	Nodes      int
	Pivots     int
	WarmSolves int
	ColdSolves int

	// HasIncumbent reports whether an integer-feasible point is in hand;
	// Incumbent/Gap are meaningful only when it is set.
	HasIncumbent bool
	Incumbent    float64
	Bound        float64
	Gap          float64

	// Status is set only on Final events.
	Status Status
	Final  bool
}

// ProgressFunc receives progress events. It is called synchronously from
// the solve loop (and, via internal/lower, concurrently from multiple zone
// workers), so it must be fast and safe for concurrent use.
type ProgressFunc func(Progress)

type progressKey struct{}

// WithProgress returns a context that arms branch-and-bound progress
// reporting: every Solve under the returned context calls fn with sampled
// search state. Like obs.StartSpan, the hook is free when disarmed — Solve
// performs a single context lookup and no allocations when no ProgressFunc
// is installed.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, fn)
}

// ProgressFrom returns the ProgressFunc armed on ctx, or nil. Exposed so
// intermediate layers (internal/lower) can wrap the installed callback to
// stamp zone identity before re-arming it on the per-zone context.
func ProgressFrom(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}

// emitProgress snapshots res into a Progress event and delivers it. Free
// function with value arguments so the disarmed path in solve() stays
// allocation-free (no closure is ever formed).
func emitProgress(fn ProgressFunc, kind string, res *Result, final bool) {
	p := Progress{
		Kind:       kind,
		Zone:       -1,
		Nodes:      res.Nodes,
		Pivots:     res.Pivots,
		WarmSolves: res.WarmSolves,
		ColdSolves: res.ColdSolves,
		Bound:      res.Bound,
		Final:      final,
	}
	if res.X != nil && !math.IsInf(res.Objective, 1) {
		p.HasIncumbent = true
		p.Incumbent = res.Objective
		p.Gap = res.Gap()
		// A seed incumbent observed before the root relaxation prices a
		// bound yields an infinite gap; clamp to 100% so consumers (and
		// JSON encoders) never see a non-finite value.
		if math.IsNaN(p.Gap) || math.IsInf(p.Gap, 0) {
			p.Gap = 1
		}
	}
	if math.IsInf(p.Bound, 0) || math.IsNaN(p.Bound) {
		p.Bound = 0
	}
	if final {
		p.Status = res.Status
	}
	fn(p)
}
