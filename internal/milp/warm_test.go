package milp_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"sagrelay/internal/benchprob"
	"sagrelay/internal/milp"
)

// pivotGateBaseline is the pivot-regression budget for the pinned ILPQC
// instance: half the pre-warm-start seed measurement (3598 pivots with the
// cold Bland/Dantzig solver at every node), so holding the gate proves the
// required >= 2x total-pivot reduction survives future changes. The
// warm-started dual simplex with Devex pricing currently needs ~508.
const pivotGateBaseline = 1799

// TestPivotRegressionGate solves the pinned ILPQC benchmark instance and
// fails if the total LP pivot count regresses past the recorded budget, or
// if the search stops warm-starting its nodes. ci.sh runs this as the
// perf gate.
func TestPivotRegressionGate(t *testing.T) {
	p, isInt := benchprob.ILPQC()
	res, err := milp.Solve(context.Background(), p, isInt, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.Optimal {
		t.Fatalf("status %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Fatalf("objective %v, want 2 (the instance's known optimum)", res.Objective)
	}
	t.Logf("nodes=%d pivots=%d warm=%d cold=%d", res.Nodes, res.Pivots, res.WarmSolves, res.ColdSolves)
	if res.Pivots > pivotGateBaseline {
		t.Errorf("total pivots %d exceed the regression budget %d (seed baseline was 3598)",
			res.Pivots, pivotGateBaseline)
	}
	if res.WarmSolves <= res.ColdSolves {
		t.Errorf("warm solves %d <= cold solves %d; warm starts are not carrying the tree",
			res.WarmSolves, res.ColdSolves)
	}
}

// TestWarmStartConcurrentSolvers runs the same MILP solve on many
// goroutines at once — the parallel per-zone configuration — and asserts
// every run returns the identical result. Under -race this also proves the
// per-Solver warm-start buffers never leak across goroutines.
func TestWarmStartConcurrentSolvers(t *testing.T) {
	const workers = 8
	p, isInt := benchprob.ILPQC()
	results := make([]*milp.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = milp.Solve(context.Background(), p, isInt, milp.Options{})
		}(w)
	}
	wg.Wait()
	ref := results[0]
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		r := results[w]
		if r.Status != ref.Status || r.Nodes != ref.Nodes || r.Pivots != ref.Pivots ||
			r.WarmSolves != ref.WarmSolves || r.Objective != ref.Objective {
			t.Fatalf("worker %d diverged: (status,nodes,pivots,warm,obj) = (%v,%d,%d,%d,%v) vs (%v,%d,%d,%d,%v)",
				w, r.Status, r.Nodes, r.Pivots, r.WarmSolves, r.Objective,
				ref.Status, ref.Nodes, ref.Pivots, ref.WarmSolves, ref.Objective)
		}
		for i := range ref.X {
			if r.X[i] != ref.X[i] {
				t.Fatalf("worker %d: x[%d] = %v, want bit-identical %v", w, i, r.X[i], ref.X[i])
			}
		}
	}
}
