package milp

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"sagrelay/internal/lp"
)

// coverInstance builds a seeded random set-cover instance large enough to
// explore a nontrivial branch-and-bound tree.
func coverInstance(t testing.TB, n, rows int, seed int64) (*lp.Problem, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + rng.Float64()
	}
	p, isInt := binProblem(costs)
	for r := 0; r < rows; r++ {
		k := 2 + rng.Intn(3)
		seen := map[int]bool{}
		var terms []lp.Term
		for len(terms) < k {
			v := rng.Intn(n)
			if seen[v] {
				continue
			}
			seen[v] = true
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	return p, isInt
}

func TestProgressEvents(t *testing.T) {
	p, isInt := coverInstance(t, 24, 40, 7)

	var mu sync.Mutex
	var events []Progress
	ctx := WithProgress(context.Background(), func(pr Progress) {
		mu.Lock()
		events = append(events, pr)
		mu.Unlock()
	})
	res, err := Solve(ctx, p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if len(events) == 0 {
		t.Fatal("no progress events emitted")
	}

	last := events[len(events)-1]
	if !last.Final || last.Kind != KindFinal {
		t.Fatalf("last event = %+v, want final", last)
	}
	if last.Status != res.Status {
		t.Errorf("final status = %v, want %v", last.Status, res.Status)
	}
	if last.Nodes != res.Nodes || last.Pivots != res.Pivots {
		t.Errorf("final counts (%d nodes, %d pivots) != result (%d, %d)",
			last.Nodes, last.Pivots, res.Nodes, res.Pivots)
	}
	if !last.HasIncumbent || last.Incumbent != res.Objective {
		t.Errorf("final incumbent = %+v, want objective %v", last, res.Objective)
	}
	if last.Gap != 0 {
		t.Errorf("final gap = %v on an optimal solve, want 0", last.Gap)
	}

	sawIncumbent := false
	prevNodes := 0
	prevGap := 0.0
	hadGap := false
	for i, ev := range events {
		if ev.Final && i != len(events)-1 {
			t.Fatalf("final event at index %d of %d", i, len(events))
		}
		if ev.Kind == KindIncumbent {
			sawIncumbent = true
			if !ev.HasIncumbent {
				t.Errorf("incumbent event without HasIncumbent: %+v", ev)
			}
		}
		if ev.Nodes < prevNodes {
			t.Fatalf("nodes went backwards: %d after %d", ev.Nodes, prevNodes)
		}
		prevNodes = ev.Nodes
		if ev.HasIncumbent {
			if hadGap && ev.Gap > prevGap+1e-12 {
				t.Fatalf("gap increased: %v after %v (event %d)", ev.Gap, prevGap, i)
			}
			prevGap, hadGap = ev.Gap, true
		}
		if ev.Zone != -1 {
			t.Errorf("zone = %d at the milp layer, want -1", ev.Zone)
		}
	}
	if !sawIncumbent {
		t.Error("no incumbent event emitted")
	}
}

// TestProgressObservational proves arming the hook changes nothing about
// the search: node-for-node identical results with and without a callback.
func TestProgressObservational(t *testing.T) {
	p, isInt := coverInstance(t, 24, 40, 11)

	plain, err := Solve(context.Background(), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := Solve(WithProgress(context.Background(), func(Progress) {}), p, isInt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Objective != armed.Objective || plain.Nodes != armed.Nodes ||
		plain.Pivots != armed.Pivots || plain.Status != armed.Status {
		t.Fatalf("armed solve diverged: %+v vs %+v", plain, armed)
	}
	for i := range plain.X {
		if plain.X[i] != armed.X[i] {
			t.Fatalf("solution diverged at variable %d", i)
		}
	}
}

// TestProgressDisarmedAllocFree pins the disarmed hook at zero
// allocations: looking up the absent callback and skipping every emit must
// not allocate, mirroring obs.StartSpan's disarmed contract.
func TestProgressDisarmedAllocFree(t *testing.T) {
	ctx := context.Background()
	res := &Result{Status: Feasible, Objective: 3, Bound: 2, Nodes: 10}
	allocs := testing.AllocsPerRun(200, func() {
		if fn := ProgressFrom(ctx); fn != nil {
			emitProgress(fn, KindSample, res, false)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed progress hook allocates %.1f/op, want 0", allocs)
	}
	if WithProgress(ctx, nil) != ctx {
		t.Error("WithProgress(nil) should return ctx unchanged")
	}
}

func BenchmarkProgressDisarmed(b *testing.B) {
	ctx := context.Background()
	res := &Result{Status: Feasible, Objective: 3, Bound: 2, Nodes: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fn := ProgressFrom(ctx); fn != nil {
			emitProgress(fn, KindSample, res, false)
		}
	}
}
