package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("solve")
	ctx := WithTrace(context.Background(), tr)

	ctx2, cover := StartSpan(ctx, "coverage")
	if cover == nil {
		t.Fatal("armed StartSpan returned nil span")
	}
	_, zone := StartSpan(ctx2, "zone")
	zone.SetInt("index", 3)
	zone.End()
	cover.SetBool("feasible", true)
	cover.End()

	_, conn := StartSpan(ctx, "connectivity")
	conn.End()
	tr.Finish()

	doc := tr.Doc()
	if doc == nil || doc.Name != "solve" {
		t.Fatalf("root doc = %+v", doc)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("root children = %d, want 2", len(doc.Spans))
	}
	z := doc.Find("zone")
	if z == nil {
		t.Fatal("zone span not found")
	}
	if z.Attrs["index"] != "3" {
		t.Fatalf("zone attrs = %v", z.Attrs)
	}
	if got := doc.Find("coverage").Attrs["feasible"]; got != "true" {
		t.Fatalf("feasible attr = %q", got)
	}
	// Every span must report a non-zero duration, even on coarse clocks.
	var walk func(d *SpanDoc)
	walk = func(d *SpanDoc) {
		if d.DurNS <= 0 {
			t.Errorf("span %s has non-positive duration %d", d.Name, d.DurNS)
		}
		for _, c := range d.Spans {
			walk(c)
		}
	}
	walk(doc)
}

func TestDisarmedSpansAreNoOps(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("disarmed StartSpan returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("disarmed StartSpan changed the context")
	}
	// All methods must absorb a nil receiver.
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.SetBool("b", true)
	s.SetFloat("f", 1.5)
	s.End()
	if s.StartChild("child") != nil {
		t.Fatal("nil StartChild returned a span")
	}
	if s.Name() != "" || s.Trace() != nil {
		t.Fatal("nil span accessors not zero")
	}
	var tr *Trace
	if tr.Root() != nil || tr.Doc() != nil {
		t.Fatal("nil trace accessors not zero")
	}
	tr.Finish()
}

// TestDisarmedAllocFree pins the acceptance bound: instrumentation on a
// context with no trace attached must not allocate at all (the criterion
// allows <= 1 alloc per zone solve; we hold it to zero).
func TestDisarmedAllocFree(t *testing.T) {
	ctx := context.Background()
	h := NewRegistry().NewHistogram("t", "", CountBuckets)
	allocs := testing.AllocsPerRun(100, func() {
		c2, s := StartSpan(ctx, "zone")
		s.SetInt("index", 7)
		s.SetBool("truncated", false)
		s.End()
		_, s2 := StartSpan(c2, "inner")
		s2.End()
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disarmed instrumentation allocates %v per run, want 0", allocs)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTrace("root")
	ctx := WithTrace(context.Background(), tr)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, "zone")
			s.SetInt("index", int64(i))
			s.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()
	doc := tr.Doc()
	if got := doc.Count("zone"); got != n {
		t.Fatalf("zone spans = %d, want %d", got, n)
	}
	// All children must hang off the root, not each other.
	for _, c := range doc.Spans {
		if len(c.Spans) != 0 {
			t.Fatalf("zone span %v has unexpected children", c.Attrs)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("r")
	s := tr.Root().StartChild("once")
	s.End()
	d1 := s.dur
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.dur != d1 {
		t.Fatal("second End changed the duration")
	}
}

func TestSetAttrLastWins(t *testing.T) {
	tr := NewTrace("r")
	s := tr.Root()
	s.SetAttr("k", "a")
	s.SetAttr("k", "b")
	tr.Finish()
	if got := tr.Doc().Attrs["k"]; got != "b" {
		t.Fatalf("attr = %q, want b", got)
	}
	if len(tr.Doc().Attrs) != 1 {
		t.Fatal("duplicate attr keys in doc")
	}
}

func TestDocJSONShape(t *testing.T) {
	tr := NewTrace("solve")
	tr.Root().StartChild("zone_partition").End()
	tr.Finish()
	b, err := json.Marshal(tr.Doc())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"solve"`, `"dur_ns"`, `"zone_partition"`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("doc JSON %s missing %s", b, want)
		}
	}
}

func TestChildrenSortedByStart(t *testing.T) {
	tr := NewTrace("r")
	root := tr.Root()
	a := root.StartChild("a")
	time.Sleep(time.Millisecond)
	b := root.StartChild("b")
	// End out of order: b first.
	b.End()
	a.End()
	tr.Finish()
	doc := tr.Doc()
	if len(doc.Spans) != 2 || doc.Spans[0].Name != "a" || doc.Spans[1].Name != "b" {
		t.Fatalf("children not sorted by start: %v, %v", doc.Spans[0].Name, doc.Spans[1].Name)
	}
}
