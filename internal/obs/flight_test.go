package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(8) // 4 good + 4 bad slots
	for i := 0; i < 20; i++ {
		f.Record(FlightRecord{ID: fmt.Sprintf("good-%d", i), Outcome: "done"})
	}
	f.Record(FlightRecord{ID: "bad-0", Outcome: "failed", Bad: true, Error: "boom"})
	for i := 20; i < 40; i++ {
		f.Record(FlightRecord{ID: fmt.Sprintf("good-%d", i), Outcome: "done"})
	}

	// The bad record must survive 20 newer good records: good traffic only
	// evicts good records.
	if _, ok := f.Get("bad-0"); !ok {
		t.Fatal("bad record evicted by good traffic")
	}
	if f.Len() != 5 {
		t.Fatalf("len = %d, want 5 (4 good + 1 bad)", f.Len())
	}

	recs := f.Records()
	if recs[0].ID != "good-39" {
		t.Fatalf("newest record = %s, want good-39", recs[0].ID)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].seq > recs[i-1].seq {
			t.Fatal("records not newest-first")
		}
	}

	// Bad records evict only older bad records.
	for i := 1; i <= 4; i++ {
		f.Record(FlightRecord{ID: fmt.Sprintf("bad-%d", i), Bad: true})
	}
	if _, ok := f.Get("bad-0"); ok {
		t.Fatal("bad-0 should have been evicted by 4 newer bad records")
	}
	if _, ok := f.Get("bad-4"); !ok {
		t.Fatal("bad-4 missing")
	}
}

func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(8)
	detail, _ := json.Marshal(map[string]any{"relays": 3})
	f.Record(FlightRecord{
		ID: "job-1", Kind: "solve", Outcome: "done",
		Client: "cli-a", Start: time.Unix(100, 0), End: time.Unix(101, 0),
		WallMS: 1000, Detail: detail,
	})
	h := f.Handler("/debug/flight")

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("index status %d", rr.Code)
	}
	var idx flightIndex
	if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Schema != "sagflight/1" || idx.Count != 1 || idx.Records[0].ID != "job-1" {
		t.Fatalf("index = %+v", idx)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight/job-1", nil))
	if rr.Code != 200 {
		t.Fatalf("record status %d", rr.Code)
	}
	var rec FlightRecord
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != "job-1" || !strings.Contains(string(rec.Detail), "relays") {
		t.Fatalf("record = %+v", rec)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight/nope", nil))
	if rr.Code != 404 {
		t.Fatalf("missing record status %d, want 404", rr.Code)
	}
}

func TestFlightDump(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(FlightRecord{ID: "a", Outcome: "done"})
	f.Record(FlightRecord{ID: "b", Outcome: "failed", Bad: true})
	var doc struct {
		Schema  string         `json:"schema"`
		Count   int            `json:"count"`
		Records []FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(f.Dump(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "sagflight/1" || doc.Count != 2 {
		t.Fatalf("dump = %+v", doc)
	}
}
