package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job done", LogJobID, "j-7", LogClient, "cli")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not one JSON line: %v (%q)", err, buf.String())
	}
	if line["job_id"] != "j-7" || line["client"] != "cli" || line["msg"] != "job done" {
		t.Fatalf("line = %v", line)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", LogBatchID, "b-1")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "batch_id=b-1") {
		t.Fatalf("text output = %q", buf.String())
	}

	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError, "INFO": slog.LevelInfo,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("expected error for unknown level")
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	allocs := testing.AllocsPerRun(100, func() {
		lg.Info("never", "k", 1)
	})
	// Enabled() short-circuits before formatting; the only cost is the
	// variadic slice, which the compiler keeps on the stack.
	if allocs != 0 {
		t.Fatalf("nop logger allocates %.1f/op", allocs)
	}
}
