package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Correlation field names used across the serve stack's structured logs.
// Every log line about a unit of work carries the relevant subset, so a
// single grep on job_id stitches submit, start, finish, journal, and
// flight-recorder activity together.
const (
	LogJobID   = "job_id"
	LogBatchID = "batch_id"
	LogClient  = "client"
)

// NewLogger builds a slog.Logger writing to w in the given format ("text"
// or "json") at the given minimum level. It is the single logging setup
// for the repo: zero dependencies, one line per event, correlation fields
// as ordinary attrs.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// ParseLogLevel maps a flag string to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(s)); err != nil {
			return 0, fmt.Errorf("obs: unknown log level %q", s)
		}
		return lv, nil
	}
}

// nopHandler discards everything before formatting; Enabled is false for
// every level so disabled log calls cost one interface call and no
// allocations.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that drops every record. Library layers take
// it as the default so callers never nil-check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
