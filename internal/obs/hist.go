package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// SecondsBuckets are the default latency buckets (seconds), spanning the
// sub-millisecond zone solves up to the 2-minute default job deadline.
var SecondsBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120,
}

// CountBuckets are the default effort buckets (branch-and-bound nodes,
// simplex pivots): decade-ish steps from trivial to the node-cap default.
var CountBuckets = []float64{
	1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 200000,
}

// Histogram is a fixed-bucket histogram with atomic counters. Observe is
// allocation-free and safe for concurrent use. Buckets follow the
// Prometheus convention: counts[i] holds observations v <= bounds[i], and
// the final slot holds the +Inf overflow.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// metric is one registry entry: a histogram, or a counter/gauge read
// through a closure at exposition time (so the source atomics stay the
// single source of truth and the JSON and Prometheus paths cannot drift).
type metric struct {
	kind string // "counter", "gauge" or "histogram"
	name string
	help string
	fn   func() int64
	hist *Histogram
}

// Registry holds a set of metrics and renders them in the Prometheus text
// exposition format. The process-wide solver metrics live on Default;
// subsystems with per-instance counters (the solve service) build their
// own Registry and concatenate both at exposition time.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// Default is the process-wide registry: solver packages register their
// histograms here at init.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewHistogram creates a histogram with the given sorted bucket upper
// bounds and registers it. Bounds must be strictly increasing; the +Inf
// bucket is implicit.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.mu.Lock()
	r.metrics = append(r.metrics, metric{kind: "histogram", name: name, help: help, hist: h})
	r.mu.Unlock()
	return h
}

// Counter registers a monotonically increasing value read through fn at
// exposition time.
func (r *Registry) Counter(name, help string, fn func() int64) {
	r.mu.Lock()
	r.metrics = append(r.metrics, metric{kind: "counter", name: name, help: help, fn: fn})
	r.mu.Unlock()
}

// Gauge registers a point-in-time value read through fn at exposition time.
func (r *Registry) Gauge(name, help string, fn func() int64) {
	r.mu.Lock()
	r.metrics = append(r.metrics, metric{kind: "gauge", name: name, help: help, fn: fn})
	r.mu.Unlock()
}

// Histograms returns the registered histograms (for tests).
func (r *Registry) Histograms() []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Histogram
	for _, m := range r.metrics {
		if m.hist != nil {
			out = append(out, m.hist)
		}
	}
	return out
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), metrics sorted by name, histogram
// buckets cumulative.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var b strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case "counter", "gauge":
			fmt.Fprintf(&b, "%s %d\n", m.name, m.fn())
		case "histogram":
			h := m.hist
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatBound(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
