package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+50+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// le-boundary convention: v <= bound lands in that bucket.
	want := []int64{2, 2, 1, 1} // (<=1)=0.5,1; (<=10)=5,10; (<=100)=50; +Inf=1000
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("c", "", []float64{10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000 {
		t.Fatalf("sum = %v, want 8000", h.Sum())
	}
}

func TestWritePrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("sag_test_seconds", "how long things took", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Counter("sag_test_total", "a counter", func() int64 { return 42 })
	r.Gauge("sag_test_gauge", "a gauge", func() int64 { return -3 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Every line must match the text-exposition grammar (same shape ci.sh
	// checks): HELP/TYPE comments or name{labels} value.
	line := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9.e+\-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [+-]?Inf|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? NaN)$`)
	for _, ln := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !line.MatchString(ln) {
			t.Fatalf("line fails exposition grammar: %q", ln)
		}
	}

	for _, want := range []string{
		`# TYPE sag_test_seconds histogram`,
		`sag_test_seconds_bucket{le="0.1"} 1`,
		`sag_test_seconds_bucket{le="1"} 2`,
		`sag_test_seconds_bucket{le="+Inf"} 3`,
		`sag_test_seconds_sum 5.55`,
		`sag_test_seconds_count 3`,
		`# TYPE sag_test_total counter`,
		`sag_test_total 42`,
		`# TYPE sag_test_gauge gauge`,
		`sag_test_gauge -3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Metrics must come out sorted by name for a stable diffable exposition.
	idxGauge := strings.Index(out, "# HELP sag_test_gauge")
	idxSeconds := strings.Index(out, "# HELP sag_test_seconds")
	idxTotal := strings.Index(out, "# HELP sag_test_total")
	if !(idxGauge < idxSeconds && idxSeconds < idxTotal) {
		t.Fatalf("metrics not sorted by name:\n%s", out)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewRegistry().NewHistogram("bad", "", []float64{1, 1})
}

func TestDefaultRegistryHasPipelineHistograms(t *testing.T) {
	// The solver packages register on Default at init; this test only runs
	// in package obs so it just checks the registry machinery is shared.
	if Default == nil {
		t.Fatal("Default registry nil")
	}
}
