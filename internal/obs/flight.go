package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// FlightRecord is the retained postmortem evidence for one completed unit
// of work (a solve job, a resolve, a shed request): identity, outcome,
// timings, and an opaque Detail document the recording layer fills with
// whatever it wants preserved (trace doc, progress curve, admission
// estimates). Records are immutable once recorded.
type FlightRecord struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Outcome string    `json:"outcome"`
	Client  string    `json:"client,omitempty"`
	Error   string    `json:"error,omitempty"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	QueueMS float64   `json:"queue_ms"`
	WallMS  float64   `json:"wall_ms"`
	// Bad marks records worth keeping longer: failures, cancellations,
	// sheds, degraded answers. Bad records live in their own ring half, so
	// a burst of healthy traffic can never evict the evidence of the last
	// incident.
	Bad bool `json:"bad"`
	// Detail is a pre-marshaled JSON document; its schema belongs to the
	// recording layer.
	Detail json.RawMessage `json:"detail,omitempty"`

	seq uint64
}

// recRing is a fixed-capacity overwrite-oldest record buffer.
type recRing struct {
	buf   []FlightRecord
	next  int
	count int
}

func (r *recRing) add(rec FlightRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

func (r *recRing) appendAll(out []FlightRecord) []FlightRecord {
	for i := 0; i < r.count; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// FlightRecorder retains the last K completed-work records in memory, like
// an aircraft flight recorder: always on, bounded, and biased toward
// keeping the interesting half. Capacity is split evenly between a ring of
// ordinary records and a ring of Bad ones, so each class only evicts its
// own kind. Safe for concurrent use. The recorder is deliberately
// process-local and volatile — durability belongs to the journal, and a
// crash that loses the ring loses observability only.
type FlightRecorder struct {
	mu   sync.Mutex
	good recRing
	bad  recRing
	seq  uint64
}

// DefaultFlightRecords is the default total ring capacity.
const DefaultFlightRecords = 256

// NewFlightRecorder returns a recorder retaining up to capacity records
// (<=0 selects DefaultFlightRecords). Half the capacity is reserved for
// Bad records.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecords
	}
	badCap := capacity / 2
	if badCap == 0 {
		badCap = 1
	}
	goodCap := capacity - badCap
	if goodCap == 0 {
		goodCap = 1
	}
	return &FlightRecorder{
		good: recRing{buf: make([]FlightRecord, goodCap)},
		bad:  recRing{buf: make([]FlightRecord, badCap)},
	}
}

// Record retains rec, evicting the oldest record of the same class (Bad or
// not) once that class's ring is full.
func (f *FlightRecorder) Record(rec FlightRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	rec.seq = f.seq
	if rec.Bad {
		f.bad.add(rec)
	} else {
		f.good.add(rec)
	}
}

// Records returns every retained record, newest first.
func (f *FlightRecorder) Records() []FlightRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, f.good.count+f.bad.count)
	out = f.good.appendAll(out)
	out = f.bad.appendAll(out)
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// Get returns the retained record with the given ID.
func (f *FlightRecorder) Get(id string) (FlightRecord, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ring := range [2]*recRing{&f.bad, &f.good} {
		for i := 0; i < ring.count; i++ {
			idx := (ring.next - 1 - i + len(ring.buf)) % len(ring.buf)
			if ring.buf[idx].ID == id {
				return ring.buf[idx], true
			}
		}
	}
	return FlightRecord{}, false
}

// Len returns the number of retained records.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.good.count + f.bad.count
}

// flightIndex is the JSON shape of the record listing: summaries only, so
// the index stays small even when Detail documents are large.
type flightIndex struct {
	Schema  string          `json:"schema"`
	Count   int             `json:"count"`
	Records []flightSummary `json:"records"`
}

type flightSummary struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Outcome string    `json:"outcome"`
	Bad     bool      `json:"bad"`
	Client  string    `json:"client,omitempty"`
	Error   string    `json:"error,omitempty"`
	End     time.Time `json:"end"`
	WallMS  float64   `json:"wall_ms"`
}

// Handler serves the recorder over HTTP: GET <prefix> lists record
// summaries (newest first) and GET <prefix>/{id} returns one full record
// including its Detail document. Mount it at prefix on a debug listener:
//
//	mux.Handle("/debug/flight", rec.Handler("/debug/flight"))
//	mux.Handle("/debug/flight/", rec.Handler("/debug/flight"))
func (f *FlightRecorder) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, prefix)
		rest = strings.Trim(rest, "/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "" {
			recs := f.Records()
			idx := flightIndex{Schema: "sagflight/1", Count: len(recs)}
			idx.Records = make([]flightSummary, len(recs))
			for i, rec := range recs {
				idx.Records[i] = flightSummary{
					ID: rec.ID, Kind: rec.Kind, Outcome: rec.Outcome,
					Bad: rec.Bad, Client: rec.Client, Error: rec.Error,
					End: rec.End, WallMS: rec.WallMS,
				}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(idx)
			return
		}
		rec, ok := f.Get(rest)
		if !ok {
			http.Error(w, "no flight record: "+rest, http.StatusNotFound)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec)
	})
}

// Dump writes every retained record as indented JSON, newest first; wired
// to SIGQUIT in sagserved so an operator can extract the ring from a
// wedged process without HTTP.
func (f *FlightRecorder) Dump() []byte {
	recs := f.Records()
	b, err := json.MarshalIndent(struct {
		Schema  string         `json:"schema"`
		Count   int            `json:"count"`
		Records []FlightRecord `json:"records"`
	}{Schema: "sagflight/1", Count: len(recs), Records: recs}, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return b
}
