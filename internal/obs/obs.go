// Package obs is the zero-dependency observability substrate of the solve
// pipeline: nested timed spans carried through context.Context, and
// fixed-bucket atomic histograms published in Prometheus text format.
//
// # Spans
//
// A Trace is a tree of Spans. The root is created by whoever owns the unit
// of work (the solve service per job, sagcli per invocation) and attached
// to a context with WithTrace; every layer below opens children with
// StartSpan. When no trace is attached — the common library case —
// StartSpan returns a nil Span and costs nothing: no allocation, no clock
// read, and every Span method is a nil-safe no-op. Instrumentation is
// therefore sprinkled through the hot paths unconditionally and armed only
// by callers that want a breakdown.
//
// Spans are safe for concurrent use: parallel per-zone workers all open
// children of the same parent (the context is immutable, so each worker
// sees the same parent span) and the child list is mutex-guarded.
//
// # Histograms
//
// Histograms are fixed-bucket, lock-free counters registered on a Registry
// (usually Default, the process-wide one). Observe is allocation-free and
// safe for concurrent use, so solver hot paths record latencies and effort
// counts unconditionally.
package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ctxKey carries the current span through a context chain. It is
// deliberately value-preserving across context.WithoutCancel, so degrade
// overtime work (internal/core's ladder) stays attached to its solve span.
type ctxKey struct{}

// Trace is one tree of timed spans rooted at the span NewTrace creates.
type Trace struct {
	start time.Time
	root  *Span
}

// NewTrace starts a trace whose root span has the given name. End the root
// (or call Finish) before serializing with Doc.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = &Span{name: name, tr: t, start: t.start}
	return t
}

// Root returns the root span; nil-safe.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (idempotent); nil-safe.
func (t *Trace) Finish() { t.Root().End() }

// WithTrace returns a context carrying the trace's root span, arming
// StartSpan for everything below.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return WithSpan(ctx, t.Root())
}

// WithSpan returns a context carrying s as the current span. A nil span
// returns ctx unchanged (tracing stays disarmed).
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil when tracing is
// disarmed.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the span carried by ctx and returns a context
// carrying the child. When ctx carries no span it returns (ctx, nil)
// without allocating — the disarmed fast path — and the nil span absorbs
// every later method call.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Attr is one key/value annotation on a span. Values are strings; use the
// typed setters for numbers and booleans.
type Attr struct {
	Key, Value string
}

// Span is one timed operation in a trace. All methods are nil-safe no-ops
// so disarmed instrumentation costs nothing beyond the nil check.
type Span struct {
	name  string
	tr    *Trace
	start time.Time

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	attrs    []Attr
	children []*Span
}

// Name returns the span name; nil-safe ("" when nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Trace returns the trace this span belongs to; nil-safe.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// StartChild opens and returns a child span. Safe for concurrent use: the
// parallel zone workers of internal/par all attach children to the same
// parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, tr: s.tr, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span duration once; later calls are no-ops. A span that
// ran is never zero-length: coarse clocks are rounded up to 1ns so every
// recorded stage has a non-zero duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
		if s.dur <= 0 {
			s.dur = time.Nanosecond
		}
	}
	s.mu.Unlock()
}

// SetAttr sets a string attribute; the last value for a key wins.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetBool sets a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}

// SetFloat sets a float attribute (shortest round-trip formatting).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SpanDoc is the JSON shape of one span: offsets and durations in
// nanoseconds relative to the trace start, attributes, and children sorted
// by start time.
type SpanDoc struct {
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Spans   []*SpanDoc        `json:"spans,omitempty"`
}

// Doc snapshots the trace as a serializable span tree; nil-safe (nil trace
// gives nil doc). Spans still running are reported with their elapsed time
// so far.
func (t *Trace) Doc() *SpanDoc {
	if t == nil {
		return nil
	}
	return t.root.doc(t.start)
}

func (s *Span) doc(origin time.Time) *SpanDoc {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
		if dur <= 0 {
			dur = time.Nanosecond
		}
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	d := &SpanDoc{
		Name:    s.name,
		StartNS: s.start.Sub(origin).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
	}
	if len(attrs) > 0 {
		d.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		d.Spans = append(d.Spans, c.doc(origin))
	}
	// Children were appended in completion-race order under parallelism;
	// present them by start time so the tree reads chronologically.
	sort.SliceStable(d.Spans, func(i, j int) bool {
		return d.Spans[i].StartNS < d.Spans[j].StartNS
	})
	return d
}

// Find returns the first span in the doc tree (preorder) with the given
// name, or nil. It is a convenience for tests and CLI validation.
func (d *SpanDoc) Find(name string) *SpanDoc {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for _, c := range d.Spans {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Count returns the number of spans in the doc tree with the given name.
func (d *SpanDoc) Count(name string) int {
	if d == nil {
		return 0
	}
	n := 0
	if d.Name == name {
		n = 1
	}
	for _, c := range d.Spans {
		n += c.Count(name)
	}
	return n
}
