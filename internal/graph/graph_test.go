package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := New(3)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	mustAdd(t, g, 0, 1, 2.5)
	mustAdd(t, g, 1, 2, 1.5)
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Errorf("degrees = %d, %d", g.Degree(1), g.Degree(0))
	}
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0].U != 0 || edges[0].V != 1 || edges[1].U != 1 || edges[1].V != 2 {
		t.Errorf("edge order wrong: %v", edges)
	}
	v := g.AddVertex()
	if v != 3 || g.N() != 4 {
		t.Errorf("AddVertex = %d, N = %d", v, g.N())
	}
}

func TestGraphAddEdgeErrors(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 4, 5, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	wants := [][]int{{0, 1, 2}, {3}, {4, 5}}
	for i, want := range wants {
		if len(comps[i]) != len(want) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want)
		}
		for j := range want {
			if comps[i][j] != want[j] {
				t.Errorf("component %d = %v, want %v", i, comps[i], want)
			}
		}
	}
}

func TestPrimMSTKnownTree(t *testing.T) {
	// Classic 4-vertex example. MST = {0-1 (1), 1-2 (2), 1-3 (2)} total 5.
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 0, 2, 4)
	mustAdd(t, g, 1, 2, 2)
	mustAdd(t, g, 1, 3, 2)
	mustAdd(t, g, 2, 3, 5)
	res, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 5 {
		t.Errorf("Total = %v, want 5", res.Total)
	}
	if res.Parent[1] != 0 || res.Parent[2] != 1 || res.Parent[3] != 1 {
		t.Errorf("parents = %v", res.Parent)
	}
	ch := res.Children()
	if len(ch[1]) != 2 {
		t.Errorf("children of 1 = %v", ch[1])
	}
	path := res.PathToRoot(3)
	if len(path) != 3 || path[0] != 3 || path[1] != 1 || path[2] != 0 {
		t.Errorf("PathToRoot(3) = %v", path)
	}
}

func TestPrimMSTDisconnected(t *testing.T) {
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	res, err := g.PrimMST(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.InTree(1) || res.InTree(2) || res.InTree(3) {
		t.Errorf("tree membership wrong: parents %v", res.Parent)
	}
	if res.PathToRoot(2) != nil {
		t.Error("unreachable vertex has a path to root")
	}
}

func TestPrimMSTBadRoot(t *testing.T) {
	g := New(2)
	if _, err := g.PrimMST(5); err == nil {
		t.Error("bad root accepted")
	}
}

// Property: Prim and Kruskal agree on total MST weight for random connected
// graphs.
func TestPrimKruskalAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		// Random spanning chain guarantees connectivity, then extra edges.
		for v := 1; v < n; v++ {
			_ = g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*10)
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, 1+rng.Float64()*10)
			}
		}
		prim, err := g.PrimMST(0)
		if err != nil {
			return false
		}
		_, kw := g.KruskalMST()
		return math.Abs(prim.Total-kw) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the MST has exactly n-1 parent edges on connected graphs and
// every non-root vertex's path reaches the root.
func TestMSTStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		for v := 1; v < n; v++ {
			_ = g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*10)
		}
		res, err := g.PrimMST(0)
		if err != nil {
			return false
		}
		edges := 0
		for v := 0; v < n; v++ {
			if res.Parent[v] >= 0 {
				edges++
			}
			path := res.PathToRoot(v)
			if len(path) == 0 || path[len(path)-1] != 0 {
				return false
			}
		}
		return edges == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions returned false")
	}
	if uf.Union(0, 2) {
		t.Error("redundant union returned true")
	}
	if !uf.Connected(0, 2) || uf.Connected(0, 3) {
		t.Error("connectivity wrong")
	}
	if uf.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", uf.Sets())
	}
	if uf.Find(-1) != -1 || uf.Find(99) != -1 {
		t.Error("out-of-range Find should return -1")
	}
}

func TestBipartite(t *testing.T) {
	g := NewBipartite(3, 2)
	if err := g.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 0); err != nil { // duplicate is a no-op
		t.Fatal(err)
	}
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3", g.EdgeCount())
	}
	if g.DegB(0) != 2 || g.DegB(1) != 1 {
		t.Errorf("DegB = %d, %d", g.DegB(0), g.DegB(1))
	}
	if g.MaxDegB() != 2 {
		t.Errorf("MaxDegB = %d", g.MaxDegB())
	}
	as := g.AsOfB(0)
	if len(as) != 2 || as[0] != 0 || as[1] != 1 {
		t.Errorf("AsOfB(0) = %v", as)
	}
	g.RemoveEdge(0, 0)
	if g.HasEdge(0, 0) || g.EdgeCount() != 2 {
		t.Error("RemoveEdge failed")
	}
	if err := g.AddEdge(5, 0); err == nil {
		t.Error("out-of-range bipartite edge accepted")
	}
}

func TestBipartiteClone(t *testing.T) {
	g := NewBipartite(2, 2)
	_ = g.AddEdge(0, 0)
	_ = g.AddEdge(1, 1)
	c := g.Clone()
	c.RemoveEdge(0, 0)
	if !g.HasEdge(0, 0) {
		t.Error("Clone is not independent of the original")
	}
	if c.HasEdge(0, 0) || !c.HasEdge(1, 1) {
		t.Error("Clone content wrong")
	}
}
