package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression, used by Kruskal's algorithm and connectivity checks.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	if n < 0 {
		n = 0
	}
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set. Out-of-range x returns -1.
func (uf *UnionFind) Find(x int) int {
	if x < 0 || x >= len(uf.parent) {
		return -1
	}
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets of x and y, returning true when they were distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx < 0 || ry < 0 || rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	return rx >= 0 && rx == ry
}

// Sets returns the number of disjoint sets remaining.
func (uf *UnionFind) Sets() int { return uf.sets }
