package graph

import (
	"container/heap"
	"fmt"
	"sort"
)

// MSTResult describes a rooted spanning tree: Parent[v] is v's parent vertex
// (-1 for the root and for vertices unreachable from it), ParentEdge[v] the
// weight of the edge to the parent, and Total the summed weight of the tree
// edges.
type MSTResult struct {
	Root       int
	Parent     []int
	ParentEdge []float64
	Total      float64
}

// InTree reports whether v was reached by the spanning tree (the root is in
// the tree by definition).
func (r *MSTResult) InTree(v int) bool {
	if v < 0 || v >= len(r.Parent) {
		return false
	}
	return v == r.Root || r.Parent[v] >= 0
}

// Children returns, for each vertex, the list of its tree children, sorted.
func (r *MSTResult) Children() [][]int {
	ch := make([][]int, len(r.Parent))
	for v, p := range r.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	for i := range ch {
		sort.Ints(ch[i])
	}
	return ch
}

// PathToRoot returns the vertex sequence from v up to (and including) the
// root, or nil when v is not in the tree.
func (r *MSTResult) PathToRoot(v int) []int {
	if !r.InTree(v) {
		return nil
	}
	var path []int
	for v != -1 {
		path = append(path, v)
		if v == r.Root {
			return path
		}
		v = r.Parent[v]
	}
	return path
}

// pqItem is a Prim frontier entry.
type pqItem struct {
	v    int
	from int
	w    float64
}

type prioQueue []pqItem

func (q prioQueue) Len() int            { return len(q) }
func (q prioQueue) Less(i, j int) bool  { return q[i].w < q[j].w }
func (q prioQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *prioQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *prioQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// PrimMST computes a minimum spanning tree of the component containing root
// using Prim's algorithm. Vertices in other components have Parent -1.
// MBMC (Alg. 7, Step 5) roots the tree at the (virtual) base station.
func (g *Graph) PrimMST(root int) (*MSTResult, error) {
	if root < 0 || root >= g.n {
		return nil, fmt.Errorf("graph: MST root %d out of range [0,%d)", root, g.n)
	}
	res := &MSTResult{
		Root:       root,
		Parent:     make([]int, g.n),
		ParentEdge: make([]float64, g.n),
	}
	for i := range res.Parent {
		res.Parent[i] = -1
	}
	inTree := make([]bool, g.n)
	pq := &prioQueue{{v: root, from: -1, w: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if inTree[it.v] {
			continue
		}
		inTree[it.v] = true
		if it.from >= 0 {
			res.Parent[it.v] = it.from
			res.ParentEdge[it.v] = it.w
			res.Total += it.w
		}
		for _, e := range g.adj[it.v] {
			if !inTree[e.V] {
				heap.Push(pq, pqItem{v: e.V, from: it.v, w: e.W})
			}
		}
	}
	return res, nil
}

// KruskalMST returns a minimum spanning forest as a list of edges, plus the
// total weight. Ties are broken by (U, V) for determinism.
func (g *Graph) KruskalMST() ([]Edge, float64) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].W != edges[j].W {
			return edges[i].W < edges[j].W
		}
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	uf := NewUnionFind(g.n)
	var out []Edge
	total := 0.0
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
			total += e.W
		}
	}
	return out, total
}
