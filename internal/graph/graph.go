// Package graph provides the small graph substrate the relay algorithms
// need: weighted undirected graphs, minimum spanning trees (Prim and
// Kruskal), union-find, connected components, and the bipartite coverage
// graph used by the Coverage Link Escape step.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a weighted undirected edge between vertex indices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph over vertices 0..N-1 with an
// adjacency-list representation. The zero value is an empty graph; use New
// to pre-size the vertex set.
type Graph struct {
	n   int
	adj [][]Edge
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts the undirected edge (u, v) with weight w. It returns an
// error for out-of-range endpoints or self-loops, which the relay
// construction never produces legitimately.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	g.adj[u] = append(g.adj[u], Edge{U: u, V: v, W: w})
	g.adj[v] = append(g.adj[v], Edge{U: v, V: u, W: w})
	return nil
}

// Neighbors returns the edges incident to u (with Edge.U == u). The returned
// slice is owned by the graph; callers must not modify it.
func (g *Graph) Neighbors(u int) []Edge {
	if u < 0 || u >= g.n {
		return nil
	}
	return g.adj[u]
}

// Edges returns every undirected edge exactly once (U < V), sorted by
// (U, V) for determinism.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if e.U < e.V {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by their smallest vertex. This implements
// Step 4 of the Zone Partition algorithm (Alg. 2): zones are the connected
// components of the interference graph.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{}
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.V] {
					seen[e.V] = true
					stack = append(stack, e.V)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
