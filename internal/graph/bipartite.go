package graph

import (
	"fmt"
	"sort"
)

// Bipartite is a bipartite graph between side A (in the paper: subscriber
// stations) and side B (candidate relay points). It is the structure built
// by Coverage Link Escape (Alg. 3, Steps 1-2) and consumed by RS Sliding
// Movement (Alg. 4).
type Bipartite struct {
	nA, nB int
	// adjacency as sorted sets, maintained by add/remove
	aTo map[int]map[int]bool // a -> set of b
	bTo map[int]map[int]bool // b -> set of a
}

// NewBipartite returns an empty bipartite graph with nA vertices on side A
// and nB on side B.
func NewBipartite(nA, nB int) *Bipartite {
	if nA < 0 {
		nA = 0
	}
	if nB < 0 {
		nB = 0
	}
	return &Bipartite{
		nA:  nA,
		nB:  nB,
		aTo: make(map[int]map[int]bool),
		bTo: make(map[int]map[int]bool),
	}
}

// NA returns the number of side-A vertices.
func (g *Bipartite) NA() int { return g.nA }

// NB returns the number of side-B vertices.
func (g *Bipartite) NB() int { return g.nB }

// AddEdge inserts edge (a, b). Duplicate inserts are no-ops.
func (g *Bipartite) AddEdge(a, b int) error {
	if a < 0 || a >= g.nA || b < 0 || b >= g.nB {
		return fmt.Errorf("graph: bipartite edge (%d,%d) out of range A[0,%d) B[0,%d)", a, b, g.nA, g.nB)
	}
	if g.aTo[a] == nil {
		g.aTo[a] = make(map[int]bool)
	}
	if g.bTo[b] == nil {
		g.bTo[b] = make(map[int]bool)
	}
	g.aTo[a][b] = true
	g.bTo[b][a] = true
	return nil
}

// RemoveEdge deletes edge (a, b) if present.
func (g *Bipartite) RemoveEdge(a, b int) {
	if s := g.aTo[a]; s != nil {
		delete(s, b)
	}
	if s := g.bTo[b]; s != nil {
		delete(s, a)
	}
}

// HasEdge reports whether edge (a, b) is present.
func (g *Bipartite) HasEdge(a, b int) bool { return g.aTo[a][b] }

// BsOfA returns the sorted side-B neighbours of a.
func (g *Bipartite) BsOfA(a int) []int { return sortedKeys(g.aTo[a]) }

// AsOfB returns the sorted side-A neighbours of b.
func (g *Bipartite) AsOfB(b int) []int { return sortedKeys(g.bTo[b]) }

// DegA returns the degree of side-A vertex a.
func (g *Bipartite) DegA(a int) int { return len(g.aTo[a]) }

// DegB returns the degree of side-B vertex b.
func (g *Bipartite) DegB(b int) int { return len(g.bTo[b]) }

// MaxDegB returns the maximum degree over side B (0 for an edgeless graph).
// This is n_max of Alg. 3, Step 3.
func (g *Bipartite) MaxDegB() int {
	max := 0
	for b := 0; b < g.nB; b++ {
		if d := g.DegB(b); d > max {
			max = d
		}
	}
	return max
}

// EdgeCount returns the number of edges.
func (g *Bipartite) EdgeCount() int {
	n := 0
	for _, s := range g.aTo {
		n += len(s)
	}
	return n
}

// Clone returns a deep copy of the graph.
func (g *Bipartite) Clone() *Bipartite {
	c := NewBipartite(g.nA, g.nB)
	for a, s := range g.aTo {
		for b := range s {
			_ = c.AddEdge(a, b) // indices are valid by construction
		}
	}
	return c
}

func sortedKeys(s map[int]bool) []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
