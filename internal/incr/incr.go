// Package incr is the incremental re-solve engine: it turns "the same field
// again, slightly changed" from a full-pipeline solve into a splice of
// cached per-zone work plus re-solves of only the dirty zones.
//
// The design leans entirely on content addressing rather than explicit
// invalidation. The zone partition (Alg. 2) makes zones independent
// subproblems, so every per-zone artifact — coverage placement, PRO power
// block, and the whole upper tier keyed by the relay set — is cached under
// a canonical hash of exactly its inputs. Applying a scenario delta and
// re-solving through the same caches then reuses every zone whose inputs
// are unchanged *mechanically*: a mutation that moves a subscriber, splits
// a zone, or merges two zones simply produces zones whose hashes miss.
// There is no dirty-set bookkeeping to get wrong, which is what makes the
// central invariant cheap to uphold: an incremental solve is byte-for-byte
// identical to a cold full solve of the mutated scenario, because cache
// hits splice values a cold solve would have recomputed bit-identically.
//
// The Planner (Plan) computes the dirty set anyway — by diffing the base
// and mutated partitions' coverage-variant zone hashes — for observability
// (the dirty-fraction histogram, span attributes) and to assemble fast-mode
// warm-start seeds. Fast mode (WireFast) additionally seeds dirty-zone
// branch-and-bound searches with the base scenario's incumbent and final
// simplex basis; that trades the byte-identity guarantee for latency, so
// fast solves run against read-only stores and are never cached.
package incr

import (
	"sync/atomic"

	"sagrelay/internal/fault"
	"sagrelay/internal/obs"
)

// siteZone is the fault-injection point checked on every zone-store lookup;
// one atomic load when injection is off. Arming it makes incremental solves
// fail mid-splice, which the chaos suite uses to prove jobs stay terminal.
var siteZone = fault.Register("incr.zone")

// FractionBuckets are histogram bounds for ratio-valued observations in
// [0, 1], bucketed around the interesting "how much of the work was dirty"
// break points.
var FractionBuckets = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// dirtyFraction records, per planned resolve, the fraction of the mutated
// scenario's zones whose inputs changed.
var dirtyFraction = obs.Default.NewHistogram(
	"sag_incr_dirty_fraction",
	"Fraction of zones re-solved (not cache-spliced) per incremental resolve.",
	FractionBuckets,
)

// zonesReused / zonesResolved count zone-level coverage outcomes
// process-wide across all jobs: a reuse is a zone-store hit spliced into a
// result, a resolve is a zone actually solved (and offered to the store).
var (
	zonesReused   atomic.Int64
	zonesResolved atomic.Int64
)

// ZonesReused returns the process-wide count of zone coverage solutions
// spliced from the zone store.
func ZonesReused() int64 { return zonesReused.Load() }

// ZonesResolved returns the process-wide count of zone coverage solutions
// computed by an actual solve.
func ZonesResolved() int64 { return zonesResolved.Load() }
