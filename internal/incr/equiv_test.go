package incr_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"sagrelay/internal/core"
	"sagrelay/internal/geom"
	"sagrelay/internal/incr"
	"sagrelay/internal/lower"
	"sagrelay/internal/milp"
	"sagrelay/internal/scenario"
	"sagrelay/internal/upper"
)

func solveCfg(method core.CoverageMethod) core.Config {
	return core.Config{
		Coverage:          method,
		CoveragePower:     core.PowerGreen,
		Connectivity:      core.ConnMBMC,
		ConnectivityPower: core.PowerGreen,
	}
}

// fingerprint flattens everything deterministic about a solution — every
// relay, cover assignment, tree edge and power — into comparable bytes.
// Wall-clock fields are deliberately absent.
func fingerprint(t *testing.T, sol *core.Solution) string {
	t.Helper()
	type fp struct {
		Method         string
		Feasible       bool
		Degraded       bool
		Reason         string
		PL, PH, PTotal float64
		Relays         []lower.Relay
		Assign         []int
		Zones          [][]int
		CovPowers      []float64
		Edges          []upper.TreeEdge
		ConnRelays     []upper.ConnRelay
		ConnPowers     []float64
	}
	f := fp{
		Method:   sol.Method,
		Feasible: sol.Feasible,
		Degraded: sol.Degraded,
		Reason:   sol.DegradedReason,
		PL:       sol.PL, PH: sol.PH, PTotal: sol.PTotal,
	}
	if sol.Coverage != nil {
		f.Relays, f.Assign, f.Zones = sol.Coverage.Relays, sol.Coverage.AssignOf, sol.Coverage.Zones
	}
	if sol.CoveragePower != nil {
		f.CovPowers = sol.CoveragePower.Powers
	}
	if sol.Connectivity != nil {
		f.Edges, f.ConnRelays = sol.Connectivity.Edges, sol.Connectivity.Relays
	}
	if sol.ConnectivityPower != nil {
		f.ConnPowers = sol.ConnectivityPower.Powers
	}
	b, err := json.Marshal(&f)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return string(b)
}

func mustRun(t *testing.T, sc *scenario.Scenario, cfg core.Config) *core.Solution {
	t.Helper()
	sol, err := core.Run(context.Background(), sc, cfg)
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	return sol
}

// clusteredScenario builds a pinned multi-zone instance: three well-
// separated subscriber clusters whose coverage circles cannot overlap, so
// ZonePartition yields (at least) three zones deterministically.
func clusteredScenario(t *testing.T, perCluster int) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 600, NumSS: 3 * perCluster, NumBS: 2, SNRdB: -15, Seed: 17,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	centers := []geom.Point{{X: 100, Y: 100}, {X: 500, Y: 100}, {X: 300, Y: 500}}
	rng := rand.New(rand.NewSource(99))
	for i := range sc.Subscribers {
		c := centers[i/perCluster]
		sc.Subscribers[i].Pos = geom.Point{
			X: c.X + rng.Float64()*40 - 20,
			Y: c.Y + rng.Float64()*40 - 20,
		}
		sc.Subscribers[i].DistReq = 30 + rng.Float64()*10
		sc.Subscribers[i].MinRxPower = sc.DeriveMinRxPower(sc.Subscribers[i].DistReq)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("clustered scenario invalid: %v", err)
	}
	return sc
}

// scriptedDeltas covers every mutation kind against the current scenario,
// including a zone-emptying removal and a partition-changing long move.
func scriptedDeltas(t *testing.T, sc *scenario.Scenario, nextID *int) []*scenario.Delta {
	t.Helper()
	d := func(ops ...scenario.DeltaOp) *scenario.Delta {
		return &scenario.Delta{Version: scenario.DeltaVersion, Ops: ops}
	}
	// Pick a zone-emptying victim: a subscriber forming a singleton zone if
	// one exists, else any subscriber (still a legal removal).
	zones, err := lower.ZonePartition(sc)
	if err != nil {
		t.Fatalf("ZonePartition: %v", err)
	}
	victim := sc.Subscribers[0].ID
	for _, z := range zones {
		if len(z) == 1 {
			victim = sc.Subscribers[z[0]].ID
			break
		}
	}
	s0 := sc.Subscribers[len(sc.Subscribers)/2]
	*nextID++
	addID := *nextID
	*nextID++
	bsID := *nextID
	return []*scenario.Delta{
		// Small move: dirties one zone.
		d(scenario.DeltaOp{Op: scenario.OpMoveSS, ID: s0.ID,
			Pos: &geom.Point{X: s0.Pos.X + 7, Y: s0.Pos.Y + 3}}),
		// Long move across the field: changes the zone partition on both
		// sides (leaves one zone, enters or creates another).
		d(scenario.DeltaOp{Op: scenario.OpMoveSS, ID: s0.ID,
			Pos: &geom.Point{X: 555, Y: 480}}),
		// Traffic change: new demand radius, derived receive floor.
		d(scenario.DeltaOp{Op: scenario.OpTrafficSS, ID: sc.Subscribers[1].ID, DistReq: 22}),
		// Add a subscriber (may merge zones it lands between).
		d(scenario.DeltaOp{Op: scenario.OpAddSS, ID: addID,
			Pos: &geom.Point{X: 320, Y: 140}, DistReq: 28}),
		// Remove the zone-emptying victim.
		d(scenario.DeltaOp{Op: scenario.OpRemoveSS, ID: victim}),
		// Base-station add then remove (upper tier re-runs, lower reuses).
		d(scenario.DeltaOp{Op: scenario.OpAddBS, ID: bsID, Pos: &geom.Point{X: 50, Y: 560}}),
		d(scenario.DeltaOp{Op: scenario.OpRemoveBS, ID: bsID}),
	}
}

// TestIncrEquivalence is the central invariant of the incremental engine: a
// solve of the mutated scenario through warmed zone-level stores must be
// identical — relay for relay, float for float — to a cold solve with no
// caches at all. It storms scripted deltas of every mutation kind plus a
// random tail, for both the heuristic (SAMC) and exact (IAC) pipelines.
func TestIncrEquivalence(t *testing.T) {
	for _, method := range []core.CoverageMethod{core.CoverSAMC, core.CoverIAC} {
		t.Run(method.String(), func(t *testing.T) {
			sc, err := scenario.Generate(scenario.GenConfig{
				FieldSide: 450, NumSS: 14, NumBS: 2, SNRdB: -15, Seed: 23,
			})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			stores := incr.NewStores(0)
			cfgIncr := solveCfg(method)
			stores.Wire(&cfgIncr)
			cfgCold := solveCfg(method)

			mustRun(t, sc, cfgIncr) // warm the stores on the base

			// Identical re-solve: every zone must splice. For the exact
			// pipeline that means literally zero branch-and-bound nodes.
			resolved0 := incr.ZonesResolved()
			nodes0 := milp.TotalNodes()
			again := mustRun(t, sc, cfgIncr)
			if got := incr.ZonesResolved() - resolved0; got != 0 {
				t.Errorf("identical re-solve re-solved %d zones, want 0", got)
			}
			if method != core.CoverSAMC {
				if got := milp.TotalNodes() - nodes0; got != 0 {
					t.Errorf("identical re-solve explored %d B&B nodes, want 0", got)
				}
			}
			if fingerprint(t, again) != fingerprint(t, mustRun(t, sc, cfgCold)) {
				t.Fatal("identical re-solve differs from cold solve")
			}

			nextID := 9000
			cur := sc
			check := func(tag string, d *scenario.Delta) {
				mut, err := d.Apply(cur)
				if err != nil {
					t.Fatalf("%s: Apply: %v", tag, err)
				}
				inc := mustRun(t, mut, cfgIncr)
				cold := mustRun(t, mut, cfgCold)
				if fingerprint(t, inc) != fingerprint(t, cold) {
					t.Fatalf("%s: incremental solve differs from cold solve\nincr: %s\ncold: %s",
						tag, fingerprint(t, inc), fingerprint(t, cold))
				}
				cur = mut
			}
			for i, d := range scriptedDeltas(t, cur, &nextID) {
				check(d.Ops[0].Op+"#"+string(rune('0'+i)), d)
			}
			rng := rand.New(rand.NewSource(31))
			for round := 0; round < 6; round++ {
				d := randomStormDelta(rng, cur, &nextID)
				if _, err := d.Apply(cur); err != nil {
					continue // random op hit a constraint (e.g. coincidence)
				}
				check("storm", d)
			}
		})
	}
}

func randomStormDelta(rng *rand.Rand, sc *scenario.Scenario, nextID *int) *scenario.Delta {
	pick := func() int { return sc.Subscribers[rng.Intn(len(sc.Subscribers))].ID }
	pos := func() *geom.Point {
		return &geom.Point{X: rng.Float64() * 450, Y: rng.Float64() * 450}
	}
	var op scenario.DeltaOp
	switch rng.Intn(4) {
	case 0:
		*nextID++
		op = scenario.DeltaOp{Op: scenario.OpAddSS, ID: *nextID, Pos: pos(), DistReq: 18 + rng.Float64()*20}
	case 1:
		op = scenario.DeltaOp{Op: scenario.OpMoveSS, ID: pick(), Pos: pos()}
	case 2:
		if len(sc.Subscribers) > 4 {
			op = scenario.DeltaOp{Op: scenario.OpRemoveSS, ID: pick()}
		} else {
			op = scenario.DeltaOp{Op: scenario.OpMoveSS, ID: pick(), Pos: pos()}
		}
	default:
		op = scenario.DeltaOp{Op: scenario.OpTrafficSS, ID: pick(), DistReq: 18 + rng.Float64()*20}
	}
	return &scenario.Delta{Version: scenario.DeltaVersion, Ops: []scenario.DeltaOp{op}}
}

// TestIncrSingleMoveReuse proves the headline claim with counters: on a
// pinned multi-zone instance, moving one subscriber re-solves no more zones
// than the planner marked dirty and splices all the rest.
func TestIncrSingleMoveReuse(t *testing.T) {
	sc := clusteredScenario(t, 5)
	stores := incr.NewStores(0)
	cfg := solveCfg(core.CoverIAC)
	stores.Wire(&cfg)
	mustRun(t, sc, cfg)

	s0 := sc.Subscribers[0]
	d := &scenario.Delta{Version: scenario.DeltaVersion, Ops: []scenario.DeltaOp{
		{Op: scenario.OpMoveSS, ID: s0.ID, Pos: &geom.Point{X: s0.Pos.X + 5, Y: s0.Pos.Y - 4}},
	}}
	mut, err := d.Apply(sc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	plan, err := stores.Plan(sc, mut, incr.PlanOptions{Coverage: core.CoverIAC, ILP: cfg.ILP})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.TotalZones < 3 {
		t.Fatalf("instance has %d zones, want >= 3 (not multi-zone)", plan.TotalZones)
	}
	if plan.DirtyZones == 0 || plan.DirtyZones >= plan.TotalZones {
		t.Fatalf("single move dirtied %d/%d zones, want a proper subset", plan.DirtyZones, plan.TotalZones)
	}

	reused0, resolved0 := incr.ZonesReused(), incr.ZonesResolved()
	mustRun(t, mut, cfg)
	resolved := incr.ZonesResolved() - resolved0
	reused := incr.ZonesReused() - reused0
	if resolved > int64(plan.DirtyZones) {
		t.Errorf("re-solved %d zones, planner said only %d were dirty", resolved, plan.DirtyZones)
	}
	if resolved == 0 {
		t.Error("re-solved 0 zones; the move should dirty at least one")
	}
	if want := int64(plan.TotalZones - plan.DirtyZones); reused < want {
		t.Errorf("reused %d zones, want >= %d (clean zones must splice)", reused, want)
	}
}

// TestIncrFastMode checks fast mode's contract: the result is still a valid
// solution for the mutated scenario and nothing fast produced entered the
// stores (read-only wiring).
func TestIncrFastMode(t *testing.T) {
	sc := clusteredScenario(t, 4)
	stores := incr.NewStores(0)
	cfg := solveCfg(core.CoverIAC)
	stores.Wire(&cfg)
	mustRun(t, sc, cfg)

	s0 := sc.Subscribers[2]
	d := &scenario.Delta{Version: scenario.DeltaVersion, Ops: []scenario.DeltaOp{
		{Op: scenario.OpMoveSS, ID: s0.ID, Pos: &geom.Point{X: s0.Pos.X - 6, Y: s0.Pos.Y + 6}},
	}}
	mut, err := d.Apply(sc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	plan, err := stores.Plan(sc, mut, incr.PlanOptions{Coverage: core.CoverIAC, ILP: cfg.ILP, Fast: true})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	z0, p0, u0 := stores.Len()
	fastCfg := solveCfg(core.CoverIAC)
	stores.WireFast(&fastCfg, plan.Seeder)
	sol := mustRun(t, mut, fastCfg)
	if !sol.Feasible {
		t.Fatal("fast solve infeasible on a feasible instance")
	}
	// Same optimal relay count and total power as the exact solve — fast
	// mode may pick a different optimum, never a worse one.
	exact := mustRun(t, mut, cfg)
	if len(sol.Coverage.Relays) != len(exact.Coverage.Relays) {
		t.Errorf("fast solve placed %d relays, exact %d", len(sol.Coverage.Relays), len(exact.Coverage.Relays))
	}
	z1, p1, u1 := stores.Len()
	if z1 != z0 && p1 != p0 && u1 != u0 {
		// Note: the exact solve above may legitimately add entries; assert
		// only that the fast wiring itself is read-only by re-running fast
		// and demanding no further growth.
		z1, p1, u1 = stores.Len()
		mustRun(t, mut, fastCfg)
		z2, p2, u2 := stores.Len()
		if z2 != z1 || p2 != p1 || u2 != u1 {
			t.Errorf("fast solve grew the stores: (%d,%d,%d) -> (%d,%d,%d)", z1, p1, u1, z2, p2, u2)
		}
	}
}
