package incr

import (
	"container/list"
	"sync"

	"sagrelay/internal/core"
	"sagrelay/internal/fault"
	"sagrelay/internal/lower"
)

// Stores bundles the three zone-level content-addressed LRUs that make
// incremental re-solves (and cross-job reuse during full solves) work:
//
//	zones — per-zone coverage placements (lower.ZoneEntry)
//	power — per-zone PRO power blocks
//	upper — whole connectivity-stage results (core.UpperEntry)
//
// One Stores instance is shared by every job of a server; all three LRUs
// are safe for concurrent use.
type Stores struct {
	zones *lruStore
	power *lruStore
	upper *lruStore
}

// NewStores sizes each store to maxEntries (0 means 1024).
func NewStores(maxEntries int) *Stores {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &Stores{
		zones: newLRUStore(maxEntries),
		power: newLRUStore(maxEntries),
		upper: newLRUStore(maxEntries),
	}
}

// Wire installs the stores into a pipeline configuration in exact mode:
// zone placements, power blocks and upper-tier results are consulted and
// populated, and every splice is byte-identical to re-solving. Safe for
// full solves and incremental re-solves alike.
func (s *Stores) Wire(cfg *core.Config) {
	cfg.SAMC.Cache = &zoneAdapter{s: s.zones}
	cfg.ILP.Cache = &zoneAdapter{s: s.zones}
	cfg.ZonePowerCache = &powerAdapter{s: s.power}
	cfg.UpperCache = &upperAdapter{s: s.upper}
}

// WireFast installs the stores read-only plus fast-mode warm-start seeding
// for dirty zones. A fast solve may land on a different (equally good)
// optimum than a cold solve, so nothing it produces may enter any cache —
// the adapters still serve hits (those splices are exact) but drop every
// Put, and the caller must also keep the result out of whole-result caches.
func (s *Stores) WireFast(cfg *core.Config, seed lower.ZoneSeed) {
	cfg.SAMC.Cache = &zoneAdapter{s: s.zones, readOnly: true}
	cfg.ILP.Cache = &zoneAdapter{s: s.zones, readOnly: true}
	cfg.ILP.Seed = seed
	cfg.ZonePowerCache = &powerAdapter{s: s.power, readOnly: true}
	cfg.UpperCache = &upperAdapter{s: s.upper, readOnly: true}
}

// zoneAdapter implements lower.ZoneCache over the zone store, carrying the
// incr.zone fault-injection site and the reuse/resolve counters.
type zoneAdapter struct {
	s        *lruStore
	readOnly bool
}

func (a *zoneAdapter) Get(key string) (*lower.ZoneEntry, bool, error) {
	if err := fault.Check(siteZone); err != nil {
		return nil, false, err
	}
	v, ok := a.s.get(key)
	if !ok {
		return nil, false, nil
	}
	zonesReused.Add(1)
	return v.(*lower.ZoneEntry), true, nil
}

func (a *zoneAdapter) Put(key string, e *lower.ZoneEntry) {
	zonesResolved.Add(1)
	// Truncated entries are load-dependent incumbents; storing one would
	// let a later solve splice a non-reproducible placement.
	if e.Truncated || a.readOnly {
		return
	}
	a.s.put(key, e)
}

// powerAdapter implements lower.ZonePowerCache over the power store.
type powerAdapter struct {
	s        *lruStore
	readOnly bool
}

func (a *powerAdapter) GetPower(key string) ([]float64, bool) {
	v, ok := a.s.get(key)
	if !ok {
		return nil, false
	}
	return v.([]float64), true
}

func (a *powerAdapter) PutPower(key string, powers []float64) {
	if a.readOnly {
		return
	}
	a.s.put(key, powers)
}

// upperAdapter implements core.UpperCache over the upper store.
type upperAdapter struct {
	s        *lruStore
	readOnly bool
}

func (a *upperAdapter) Get(key string) (*core.UpperEntry, bool) {
	v, ok := a.s.get(key)
	if !ok {
		return nil, false
	}
	return v.(*core.UpperEntry), true
}

func (a *upperAdapter) Put(key string, e *core.UpperEntry) {
	if a.readOnly {
		return
	}
	a.s.put(key, e)
}

// lruStore is a mutex-guarded LRU map (the same container/list shape as the
// solve service's whole-result cache). First put wins: a concurrent
// duplicate insert keeps the existing value, so two jobs racing on the same
// key can never observe two different entries for it.
type lruStore struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recent
}

type lruItem struct {
	key string
	val any
}

func newLRUStore(max int) *lruStore {
	return &lruStore{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

func (c *lruStore) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

func (c *lruStore) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		_ = el // first put is authoritative; keep the existing value
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, val: val})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruItem).key)
	}
}

func (c *lruStore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Len returns (zones, power, upper) entry counts, for metrics.
func (s *Stores) Len() (zones, power, upper int) {
	return s.zones.len(), s.power.len(), s.upper.len()
}
