package incr

import (
	"fmt"
	"strconv"
	"strings"

	"sagrelay/internal/core"
	"sagrelay/internal/lower"
	"sagrelay/internal/lp"
	"sagrelay/internal/scenario"
)

// PlanOptions carry the solve configuration a resolve will run with, so the
// planner reproduces the exact zone partition and cache keys of the solve.
type PlanOptions struct {
	// Coverage is the coverage method the resolve will use.
	Coverage core.CoverageMethod
	// ILP are the ILP options (for the partition's sub-zone split and for
	// fast-mode seed lookups); ignored for SAMC.
	ILP lower.ILPOptions
	// Fast builds warm-start seeds for dirty zones from the base
	// scenario's cached entries (ILP methods only).
	Fast bool
}

// Plan is the dirty-set analysis of one delta: which of the mutated
// scenario's zones can splice from cache and which must re-solve. It is
// observability (and fast-mode seed) machinery — the caches themselves
// enforce reuse mechanically, so a Plan is never needed for correctness.
type Plan struct {
	// TotalZones and DirtyZones count the mutated scenario's zones and the
	// subset whose coverage-variant inputs differ from every base zone
	// (including zones created or reshaped by a partition change: a zone
	// that splits, merges, or shifts membership hashes differently on both
	// sides and is conservatively counted dirty).
	TotalZones int
	DirtyZones int
	// DirtyFraction is DirtyZones/TotalZones (0 for an empty partition).
	DirtyFraction float64
	// Dirty marks, per mutated-scenario zone index, the zones that must
	// re-solve; len(Dirty) == TotalZones. ZoneSizes gives each zone's
	// subscriber count. Both let a progress consumer pre-seed per-zone rows
	// for a resolve before any solver event arrives.
	Dirty     []bool
	ZoneSizes []int
	// Seeder supplies fast-mode warm starts for the dirty zones, matching
	// each to the base zone sharing the most subscriber IDs; nil unless
	// PlanOptions.Fast was set and base entries were available.
	Seeder lower.ZoneSeed
}

// Plan partitions both scenarios the way the solve will, diffs the
// coverage-variant zone hashes, and records the dirty fraction on the
// sag_incr_dirty_fraction histogram.
func (s *Stores) Plan(base, mutated *scenario.Scenario, opts PlanOptions) (*Plan, error) {
	baseZones, err := partitionOf(base, opts)
	if err != nil {
		return nil, fmt.Errorf("incr: plan base: %w", err)
	}
	mutZones, err := partitionOf(mutated, opts)
	if err != nil {
		return nil, fmt.Errorf("incr: plan mutated: %w", err)
	}
	// Multiset of base zone hashes: two identical base zones supply two
	// reuses, no more.
	baseHashes := make(map[string]int, len(baseZones))
	for _, z := range baseZones {
		baseHashes[base.CanonicalZoneHash(z, scenario.ZoneHashCoverage)]++
	}
	p := &Plan{
		TotalZones: len(mutZones),
		Dirty:      make([]bool, len(mutZones)),
		ZoneSizes:  make([]int, len(mutZones)),
	}
	var dirty [][]int
	for zi, z := range mutZones {
		p.ZoneSizes[zi] = len(z)
		h := mutated.CanonicalZoneHash(z, scenario.ZoneHashCoverage)
		if baseHashes[h] > 0 {
			baseHashes[h]--
			continue
		}
		p.DirtyZones++
		p.Dirty[zi] = true
		dirty = append(dirty, z)
	}
	if p.TotalZones > 0 {
		p.DirtyFraction = float64(p.DirtyZones) / float64(p.TotalZones)
	}
	dirtyFraction.Observe(p.DirtyFraction)
	if opts.Fast && opts.Coverage != core.CoverSAMC {
		p.Seeder = s.seederFor(base, mutated, baseZones, dirty, opts)
	}
	return p, nil
}

// partitionOf reproduces the zone partition the coverage solver will
// compute: ZonePartition for every method, plus the sub-zone bisection for
// the ILP methods.
func partitionOf(sc *scenario.Scenario, opts PlanOptions) ([][]int, error) {
	zones, err := lower.ZonePartition(sc)
	if err != nil {
		return nil, err
	}
	if opts.Coverage != core.CoverSAMC {
		maxSS := opts.ILP.MaxZoneSS
		if maxSS <= 0 {
			maxSS = lower.DefaultMaxZoneSS
		}
		zones = lower.SplitLargeZones(sc, zones, maxSS)
	}
	return zones, nil
}

// seederFor matches each dirty mutated zone to the base zone sharing the
// most subscriber IDs and, when that base zone's solve is in the zone
// store, records its incumbent and final basis as the dirty zone's seed.
func (s *Stores) seederFor(base, mutated *scenario.Scenario, baseZones, dirty [][]int, opts PlanOptions) lower.ZoneSeed {
	method := opts.Coverage.String()
	baseIDs := make([]map[int]bool, len(baseZones))
	for i, z := range baseZones {
		ids := make(map[int]bool, len(z))
		for _, j := range z {
			ids[base.Subscribers[j].ID] = true
		}
		baseIDs[i] = ids
	}
	seeds := make(map[string]*lower.ZoneEntry, len(dirty))
	for _, z := range dirty {
		best, bestOverlap := -1, 0
		for i, ids := range baseIDs {
			overlap := 0
			for _, j := range z {
				if ids[mutated.Subscribers[j].ID] {
					overlap++
				}
			}
			if overlap > bestOverlap {
				best, bestOverlap = i, overlap
			}
		}
		if best < 0 {
			continue
		}
		key := lower.ZoneKeyILP(base, baseZones[best], method, opts.ILP)
		if v, ok := s.zones.get(key); ok {
			seeds[zoneSig(z)] = v.(*lower.ZoneEntry)
		}
	}
	if len(seeds) == 0 {
		return nil
	}
	return &planSeeder{seeds: seeds}
}

// planSeeder resolves SeedFor lookups by the zone's global-index signature
// in the mutated scenario (the exact slice the solver passes back).
type planSeeder struct {
	seeds map[string]*lower.ZoneEntry
}

func (p *planSeeder) SeedFor(zone []int, numVars int) ([]float64, *lp.Basis, bool) {
	e, ok := p.seeds[zoneSig(zone)]
	if !ok || e.NumVars != numVars || len(e.X) != numVars {
		// A model-shape mismatch (different candidate set) makes the
		// incumbent meaningless; the basis alone is still returned when its
		// size happens to fit, handled by the solver's own length check.
		if ok && e.Basis != nil {
			return nil, e.Basis, true
		}
		return nil, nil, false
	}
	return e.X, e.Basis, true
}

func zoneSig(zone []int) string {
	var b strings.Builder
	for i, v := range zone {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}
