package radio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDBConversions(t *testing.T) {
	tests := []struct {
		db     float64
		linear float64
	}{
		{0, 1},
		{10, 10},
		{-10, 0.1},
		{-15, 0.0316227766},
		{3, 1.99526231},
	}
	for _, tt := range tests {
		if got := DBToLinear(tt.db); !almost(got, tt.linear, 1e-6) {
			t.Errorf("DBToLinear(%v) = %v, want %v", tt.db, got, tt.linear)
		}
		if got := LinearToDB(tt.linear); !almost(got, tt.db, 1e-6) {
			t.Errorf("LinearToDB(%v) = %v, want %v", tt.linear, got, tt.db)
		}
	}
	if got := LinearToDB(0); !math.IsInf(got, -1) {
		t.Errorf("LinearToDB(0) = %v, want -Inf", got)
	}
	if got := LinearToDB(-1); !math.IsInf(got, -1) {
		t.Errorf("LinearToDB(-1) = %v, want -Inf", got)
	}
}

// Property: dB conversions are mutually inverse on sane ranges.
func TestDBRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		db := math.Mod(raw, 200) // [-200, 200] dB is beyond any physical range
		return almost(LinearToDB(DBToLinear(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelValidate(t *testing.T) {
	good := DefaultModel()
	if err := good.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []Model{
		{Gt: 0, Gr: 1, Ht: 1, Hr: 1, Alpha: 3, MinDist: 1},
		{Gt: 1, Gr: 1, Ht: -1, Hr: 1, Alpha: 3, MinDist: 1},
		{Gt: 1, Gr: 1, Ht: 1, Hr: 1, Alpha: 0.5, MinDist: 1},
		{Gt: 1, Gr: 1, Ht: 1, Hr: 1, Alpha: 3, MinDist: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
}

func TestTwoRayEquation(t *testing.T) {
	// Hand-check eq. (2.1): Pr = Pt*Gt*Gr*ht^2*hr^2*d^-alpha.
	m := Model{Gt: 2, Gr: 3, Ht: 2, Hr: 1, Alpha: 2, MinDist: 1}
	// G = 2*3*4*1 = 24; at d=10, gain = 24/100.
	if got := m.G(); got != 24 {
		t.Fatalf("G = %v, want 24", got)
	}
	if got := m.ReceivedPower(50, 10); !almost(got, 50*0.24, 1e-12) {
		t.Errorf("ReceivedPower = %v, want 12", got)
	}
}

func TestNearFieldClamp(t *testing.T) {
	m := DefaultModel()
	atClamp := m.ReceivedPower(10, m.MinDist)
	closer := m.ReceivedPower(10, m.MinDist/100)
	if closer != atClamp {
		t.Errorf("near-field power %v != clamp power %v", closer, atClamp)
	}
}

func TestDistanceForPower(t *testing.T) {
	m := DefaultModel() // G=1, alpha=3
	d, err := m.DistanceForPower(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 10, 1e-9) { // 1000 * d^-3 = 1 => d = 10
		t.Errorf("DistanceForPower = %v, want 10", d)
	}
	// Round trip with PowerForDistance.
	if got := m.PowerForDistance(d, 1); !almost(got, 1000, 1e-6) {
		t.Errorf("PowerForDistance = %v, want 1000", got)
	}
	if _, err := m.DistanceForPower(0, 1); !errors.Is(err, ErrUnreachable) {
		t.Errorf("zero power should be unreachable, got %v", err)
	}
	if d, err := m.DistanceForPower(5, 0); err != nil || !math.IsInf(d, 1) {
		t.Errorf("zero demand should be infinite range, got %v, %v", d, err)
	}
}

// Property: received power is monotonically non-increasing in distance and
// DistanceForPower is consistent with ReceivedPower.
func TestPathLossMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(rawD1, rawD2, rawP float64) bool {
		clamp := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return lo
			}
			return lo + math.Mod(math.Abs(v), hi-lo)
		}
		d1 := clamp(rawD1, 0.1, 1000)
		d2 := clamp(rawD2, 0.1, 1000)
		p := clamp(rawP, 0.1, 1e6)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		if m.ReceivedPower(p, d1) < m.ReceivedPower(p, d2)-1e-12 {
			return false
		}
		d, err := m.DistanceForPower(p, m.ReceivedPower(p, d2))
		if err != nil {
			return false
		}
		// At the returned distance the demand is met (within tolerance).
		return d+1e-9 >= math.Max(d2, m.MinDist) || almost(d, math.Max(d2, m.MinDist), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCapacityAndInverse(t *testing.T) {
	// C = B log2(1+SNR): 10 MHz at SNR 3 -> 20 Mbps.
	if got := Capacity(10, 3); !almost(got, 20, 1e-9) {
		t.Errorf("Capacity = %v, want 20", got)
	}
	if got := Capacity(10, -5); got != 0 {
		t.Errorf("negative snr capacity = %v, want 0", got)
	}
	if got := SNRForRate(20, 10); !almost(got, 3, 1e-9) {
		t.Errorf("SNRForRate = %v, want 3", got)
	}
	if got := SNRForRate(0, 10); got != 0 {
		t.Errorf("SNRForRate(0) = %v, want 0", got)
	}
	if got := SNRForRate(5, 0); !math.IsInf(got, 1) {
		t.Errorf("SNRForRate with no bandwidth = %v, want +Inf", got)
	}
}

func TestFeasibleDistance(t *testing.T) {
	m := DefaultModel()
	// rate 1 over bandwidth 1 -> SNR 1 -> need n0 received power.
	d, err := m.FeasibleDistance(1, 1, 0.001, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(8/0.001, 1.0/3)
	if !almost(d, want, 1e-9) {
		t.Errorf("FeasibleDistance = %v, want %v", d, want)
	}
	if _, err := m.FeasibleDistance(1, 1, 0, 8); err == nil {
		t.Error("zero noise should error")
	}
	if _, err := m.FeasibleDistance(5, 0, 0.001, 8); !errors.Is(err, ErrUnreachable) {
		t.Errorf("no bandwidth should be unreachable, got %v", err)
	}
}

// Property: higher rate requests imply shorter (or equal) feasible distance,
// the monotonicity the capacity->distance transformation relies on.
func TestFeasibleDistanceMonotoneInRate(t *testing.T) {
	m := DefaultModel()
	f := func(r1Raw, r2Raw float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return 0.1 + math.Mod(math.Abs(v), 10)
		}
		r1, r2 := clamp(r1Raw), clamp(r2Raw)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		d1, err1 := m.FeasibleDistance(r1, 1, 1e-6, 100)
		d2, err2 := m.FeasibleDistance(r2, 1, 1e-6, 100)
		if err1 != nil || err2 != nil {
			return true // unreachable cases are fine
		}
		return d1+1e-9 >= d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIgnorableNoiseDistance(t *testing.T) {
	m := DefaultModel()
	d, err := m.IgnorableNoiseDistance(1000, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 100, 1e-9) { // 1000 * d^-3 = 0.001 => d = 100
		t.Errorf("IgnorableNoiseDistance = %v, want 100", d)
	}
	if _, err := m.IgnorableNoiseDistance(0, 1); err == nil {
		t.Error("zero pmax should error")
	}
	if _, err := m.IgnorableNoiseDistance(1, 0); err == nil {
		t.Error("zero nmax should error")
	}
}

func TestSIR(t *testing.T) {
	tests := []struct {
		name                 string
		signal, interference float64
		want                 float64
	}{
		{"plain", 10, 2, 5},
		{"no-interference", 3, 0, math.Inf(1)},
		{"no-signal-no-interference", 0, 0, 0},
		{"no-signal", 0, 5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SIR(tt.signal, tt.interference); got != tt.want {
				t.Errorf("SIR = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSIRAt(t *testing.T) {
	m := DefaultModel()
	sources := []Source{
		{X: 0, Y: 0, Power: 100},  // serving, 10 away
		{X: 40, Y: 0, Power: 100}, // interferer, 30 away
	}
	// Receiver at (10, 0): signal = 100*10^-3 = 0.1;
	// interference = 100*30^-3 = 0.0037037.
	got := m.SIRAt(sources, 0, 10, 0)
	want := math.Pow(10, -3) / math.Pow(30, -3) // = 27
	if !almost(got, want, 1e-9) {
		t.Errorf("SIRAt = %v, want %v", got, want)
	}
	if !m.MeetsSIR(sources, 0, 10, 0, DBToLinear(-15)) {
		t.Error("SIR of ~14.3dB should meet a -15dB threshold")
	}
	if m.MeetsSIR(sources, 0, 10, 0, DBToLinear(20)) {
		t.Error("SIR of ~14.3dB should fail a 20dB threshold")
	}
}

func TestSIRAtOutOfRangeServing(t *testing.T) {
	m := DefaultModel()
	sources := []Source{{X: 0, Y: 0, Power: 10}}
	if got := m.SIRAt(sources, -1, 5, 5); got != 0 {
		t.Errorf("negative serving index: SIR = %v, want 0", got)
	}
	if got := m.SIRAt(sources, 3, 5, 5); got != 0 {
		t.Errorf("out-of-range serving index: SIR = %v, want 0", got)
	}
}

func TestInterferenceAt(t *testing.T) {
	m := DefaultModel()
	sources := []Source{
		{X: 0, Y: 0, Power: 1000},
		{X: 20, Y: 0, Power: 1000},
	}
	// At (10, 0) both are 10 away: each contributes 1000/1000 = 1.
	if got := m.InterferenceAt(sources, -1, 10, 0); !almost(got, 2, 1e-9) {
		t.Errorf("total interference = %v, want 2", got)
	}
	if got := m.InterferenceAt(sources, 0, 10, 0); !almost(got, 1, 1e-9) {
		t.Errorf("interference excluding 0 = %v, want 1", got)
	}
}

// Property: lowering any interferer's power never lowers the served SIR —
// the monotonicity PRO's power-reduction loop relies on.
func TestSIRMonotoneInInterferencePower(t *testing.T) {
	m := DefaultModel()
	f := func(seedRaw int64) bool {
		seed := seedRaw
		if seed < 0 {
			seed = -seed
		}
		// Deterministic pseudo-random layout from the seed.
		next := func() float64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			v := (seed >> 33) % 1000
			if v < 0 {
				v = -v
			}
			return float64(v) / 10
		}
		sources := []Source{
			{X: next(), Y: next(), Power: 50 + next()},
			{X: next(), Y: next(), Power: 50 + next()},
			{X: next(), Y: next(), Power: 50 + next()},
		}
		x, y := next(), next()
		before := m.SIRAt(sources, 0, x, y)
		sources[1].Power /= 2
		after := m.SIRAt(sources, 0, x, y)
		return after+1e-12 >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
