// Package radio implements the physical-layer model of the paper:
// the two-ray ground path-loss model (eq. 2.1), Shannon link capacity,
// dB conversions, and the interference-style SNR of Definition 2
// ("SNR" in the paper is signal over the sum of the other relays'
// received powers — an SIR; thermal noise enters only through the
// capacity-to-distance transformation and the Zone-Partition radius).
package radio

import "math"

// DBToLinear converts a power ratio in decibels to a linear ratio.
// Example: -15 dB -> 10^(-1.5) ~= 0.0316.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels. Non-positive
// ratios map to -Inf, matching the mathematical limit.
func LinearToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}
