package radio

import "math"

// SIR computes the paper's Definition 2 SNR at a subscriber: the received
// power of the serving relay over the sum of the received powers of all
// other relays. signal is the serving relay's received power; interference
// is the summed received power of all other relays (excluding the signal).
//
// With zero interference the ratio is +Inf, which compares correctly
// against any finite threshold.
func SIR(signal, interference float64) float64 {
	if interference <= 0 {
		if signal <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return signal / interference
}

// Receiver is anything with a position that receives relay signals; the
// evaluation helpers below are expressed over plain coordinates to keep this
// package free of scenario types.
type rxPoint struct{ x, y float64 }

// Source is a transmitter contributing signal or interference at a receiver:
// a relay station with a position and a transmit power.
type Source struct {
	X, Y  float64 // position
	Power float64 // transmit power (linear units)
}

// ReceivedFrom returns the power received at (x, y) from src under model m.
func (m Model) ReceivedFrom(src Source, x, y float64) float64 {
	d := math.Hypot(src.X-x, src.Y-y)
	return m.ReceivedPower(src.Power, d)
}

// SIRAt evaluates Definition 2 at receiver position (x, y): the received
// power from sources[serving] divided by the summed received power from all
// other sources. serving must index sources; an out-of-range serving index
// yields 0 (no signal), never a panic, so callers can treat "unassigned" as
// failing any positive threshold.
func (m Model) SIRAt(sources []Source, serving int, x, y float64) float64 {
	if serving < 0 || serving >= len(sources) {
		return 0
	}
	signal := 0.0
	interference := 0.0
	for i, s := range sources {
		p := m.ReceivedFrom(s, x, y)
		if i == serving {
			signal = p
		} else {
			interference += p
		}
	}
	return SIR(signal, interference)
}

// InterferenceAt returns the total received power at (x, y) from all sources
// except the one at index exclude (pass a negative exclude to sum all).
func (m Model) InterferenceAt(sources []Source, exclude int, x, y float64) float64 {
	total := 0.0
	for i, s := range sources {
		if i == exclude {
			continue
		}
		total += m.ReceivedFrom(s, x, y)
	}
	return total
}

// MeetsSIR reports whether the Definition 2 SNR at (x, y), served by
// sources[serving], meets the linear threshold beta.
func (m Model) MeetsSIR(sources []Source, serving int, x, y, beta float64) bool {
	return m.SIRAt(sources, serving, x, y) >= beta
}
