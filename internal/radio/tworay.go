package radio

import (
	"errors"
	"fmt"
	"math"
)

// Model captures the two-ray ground path-loss model of eq. (2.1):
//
//	Pr = Pt * Gt * Gr * ht^2 * hr^2 * d^(-alpha)
//
// The product Gt*Gr*ht^2*hr^2 is a constant the paper calls G; we expose the
// individual antenna parameters and derive G. Alpha is the attenuation
// factor, "usually in a range of 2-4" (Section II-A).
//
// MinDist clamps near-field distances: the free-space/two-ray models diverge
// as d -> 0, so any distance below MinDist is treated as MinDist. This is a
// standard simulator guard (ns-2 uses a crossover distance similarly) and
// only matters when a relay is co-located with a subscriber, which the
// Sliding Movement step deliberately creates.
type Model struct {
	// Gt and Gr are transmitter and receiver antenna gains (linear).
	Gt, Gr float64
	// Ht and Hr are transmitter and receiver antenna heights.
	Ht, Hr float64
	// Alpha is the path-loss attenuation exponent.
	Alpha float64
	// MinDist is the near-field clamp distance; distances below it are
	// treated as MinDist in path-loss computations.
	MinDist float64
}

// DefaultModel returns the model used throughout the evaluation: unit
// antenna constants (G = 1), alpha = 3 (mid paper range 2-4), and a 1-unit
// near-field clamp. Distance requirements of 30-40 units then correspond to
// path losses spanning ~4.4 orders of magnitude across a 500-unit field,
// matching the regime in which the paper's SNR thresholds (-10 to -25 dB)
// are binding but satisfiable.
func DefaultModel() Model {
	return Model{Gt: 1, Gr: 1, Ht: 1, Hr: 1, Alpha: 3, MinDist: 1}
}

// Validate reports whether the model parameters are physically meaningful.
func (m Model) Validate() error {
	switch {
	case m.Gt <= 0 || m.Gr <= 0:
		return fmt.Errorf("radio: antenna gains must be positive (Gt=%v, Gr=%v)", m.Gt, m.Gr)
	case m.Ht <= 0 || m.Hr <= 0:
		return fmt.Errorf("radio: antenna heights must be positive (Ht=%v, Hr=%v)", m.Ht, m.Hr)
	case m.Alpha < 1 || m.Alpha > 6:
		return fmt.Errorf("radio: attenuation factor alpha=%v outside sane range [1,6]", m.Alpha)
	case m.MinDist <= 0:
		return fmt.Errorf("radio: near-field clamp MinDist=%v must be positive", m.MinDist)
	}
	return nil
}

// G returns the constant antenna product Gt*Gr*ht^2*hr^2 of eq. (2.1).
func (m Model) G() float64 { return m.Gt * m.Gr * m.Ht * m.Ht * m.Hr * m.Hr }

// clampDist applies the near-field guard.
func (m Model) clampDist(d float64) float64 {
	if d < m.MinDist {
		return m.MinDist
	}
	return d
}

// Gain returns the path gain G * d^(-alpha): the factor relating transmit to
// received power over distance d.
func (m Model) Gain(d float64) float64 {
	d = m.clampDist(d)
	return m.G() * math.Pow(d, -m.Alpha)
}

// ReceivedPower returns Pr for transmit power pt over distance d (eq. 2.1).
func (m Model) ReceivedPower(pt, d float64) float64 { return pt * m.Gain(d) }

// ErrUnreachable is returned when no distance can satisfy a power demand.
var ErrUnreachable = errors.New("radio: required received power not achievable at any distance")

// DistanceForPower returns the maximum distance at which transmit power pt
// still delivers at least pr received power. It returns ErrUnreachable when
// pr cannot be met even at MinDist (or pr is non-positive with pt zero).
func (m Model) DistanceForPower(pt, pr float64) (float64, error) {
	if pr <= 0 {
		return math.Inf(1), nil
	}
	if pt <= 0 {
		return 0, ErrUnreachable
	}
	// pt*G*d^-alpha >= pr  =>  d <= (pt*G/pr)^(1/alpha)
	d := math.Pow(pt*m.G()/pr, 1/m.Alpha)
	if d < m.MinDist {
		// Even the clamped near field cannot deliver pr.
		if m.ReceivedPower(pt, m.MinDist) < pr {
			return 0, ErrUnreachable
		}
		return m.MinDist, nil
	}
	return d, nil
}

// PowerForDistance returns the minimum transmit power delivering received
// power pr at distance d. This is the inverse used by the power-reduction
// algorithms: Pc for a coverage constraint is PowerForDistance(d_ij, Pss_j).
func (m Model) PowerForDistance(d, pr float64) float64 {
	if pr <= 0 {
		return 0
	}
	return pr / m.Gain(d)
}

// Capacity returns the Shannon capacity B*log2(1+snr) in the same rate unit
// as bandwidth b (paper: C = B log(1 + SNR_r)). Negative snr is treated as 0.
func Capacity(b, snr float64) float64 {
	if snr < 0 {
		snr = 0
	}
	return b * math.Log2(1+snr)
}

// SNRForRate inverts Shannon capacity: the minimum SNR for rate bits over
// bandwidth b. Rates <= 0 need no SNR; a non-positive bandwidth with a
// positive rate is unsatisfiable and returns +Inf.
func SNRForRate(rate, b float64) float64 {
	if rate <= 0 {
		return 0
	}
	if b <= 0 {
		return math.Inf(1)
	}
	return math.Pow(2, rate/b) - 1
}

// FeasibleDistance performs the paper's capacity-to-distance transformation
// (Section II-A): given a subscriber data-rate request (rate over bandwidth
// b), thermal noise n0 at the receiver, and the relay's maximum transmit
// power pmax, it returns the largest distance at which the access link still
// carries the requested rate. This is the subscriber's distance requirement
// d_i; "SS s_i is covered by RS r_j iff d(s_i, r_j) <= d_i".
func (m Model) FeasibleDistance(rate, b, n0, pmax float64) (float64, error) {
	if n0 <= 0 {
		return 0, fmt.Errorf("radio: thermal noise must be positive, got %v", n0)
	}
	snr := SNRForRate(rate, b)
	if math.IsInf(snr, 1) {
		return 0, ErrUnreachable
	}
	need := snr * n0 // minimum received power
	if need == 0 {
		return math.Inf(1), nil
	}
	d, err := m.DistanceForPower(pmax, need)
	if err != nil {
		return 0, fmt.Errorf("radio: rate %v over bandwidth %v: %w", rate, b, err)
	}
	return d, nil
}

// IgnorableNoiseDistance returns dmax of the Zone Partition algorithm
// (Alg. 2, Step 1): the distance beyond which a relay transmitting at pmax
// contributes at most nmax received power, i.e. Pmax*G*dmax^(-alpha) = Nmax.
func (m Model) IgnorableNoiseDistance(pmax, nmax float64) (float64, error) {
	if pmax <= 0 || nmax <= 0 {
		return 0, fmt.Errorf("radio: pmax=%v and nmax=%v must be positive", pmax, nmax)
	}
	return math.Pow(pmax*m.G()/nmax, 1/m.Alpha), nil
}
