package experiment

import "fmt"

// Runner produces one experiment artifact.
type Runner func(Config) (*Table, error)

// registry maps artifact IDs to runners. It is populated at package
// construction (a composite literal, not init()) and never mutated.
var registry = map[string]Runner{
	"fig3a":  Fig3a,
	"fig3b":  Fig3b,
	"fig3c":  Fig3c,
	"fig3d":  Fig3d,
	"fig3e":  Fig3e,
	"fig4a":  Fig4a,
	"fig4b":  Fig4b,
	"fig4c":  Fig4c,
	"fig4d":  Fig4d,
	"fig5a":  Fig5a,
	"fig5b":  Fig5b,
	"fig5c":  Fig5c,
	"fig5d":  Fig5d,
	"fig6":   Fig6,
	"fig7a":  Fig7a,
	"fig7b":  Fig7b,
	"fig7c":  Fig7c,
	"table2": Table2,
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (known: %v)", id, IDs())
	}
	return r(cfg)
}
