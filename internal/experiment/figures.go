package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/lower"
	"sagrelay/internal/scenario"
	"sagrelay/internal/upper"
)

// numBS is the base station count used throughout the evaluation except
// Table II (which sweeps it); Fig. 4(c) states 4 base stations.
const numBS = 4

// seedFor derives a deterministic per-task seed. The data-point key x and
// the repetition index occupy disjoint bit ranges (x in bits 32+, run in
// the low 32 bits), so no run count below 2^32 can ever alias an adjacent
// data point's seed stream — unlike the previous base + x*1009 + run
// scheme, where run >= 1009 collided with data point x+1.
func seedFor(base int64, x, run int) int64 {
	return base ^ (int64(x) << 32) ^ int64(run)
}

// ints returns {from, from+step, ..., <= to}.
func ints(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

// genScenario builds one evaluation workload (Section IV-A): uniform
// subscribers/base stations, distance requirements in [30,40].
func genScenario(side float64, users int, snrDB float64, seed int64) (*scenario.Scenario, error) {
	return scenario.Generate(scenario.GenConfig{
		FieldSide: side,
		NumSS:     users,
		NumBS:     numBS,
		SNRdB:     snrDB,
		Seed:      seed,
	})
}

// coverageCount runs a coverage method and returns the relay count, or NaN
// when infeasible.
func coverageCount(ctx context.Context, sc *scenario.Scenario, method core.CoverageMethod, ilp lower.ILPOptions) (float64, error) {
	res, err := runCoverage(ctx, sc, method, ilp)
	if err != nil {
		return 0, err
	}
	if !res.Feasible {
		return math.NaN(), nil
	}
	return float64(res.NumRelays()), nil
}

func runCoverage(ctx context.Context, sc *scenario.Scenario, method core.CoverageMethod, ilp lower.ILPOptions) (*lower.Result, error) {
	switch method {
	case core.CoverSAMC:
		return lower.SAMC(ctx, sc, lower.SAMCOptions{})
	case core.CoverIAC:
		return lower.IAC(ctx, sc, ilp)
	case core.CoverGAC:
		return lower.GAC(ctx, sc, ilp)
	default:
		return nil, fmt.Errorf("experiment: unknown coverage method %v", method)
	}
}

// fig3Coverage is the shared driver for Figs. 3(a)-3(c): coverage relay
// counts vs user count for IAC, GAC and SAMC. The (point, run) grid fans
// out over cfg.Workers; every task derives its own seed and writes into
// its (point, method, run) slot, so the table is identical at any worker
// count.
func fig3Coverage(id, title string, side float64, users []int, snrDB float64, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"IAC", "GAC", "SAMC"},
	}
	methods := []core.CoverageMethod{core.CoverIAC, core.CoverGAC, core.CoverSAMC}
	samples := nanGrid(len(users), len(methods), cfg.Runs)
	err := cfg.forEachCell(len(users), func(pi, r int) error {
		n := users[pi]
		sc, err := genScenario(side, n, snrDB, seedFor(cfg.Seed, n, r))
		if err != nil {
			return err
		}
		for m, method := range methods {
			v, err := coverageCount(cfg.ctx(), sc, method, cfg.ILP)
			if err != nil {
				return err
			}
			samples[pi][m][r] = v
		}
		return nil
	}, func(pi int) {
		cfg.progress("%s: users=%d done\n", id, users[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range users {
		if err := t.AddRow(float64(n), mean(samples[pi][0]), mean(samples[pi][1]), mean(samples[pi][2])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig3a reproduces Fig. 3(a): 500x500 field, SNR -15 dB, 15-50 users.
func Fig3a(cfg Config) (*Table, error) {
	return fig3Coverage("fig3a", "# coverage RSs, 500x500, SNR=-15dB", 500, ints(15, 50, 5), -15, cfg)
}

// Fig3b reproduces Fig. 3(b): 800x800 field, SNR -15 dB, 20-70 users.
func Fig3b(cfg Config) (*Table, error) {
	return fig3Coverage("fig3b", "# coverage RSs, 800x800, SNR=-15dB", 800, ints(20, 70, 10), -15, cfg)
}

// Fig3c reproduces Fig. 3(c): 800x800 field, SNR -40 dB, 50-70 users (the
// regime where IAC/GAC become feasible again).
func Fig3c(cfg Config) (*Table, error) {
	return fig3Coverage("fig3c", "# coverage RSs, 800x800, SNR=-40dB", 800, ints(50, 70, 5), -40, cfg)
}

// Fig3d reproduces Fig. 3(d): coverage relay counts vs SNR threshold
// (-14 to -10 dB) at 30 users on 500x500; IAC drops out first as the
// threshold rises (Section IV-B).
func Fig3d(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: "fig3d", Title: "# coverage RSs vs SNR threshold, 500x500, SS=30",
		XLabel:  "SNR (dB)",
		Columns: []string{"IAC", "GAC", "SAMC"},
	}
	methods := []core.CoverageMethod{core.CoverIAC, core.CoverGAC, core.CoverSAMC}
	var snrs []float64
	for snr := -14.0; snr <= -10.0+1e-9; snr += 0.5 {
		snrs = append(snrs, snr)
	}
	samples := nanGrid(len(snrs), len(methods), cfg.Runs)
	err := cfg.forEachCell(len(snrs), func(pi, r int) error {
		sc, err := genScenario(500, 30, snrs[pi], seedFor(cfg.Seed, 30, r))
		if err != nil {
			return err
		}
		for m, method := range methods {
			v, err := coverageCount(cfg.ctx(), sc, method, cfg.ILP)
			if err != nil {
				return err
			}
			samples[pi][m][r] = v
		}
		return nil
	}, func(pi int) {
		cfg.progress("fig3d: snr=%.1f done\n", snrs[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, snr := range snrs {
		if err := t.AddRow(snr, mean(samples[pi][0]), mean(samples[pi][1]), mean(samples[pi][2])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig3e reproduces Fig. 3(e): coverage relay counts vs GAC grid size
// (13-20) at 30 users, SNR -11.55 dB, 500x500. IAC and SAMC do not depend
// on the grid; their flat series are plotted for reference as in the paper.
func Fig3e(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	const snr = -11.55
	t := &Table{
		ID: "fig3e", Title: "# coverage RSs vs grid size, 500x500, SNR=-11.55dB, SS=30",
		XLabel:  "Grid Size",
		Columns: []string{"IAC", "GAC", "SAMC"},
	}
	// Grid-independent baselines, one sample per run.
	base := nanGrid(1, 2, cfg.Runs) // [0]: IAC, [1]: SAMC
	err := cfg.forEachCell(1, func(_, r int) error {
		sc, err := genScenario(500, 30, snr, seedFor(cfg.Seed, 30, r))
		if err != nil {
			return err
		}
		v, err := coverageCount(cfg.ctx(), sc, core.CoverIAC, cfg.ILP)
		if err != nil {
			return err
		}
		base[0][0][r] = v
		v, err = coverageCount(cfg.ctx(), sc, core.CoverSAMC, cfg.ILP)
		if err != nil {
			return err
		}
		base[0][1][r] = v
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	iacMean, samcMean := mean(base[0][0]), mean(base[0][1])
	grids := ints(13, 20, 1)
	samples := nanGrid(len(grids), 1, cfg.Runs)
	err = cfg.forEachCell(len(grids), func(pi, r int) error {
		sc, err := genScenario(500, 30, snr, seedFor(cfg.Seed, 30, r))
		if err != nil {
			return err
		}
		ilp := cfg.ILP
		ilp.GridSize = float64(grids[pi])
		v, err := coverageCount(cfg.ctx(), sc, core.CoverGAC, ilp)
		if err != nil {
			return err
		}
		samples[pi][0][r] = v
		return nil
	}, func(pi int) {
		cfg.progress("fig3e: grid=%d done\n", grids[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, grid := range grids {
		if err := t.AddRow(float64(grid), iacMean, mean(samples[pi][0]), samcMean); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// figPRO is the shared driver for Figs. 4(a) and 5(a): lower-tier power
// cost of the max-power baseline, PRO, and the LPQC optimum on the SAMC
// placement. Infeasible repetitions stay NaN and drop out of the mean.
func figPRO(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"baseline", "PRO", "optimal"},
	}
	samples := nanGrid(len(users), 3, cfg.Runs)
	err := cfg.forEachCell(len(users), func(pi, r int) error {
		n := users[pi]
		sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
		if err != nil {
			return err
		}
		res, err := lower.SAMC(cfg.ctx(), sc, lower.SAMCOptions{})
		if err != nil {
			return err
		}
		if !res.Feasible {
			return nil
		}
		samples[pi][0][r] = lower.BaselinePower(sc, res).Total
		pro, err := lower.PRO(cfg.ctx(), sc, res)
		if err != nil {
			return err
		}
		samples[pi][1][r] = pro.Total
		opt, err := lower.OptimalPower(cfg.ctx(), sc, res)
		if err != nil {
			return err
		}
		samples[pi][2][r] = opt.Total
		return nil
	}, func(pi int) {
		cfg.progress("%s: users=%d done\n", id, users[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range users {
		if err := t.AddRow(float64(n), mean(samples[pi][0]), mean(samples[pi][1]), mean(samples[pi][2])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig4a reproduces Fig. 4(a): PRO power cost on the 500x500 field.
func Fig4a(cfg Config) (*Table, error) {
	return figPRO("fig4a", "coverage power cost, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5a reproduces Fig. 5(a): PRO power cost on the 800x800 field.
func Fig5a(cfg Config) (*Table, error) {
	return figPRO("fig5a", "coverage power cost, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// figRuntime is the shared driver for Figs. 4(b) and 5(b): wall-clock
// running time (milliseconds) of SAMC, IAC and GAC. Each (point, run) task
// times its three solves back-to-back on one goroutine; with Workers > 1
// concurrent tasks share the machine, so absolute milliseconds are best
// measured at Workers=1 while the relative ordering survives any worker
// count.
func figRuntime(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"SAMC", "IAC", "GAC"},
	}
	methods := []core.CoverageMethod{core.CoverSAMC, core.CoverIAC, core.CoverGAC}
	samples := nanGrid(len(users), len(methods), cfg.Runs)
	err := cfg.forEachCell(len(users), func(pi, r int) error {
		n := users[pi]
		sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
		if err != nil {
			return err
		}
		for m, method := range methods {
			start := time.Now()
			if _, err := runCoverage(cfg.ctx(), sc, method, cfg.ILP); err != nil {
				return err
			}
			samples[pi][m][r] = float64(time.Since(start).Microseconds()) / 1000.0
		}
		return nil
	}, func(pi int) {
		cfg.progress("%s: users=%d done\n", id, users[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range users {
		if err := t.AddRow(float64(n), mean(samples[pi][0]), mean(samples[pi][1]), mean(samples[pi][2])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig4b reproduces Fig. 4(b): running times on the 500x500 field.
func Fig4b(cfg Config) (*Table, error) {
	return figRuntime("fig4b", "running time (ms), 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5b reproduces Fig. 5(b): running times on the 800x800 field.
func Fig5b(cfg Config) (*Table, error) {
	return figRuntime("fig5b", "running time (ms), 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// figConnectivity is the shared driver for Figs. 4(c) and 5(c): the number
// of connectivity relays when every coverage relay is forced to one of the
// four base stations (MUST, the scheme of [1]) versus attaching to the
// nearest (MBMC).
func figConnectivity(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel: "Number of Users",
		Columns: []string{
			"connect to BS1", "connect to BS2", "connect to BS3", "connect to BS4",
			"connect to optimal BS",
		},
	}
	samples := nanGrid(len(users), numBS+1, cfg.Runs)
	err := cfg.forEachCell(len(users), func(pi, r int) error {
		n := users[pi]
		sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
		if err != nil {
			return err
		}
		cover, err := lower.SAMC(cfg.ctx(), sc, lower.SAMCOptions{})
		if err != nil {
			return err
		}
		if !cover.Feasible {
			return nil
		}
		for b := 0; b < numBS; b++ {
			must, err := upper.MUST(cfg.ctx(), sc, cover, b)
			if err != nil {
				return err
			}
			samples[pi][b][r] = float64(must.NumRelays())
		}
		mbmc, err := upper.MBMC(cfg.ctx(), sc, cover)
		if err != nil {
			return err
		}
		samples[pi][numBS][r] = float64(mbmc.NumRelays())
		return nil
	}, func(pi int) {
		cfg.progress("%s: users=%d done\n", id, users[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range users {
		vals := make([]float64, numBS+1)
		for i := range vals {
			vals[i] = mean(samples[pi][i])
		}
		if err := t.AddRow(float64(n), vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig4c reproduces Fig. 4(c): connectivity relay counts on 500x500.
func Fig4c(cfg Config) (*Table, error) {
	return figConnectivity("fig4c", "# connectivity RSs, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5c reproduces Fig. 5(c): connectivity relay counts on 800x800.
func Fig5c(cfg Config) (*Table, error) {
	return figConnectivity("fig5c", "# connectivity RSs, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// figUCPO is the shared driver for Figs. 4(d) and 5(d): upper-tier power
// cost of the max-power baseline versus UCPO on the SAMC+MBMC deployment.
func figUCPO(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"baseline", "UCPO"},
	}
	samples := nanGrid(len(users), 2, cfg.Runs)
	err := cfg.forEachCell(len(users), func(pi, r int) error {
		n := users[pi]
		sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
		if err != nil {
			return err
		}
		cover, err := lower.SAMC(cfg.ctx(), sc, lower.SAMCOptions{})
		if err != nil {
			return err
		}
		if !cover.Feasible {
			return nil
		}
		conn, err := upper.MBMC(cfg.ctx(), sc, cover)
		if err != nil {
			return err
		}
		samples[pi][0][r] = upper.BaselinePower(sc, conn).Total
		ucpo, err := upper.UCPO(cfg.ctx(), sc, cover, conn)
		if err != nil {
			return err
		}
		samples[pi][1][r] = ucpo.Total
		return nil
	}, func(pi int) {
		cfg.progress("%s: users=%d done\n", id, users[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range users {
		if err := t.AddRow(float64(n), mean(samples[pi][0]), mean(samples[pi][1])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig4d reproduces Fig. 4(d): UCPO power cost on 500x500.
func Fig4d(cfg Config) (*Table, error) {
	return figUCPO("fig4d", "connectivity power cost, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5d reproduces Fig. 5(d): UCPO power cost on 800x800.
func Fig5d(cfg Config) (*Table, error) {
	return figUCPO("fig5d", "connectivity power cost, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// fig7Total is the shared driver for Figs. 7(a)-(c): total power of SAG
// versus the X+DARP baselines ([1]'s upstream scheme: single base station,
// maximum power everywhere).
func fig7Total(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"SAG", "SAMC+DARP", "IAC+DARP", "GAC+DARP"},
	}
	samples := nanGrid(len(users), 4, cfg.Runs)
	err := cfg.forEachCell(len(users), func(pi, r int) error {
		n := users[pi]
		sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
		if err != nil {
			return err
		}
		pcfg := core.Config{ILP: cfg.ILP}
		sag, err := core.SAG(cfg.ctx(), sc, pcfg)
		if err != nil {
			return err
		}
		samples[pi][0][r] = totalOrNaN(sag)
		for i, m := range []core.CoverageMethod{core.CoverSAMC, core.CoverIAC, core.CoverGAC} {
			darp, err := core.DARP(cfg.ctx(), sc, m, pcfg)
			if err != nil {
				return err
			}
			samples[pi][i+1][r] = totalOrNaN(darp)
		}
		return nil
	}, func(pi int) {
		cfg.progress("%s: users=%d done\n", id, users[pi])
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range users {
		if err := t.AddRow(float64(n), mean(samples[pi][0]), mean(samples[pi][1]), mean(samples[pi][2]), mean(samples[pi][3])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func totalOrNaN(s *core.Solution) float64 {
	if !s.Feasible {
		return math.NaN()
	}
	return s.PTotal
}

// Fig7a reproduces Fig. 7(a): total power on the 300x300 field.
func Fig7a(cfg Config) (*Table, error) {
	return fig7Total("fig7a", "total power, 300x300, SNR=-15dB", 300, ints(5, 40, 5), cfg)
}

// Fig7b reproduces Fig. 7(b): total power on the 500x500 field.
func Fig7b(cfg Config) (*Table, error) {
	return fig7Total("fig7b", "total power, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig7c reproduces Fig. 7(c): total power on the 800x800 field.
func Fig7c(cfg Config) (*Table, error) {
	return fig7Total("fig7c", "total power, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// Table2 reproduces Table II: connectivity relay counts of MUST (per fixed
// base station) versus MBMC as the number of base stations grows from 1 to
// 4, at 30 subscribers, SNR -15 dB, 500x500.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: "table2", Title: "MBMC vs MUST, 500x500, SS=30, SNR=-15dB",
		XLabel:  "BS",
		Columns: []string{"MUST BS1", "MUST BS2", "MUST BS3", "MUST BS4", "MBMC"},
	}
	const points = 4 // nbs = 1..4
	samples := nanGrid(points, 5, cfg.Runs)
	err := cfg.forEachCell(points, func(pi, r int) error {
		nbs := pi + 1
		sc, err := scenario.Generate(scenario.GenConfig{
			FieldSide: 500, NumSS: 30, NumBS: nbs, SNRdB: -15,
			Seed: seedFor(cfg.Seed, 30*nbs, r),
		})
		if err != nil {
			return err
		}
		cover, err := lower.SAMC(cfg.ctx(), sc, lower.SAMCOptions{})
		if err != nil {
			return err
		}
		if !cover.Feasible {
			return nil
		}
		for b := 0; b < nbs; b++ {
			must, err := upper.MUST(cfg.ctx(), sc, cover, b)
			if err != nil {
				return err
			}
			samples[pi][b][r] = float64(must.NumRelays())
		}
		mbmc, err := upper.MBMC(cfg.ctx(), sc, cover)
		if err != nil {
			return err
		}
		samples[pi][4][r] = float64(mbmc.NumRelays())
		return nil
	}, func(pi int) {
		cfg.progress("table2: nbs=%d done\n", pi+1)
	})
	if err != nil {
		return nil, err
	}
	for pi := 0; pi < points; pi++ {
		vals := make([]float64, 5)
		for i := range vals {
			vals[i] = mean(samples[pi][i])
		}
		if err := t.AddRow(float64(pi+1), vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}
