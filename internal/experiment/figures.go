package experiment

import (
	"fmt"
	"math"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/lower"
	"sagrelay/internal/scenario"
	"sagrelay/internal/upper"
)

// numBS is the base station count used throughout the evaluation except
// Table II (which sweeps it); Fig. 4(c) states 4 base stations.
const numBS = 4

// seedFor derives a deterministic per-point seed.
func seedFor(base int64, x, run int) int64 {
	return base + int64(x)*1009 + int64(run)
}

// ints returns {from, from+step, ..., <= to}.
func ints(from, to, step int) []int {
	var out []int
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

// genScenario builds one evaluation workload (Section IV-A): uniform
// subscribers/base stations, distance requirements in [30,40].
func genScenario(side float64, users int, snrDB float64, seed int64) (*scenario.Scenario, error) {
	return scenario.Generate(scenario.GenConfig{
		FieldSide: side,
		NumSS:     users,
		NumBS:     numBS,
		SNRdB:     snrDB,
		Seed:      seed,
	})
}

// coverageCount runs a coverage method and returns the relay count, or NaN
// when infeasible.
func coverageCount(sc *scenario.Scenario, method core.CoverageMethod, ilp lower.ILPOptions) (float64, error) {
	res, err := runCoverage(sc, method, ilp)
	if err != nil {
		return 0, err
	}
	if !res.Feasible {
		return math.NaN(), nil
	}
	return float64(res.NumRelays()), nil
}

func runCoverage(sc *scenario.Scenario, method core.CoverageMethod, ilp lower.ILPOptions) (*lower.Result, error) {
	switch method {
	case core.CoverSAMC:
		return lower.SAMC(sc, lower.SAMCOptions{})
	case core.CoverIAC:
		return lower.IAC(sc, ilp)
	case core.CoverGAC:
		return lower.GAC(sc, ilp)
	default:
		return nil, fmt.Errorf("experiment: unknown coverage method %v", method)
	}
}

// fig3Coverage is the shared driver for Figs. 3(a)-3(c): coverage relay
// counts vs user count for IAC, GAC and SAMC.
func fig3Coverage(id, title string, side float64, users []int, snrDB float64, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"IAC", "GAC", "SAMC"},
	}
	methods := []core.CoverageMethod{core.CoverIAC, core.CoverGAC, core.CoverSAMC}
	for _, n := range users {
		samples := make([][]float64, len(methods))
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(side, n, snrDB, seedFor(cfg.Seed, n, r))
			if err != nil {
				return nil, err
			}
			for m, method := range methods {
				v, err := coverageCount(sc, method, cfg.ILP)
				if err != nil {
					return nil, err
				}
				samples[m] = append(samples[m], v)
			}
		}
		if err := t.AddRow(float64(n), mean(samples[0]), mean(samples[1]), mean(samples[2])); err != nil {
			return nil, err
		}
		cfg.progress("%s: users=%d done\n", id, n)
	}
	return t, nil
}

// Fig3a reproduces Fig. 3(a): 500x500 field, SNR -15 dB, 15-50 users.
func Fig3a(cfg Config) (*Table, error) {
	return fig3Coverage("fig3a", "# coverage RSs, 500x500, SNR=-15dB", 500, ints(15, 50, 5), -15, cfg)
}

// Fig3b reproduces Fig. 3(b): 800x800 field, SNR -15 dB, 20-70 users.
func Fig3b(cfg Config) (*Table, error) {
	return fig3Coverage("fig3b", "# coverage RSs, 800x800, SNR=-15dB", 800, ints(20, 70, 10), -15, cfg)
}

// Fig3c reproduces Fig. 3(c): 800x800 field, SNR -40 dB, 50-70 users (the
// regime where IAC/GAC become feasible again).
func Fig3c(cfg Config) (*Table, error) {
	return fig3Coverage("fig3c", "# coverage RSs, 800x800, SNR=-40dB", 800, ints(50, 70, 5), -40, cfg)
}

// Fig3d reproduces Fig. 3(d): coverage relay counts vs SNR threshold
// (-14 to -10 dB) at 30 users on 500x500; IAC drops out first as the
// threshold rises (Section IV-B).
func Fig3d(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: "fig3d", Title: "# coverage RSs vs SNR threshold, 500x500, SS=30",
		XLabel:  "SNR (dB)",
		Columns: []string{"IAC", "GAC", "SAMC"},
	}
	methods := []core.CoverageMethod{core.CoverIAC, core.CoverGAC, core.CoverSAMC}
	for snr := -14.0; snr <= -10.0+1e-9; snr += 0.5 {
		samples := make([][]float64, len(methods))
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(500, 30, snr, seedFor(cfg.Seed, 30, r))
			if err != nil {
				return nil, err
			}
			for m, method := range methods {
				v, err := coverageCount(sc, method, cfg.ILP)
				if err != nil {
					return nil, err
				}
				samples[m] = append(samples[m], v)
			}
		}
		if err := t.AddRow(snr, mean(samples[0]), mean(samples[1]), mean(samples[2])); err != nil {
			return nil, err
		}
		cfg.progress("fig3d: snr=%.1f done\n", snr)
	}
	return t, nil
}

// Fig3e reproduces Fig. 3(e): coverage relay counts vs GAC grid size
// (13-20) at 30 users, SNR -11.55 dB, 500x500. IAC and SAMC do not depend
// on the grid; their flat series are plotted for reference as in the paper.
func Fig3e(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	const snr = -11.55
	t := &Table{
		ID: "fig3e", Title: "# coverage RSs vs grid size, 500x500, SNR=-11.55dB, SS=30",
		XLabel:  "Grid Size",
		Columns: []string{"IAC", "GAC", "SAMC"},
	}
	// Grid-independent baselines, one sample per run.
	var iacS, samcS []float64
	for r := 0; r < cfg.Runs; r++ {
		sc, err := genScenario(500, 30, snr, seedFor(cfg.Seed, 30, r))
		if err != nil {
			return nil, err
		}
		v, err := coverageCount(sc, core.CoverIAC, cfg.ILP)
		if err != nil {
			return nil, err
		}
		iacS = append(iacS, v)
		v, err = coverageCount(sc, core.CoverSAMC, cfg.ILP)
		if err != nil {
			return nil, err
		}
		samcS = append(samcS, v)
	}
	iacMean, samcMean := mean(iacS), mean(samcS)
	for grid := 13; grid <= 20; grid++ {
		var gacS []float64
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(500, 30, snr, seedFor(cfg.Seed, 30, r))
			if err != nil {
				return nil, err
			}
			ilp := cfg.ILP
			ilp.GridSize = float64(grid)
			v, err := coverageCount(sc, core.CoverGAC, ilp)
			if err != nil {
				return nil, err
			}
			gacS = append(gacS, v)
		}
		if err := t.AddRow(float64(grid), iacMean, mean(gacS), samcMean); err != nil {
			return nil, err
		}
		cfg.progress("fig3e: grid=%d done\n", grid)
	}
	return t, nil
}

// figPRO is the shared driver for Figs. 4(a) and 5(a): lower-tier power
// cost of the max-power baseline, PRO, and the LPQC optimum on the SAMC
// placement.
func figPRO(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"baseline", "PRO", "optimal"},
	}
	for _, n := range users {
		var baseS, proS, optS []float64
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
			if err != nil {
				return nil, err
			}
			res, err := lower.SAMC(sc, lower.SAMCOptions{})
			if err != nil {
				return nil, err
			}
			if !res.Feasible {
				continue
			}
			baseS = append(baseS, lower.BaselinePower(sc, res).Total)
			pro, err := lower.PRO(sc, res)
			if err != nil {
				return nil, err
			}
			proS = append(proS, pro.Total)
			opt, err := lower.OptimalPower(sc, res)
			if err != nil {
				return nil, err
			}
			optS = append(optS, opt.Total)
		}
		if err := t.AddRow(float64(n), mean(baseS), mean(proS), mean(optS)); err != nil {
			return nil, err
		}
		cfg.progress("%s: users=%d done\n", id, n)
	}
	return t, nil
}

// Fig4a reproduces Fig. 4(a): PRO power cost on the 500x500 field.
func Fig4a(cfg Config) (*Table, error) {
	return figPRO("fig4a", "coverage power cost, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5a reproduces Fig. 5(a): PRO power cost on the 800x800 field.
func Fig5a(cfg Config) (*Table, error) {
	return figPRO("fig5a", "coverage power cost, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// figRuntime is the shared driver for Figs. 4(b) and 5(b): wall-clock
// running time (milliseconds) of SAMC, IAC and GAC.
func figRuntime(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"SAMC", "IAC", "GAC"},
	}
	methods := []core.CoverageMethod{core.CoverSAMC, core.CoverIAC, core.CoverGAC}
	for _, n := range users {
		samples := make([][]float64, len(methods))
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
			if err != nil {
				return nil, err
			}
			for m, method := range methods {
				start := time.Now()
				if _, err := runCoverage(sc, method, cfg.ILP); err != nil {
					return nil, err
				}
				samples[m] = append(samples[m], float64(time.Since(start).Microseconds())/1000.0)
			}
		}
		if err := t.AddRow(float64(n), mean(samples[0]), mean(samples[1]), mean(samples[2])); err != nil {
			return nil, err
		}
		cfg.progress("%s: users=%d done\n", id, n)
	}
	return t, nil
}

// Fig4b reproduces Fig. 4(b): running times on the 500x500 field.
func Fig4b(cfg Config) (*Table, error) {
	return figRuntime("fig4b", "running time (ms), 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5b reproduces Fig. 5(b): running times on the 800x800 field.
func Fig5b(cfg Config) (*Table, error) {
	return figRuntime("fig5b", "running time (ms), 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// figConnectivity is the shared driver for Figs. 4(c) and 5(c): the number
// of connectivity relays when every coverage relay is forced to one of the
// four base stations (MUST, the scheme of [1]) versus attaching to the
// nearest (MBMC).
func figConnectivity(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel: "Number of Users",
		Columns: []string{
			"connect to BS1", "connect to BS2", "connect to BS3", "connect to BS4",
			"connect to optimal BS",
		},
	}
	for _, n := range users {
		samples := make([][]float64, numBS+1)
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
			if err != nil {
				return nil, err
			}
			cover, err := lower.SAMC(sc, lower.SAMCOptions{})
			if err != nil {
				return nil, err
			}
			if !cover.Feasible {
				continue
			}
			for b := 0; b < numBS; b++ {
				must, err := upper.MUST(sc, cover, b)
				if err != nil {
					return nil, err
				}
				samples[b] = append(samples[b], float64(must.NumRelays()))
			}
			mbmc, err := upper.MBMC(sc, cover)
			if err != nil {
				return nil, err
			}
			samples[numBS] = append(samples[numBS], float64(mbmc.NumRelays()))
		}
		vals := make([]float64, numBS+1)
		for i := range vals {
			vals[i] = mean(samples[i])
		}
		if err := t.AddRow(float64(n), vals...); err != nil {
			return nil, err
		}
		cfg.progress("%s: users=%d done\n", id, n)
	}
	return t, nil
}

// Fig4c reproduces Fig. 4(c): connectivity relay counts on 500x500.
func Fig4c(cfg Config) (*Table, error) {
	return figConnectivity("fig4c", "# connectivity RSs, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5c reproduces Fig. 5(c): connectivity relay counts on 800x800.
func Fig5c(cfg Config) (*Table, error) {
	return figConnectivity("fig5c", "# connectivity RSs, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// figUCPO is the shared driver for Figs. 4(d) and 5(d): upper-tier power
// cost of the max-power baseline versus UCPO on the SAMC+MBMC deployment.
func figUCPO(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"baseline", "UCPO"},
	}
	for _, n := range users {
		var baseS, ucpoS []float64
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
			if err != nil {
				return nil, err
			}
			cover, err := lower.SAMC(sc, lower.SAMCOptions{})
			if err != nil {
				return nil, err
			}
			if !cover.Feasible {
				continue
			}
			conn, err := upper.MBMC(sc, cover)
			if err != nil {
				return nil, err
			}
			baseS = append(baseS, upper.BaselinePower(sc, conn).Total)
			ucpo, err := upper.UCPO(sc, cover, conn)
			if err != nil {
				return nil, err
			}
			ucpoS = append(ucpoS, ucpo.Total)
		}
		if err := t.AddRow(float64(n), mean(baseS), mean(ucpoS)); err != nil {
			return nil, err
		}
		cfg.progress("%s: users=%d done\n", id, n)
	}
	return t, nil
}

// Fig4d reproduces Fig. 4(d): UCPO power cost on 500x500.
func Fig4d(cfg Config) (*Table, error) {
	return figUCPO("fig4d", "connectivity power cost, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig5d reproduces Fig. 5(d): UCPO power cost on 800x800.
func Fig5d(cfg Config) (*Table, error) {
	return figUCPO("fig5d", "connectivity power cost, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// fig7Total is the shared driver for Figs. 7(a)-(c): total power of SAG
// versus the X+DARP baselines ([1]'s upstream scheme: single base station,
// maximum power everywhere).
func fig7Total(id, title string, side float64, users []int, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: id, Title: title,
		XLabel:  "Number of Users",
		Columns: []string{"SAG", "SAMC+DARP", "IAC+DARP", "GAC+DARP"},
	}
	for _, n := range users {
		samples := make([][]float64, 4)
		for r := 0; r < cfg.Runs; r++ {
			sc, err := genScenario(side, n, -15, seedFor(cfg.Seed, n, r))
			if err != nil {
				return nil, err
			}
			pcfg := core.Config{ILP: cfg.ILP}
			sag, err := core.SAG(sc, pcfg)
			if err != nil {
				return nil, err
			}
			samples[0] = append(samples[0], totalOrNaN(sag))
			for i, m := range []core.CoverageMethod{core.CoverSAMC, core.CoverIAC, core.CoverGAC} {
				darp, err := core.DARP(sc, m, pcfg)
				if err != nil {
					return nil, err
				}
				samples[i+1] = append(samples[i+1], totalOrNaN(darp))
			}
		}
		if err := t.AddRow(float64(n), mean(samples[0]), mean(samples[1]), mean(samples[2]), mean(samples[3])); err != nil {
			return nil, err
		}
		cfg.progress("%s: users=%d done\n", id, n)
	}
	return t, nil
}

func totalOrNaN(s *core.Solution) float64 {
	if !s.Feasible {
		return math.NaN()
	}
	return s.PTotal
}

// Fig7a reproduces Fig. 7(a): total power on the 300x300 field.
func Fig7a(cfg Config) (*Table, error) {
	return fig7Total("fig7a", "total power, 300x300, SNR=-15dB", 300, ints(5, 40, 5), cfg)
}

// Fig7b reproduces Fig. 7(b): total power on the 500x500 field.
func Fig7b(cfg Config) (*Table, error) {
	return fig7Total("fig7b", "total power, 500x500, SNR=-15dB", 500, ints(5, 50, 5), cfg)
}

// Fig7c reproduces Fig. 7(c): total power on the 800x800 field.
func Fig7c(cfg Config) (*Table, error) {
	return fig7Total("fig7c", "total power, 800x800, SNR=-15dB", 800, ints(20, 70, 10), cfg)
}

// Table2 reproduces Table II: connectivity relay counts of MUST (per fixed
// base station) versus MBMC as the number of base stations grows from 1 to
// 4, at 30 subscribers, SNR -15 dB, 500x500.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: "table2", Title: "MBMC vs MUST, 500x500, SS=30, SNR=-15dB",
		XLabel:  "BS",
		Columns: []string{"MUST BS1", "MUST BS2", "MUST BS3", "MUST BS4", "MBMC"},
	}
	for nbs := 1; nbs <= 4; nbs++ {
		samples := make([][]float64, 5)
		for r := 0; r < cfg.Runs; r++ {
			sc, err := scenario.Generate(scenario.GenConfig{
				FieldSide: 500, NumSS: 30, NumBS: nbs, SNRdB: -15,
				Seed: seedFor(cfg.Seed, 30*nbs, r),
			})
			if err != nil {
				return nil, err
			}
			cover, err := lower.SAMC(sc, lower.SAMCOptions{})
			if err != nil {
				return nil, err
			}
			if !cover.Feasible {
				continue
			}
			for b := 0; b < 4; b++ {
				if b >= nbs {
					continue
				}
				must, err := upper.MUST(sc, cover, b)
				if err != nil {
					return nil, err
				}
				samples[b] = append(samples[b], float64(must.NumRelays()))
			}
			mbmc, err := upper.MBMC(sc, cover)
			if err != nil {
				return nil, err
			}
			samples[4] = append(samples[4], float64(mbmc.NumRelays()))
		}
		vals := make([]float64, 5)
		for i := range vals {
			vals[i] = mean(samples[i])
		}
		if err := t.AddRow(float64(nbs), vals...); err != nil {
			return nil, err
		}
		cfg.progress("table2: nbs=%d done\n", nbs)
	}
	return t, nil
}
