package experiment

import (
	"fmt"
	"io"

	"sagrelay/internal/lower"
)

// Config controls workload repetition and solver budgets for all
// experiments.
type Config struct {
	// Runs is the number of seeded repetitions averaged per data point; the
	// paper uses 10. 0 means 10.
	Runs int
	// Seed is the base seed; repetition r of a data point uses Seed + r.
	Seed int64
	// ILP tunes the IAC/GAC solvers (branch-and-bound budgets, grid size
	// where not swept by the experiment itself).
	ILP lower.ILPOptions
	// Progress, when non-nil, receives one short line per completed data
	// point (for long-running CLI invocations).
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	return c
}

// QuickConfig returns a configuration suitable for benchmarks and smoke
// tests: a single repetition per point with the default solver budgets.
func QuickConfig() Config { return Config{Runs: 1} }

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		_, _ = io.WriteString(c.Progress, fmt.Sprintf(format, args...))
	}
}
