package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"sagrelay/internal/lower"
	"sagrelay/internal/par"
)

// Config controls workload repetition, parallelism and solver budgets for
// all experiments.
type Config struct {
	// Runs is the number of seeded repetitions averaged per data point; the
	// paper uses 10. 0 means 10.
	Runs int
	// Seed is the base seed; repetition r of data point x uses
	// seedFor(Seed, x, r).
	Seed int64
	// Workers bounds the number of concurrent (data point, repetition)
	// solves; 0 means runtime.GOMAXPROCS(0). Every task derives its own
	// seed and writes into an index-addressed result slot, so any worker
	// count produces bit-identical tables; Workers == 1 additionally
	// reproduces the historical sequential execution order, including the
	// order of Progress lines.
	Workers int
	// ILP tunes the IAC/GAC solvers (branch-and-bound budgets, grid size
	// where not swept by the experiment itself).
	ILP lower.ILPOptions
	// Ctx, when non-nil, bounds the whole experiment: cancellation or a
	// deadline stops the (data point, repetition) fan-out promptly and Run
	// returns an error wrapping Ctx.Err(). Nil means no bound.
	Ctx context.Context
	// Progress, when non-nil, receives one short line per completed data
	// point (for long-running CLI invocations). Writes are mutex-guarded
	// and each line is issued as a single Write call, so concurrent data
	// points cannot interleave mid-line.
	Progress io.Writer
	// mu guards Progress; installed by withDefaults so all copies of a
	// defaulted Config share one lock.
	mu *sync.Mutex
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	c.Workers = par.DefaultWorkers(c.Workers)
	if c.Progress != nil && c.mu == nil {
		c.mu = &sync.Mutex{}
	}
	return c
}

// QuickConfig returns a configuration suitable for benchmarks and smoke
// tests: a single repetition per point with the default solver budgets.
func QuickConfig() Config { return Config{Runs: 1} }

// ctx returns the experiment-wide context, Background when unset.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// progress emits one line to the Progress writer. The line is formatted
// before the lock is taken and written with a single Write call, so
// concurrently completing data points produce whole, non-interleaved lines.
func (c Config) progress(format string, args ...interface{}) {
	if c.Progress == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	_, _ = io.WriteString(c.Progress, line)
}

// forEachCell fans the (data point, repetition) grid out over c.Workers
// workers: task (pi, r) for pi in [0, points) and r in [0, c.Runs). fn must
// write its result into a pre-sized slot addressed by (pi, r) — never by
// append order — which is what keeps parallel output bit-identical to
// sequential. pointDone, when non-nil, runs exactly once per data point,
// from the worker that completes the point's last repetition (progress
// reporting). On error the remaining unstarted tasks are cancelled and the
// lowest-index error is returned.
func (c Config) forEachCell(points int, fn func(pi, r int) error, pointDone func(pi int)) error {
	remaining := make([]int32, points)
	for i := range remaining {
		remaining[i] = int32(c.Runs)
	}
	return par.ForEachContext(c.ctx(), c.Workers, points*c.Runs, func(t int) error {
		pi, r := t/c.Runs, t%c.Runs
		if err := fn(pi, r); err != nil {
			return err
		}
		if atomic.AddInt32(&remaining[pi], -1) == 0 && pointDone != nil {
			pointDone(pi)
		}
		return nil
	})
}

// nanGrid allocates a [points][cols][runs] sample grid pre-filled with NaN,
// so repetitions skipped as infeasible naturally drop out of mean().
func nanGrid(points, cols, runs int) [][][]float64 {
	g := make([][][]float64, points)
	for pi := range g {
		g[pi] = make([][]float64, cols)
		for c := range g[pi] {
			row := make([]float64, runs)
			for r := range row {
				row[r] = math.NaN()
			}
			g[pi][c] = row
		}
	}
	return g
}
