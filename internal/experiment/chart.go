package experiment

import (
	"fmt"
	"math"
	"strings"
)

// chartGlyphs mark the series in ASCII charts, cycled in column order.
var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the table as an ASCII scatter chart (x left to right, y
// bottom to top), one glyph per series, with a legend. It is the terminal
// stand-in for the paper's matplotlib panels. width and height are the
// plot-area dimensions in characters; non-positive values pick 64x20.
func (t *Table) Chart(width, height int) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	if len(t.Rows) == 0 || len(t.Columns) == 0 {
		return fmt.Sprintf("%s — %s (no data)\n", t.ID, t.Title)
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, row := range t.Rows {
		xMin = math.Min(xMin, row.X)
		xMax = math.Max(xMax, row.X)
		for _, v := range row.Values {
			if math.IsNaN(v) {
				continue
			}
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if math.IsInf(yMin, 1) {
		return fmt.Sprintf("%s — %s (all values missing)\n", t.ID, t.Title)
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, glyph byte) {
		cx := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		cy := int(math.Round((y - yMin) / (yMax - yMin) * float64(height-1)))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			if grid[row][cx] != ' ' && grid[row][cx] != glyph {
				grid[row][cx] = '?' // collision marker
			} else {
				grid[row][cx] = glyph
			}
		}
	}
	for _, row := range t.Rows {
		for c, v := range row.Values {
			if !math.IsNaN(v) {
				plot(row.X, v, chartGlyphs[c%len(chartGlyphs)])
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	yLabelW := len(formatNum(yMax))
	if w := len(formatNum(yMin)); w > yLabelW {
		yLabelW = w
	}
	for i, line := range grid {
		label := strings.Repeat(" ", yLabelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", yLabelW, formatNum(yMax))
		case height - 1:
			label = fmt.Sprintf("%*s", yLabelW, formatNum(yMin))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%*s\n", strings.Repeat(" ", yLabelW),
		width/2, formatNum(xMin), width-width/2, formatNum(xMax))
	fmt.Fprintf(&b, "x: %s   series:", t.XLabel)
	for c, name := range t.Columns {
		fmt.Fprintf(&b, " %c=%s", chartGlyphs[c%len(chartGlyphs)], name)
	}
	b.WriteByte('\n')
	return b.String()
}
