package experiment

import (
	"context"
	"math"
	"testing"

	"sagrelay/internal/core"
)

// infeasibleSolution is a zero-value feasibility fixture.
var infeasibleSolution = core.Solution{Feasible: false}

// These smoke tests drive the shared figure drivers on miniature sweeps so
// the harness plumbing stays covered without the full multi-minute runs
// (which cmd/sagbench and the benchmarks exercise).

func TestFigRuntimeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := figRuntime("smoke", "smoke", 300, []int{6}, Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	vals := tbl.Rows[0].Values
	for i, v := range vals {
		if math.IsNaN(v) || v < 0 {
			t.Errorf("runtime column %d = %v", i, v)
		}
	}
	// SAMC (col 0) should be the fastest of the three.
	if vals[0] > vals[1] && vals[0] > vals[2] {
		t.Errorf("SAMC slowest of all: %v", vals)
	}
}

func TestFigConnectivitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := figConnectivity("smoke", "smoke", 400, []int{8}, Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	vals := tbl.Rows[0].Values
	mbmc := vals[len(vals)-1]
	if math.IsNaN(mbmc) {
		t.Skip("infeasible draw")
	}
	for b := 0; b < numBS; b++ {
		if !math.IsNaN(vals[b]) && mbmc > vals[b]+1e-9 {
			t.Errorf("MBMC %v above MUST BS%d %v", mbmc, b+1, vals[b])
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := fig7Total("smoke", "smoke", 300, []int{6}, Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	vals := tbl.Rows[0].Values
	sag, samcDarp := vals[0], vals[1]
	if math.IsNaN(sag) || math.IsNaN(samcDarp) {
		t.Skip("infeasible draw")
	}
	if sag > samcDarp+1e-9 {
		t.Errorf("SAG %v above SAMC+DARP %v", sag, samcDarp)
	}
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Table2(Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		nbs := int(row.X)
		mbmc := row.Values[4]
		if math.IsNaN(mbmc) {
			continue
		}
		// N/A cells for absent base stations.
		for b := nbs; b < 4; b++ {
			if !math.IsNaN(row.Values[b]) {
				t.Errorf("row nbs=%d has a value for absent BS%d", nbs, b+1)
			}
		}
		// MBMC no worse than any present MUST.
		for b := 0; b < nbs; b++ {
			if !math.IsNaN(row.Values[b]) && mbmc > row.Values[b]+1e-9 {
				t.Errorf("nbs=%d: MBMC %v above MUST BS%d %v", nbs, mbmc, b+1, row.Values[b])
			}
		}
	}
}

func TestGenScenarioHelper(t *testing.T) {
	sc, err := genScenario(500, 10, -15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumSS() != 10 || len(sc.BaseStations) != numBS {
		t.Errorf("sizes wrong: %d SS, %d BS", sc.NumSS(), len(sc.BaseStations))
	}
	if sc.SNRThresholdDB != -15 {
		t.Errorf("SNR = %v", sc.SNRThresholdDB)
	}
}

func TestCoverageCountUnknownMethod(t *testing.T) {
	sc, err := genScenario(300, 4, -15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runCoverage(context.Background(), sc, 0, Config{}.ILP); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestTotalOrNaN(t *testing.T) {
	if !math.IsNaN(totalOrNaN(&infeasibleSolution)) {
		t.Error("infeasible should be NaN")
	}
}
