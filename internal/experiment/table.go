// Package experiment regenerates every table and figure of the paper's
// evaluation (Section IV): it builds the workloads, runs the algorithm
// pipelines over seeded repetitions, averages, and renders the series as
// ASCII tables or CSV. Each artifact has an ID ("fig3a" ... "fig7c",
// "table2") resolvable through Registry.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a generic experiment result: one row per x value, one column per
// series. NaN cells mean "no feasible result" (the paper plots these as
// missing points, e.g. IAC/GAC beyond 50 users in Fig. 3b).
type Table struct {
	// ID is the registry key, e.g. "fig3a".
	ID string
	// Title describes the artifact, e.g. the paper caption.
	Title string
	// XLabel names the x axis (e.g. "Number of Users").
	XLabel string
	// Columns are the series names (e.g. "IAC", "GAC", "SAMC").
	Columns []string
	// Rows are the measurements in x order.
	Rows []Row
}

// Row is one x value and its per-series measurements.
type Row struct {
	X      float64
	Values []float64
}

// AddRow appends a row; the number of values must match Columns.
func (t *Table) AddRow(x float64, values ...float64) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("experiment: row has %d values for %d columns", len(values), len(t.Columns))
	}
	t.Rows = append(t.Rows, Row{X: x, Values: append([]float64(nil), values...)})
	return nil
}

// Column returns the series values of the named column in row order.
func (t *Table) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Values[idx]
	}
	return out, true
}

// ASCII renders the table with aligned columns; NaN prints as "-".
func (t *Table) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	headers := append([]string{t.XLabel}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(headers))
		cells[r][0] = formatNum(row.X)
		for c, v := range row.Values {
			cells[r][c+1] = formatNum(v)
		}
		for i, cell := range cells[r] {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row; NaN
// cells are empty.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(formatNum(row.X))
		for _, v := range row.Values {
			b.WriteByte(',')
			if !math.IsNaN(v) {
				b.WriteString(formatNum(v))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatNum(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// mean averages the non-NaN entries; all-NaN (or empty) yields NaN.
func mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// stddev is the sample standard deviation of the non-NaN entries.
func stddev(xs []float64) float64 {
	m := mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			d := x - m
			sum += d * d
			n++
		}
	}
	if n < 2 {
		return 0
	}
	return math.Sqrt(sum / float64(n-1))
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
