package experiment

import (
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestTableASCIIAndCSV(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "demo", XLabel: "x",
		Columns: []string{"a", "b"},
	}
	if err := tbl.AddRow(1, 2, math.NaN()); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow(2, 3.5, 4); err != nil {
		t.Fatal(err)
	}
	ascii := tbl.ASCII()
	if !strings.Contains(ascii, "demo") || !strings.Contains(ascii, "3.50") || !strings.Contains(ascii, "-") {
		t.Errorf("ASCII rendering wrong:\n%s", ascii)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1,2,\n") {
		t.Errorf("NaN cell should be empty: %q", csv)
	}
}

func TestAddRowLengthMismatch(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}}
	if err := tbl.AddRow(1, 2, 3); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestColumn(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	_ = tbl.AddRow(1, 10, 20)
	_ = tbl.AddRow(2, 11, 21)
	col, ok := tbl.Column("b")
	if !ok || len(col) != 2 || col[0] != 20 || col[1] != 21 {
		t.Errorf("Column(b) = %v ok=%v", col, ok)
	}
	if _, ok := tbl.Column("zzz"); ok {
		t.Error("unknown column found")
	}
}

func TestMeanStddev(t *testing.T) {
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if m := mean([]float64{1, math.NaN(), 3}); m != 2 {
		t.Errorf("mean with NaN = %v", m)
	}
	if m := mean(nil); !math.IsNaN(m) {
		t.Errorf("mean(nil) = %v, want NaN", m)
	}
	if s := stddev([]float64{2, 4}); math.Abs(s-math.Sqrt2) > 1e-12 {
		t.Errorf("stddev = %v", s)
	}
	if s := stddev([]float64{5}); s != 0 {
		t.Errorf("stddev of singleton = %v", s)
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape = %q", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig3c", "fig3d", "fig3e",
		"fig4a", "fig4b", "fig4c", "fig4d",
		"fig5a", "fig5b", "fig5c", "fig5d",
		"fig6", "fig7a", "fig7b", "fig7c", "table2",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("IDs()[%d] = %q, want %q", i, ids[i], id)
		}
	}
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIntsHelper(t *testing.T) {
	got := ints(5, 20, 5)
	want := []int{5, 10, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("ints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ints = %v, want %v", got, want)
		}
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	if seedFor(1, 10, 2) != seedFor(1, 10, 2) {
		t.Error("seedFor not deterministic")
	}
	if seedFor(1, 10, 2) == seedFor(1, 10, 3) {
		t.Error("runs share a seed")
	}
	if seedFor(1, 10, 2) == seedFor(1, 20, 2) {
		t.Error("x values share a seed")
	}
}

// The full figures run for minutes; smoke-test the harness plumbing with a
// tiny custom sweep through the same code paths instead.
func TestFig4dSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := figUCPO("smoke", "smoke", 300, []int{5}, Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0].Values) != 2 {
		t.Fatalf("unexpected table shape: %+v", tbl)
	}
	base, ucpo := tbl.Rows[0].Values[0], tbl.Rows[0].Values[1]
	if !math.IsNaN(base) && !math.IsNaN(ucpo) && ucpo > base+1e-9 {
		t.Errorf("UCPO %v above baseline %v", ucpo, base)
	}
}

func TestFigPROSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := figPRO("smoke", "smoke", 300, []int{5}, Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	vals := tbl.Rows[0].Values
	base, pro, opt := vals[0], vals[1], vals[2]
	if math.IsNaN(base) || math.IsNaN(pro) || math.IsNaN(opt) {
		t.Skip("infeasible draw")
	}
	if !(opt <= pro+1e-6 && pro <= base+1e-6) {
		t.Errorf("power ordering violated: opt=%v pro=%v base=%v", opt, pro, base)
	}
}

func TestFig3CoverageSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := fig3Coverage("smoke", "smoke", 300, []int{8}, -15, Config{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	iac, gac, samc := tbl.Rows[0].Values[0], tbl.Rows[0].Values[1], tbl.Rows[0].Values[2]
	if math.IsNaN(samc) {
		t.Fatal("SAMC infeasible on a benign instance")
	}
	// The paper's ordering: SAMC <= IAC <= GAC (allowing NaN dropouts).
	if !math.IsNaN(iac) && samc > iac+1e-9 {
		t.Errorf("SAMC %v above IAC %v", samc, iac)
	}
	_ = gac
}

func TestFig6SVGs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	paths, err := Fig6SVGs(Config{Runs: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("rendered %d panels, want 4", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "<svg") {
			t.Errorf("%s is not SVG", p)
		}
	}
}

func TestProgressWriter(t *testing.T) {
	var sb strings.Builder
	cfg := Config{Runs: 1, Progress: &sb}
	if _, err := figUCPO("p", "p", 300, []int{5}, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "users=5 done") {
		t.Errorf("no progress written: %q", sb.String())
	}
}

// lineRecorder records every Write call it receives verbatim.
type lineRecorder struct {
	mu     sync.Mutex
	writes []string
}

func (l *lineRecorder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writes = append(l.writes, string(p))
	return len(p), nil
}

// TestProgressLineAtomic: concurrent data points must emit each progress
// line as exactly one Write call ending in a newline — interleaved workers
// can reorder whole lines but never splice fragments mid-line.
func TestProgressLineAtomic(t *testing.T) {
	rec := &lineRecorder{}
	cfg := Config{Runs: 4, Workers: 8, Progress: rec}
	cfg = cfg.withDefaults()
	err := cfg.forEachCell(16, func(pi, r int) error { return nil }, func(pi int) {
		cfg.progress("point %d done\n", pi)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.writes) != 16 {
		t.Fatalf("%d writes for 16 data points", len(rec.writes))
	}
	seen := make(map[string]bool)
	for _, w := range rec.writes {
		if !strings.HasSuffix(w, "done\n") || strings.Count(w, "\n") != 1 {
			t.Errorf("write is not one whole line: %q", w)
		}
		seen[w] = true
	}
	if len(seen) != 16 {
		t.Errorf("%d distinct lines, want 16", len(seen))
	}
}
