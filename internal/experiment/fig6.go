package experiment

import (
	"fmt"
	"math"
	"path/filepath"

	"sagrelay/internal/core"
	"sagrelay/internal/par"
	"sagrelay/internal/scenario"
	"sagrelay/internal/viz"
)

// fig6Schemes are the four panels of Fig. 6.
var fig6Schemes = []struct {
	Name     string
	Coverage core.CoverageMethod
	Conn     core.ConnectivityMethod
}{
	{"IAC+MBMC", core.CoverIAC, core.ConnMBMC},
	{"GAC+MBMC", core.CoverGAC, core.ConnMBMC},
	{"SAMC+MBMC", core.CoverSAMC, core.ConnMBMC},
	{"SAMC+MUST", core.CoverSAMC, core.ConnMUST},
}

// fig6Scenario builds the Fig. 6 workload: a 600x600 field (the paper's
// panels span [-300,300]^2) with 30 subscribers and 4 base stations.
func fig6Scenario(seed int64) (*scenario.Scenario, error) {
	return scenario.Generate(scenario.GenConfig{
		FieldSide: 600, NumSS: 30, NumBS: numBS, SNRdB: -15, Seed: seed,
	})
}

// fig6Solve runs one Fig. 6 scheme.
func fig6Solve(sc *scenario.Scenario, idx int, cfg Config) (*core.Solution, error) {
	s := fig6Schemes[idx]
	return core.Run(cfg.ctx(), sc, core.Config{
		Coverage:     s.Coverage,
		Connectivity: s.Conn,
		ILP:          cfg.ILP,
	})
}

// Fig6 reproduces Fig. 6 numerically: for each scheme it reports the
// coverage and connectivity relay counts of the rendered topology (the
// SVG panels themselves come from Fig6SVGs / cmd/sagviz). X is the scheme
// index (0-3, order as in the paper).
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID: "fig6", Title: "deployment topologies (scheme index: 0=IAC+MBMC 1=GAC+MBMC 2=SAMC+MBMC 3=SAMC+MUST)",
		XLabel:  "Scheme",
		Columns: []string{"coverage RSs", "connectivity RSs"},
	}
	sc, err := fig6Scenario(cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The four schemes are independent solves over the same scenario; fan
	// them out and assemble rows in scheme order afterwards.
	sols := make([]*core.Solution, len(fig6Schemes))
	err = par.ForEach(cfg.Workers, len(fig6Schemes), func(i int) error {
		sol, err := fig6Solve(sc, i, cfg)
		if err != nil {
			return err
		}
		sols[i] = sol
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sol := range sols {
		if !sol.Feasible {
			if err := t.AddRow(float64(i), math.NaN(), math.NaN()); err != nil {
				return nil, err
			}
			continue
		}
		if err := t.AddRow(float64(i), float64(sol.Coverage.NumRelays()), float64(sol.Connectivity.NumRelays())); err != nil {
			return nil, err
		}
		cfg.progress("fig6: %s done\n", fig6Schemes[i].Name)
	}
	return t, nil
}

// Fig6SVGs renders the four Fig. 6 panels as SVG files in dir
// (fig6a.svg ... fig6d.svg) and returns their paths.
func Fig6SVGs(cfg Config, dir string) ([]string, error) {
	cfg = cfg.withDefaults()
	sc, err := fig6Scenario(cfg.Seed)
	if err != nil {
		return nil, err
	}
	var paths []string
	for i, scheme := range fig6Schemes {
		sol, err := fig6Solve(sc, i, cfg)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("fig6%c.svg", 'a'+i))
		style := viz.Style{ShowEdges: true, Title: scheme.Name}
		if err := viz.RenderToFile(sc, sol, style, path); err != nil {
			return nil, err
		}
		paths = append(paths, path)
		cfg.progress("fig6: rendered %s\n", path)
	}
	return paths, nil
}
