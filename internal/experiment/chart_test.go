package experiment

import (
	"math"
	"strings"
	"testing"
)

func chartFixture(t *testing.T) *Table {
	t.Helper()
	tbl := &Table{ID: "c", Title: "chart", XLabel: "n", Columns: []string{"up", "down"}}
	for i := 0; i < 5; i++ {
		if err := tbl.AddRow(float64(i), float64(i*10), float64(40-i*10)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestChartBasics(t *testing.T) {
	tbl := chartFixture(t)
	out := tbl.Chart(40, 10)
	if !strings.Contains(out, "chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing")
	}
	// Axis labels: min and max of y (0 and 40).
	if !strings.Contains(out, "40 |") || !strings.Contains(out, " 0 |") {
		t.Errorf("y axis labels missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Plot rows: height 10 + title + axis + x labels + legend.
	if len(lines) < 14 {
		t.Errorf("chart has %d lines", len(lines))
	}
}

func TestChartGlyphPositions(t *testing.T) {
	// Single ascending series: the '*' in the top row must be at the right
	// edge, the one in the bottom row at the left edge.
	tbl := &Table{ID: "g", Title: "t", XLabel: "x", Columns: []string{"s"}}
	_ = tbl.AddRow(0, 0)
	_ = tbl.AddRow(10, 100)
	out := tbl.Chart(21, 5)
	lines := strings.Split(out, "\n")
	top := lines[1]
	bottom := lines[5]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Errorf("top-right glyph missing: %q", top)
	}
	if !strings.Contains(bottom, "|*") {
		t.Errorf("bottom-left glyph missing: %q", bottom)
	}
}

func TestChartHandlesNaN(t *testing.T) {
	tbl := &Table{ID: "n", Title: "t", XLabel: "x", Columns: []string{"a"}}
	_ = tbl.AddRow(0, math.NaN())
	_ = tbl.AddRow(1, math.NaN())
	out := tbl.Chart(10, 5)
	if !strings.Contains(out, "all values missing") {
		t.Errorf("NaN-only chart should degrade gracefully: %q", out)
	}
	// Mixed NaN rows still chart.
	_ = tbl.AddRow(2, 5)
	out = tbl.Chart(10, 5)
	if !strings.Contains(out, "*") {
		t.Error("valid point not plotted")
	}
}

func TestChartEmptyTable(t *testing.T) {
	tbl := &Table{ID: "e", Title: "t", XLabel: "x", Columns: []string{"a"}}
	if out := tbl.Chart(10, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	tbl := &Table{ID: "k", Title: "t", XLabel: "x", Columns: []string{"a"}}
	_ = tbl.AddRow(1, 7)
	_ = tbl.AddRow(2, 7)
	out := tbl.Chart(20, 5)
	if !strings.Contains(out, "*") {
		t.Error("constant series not plotted")
	}
}

func TestChartDefaultDims(t *testing.T) {
	tbl := chartFixture(t)
	out := tbl.Chart(0, 0)
	if len(strings.Split(out, "\n")) < 22 {
		t.Error("default dimensions not applied")
	}
}

func TestChartCollisionMarker(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", XLabel: "x", Columns: []string{"a", "b"}}
	_ = tbl.AddRow(0, 5, 5) // same point for both series
	_ = tbl.AddRow(1, 0, 10)
	out := tbl.Chart(10, 5)
	if !strings.Contains(out, "?") {
		t.Errorf("collision not marked:\n%s", out)
	}
}
