package experiment

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"sagrelay/internal/lower"
	"sagrelay/internal/milp"
)

// cellsEqual compares two tables cell by cell with bit-identical equality
// (NaN cells — infeasible repetitions — match each other).
func cellsEqual(t *testing.T, a, b *Table) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.X != rb.X {
			t.Fatalf("row %d: x %v vs %v", i, ra.X, rb.X)
		}
		if len(ra.Values) != len(rb.Values) {
			t.Fatalf("row %d: value counts differ: %d vs %d", i, len(ra.Values), len(rb.Values))
		}
		for j := range ra.Values {
			va, vb := ra.Values[j], rb.Values[j]
			if math.IsNaN(va) && math.IsNaN(vb) {
				continue
			}
			if va != vb {
				t.Errorf("row %d col %d: %v vs %v", i, j, va, vb)
			}
		}
	}
}

// deterministicILP returns solver budgets safe for a determinism test: the
// wall-clock cutoff (inherently scheduling-dependent) is pushed out of
// reach so only the deterministic node cap can bind. The cap is kept small
// — the test compares two executions, it does not need proven optima.
func deterministicILP() lower.ILPOptions {
	return lower.ILPOptions{TimeLimit: time.Hour, MaxNodes: 250}
}

// TestDeterminismAcrossWorkers runs a miniature coverage experiment —
// including the IAC/GAC branch-and-bound paths — sequentially and with an
// oversubscribed worker pool, and requires bit-identical tables. This is
// the cheap always-on guard; TestFig3aDeterminismAcrossWorkers covers the
// full-size artifact.
func TestDeterminismAcrossWorkers(t *testing.T) {
	var events atomic.Int64
	run := func(workers int, armed bool) *Table {
		cfg := Config{Runs: 2, Workers: workers, ILP: deterministicILP()}
		if armed {
			// Progress is observational: arming the hook on the parallel run
			// must not perturb a single cell relative to the disarmed
			// sequential run.
			cfg.Ctx = milp.WithProgress(context.Background(), func(milp.Progress) {
				events.Add(1)
			})
		}
		tbl, err := fig3Coverage("det", "det", 300, []int{6}, -15, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	seq := run(1, false)
	par := run(8, true)
	cellsEqual(t, seq, par)
	if events.Load() == 0 {
		t.Error("armed run emitted no progress events; the hook is not wired")
	}
}

// TestFig3aDeterminismAcrossWorkers is the full-size regression from the
// issue: Fig. 3(a) at QuickConfig must produce identical tables at
// Workers=1 and Workers=8. Minutes of solving — skipped under -short.
func TestFig3aDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig3a determinism check skipped in -short mode")
	}
	run := func(workers int, armed bool) *Table {
		cfg := QuickConfig()
		cfg.Workers = workers
		cfg.ILP = deterministicILP()
		if armed {
			// The acceptance check: Fig. 3(a) relay counts must be
			// byte-identical with the live-progress hook armed.
			cfg.Ctx = milp.WithProgress(context.Background(), func(milp.Progress) {})
		}
		tbl, err := Fig3a(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	seq := run(1, false)
	par := run(8, true)
	cellsEqual(t, seq, par)
}
