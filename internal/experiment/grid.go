package experiment

import (
	"fmt"

	"sagrelay/internal/scenario"
)

// Grid expansion: one template scenario generator plus a cartesian product
// of swept dimensions, expanded into a deterministic, seed-addressed list of
// scenario generator configs. It is the shared vocabulary between the
// sagsweep CLI (which sweeps one dimension locally) and the solve service's
// POST /v1/batch grid form (which fans a whole SS-count x field-size x runs
// grid out server-side), so a sweep run locally and the same sweep shipped
// to a server expand to bit-identical scenarios.

// Grid dimension names. Each overrides one field of the template GenConfig.
const (
	DimUsers = "users" // number of subscriber stations
	DimSNR   = "snr"   // SNR threshold in dB
	DimField = "field" // field side length
	DimBS    = "bs"    // number of base stations
)

// GridDim is one swept dimension: a name from the Dim* constants and the
// values it takes. The expansion is the cartesian product over all dims.
type GridDim struct {
	Name   string    `json:"dim"`
	Values []float64 `json:"values"`
}

// GridSpec describes a scenario grid: a template generator config, the
// swept dimensions, and the number of seeded repetitions per grid cell.
type GridSpec struct {
	// Base is the template; swept dimensions override its fields cell by
	// cell, everything else (distance bounds, PMax, radio model, ...) is
	// shared by every cell.
	Base scenario.GenConfig
	// Dims are the swept dimensions; empty means a single cell (the
	// template itself, repeated Runs times).
	Dims []GridDim
	// Runs is the number of seeded repetitions per cell; 0 means 1.
	Runs int
	// Seed is the base seed. Cell (values v_1..v_k, run r) derives
	// Seed + r + sum_i int64(v_i * 7919) — the sagsweep seed rule, kept
	// verbatim so a single-dim grid reproduces historical sweep scenarios.
	Seed int64
}

// GridCell is one expanded grid entry: the resolved generator config (seed
// included) plus its provenance — the point index in the cartesian product,
// the run index, and the dimension values that shaped it.
type GridCell struct {
	// Index is the cell's position in expansion order: point-major,
	// run-minor (Index = Point*Runs + Run).
	Index int
	// Point indexes the cartesian product of dimension values.
	Point int
	// Run is the repetition index within the point.
	Run int
	// Values holds the swept dimension values, aligned with GridSpec.Dims.
	Values []float64
	// Gen is the fully resolved generator config for this cell.
	Gen scenario.GenConfig
}

// Points returns the number of cartesian-product points the spec expands to
// (before the Runs multiplier), or an error for an empty dimension.
func (g GridSpec) Points() (int, error) {
	points := 1
	for _, d := range g.Dims {
		if len(d.Values) == 0 {
			return 0, fmt.Errorf("experiment: grid dimension %q has no values", d.Name)
		}
		points *= len(d.Values)
	}
	return points, nil
}

// Expand resolves the grid into its cells, ordered point-major (the
// cartesian product iterates the last dimension fastest) and run-minor
// within each point. Every cell is validated to yield a generable scenario.
func (g GridSpec) Expand() ([]GridCell, error) {
	runs := g.Runs
	if runs <= 0 {
		runs = 1
	}
	points, err := g.Points()
	if err != nil {
		return nil, err
	}
	cells := make([]GridCell, 0, points*runs)
	values := make([]float64, len(g.Dims))
	for pi := 0; pi < points; pi++ {
		// Decompose the point index into per-dimension value indices, last
		// dimension fastest.
		rem := pi
		for di := len(g.Dims) - 1; di >= 0; di-- {
			n := len(g.Dims[di].Values)
			values[di] = g.Dims[di].Values[rem%n]
			rem /= n
		}
		gen := g.Base
		var seedOff int64
		for di, d := range g.Dims {
			v := values[di]
			seedOff += int64(v * 7919)
			switch d.Name {
			case DimUsers:
				gen.NumSS = int(v)
			case DimSNR:
				gen.SNRdB = v
			case DimField:
				gen.FieldSide = v
			case DimBS:
				gen.NumBS = int(v)
			default:
				return nil, fmt.Errorf("experiment: unknown grid dimension %q", d.Name)
			}
		}
		if gen.NumSS <= 0 || gen.NumBS <= 0 || gen.FieldSide <= 0 {
			return nil, fmt.Errorf("experiment: grid point %v yields an invalid scenario (users=%d bs=%d field=%v)",
				values, gen.NumSS, gen.NumBS, gen.FieldSide)
		}
		for r := 0; r < runs; r++ {
			gen.Seed = g.Seed + int64(r) + seedOff
			cells = append(cells, GridCell{
				Index:  pi*runs + r,
				Point:  pi,
				Run:    r,
				Values: append([]float64(nil), values...),
				Gen:    gen,
			})
		}
	}
	return cells, nil
}

// SeqValues expands a from/to/step range into the inclusive value list used
// by sagsweep-style sweeps (to is included within a 1e-9 tolerance).
func SeqValues(from, to, step float64) ([]float64, error) {
	if step <= 0 {
		return nil, fmt.Errorf("experiment: step %v must be positive", step)
	}
	if to < from {
		return nil, fmt.Errorf("experiment: empty range [%v,%v]", from, to)
	}
	var vs []float64
	for x := from; x <= to+1e-9; x += step {
		vs = append(vs, x)
	}
	return vs, nil
}
