package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal record types. A job's durable lifecycle is submit -> start ->
// done|fail|cancel|interrupt. Records whose job never reached done, fail or
// cancel are replayed (re-run) on the next startup: submit/start mean the
// process died mid-job, and interrupt means a graceful shutdown drained the
// job before it could finish — both owe the client a result. cancel is a
// deliberate client- or deadline-initiated abort and stays dead.
const (
	recSubmit    = "submit"
	recStart     = "start"
	recDone      = "done"
	recFail      = "fail"
	recCancel    = "cancel"
	recInterrupt = "interrupt"
)

// jrec is one JSONL line in the journal. Submit records carry the full
// request so a replay can re-run the job; done records for degraded results
// carry the document inline (degraded results are timing-dependent and are
// deliberately kept out of the content-addressed results directory — see
// runJob), while normal done records point at results/<key>.json via Key.
type jrec struct {
	T   string          `json:"t"`
	ID  string          `json:"id"`
	Key string          `json:"key,omitempty"`
	Req json.RawMessage `json:"req,omitempty"`
	Err string          `json:"err,omitempty"`
	Doc json.RawMessage `json:"doc,omitempty"`
}

// journal is the append-only JSONL write-ahead log plus the
// content-addressed results directory under one data dir:
//
//	<dir>/journal.jsonl      lifecycle records, appended and fsynced per job event
//	<dir>/results/<key>.json finished result documents, written tmp+rename
//
// Every append is flushed and fsynced before it returns: a record the
// server acted on (a 202 answered, a result served) survives kill -9. The
// reader tolerates a torn final line — the one partial write a crash can
// leave behind — by stopping at the first line that does not parse.
type journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

func journalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }
func resultsDir(dir string) string  { return filepath.Join(dir, "results") }

// openJournal creates dir (and its results subdirectory) as needed, reads
// whatever journal survives there, and returns the parsed records alongside
// a journal opened for appending.
func openJournal(dir string) (*journal, []jrec, error) {
	if err := os.MkdirAll(resultsDir(dir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	recs, err := readJournal(journalPath(dir))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{dir: dir, f: f}, recs, nil
}

// readJournal parses a JSONL journal, stopping silently at the first
// malformed line (a torn tail from a crash mid-append). A missing file is
// an empty journal.
func readJournal(path string) ([]jrec, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	defer f.Close()
	var recs []jrec
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r jrec
		if err := json.Unmarshal(line, &r); err != nil || r.T == "" || r.ID == "" {
			break
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return recs, nil
}

// append writes one record, flushed and fsynced before returning.
func (j *journal) append(r jrec) error {
	line, err := json.Marshal(&r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// compact atomically replaces the journal with just the given records —
// called at startup after replay folds history down to retained jobs, so
// the log does not grow without bound across restarts. The append handle is
// reopened on the new file.
func (j *journal) compact(recs []jrec) error {
	tmp := journalPath(j.dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := json.Marshal(&r)
		if err != nil {
			f.Close()
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, journalPath(j.dir)); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
	nf, err := os.OpenFile(journalPath(j.dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	return nil
}

// close releases the append handle.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// writeResult durably stores a finished result document under its content
// address via tmp+rename, so a crash can never leave a half-written file at
// the final path.
func (j *journal) writeResult(key string, doc []byte) error {
	final := filepath.Join(resultsDir(j.dir), key+".json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// loadResult reads a stored result document back; ok is false when the key
// has no durable result (the job must then be re-run).
func (j *journal) loadResult(key string) ([]byte, bool) {
	doc, err := os.ReadFile(filepath.Join(resultsDir(j.dir), key+".json"))
	if err != nil || len(doc) == 0 {
		return nil, false
	}
	return doc, true
}
