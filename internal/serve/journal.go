package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// crcTable is the CRC32C (Castagnoli) polynomial table used to checksum
// journal lines; Castagnoli has hardware support on amd64/arm64 and better
// error-detection properties than IEEE for short records.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal record types. A job's durable lifecycle is submit -> start ->
// done|fail|cancel|interrupt. Records whose job never reached done, fail or
// cancel are replayed (re-run) on the next startup: submit/start mean the
// process died mid-job, and interrupt means a graceful shutdown drained the
// job before it could finish — both owe the client a result. cancel is a
// deliberate client- or deadline-initiated abort and stays dead.
const (
	recSubmit    = "submit"
	recStart     = "start"
	recDone      = "done"
	recFail      = "fail"
	recCancel    = "cancel"
	recInterrupt = "interrupt"
	// recBatch groups already-journaled jobs into a batch: the record's ID
	// is the batch ID and its Doc holds the membership (item -> job ID or
	// inline rejection). Item lifecycles live in the member jobs' own
	// records, so a crashed batch resumes exactly its unfinished items.
	recBatch = "batch"
)

// jrec is one JSONL line in the journal. Submit records carry the full
// request so a replay can re-run the job; done records for degraded results
// carry the document inline (degraded results are timing-dependent and are
// deliberately kept out of the content-addressed results directory — see
// runJob), while normal done records point at results/<key>.json via Key.
type jrec struct {
	T   string          `json:"t"`
	ID  string          `json:"id"`
	Key string          `json:"key,omitempty"`
	Req json.RawMessage `json:"req,omitempty"`
	Err string          `json:"err,omitempty"`
	Doc json.RawMessage `json:"doc,omitempty"`
}

// journal is the append-only JSONL write-ahead log plus the
// content-addressed results directory under one data dir:
//
//	<dir>/journal.jsonl      lifecycle records, appended and fsynced per job event
//	<dir>/results/<key>.json finished result documents, written tmp+rename
//
// Every append is flushed and fsynced before it returns: a record the
// server acted on (a 202 answered, a result served) survives kill -9.
//
// Each line is written as "%08x <json>" — a CRC32C checksum over the JSON
// bytes, then the record. The reader distinguishes two failure shapes: a
// bad FINAL line is a torn tail (the one partial write a crash can leave)
// and is dropped silently; a bad MID-FILE line is bit rot or tampering —
// the record is quarantined (skipped and counted) while every verifiable
// record around it is restored. Legacy lines that start with '{' (written
// before checksumming) are accepted on their JSON alone.
type journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

func journalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }
func resultsDir(dir string) string  { return filepath.Join(dir, "results") }

// openJournal creates dir (and its results subdirectory) as needed, reads
// whatever journal survives there, and returns the parsed records alongside
// a journal opened for appending, plus the count of quarantined mid-file
// corrupt records.
func openJournal(dir string) (*journal, []jrec, int64, error) {
	if err := os.MkdirAll(resultsDir(dir), 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	recs, corrupt, err := readJournal(journalPath(dir))
	if err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{dir: dir, f: f}, recs, corrupt, nil
}

// encodeLine renders a record as its checksummed journal line, newline
// included.
func encodeLine(r *jrec) ([]byte, error) {
	js, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(js)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(js, crcTable))
	line = append(line, js...)
	line = append(line, '\n')
	return line, nil
}

// parseJournalLine verifies and decodes one journal line. Checksummed lines
// are "%08x <json>"; legacy lines start with '{' and carry no checksum.
func parseJournalLine(line []byte) (jrec, bool) {
	var r jrec
	js := line
	if len(line) > 0 && line[0] != '{' {
		if len(line) < 10 || line[8] != ' ' {
			return r, false
		}
		var sum uint32
		if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
			return r, false
		}
		js = line[9:]
		if crc32.Checksum(js, crcTable) != sum {
			return r, false
		}
	}
	if err := json.Unmarshal(js, &r); err != nil || r.T == "" || r.ID == "" {
		return jrec{}, false
	}
	return r, true
}

// readJournal parses a checksummed JSONL journal. A malformed final line is
// a torn tail from a crash mid-append and is dropped silently; a malformed
// line with verifiable records after it is corruption — it is quarantined
// (skipped) and counted, and parsing continues. A missing file is an empty
// journal.
func readJournal(path string) ([]jrec, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	var recs []jrec
	var corrupt int64
	for i, line := range lines {
		r, ok := parseJournalLine(line)
		if !ok {
			if i == len(lines)-1 {
				break // torn tail: the crash-truncated final append
			}
			corrupt++
			continue
		}
		recs = append(recs, r)
	}
	return recs, corrupt, nil
}

// append writes one checksummed record, flushed and fsynced before
// returning.
func (j *journal) append(r jrec) error {
	line, err := encodeLine(&r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// compact atomically replaces the journal with just the given records —
// called at startup after replay folds history down to retained jobs, so
// the log does not grow without bound across restarts. The append handle is
// reopened on the new file.
func (j *journal) compact(recs []jrec) error {
	tmp := journalPath(j.dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := range recs {
		line, err := encodeLine(&recs[i])
		if err != nil {
			f.Close()
			return err
		}
		w.Write(line)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, journalPath(j.dir)); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
	nf, err := os.OpenFile(journalPath(j.dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = nf
	return nil
}

// close releases the append handle.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// writeResult durably stores a finished result document under its content
// address via tmp+rename, so a crash can never leave a half-written file at
// the final path.
func (j *journal) writeResult(key string, doc []byte) error {
	final := filepath.Join(resultsDir(j.dir), key+".json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// loadResult reads a stored result document back; ok is false when the key
// has no durable result (the job must then be re-run).
func (j *journal) loadResult(key string) ([]byte, bool) {
	doc, err := os.ReadFile(filepath.Join(resultsDir(j.dir), key+".json"))
	if err != nil || len(doc) == 0 {
		return nil, false
	}
	return doc, true
}
