package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"sagrelay/internal/scenario"
)

func tinyScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15, Seed: 11,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

// bigScenario is an instance whose IAC solve in a single oversized zone
// cannot finish within a tight deadline — the cancellation workload.
func bigScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 900, NumSS: 48, NumBS: 2, SNRdB: -15, Seed: 5,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

func waitDone(t *testing.T, j *Job, within time.Duration) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(within):
		t.Fatalf("job %s still %v after %v", j.ID, j.status().State, within)
	}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestSubmitSolveAndFetchResult(t *testing.T) {
	s := newTestServer(t, Options{})
	job, err := s.Submit(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 60*time.Second)

	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("state = %v (err %q), want done", state, job.status().Error)
	}
	var res ResultDoc
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	if !res.Feasible || res.NumCoverage == 0 || res.PTotal <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if res.Method == "" {
		t.Error("result has no method")
	}
}

func TestCacheHitIsByteIdenticalAndFree(t *testing.T) {
	s := newTestServer(t, Options{})
	req := SolveRequest{Scenario: tinyScenario(t)}

	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first, 60*time.Second)
	firstDoc, state := first.resultBytes()
	if state != StateDone {
		t.Fatalf("first solve: %v", state)
	}

	// Same scenario, options spelled with explicit defaults: must hash to
	// the same key and be served from cache with no solver work.
	req.Options = SolveOptions{Coverage: "samc", CoveragePower: "green", Workers: 3, TimeoutMS: 99999}
	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second, 5*time.Second)
	secondDoc, state := second.resultBytes()
	if state != StateDone {
		t.Fatalf("second solve: %v", state)
	}
	if !second.status().CacheHit {
		t.Error("second submit was not a cache hit")
	}
	if !bytes.Equal(firstDoc, secondDoc) {
		t.Error("cache replay is not byte-identical")
	}

	m := s.MetricsSnapshot()
	if m["cache_hits"] != 1 || m["cache_misses"] != 1 || m["solves"] != 1 {
		t.Errorf("metrics: hits=%d misses=%d solves=%d, want 1/1/1",
			m["cache_hits"], m["cache_misses"], m["solves"])
	}
	if m["jobs_completed"] != 2 {
		t.Errorf("jobs_completed = %d, want 2", m["jobs_completed"])
	}
}

func TestDifferentOptionsSplitTheCache(t *testing.T) {
	sc := tinyScenario(t)
	a := requestKey(sc, SolveOptions{})
	if b := requestKey(sc, SolveOptions{Coverage: "GAC"}); b == a {
		t.Error("coverage method did not change the request key")
	}
	if b := requestKey(sc, SolveOptions{MaxNodes: 77}); b == a {
		t.Error("solver budget did not change the request key")
	}
	if b := requestKey(sc, SolveOptions{Workers: 8, TimeoutMS: 1234}); b != a {
		t.Error("workers/timeout leaked into the request key; equivalent requests must share it")
	}
}

func TestDeadlineDegradesOversizedJobToHeuristic(t *testing.T) {
	// An IAC solve that cannot finish inside its 50ms deadline no longer
	// dies empty-handed: the degradation ladder abandons the exact solve and
	// answers with the SAMC heuristic, tagged degraded — and the
	// timing-dependent result stays out of the byte-identical cache.
	s := newTestServer(t, Options{})
	req := SolveRequest{
		Scenario: bigScenario(t),
		Options: SolveOptions{
			Coverage:      "IAC",
			MaxZoneSS:     64,      // one oversized zone
			MaxNodes:      1 << 30, // only the deadline can stop it
			ZoneTimeoutMS: 600_000,
			TimeoutMS:     50,
		},
	}
	start := time.Now()
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 30*time.Second)
	elapsed := time.Since(start)

	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("state = %v (err %q), want done via degradation", state, job.status().Error)
	}
	var res ResultDoc
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "IAC -> SAMC") {
		t.Fatalf("Degraded = %v, reason %q; want SAMC fallback recorded", res.Degraded, res.DegradedReason)
	}
	if !res.Feasible {
		t.Error("degraded solution infeasible; SAMC should cover this scenario")
	}
	if elapsed > 15*time.Second {
		t.Errorf("degraded answer took %v; the fallback must stay prompt", elapsed)
	}
	m := s.MetricsSnapshot()
	if m["jobs_degraded"] != 1 {
		t.Errorf("jobs_degraded = %d, want 1", m["jobs_degraded"])
	}
	if m["cache_entries"] != 0 {
		t.Errorf("cache_entries = %d; degraded results must never be cached", m["cache_entries"])
	}
}

func TestDeadlineCancelsOversizedJobWithDegradeDisabled(t *testing.T) {
	// no_degrade restores the strict contract: a blown deadline cancels the
	// job promptly instead of answering with a heuristic.
	s := newTestServer(t, Options{})
	req := SolveRequest{
		Scenario: bigScenario(t),
		Options: SolveOptions{
			Coverage:      "IAC",
			MaxZoneSS:     64,
			MaxNodes:      1 << 30,
			ZoneTimeoutMS: 600_000,
			TimeoutMS:     50,
			NoDegrade:     true,
		},
	}
	start := time.Now()
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 30*time.Second)
	elapsed := time.Since(start)

	st := job.status()
	if st.State != StateCancelled {
		t.Fatalf("state = %v (err %q), want cancelled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", st.Error)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; the 50ms deadline must cut the solve short promptly", elapsed)
	}
	if m := s.MetricsSnapshot(); m["jobs_cancelled"] != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", m["jobs_cancelled"])
	}
}

func TestShutdownDrainsInFlightJobsWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := NewServer(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(SolveRequest{Scenario: tinyScenario(t)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	for _, j := range jobs {
		if st := j.status(); st.State != StateDone {
			t.Errorf("job %s drained to %v (err %q), want done", j.ID, st.State, st.Error)
		}
	}
	if _, err := s.Submit(SolveRequest{Scenario: tinyScenario(t)}); err == nil {
		t.Error("submit after shutdown was accepted")
	}

	// All pool workers and job goroutines must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across shutdown: %d -> %d", before, after)
	}
}

func TestForcedShutdownCancelsLongJob(t *testing.T) {
	s, err := NewServer(Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{
		Scenario: bigScenario(t),
		Options: SolveOptions{
			Coverage: "IAC", MaxZoneSS: 64, MaxNodes: 1 << 30,
			ZoneTimeoutMS: 600_000, TimeoutMS: 600_000,
		},
	}
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Expired drain budget: Shutdown must cancel the solve and still wait
	// for it to unwind before returning.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err == nil {
		t.Error("forced shutdown should report the expired drain budget")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("forced shutdown took %v", elapsed)
	}
	if st := job.status(); st.State != StateCancelled {
		t.Errorf("job survived forced shutdown in state %v", st.State)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatal(err)
	}

	// Async submit: 202 + job id.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}

	// Poll status, then fetch the result.
	var result []byte
	for deadline := time.Now().Add(60 * time.Second); ; {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			result = b
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("result: %d %s", resp.StatusCode, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var doc ResultDoc
	if err := json.Unmarshal(result, &doc); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	if !doc.Feasible {
		t.Errorf("tiny scenario infeasible: %+v", doc)
	}

	// Synchronous repeat must be served from cache, byte-identical.
	resp, err = http.Post(ts.URL+"/v1/solve?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=1 repeat: %d %s", resp.StatusCode, cached)
	}
	if !bytes.Equal(result, cached) {
		t.Error("HTTP cache replay is not byte-identical")
	}

	// Job list includes both jobs; health and metrics answer.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Errorf("job list has %d entries, want 2", len(list.Jobs))
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}

	// Unknown job: 404. Malformed body: 400.
	resp, _ = http.Get(ts.URL + "/v1/jobs/j-999999")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
}

func TestHTTPCancelEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(SolveRequest{
		Scenario: bigScenario(t),
		Options: SolveOptions{
			Coverage: "IAC", MaxZoneSS: 64, MaxNodes: 1 << 30,
			ZoneTimeoutMS: 600_000, TimeoutMS: 600_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	job, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitDone(t, job, 30*time.Second)
	if state := job.status().State; state != StateCancelled {
		t.Errorf("state after DELETE = %v, want cancelled", state)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry a evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Re-putting an existing key keeps the original bytes.
	c.put("a", []byte("A2"))
	if got, _ := c.get("a"); string(got) != "A" {
		t.Errorf("re-put replaced bytes: %q", got)
	}
}
