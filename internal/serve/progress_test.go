package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// mediumScenario is a multi-zone IAC workload that solves in a couple of
// seconds — slow enough that a progress stream opened right after submission
// reliably observes mid-solve samples.
func mediumScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 600, NumSS: 24, NumBS: 2, SNRdB: -15, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

// TestProgressStreamLiveJob tails ?stream=1 on a multi-zone solve running
// under Workers>1 and checks the live-tail contract: at least one mid-solve
// snapshot with a per-zone gap before the terminal one, monotone node
// counts, non-increasing per-zone gaps, and a stream that closes by itself
// when the job finishes.
func TestProgressStreamLiveJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job, err := s.Submit(SolveRequest{Scenario: mediumScenario(t), Options: SolveOptions{Coverage: "IAC"}})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/progress?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}

	var docs []progressDoc
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var doc progressDoc
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		docs = append(docs, doc)
	}
	// The stream must close on its own once the job reaches a terminal
	// state — reaching here without error is that assertion.
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	waitDone(t, job, 60*time.Second)
	if st := job.status().State; st != StateDone {
		t.Fatalf("job ended %v (err %q)", st, job.status().Error)
	}

	if len(docs) < 2 {
		t.Fatalf("stream emitted %d snapshots, want >= 2 (a live one plus the terminal one)", len(docs))
	}
	last := docs[len(docs)-1]
	if !last.Final {
		t.Errorf("last snapshot is not final: %+v", last)
	}
	if last.ZonesSeen == 0 || last.ZonesDone != last.ZonesSeen {
		t.Errorf("terminal snapshot zones: seen %d done %d, want all done and > 0", last.ZonesSeen, last.ZonesDone)
	}

	midGap := false
	prevNodes := -1
	zoneGap := make(map[int]float64)
	for i, doc := range docs {
		if doc.Schema != progressSchema {
			t.Fatalf("snapshot %d schema = %q, want %q", i, doc.Schema, progressSchema)
		}
		if doc.JobID != job.ID {
			t.Fatalf("snapshot %d job_id = %q, want %q", i, doc.JobID, job.ID)
		}
		if doc.Final && i != len(docs)-1 {
			t.Fatalf("snapshot %d is final but %d more lines followed", i, len(docs)-1-i)
		}
		if doc.Nodes < prevNodes {
			t.Errorf("snapshot %d: aggregate nodes went backwards (%d -> %d)", i, prevNodes, doc.Nodes)
		}
		prevNodes = doc.Nodes
		for _, row := range doc.Zones {
			if !row.HasGap {
				continue
			}
			if !doc.Final {
				midGap = true
			}
			if prev, ok := zoneGap[row.Zone]; ok && row.Gap > prev+1e-9 {
				t.Errorf("snapshot %d: zone %d gap increased %v -> %v", i, row.Zone, prev, row.Gap)
			}
			zoneGap[row.Zone] = row.Gap
		}
	}
	if !midGap {
		t.Error("no mid-solve snapshot carried a per-zone gap before the terminal one")
	}
	if got := s.metrics.ProgressStreams.Load(); got < 1 {
		t.Errorf("progress_streams_total = %d, want >= 1", got)
	}
}

// TestProgressSnapshotAndCacheHit checks the non-streaming endpoint: a
// finished solver job serves a final per-zone snapshot, a cache hit (which
// never ran the solver) serves the empty terminal document, and an unknown
// job is a 404.
func TestProgressSnapshotAndCacheHit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job := submitAndWait(t, s, tinyScenario(t), SolveOptions{Coverage: "IAC"})
	var doc progressDoc
	getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/progress", &doc)
	if !doc.Final || doc.Schema != progressSchema {
		t.Fatalf("finished job snapshot: %+v", doc)
	}
	if doc.ZonesSeen == 0 {
		t.Fatal("finished job snapshot has no zones")
	}
	for _, row := range doc.Zones {
		if row.Phase != "done" && row.Phase != "reused" {
			t.Errorf("zone %d phase %q after completion", row.Zone, row.Phase)
		}
	}

	hit := submitAndWait(t, s, tinyScenario(t), SolveOptions{Coverage: "IAC"})
	if !hit.status().CacheHit {
		t.Fatal("second submit was not a cache hit")
	}
	var hitDoc progressDoc
	getJSON(t, ts.URL+"/v1/jobs/"+hit.ID+"/progress", &hitDoc)
	if !hitDoc.Final || len(hitDoc.Zones) != 0 {
		t.Errorf("cache-hit snapshot should be empty and final: %+v", hitDoc)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job progress status = %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestFlightRecordAfterJob checks the flight recorder end to end: a
// finished job is retrievable at /debug/flight/{id} with its span tree, its
// final progress snapshot, its convergence curve, and the admission-side
// outcome fields.
func TestFlightRecordAfterJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	job := submitAndWait(t, s, tinyScenario(t), SolveOptions{Coverage: "IAC"})
	if job.status().State != StateDone {
		t.Fatalf("job ended %v", job.status().State)
	}
	// The record lands just after the done channel closes; wait for it.
	waitFor := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.FlightRecorder().Get(job.ID); ok {
			break
		}
		if time.Now().After(waitFor) {
			t.Fatalf("job %s never got a flight record", job.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	fs := httptest.NewServer(s.FlightHandler())
	defer fs.Close()

	var index struct {
		Schema  string `json:"schema"`
		Count   int    `json:"count"`
		Records []struct {
			ID      string `json:"id"`
			Outcome string `json:"outcome"`
		} `json:"records"`
	}
	getJSON(t, fs.URL+"/debug/flight", &index)
	if index.Schema != "sagflight/1" || index.Count < 1 {
		t.Fatalf("flight index: %+v", index)
	}
	found := false
	for _, r := range index.Records {
		if r.ID == job.ID && r.Outcome == "done" {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s not in flight index %+v", job.ID, index.Records)
	}

	var rec struct {
		obs.FlightRecord
		Detail flightDetail `json:"detail"`
	}
	getJSON(t, fs.URL+"/debug/flight/"+job.ID, &rec)
	if rec.Outcome != "done" || rec.Bad {
		t.Errorf("record outcome = %q bad = %v, want done/false", rec.Outcome, rec.Bad)
	}
	if rec.WallMS <= 0 {
		t.Errorf("record wall_ms = %v, want > 0", rec.WallMS)
	}
	if rec.Detail.Schema != "sagflightdetail/1" {
		t.Errorf("detail schema = %q", rec.Detail.Schema)
	}
	if rec.Detail.Trace == nil || rec.Detail.Trace.Name == "" {
		t.Error("flight record carries no span tree")
	}
	if rec.Detail.Progress == nil || !rec.Detail.Progress.Final || rec.Detail.Progress.ZonesSeen == 0 {
		t.Errorf("flight record progress: %+v", rec.Detail.Progress)
	}
	if len(rec.Detail.Curve) == 0 {
		t.Error("flight record has no convergence curve")
	}

	resp, err := http.Get(fs.URL + "/debug/flight/absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent flight record status = %d, want 404", resp.StatusCode)
	}

	// Failures land in the preferentially-retained bad half.
	bad, err := s.Submit(SolveRequest{Scenario: tinyScenario(t), Options: SolveOptions{Coverage: "IAC", TimeoutMS: 1}})
	if err == nil {
		waitDone(t, bad, 30*time.Second)
		if st := bad.status().State; st == StateFailed || st == StateCancelled {
			waitFor = time.Now().Add(5 * time.Second)
			for {
				if rec, ok := s.FlightRecorder().Get(bad.ID); ok {
					if !rec.Bad {
						t.Errorf("job %s ended %v but its record is not marked bad", bad.ID, st)
					}
					break
				}
				if time.Now().After(waitFor) {
					t.Errorf("failed job %s has no flight record", bad.ID)
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
}
