package serve

import (
	"context"
	"sync"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/obs"
)

// JobState is the lifecycle of a submitted solve.
type JobState string

// Job states. A job moves queued -> running -> one of the terminal states;
// cache hits jump straight to done.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Job tracks one submitted solve through its lifecycle. All mutable fields
// are guarded by mu; snapshots for the HTTP layer go through status().
type Job struct {
	// ID is the job identifier ("j-<seq>"), unique per server instance.
	ID string
	// Key is the content address of (scenario, options).
	Key string
	// ScenarioHash is the canonical hash of the job's scenario alone —
	// the handle /v1/resolve uses to name this job's scenario as a delta
	// base. Empty for journal-restored jobs whose request bytes were not
	// retained. Immutable after publication.
	ScenarioHash string
	// incr is non-nil for jobs submitted through Resolve: the dirty-set
	// plan and fast flag runJob consults. Immutable after publication.
	incr *incrMeta
	// admit carries the cost-model estimates behind this job's admission
	// (zero for cache hits and journal-replayed jobs), reported on the
	// job's admit span. Immutable after publication.
	admit admit.Decision
	// client is the submitting client's rate-limit identity (empty for
	// internal callers), carried into logs and the flight record.
	// Immutable after publication.
	client string
	// progress accumulates live solver telemetry for /v1/jobs/{id}/progress;
	// nil for cache hits and journal-restored terminal jobs. Immutable
	// after publication.
	progress *jobProgress

	// done is closed exactly once when the job reaches a terminal state;
	// synchronous waiters (POST /v1/solve?wait=1) select on it.
	done chan struct{}

	mu sync.Mutex
	// cancel aborts the job's solve context. It is mu-guarded because
	// Server.Cancel (HTTP DELETE) may read it from another goroutine while
	// replay installs the real cancel func; use setCancel/cancelNow.
	cancel   context.CancelFunc
	state    JobState
	err      string
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	result   []byte
	// trace is the finished solve's span-tree document, retained for the
	// flight record (the result document embeds its own copy).
	trace *obs.SpanDoc
}

// jobSchema is the version tag of the job status document, serialized
// first-keyed like the metrics document.
const jobSchema = "sagjob/1"

// jobStatus is the JSON shape of GET /v1/jobs/{id}.
type jobStatus struct {
	Schema       string   `json:"schema"`
	ID           string   `json:"id"`
	Key          string   `json:"key"`
	ScenarioHash string   `json:"scenario_hash,omitempty"`
	State        JobState `json:"state"`
	CacheHit     bool     `json:"cache_hit"`
	Error        string   `json:"error,omitempty"`
	Created      string   `json:"created"`
	// ElapsedMS is queue+solve wall-clock so far (or total once terminal).
	ElapsedMS int64 `json:"elapsed_ms"`
	// The incremental fields appear on jobs submitted through /v1/resolve:
	// how many of the mutated scenario's zones the planner found dirty.
	TotalZones    int     `json:"total_zones,omitempty"`
	DirtyZones    int     `json:"dirty_zones,omitempty"`
	DirtyFraction float64 `json:"dirty_fraction,omitempty"`
	Fast          bool    `json:"fast,omitempty"`
}

func (j *Job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st := jobStatus{
		Schema:       jobSchema,
		ID:           j.ID,
		Key:          j.Key,
		ScenarioHash: j.ScenarioHash,
		State:        j.state,
		CacheHit:     j.cacheHit,
		Error:        j.err,
		Created:      j.created.UTC().Format(time.RFC3339Nano),
		ElapsedMS:    end.Sub(j.created).Milliseconds(),
	}
	if m := j.incr; m != nil {
		st.TotalZones = m.plan.TotalZones
		st.DirtyZones = m.plan.DirtyZones
		st.DirtyFraction = m.plan.DirtyFraction
		st.Fast = m.fast
	}
	return st
}

// resultBytes returns the finished document, or nil when the job is not
// done yet. The slice is shared; callers must not modify it.
func (j *Job) resultBytes() ([]byte, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state
}

// Done returns a channel closed when the job reaches a terminal state —
// the library-client equivalent of POST ...?wait=1.
func (j *Job) Done() <-chan struct{} { return j.done }

// ResultDocument returns the finished result document alongside the job's
// current state; the document is nil unless the state is StateDone. The
// bytes are shared and must not be modified.
func (j *Job) ResultDocument() ([]byte, JobState) { return j.resultBytes() }

func (j *Job) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
}

func (j *Job) finish(state JobState, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		return // already terminal; first finish wins
	}
	j.state = state
	j.result = result
	j.err = errMsg
	j.finished = time.Now()
	close(j.done)
}

// setCancel installs the job's cancel function after publication.
func (j *Job) setCancel(fn context.CancelFunc) {
	j.mu.Lock()
	j.cancel = fn
	j.mu.Unlock()
}

// cancelNow invokes the job's cancel function, if one is installed. It is
// safe to call concurrently and repeatedly; cancelling a finished job is a
// harmless no-op.
func (j *Job) cancelNow() {
	j.mu.Lock()
	fn := j.cancel
	j.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// progressState returns the job's live progress accumulator, nil when the
// job never ran a solver (cache hit, restored terminal job).
func (j *Job) progressState() *jobProgress { return j.progress }

// setTrace retains the finished solve's span-tree document.
func (j *Job) setTrace(doc *obs.SpanDoc) {
	j.mu.Lock()
	j.trace = doc
	j.mu.Unlock()
}

// flightInfo snapshots the fields the flight recorder needs.
func (j *Job) flightInfo() (errMsg string, cacheHit bool, created, started, finished time.Time, trace *obs.SpanDoc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err, j.cacheHit, j.created, j.started, j.finished, j.trace
}

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
}
