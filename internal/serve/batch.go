package serve

// The batch solve engine behind POST /v1/batch: one request fans out into
// many jobs — an explicit scenario list, or a scenario template plus a
// parameter grid expanded through internal/experiment — with per-item
// admission (items are sheddable individually; the batch survives partial
// shed), per-item journaling (a crashed batch resumes exactly its unfinished
// items), and NDJSON streaming of results as they complete, so memory stays
// bounded by the stream instead of accumulating the full result set.
//
// Ordering and backpressure: every surviving item is published as a job up
// front (IDs, journal records, cancellation handles all exist before the
// call returns), but items enter the worker pool through a feeder goroutine
// that blocks on queue space — a thousand-item batch never trips the pool's
// ErrQueueFull backpressure that protects interactive /v1/solve traffic,
// it just feeds as capacity frees up. Cancelling the batch (client DELETE,
// or a mid-stream disconnect of the submitting request) stops the feeder
// and cancels still-queued items before they cost any solver work.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/core"
	"sagrelay/internal/experiment"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// batchSchema versions every batch wire document: the status doc, the NDJSON
// stream header, and the journal membership record.
const batchSchema = "sagbatch/1"

// ErrBatchTooLarge reports a batch whose item list (or grid expansion)
// exceeds Options.MaxBatchItems.
var ErrBatchTooLarge = errors.New("serve: batch exceeds the server's item limit")

// batchItemLatencySeconds tracks wall-clock from batch acceptance to each
// item's terminal state (rejected items excluded — they never start).
var batchItemLatencySeconds = obs.Default.NewHistogram("sag_batch_item_latency_seconds",
	"Seconds from batch acceptance to batch item completion.", obs.SecondsBuckets)

// BatchRequest is the wire shape of POST /v1/batch: exactly one of Items
// (explicit scenarios) or Grid (template + swept dimensions), plus one set
// of solve options shared by every item.
type BatchRequest struct {
	Items   []BatchItemRequest `json:"items,omitempty"`
	Grid    *BatchGrid         `json:"grid,omitempty"`
	Options SolveOptions       `json:"options"`
}

// BatchItemRequest is one explicit batch item.
type BatchItemRequest struct {
	Scenario *scenario.Scenario `json:"scenario"`
}

// BatchGrid is the template+grid form: the server generates the scenarios,
// so a sweep's wire size is a few hundred bytes no matter how many cells it
// expands to. Seeds follow the sagsweep rule (see experiment.GridSpec), so a
// grid run server-side expands to bit-identical scenarios as the same grid
// run locally.
type BatchGrid struct {
	Template GridTemplate         `json:"template"`
	Dims     []experiment.GridDim `json:"dims"`
	// Runs is the number of seeded repetitions per grid cell (default 1).
	Runs int `json:"runs,omitempty"`
	// Seed is the base seed for the sagsweep seed rule.
	Seed int64 `json:"seed,omitempty"`
}

// GridTemplate is the JSON form of the scenario generator template; zero
// fields keep the generator's documented defaults.
type GridTemplate struct {
	FieldSide float64 `json:"field_side"`
	NumSS     int     `json:"num_ss"`
	NumBS     int     `json:"num_bs"`
	DistMin   float64 `json:"dist_min,omitempty"`
	DistMax   float64 `json:"dist_max,omitempty"`
	SNRdB     float64 `json:"snr_db,omitempty"`
	PMax      float64 `json:"pmax,omitempty"`
	NMax      float64 `json:"nmax,omitempty"`
}

func (t GridTemplate) genConfig() scenario.GenConfig {
	return scenario.GenConfig{
		FieldSide: t.FieldSide,
		NumSS:     t.NumSS,
		NumBS:     t.NumBS,
		DistMin:   t.DistMin,
		DistMax:   t.DistMax,
		SNRdB:     t.SNRdB,
		PMax:      t.PMax,
		NMax:      t.NMax,
	}
}

// Batch tracks one accepted POST /v1/batch through its items' lifecycles.
// The item slice is immutable after publication; per-item mutable state
// lives on the member jobs.
type Batch struct {
	// ID is the batch identifier ("b-<seq>"), unique per server instance.
	ID string
	// Created is the acceptance time.
	Created time.Time
	// items holds one entry per expanded item, index-aligned with the wire
	// order. Immutable after publication.
	items []*BatchItem
	// done is closed when every item is terminal.
	done chan struct{}
	// trace is the batch span tree ("batch" root, one batch.item child per
	// accepted item); nil for journal-restored batches.
	trace *obs.Trace

	mu        sync.Mutex
	remaining int
	cancelled bool
}

// BatchItem is one expanded batch entry: either a published job or an
// up-front rejection (per-item shed). Grid batches carry provenance —
// the point/run indices and swept dimension values.
type BatchItem struct {
	Index  int
	Point  int
	Run    int
	Values []float64
	// Job is the member job; nil when the item was rejected at submit.
	Job *Job
	// Reject is the per-item rejection (code "shed"); nil when Job is set.
	Reject *APIError
	span   *obs.Span
}

// batchRecDoc is the journal membership record (jrec.Doc of a recBatch
// line): which jobs belong to the batch, plus inline rejections. Member
// lifecycles live in the jobs' own records.
type batchRecDoc struct {
	Schema string         `json:"schema"`
	Items  []batchRecItem `json:"items"`
}

type batchRecItem struct {
	Item   int       `json:"item"`
	Job    string    `json:"job,omitempty"`
	Err    *APIError `json:"error,omitempty"`
	Point  int       `json:"point,omitempty"`
	Run    int       `json:"run,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// batchPrep is one expanded, validated item before admission.
type batchPrep struct {
	sc     *scenario.Scenario
	values []float64
	point  int
	run    int
}

// itemPlan is the per-item outcome of the pre-publication pass: content
// address, cache lookup, and the admission decision or rejection.
type itemPlan struct {
	key    string
	hash   string
	doc    []byte
	hit    bool
	dec    admit.Decision
	reject *APIError
	ctx    context.Context
}

// feedEntry is one admitted item waiting for the feeder to enqueue it.
type feedEntry struct {
	job *Job
	sc  *scenario.Scenario
	cfg core.Config
	ctx context.Context
}

// expandBatch turns the request into validated scenarios. Validation errors
// fail the whole batch: a client that mis-specifies its grid wants to know
// now, not after half the grid solved.
func (s *Server) expandBatch(req BatchRequest) ([]batchPrep, error) {
	switch {
	case len(req.Items) > 0 && req.Grid != nil:
		return nil, fmt.Errorf("serve: batch request has both items and grid")
	case len(req.Items) > 0:
		if len(req.Items) > s.opts.MaxBatchItems {
			return nil, fmt.Errorf("%w: %d items over the %d-item limit",
				ErrBatchTooLarge, len(req.Items), s.opts.MaxBatchItems)
		}
		preps := make([]batchPrep, 0, len(req.Items))
		for i, it := range req.Items {
			if it.Scenario == nil {
				return nil, fmt.Errorf("serve: batch item %d has no scenario", i)
			}
			if err := it.Scenario.Validate(); err != nil {
				return nil, fmt.Errorf("serve: batch item %d: %w", i, err)
			}
			preps = append(preps, batchPrep{sc: it.Scenario})
		}
		return preps, nil
	case req.Grid != nil:
		spec := experiment.GridSpec{
			Base: req.Grid.Template.genConfig(),
			Dims: req.Grid.Dims,
			Runs: req.Grid.Runs,
			Seed: req.Grid.Seed,
		}
		points, err := spec.Points()
		if err != nil {
			return nil, err
		}
		runs := req.Grid.Runs
		if runs <= 0 {
			runs = 1
		}
		if points*runs > s.opts.MaxBatchItems {
			return nil, fmt.Errorf("%w: grid expands to %d items over the %d-item limit",
				ErrBatchTooLarge, points*runs, s.opts.MaxBatchItems)
		}
		cells, err := spec.Expand()
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		preps := make([]batchPrep, 0, len(cells))
		for _, c := range cells {
			sc, err := scenario.Generate(c.Gen)
			if err != nil {
				return nil, fmt.Errorf("serve: grid cell %d: %w", c.Index, err)
			}
			preps = append(preps, batchPrep{sc: sc, values: c.Values, point: c.Point, run: c.Run})
		}
		return preps, nil
	default:
		return nil, fmt.Errorf("serve: batch request has neither items nor grid")
	}
}

// SubmitBatch validates, expands, admits and publishes one batch request.
func (s *Server) SubmitBatch(req BatchRequest) (*Batch, error) {
	return s.SubmitBatchFrom("", req)
}

// SubmitBatchFrom is SubmitBatch with a client identity. Rate limiting is
// charged once per batch, not per item: the batch API exists precisely so
// grid clients stop paying per-request overhead.
func (s *Server) SubmitBatchFrom(client string, req BatchRequest) (*Batch, error) {
	if err := s.admit.AllowClient(client); err != nil {
		s.metrics.RateLimited.Add(1)
		s.log.Warn("batch submission rate limited", obs.LogClient, client)
		return nil, err
	}
	preps, err := s.expandBatch(req)
	if err != nil {
		return nil, err
	}
	opts := req.Options.normalized()
	if _, err := opts.coreConfig(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	timeout := s.opts.MaxJobTime
	if ms := opts.TimeoutMS; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}

	// Pre-publication pass: content address, cache lookup and per-item
	// admission. batchAhead accumulates the estimated solve time of this
	// batch's earlier admitted items — they are not in pool.Len() yet (the
	// feeder enqueues them later), but they run ahead of item i all the
	// same, so the shedding estimate must count them.
	plans := make([]itemPlan, len(preps))
	var batchAhead time.Duration
	for i := range preps {
		p := &preps[i]
		plans[i].key = requestKey(p.sc, opts)
		plans[i].hash = p.sc.CanonicalHash()
		s.scenarios.put(plans[i].hash, p.sc)
		plans[i].doc, plans[i].hit = s.cache.get(plans[i].key)
		if plans[i].hit {
			continue // free: never shed a cache hit
		}
		dec, aerr := s.admit.AdmitBatch(admit.SizeClass(len(p.sc.Subscribers)), s.pool.Len(), batchAhead, timeout)
		if aerr != nil {
			_, body := apiError(aerr)
			plans[i].reject = &body
			continue
		}
		plans[i].dec = dec
		batchAhead += dec.EstSolve
	}

	// Publish atomically: all member jobs and the batch appear together, or
	// nothing does (shutdown).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		return nil, ErrShuttingDown
	}
	s.bseq++
	b := &Batch{
		ID:      "b-" + strconv.FormatInt(s.bseq, 10),
		Created: time.Now(),
		done:    make(chan struct{}),
		items:   make([]*BatchItem, 0, len(preps)),
	}
	for i := range preps {
		it := &BatchItem{Index: i, Point: preps[i].point, Run: preps[i].run, Values: preps[i].values}
		b.items = append(b.items, it)
		if plans[i].reject != nil {
			it.Reject = plans[i].reject
			continue
		}
		s.seq++
		job := &Job{
			ID:           "j-" + strconv.FormatInt(s.seq, 10),
			Key:          plans[i].key,
			ScenarioHash: plans[i].hash,
			admit:        plans[i].dec,
			done:         make(chan struct{}),
			state:        StateQueued,
			created:      time.Now(),
			client:       client,
		}
		if !plans[i].hit {
			ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
			plans[i].ctx = ctx
			job.cancel = cancel
			job.progress = newJobProgress()
		}
		it.Job = job
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
	}
	s.evictOldLocked()
	s.batches[b.ID] = b
	s.border = append(s.border, b.ID)
	s.evictOldBatchesLocked()
	s.mu.Unlock()

	s.metrics.BatchesTotal.Add(1)
	s.metrics.BatchItemsTotal.Add(int64(len(b.items)))

	tr := obs.NewTrace("batch")
	tr.Root().SetAttr("batch_id", b.ID)
	tr.Root().SetInt("items", int64(len(b.items)))
	b.trace = tr

	rec := batchRecDoc{Schema: batchSchema}
	var feed []feedEntry
	for i, it := range b.items {
		ri := batchRecItem{Item: it.Index, Point: it.Point, Run: it.Run, Values: it.Values}
		if it.Reject != nil {
			ri.Err = it.Reject
			rec.Items = append(rec.Items, ri)
			s.metrics.BatchItemsShed.Add(1)
			s.metrics.JobsShed.Add(1)
			continue
		}
		job := it.Job
		ri.Job = job.ID
		rec.Items = append(rec.Items, ri)
		sp := tr.Root().StartChild("batch.item")
		sp.SetInt("item", int64(it.Index))
		sp.SetAttr("job_id", job.ID)
		it.span = sp

		if plans[i].hit {
			s.metrics.JobsAccepted.Add(1)
			s.metrics.CacheHits.Add(1)
			s.metrics.JobsCompleted.Add(1)
			job.mu.Lock()
			job.cacheHit = true
			job.mu.Unlock()
			s.jappend(jrec{T: recSubmit, ID: job.ID, Key: job.Key})
			s.jappend(jrec{T: recDone, ID: job.ID, Key: job.Key})
			job.finish(StateDone, plans[i].doc, "")
			continue
		}
		s.metrics.CacheMisses.Add(1)
		if s.journal != nil {
			reqBytes, err := json.Marshal(SolveRequest{Scenario: preps[i].sc, Options: opts})
			if err != nil {
				job.cancelNow()
				s.failJob(job, "encode request for journal: "+err.Error())
				continue
			}
			s.jappend(jrec{T: recSubmit, ID: job.ID, Key: job.Key, Req: reqBytes})
		}
		s.metrics.JobsAccepted.Add(1)
		cfg, _ := opts.coreConfig() // fresh copy per item; validated above
		feed = append(feed, feedEntry{job: job, sc: preps[i].sc, cfg: cfg, ctx: plans[i].ctx})
	}
	// Membership record after every member's submit record, so replay folds
	// jobs first and the batch only references known IDs.
	if s.journal != nil {
		if docBytes, err := json.Marshal(rec); err == nil {
			s.jappend(jrec{T: recBatch, ID: b.ID, Doc: docBytes})
		} else {
			s.metrics.JournalErrors.Add(1)
		}
	}

	shed, hits := 0, 0
	for i, it := range b.items {
		if it.Reject != nil {
			shed++
		} else if plans[i].hit {
			hits++
		}
	}
	s.log.Info("batch accepted", obs.LogBatchID, b.ID, obs.LogClient, client,
		"items", len(b.items), "shed", shed, "cache_hits", hits)

	b.arm()
	s.inFlight.Add(1)
	go s.feedBatch(b, feed)
	return b, nil
}

// feedBatch enqueues admitted items in order, blocking on queue space so a
// large batch exerts backpressure on itself instead of tripping ErrQueueFull.
// A cancelled batch stops feeding: unfed items finish as cancelled without
// ever reaching the pool — zero solver work.
func (s *Server) feedBatch(b *Batch, feed []feedEntry) {
	defer s.inFlight.Done()
	for _, fe := range feed {
		if b.isCancelled() {
			fe.job.cancelNow()
			s.cancelJob(fe.job, "batch cancelled")
			continue
		}
		fe := fe
		s.inFlight.Add(1)
		if err := s.pool.SubmitBlocking(func() { s.runJob(fe.ctx, fe.job, fe.sc, fe.cfg) }); err != nil {
			s.inFlight.Done()
			fe.job.cancelNow()
			s.cancelJob(fe.job, "batch: "+err.Error())
		}
	}
}

// arm counts live members and attaches one watcher per member job; with no
// members (everything rejected) the batch is born finished.
func (b *Batch) arm() {
	n := 0
	for _, it := range b.items {
		if it.Job != nil {
			n++
		}
	}
	b.mu.Lock()
	b.remaining = n
	b.mu.Unlock()
	if n == 0 {
		b.trace.Finish()
		close(b.done)
		return
	}
	for _, it := range b.items {
		if it.Job != nil {
			go b.watch(it)
		}
	}
}

// watch waits one member job out, ends its span, observes its latency, and
// closes the batch when it is the last one standing.
func (b *Batch) watch(it *BatchItem) {
	start := time.Now()
	<-it.Job.done
	batchItemLatencySeconds.Observe(time.Since(start).Seconds())
	if sp := it.span; sp != nil {
		st := it.Job.status()
		sp.SetAttr("state", string(st.State))
		sp.SetBool("cache_hit", st.CacheHit)
		sp.End()
	}
	b.mu.Lock()
	b.remaining--
	last := b.remaining == 0
	b.mu.Unlock()
	if last {
		b.trace.Finish()
		close(b.done)
	}
}

func (b *Batch) isCancelled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cancelled
}

// finished reports whether every item is terminal.
func (b *Batch) finished() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// Done returns a channel closed when every item is terminal.
func (b *Batch) Done() <-chan struct{} { return b.done }

// CancelPending cancels every item that has not started solving: the feeder
// stops feeding, and still-queued jobs are cancelled before a worker picks
// them up. Items already running are left to finish — this is the mid-stream
// disconnect semantic, where completed work is worth keeping.
func (b *Batch) CancelPending() {
	b.mu.Lock()
	b.cancelled = true
	b.mu.Unlock()
	for _, it := range b.items {
		if it.Job == nil {
			continue
		}
		if it.Job.status().State == StateQueued {
			it.Job.cancelNow()
		}
	}
}

// Cancel cancels every unfinished item, running ones included — the DELETE
// /v1/batch/{id} semantic.
func (b *Batch) Cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.mu.Unlock()
	for _, it := range b.items {
		if it.Job != nil && !it.Job.terminal() {
			it.Job.cancelNow()
		}
	}
}

// Items returns the batch's items (immutable slice; do not modify).
func (b *Batch) Items() []*BatchItem { return b.items }

// BatchByID returns the batch with the given ID, if retained.
func (s *Server) BatchByID(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// evictOldBatchesLocked trims the oldest finished batches beyond
// Options.MaxBatches; live batches are never evicted.
func (s *Server) evictOldBatchesLocked() {
	for len(s.border) > s.opts.MaxBatches {
		evicted := false
		for i, id := range s.border {
			b := s.batches[id]
			if b == nil || b.finished() {
				delete(s.batches, id)
				s.border = append(s.border[:i], s.border[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// restoreBatch rebuilds one journaled batch over the already-restored job
// table during replay. Watchers re-attach, so a batch whose members the
// crash left unfinished completes when the replayed jobs do. Runs on the
// single-threaded NewServer path; no locking needed.
func (s *Server) restoreBatch(id string, doc json.RawMessage) {
	var d batchRecDoc
	if err := json.Unmarshal(doc, &d); err != nil {
		s.metrics.JournalErrors.Add(1)
		return
	}
	b := &Batch{ID: id, Created: time.Now(), done: make(chan struct{})}
	for _, ri := range d.Items {
		it := &BatchItem{Index: ri.Item, Point: ri.Point, Run: ri.Run, Values: ri.Values}
		switch {
		case ri.Err != nil:
			it.Reject = ri.Err
		default:
			if j, ok := s.jobs[ri.Job]; ok {
				it.Job = j
			} else {
				it.Reject = &APIError{Code: CodeNotFound,
					Message: "journal: member job " + ri.Job + " not retained"}
			}
		}
		b.items = append(b.items, it)
	}
	b.arm()
	s.batches[id] = b
	s.border = append(s.border, id)
}

// --- wire documents -------------------------------------------------------

// batchStatusDoc is the JSON shape of GET /v1/batch/{id} (and the 202 body
// of an async POST /v1/batch).
type batchStatusDoc struct {
	Schema         string            `json:"schema"`
	ID             string            `json:"id"`
	State          string            `json:"state"` // running | done
	Cancelled      bool              `json:"cancelled,omitempty"`
	Created        string            `json:"created"`
	ItemsTotal     int               `json:"items_total"`
	ItemsDone      int               `json:"items_done"`
	ItemsFailed    int               `json:"items_failed"`
	ItemsCancelled int               `json:"items_cancelled"`
	ItemsRejected  int               `json:"items_rejected"`
	ItemsPending   int               `json:"items_pending"`
	Items          []batchItemStatus `json:"items"`
	// Trace is the batch span tree, present once the batch finishes.
	Trace *obs.SpanDoc `json:"trace,omitempty"`
}

type batchItemStatus struct {
	Item     int       `json:"item"`
	Point    int       `json:"point,omitempty"`
	Run      int       `json:"run,omitempty"`
	Values   []float64 `json:"values,omitempty"`
	Job      string    `json:"job,omitempty"`
	State    string    `json:"state"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Error    *APIError `json:"error,omitempty"`
}

// batchCounts tallies item states for status and trailer documents.
type batchCounts struct {
	done, failed, cancelled, rejected, pending int
}

func (b *Batch) counts() batchCounts {
	var c batchCounts
	for _, it := range b.items {
		switch {
		case it.Job == nil:
			c.rejected++
		default:
			switch st := it.Job.status().State; st {
			case StateDone:
				c.done++
			case StateFailed:
				c.failed++
			case StateCancelled:
				c.cancelled++
			default:
				c.pending++
			}
		}
	}
	return c
}

func (b *Batch) statusDoc() batchStatusDoc {
	c := b.counts()
	doc := batchStatusDoc{
		Schema:         batchSchema,
		ID:             b.ID,
		State:          "running",
		Cancelled:      b.isCancelled(),
		Created:        b.Created.UTC().Format(time.RFC3339Nano),
		ItemsTotal:     len(b.items),
		ItemsDone:      c.done,
		ItemsFailed:    c.failed,
		ItemsCancelled: c.cancelled,
		ItemsRejected:  c.rejected,
		ItemsPending:   c.pending,
		Items:          make([]batchItemStatus, 0, len(b.items)),
	}
	if b.finished() {
		doc.State = "done"
		doc.Trace = b.trace.Doc()
	}
	for _, it := range b.items {
		doc.Items = append(doc.Items, it.statusEntry())
	}
	return doc
}

func (it *BatchItem) statusEntry() batchItemStatus {
	e := batchItemStatus{Item: it.Index, Point: it.Point, Run: it.Run, Values: it.Values}
	if it.Job == nil {
		e.State = "rejected"
		e.Error = it.Reject
		return e
	}
	st := it.Job.status()
	e.Job = st.ID
	e.State = string(st.State)
	e.CacheHit = st.CacheHit
	if st.Error != "" {
		e.Error = &APIError{Code: itemErrorCode(st.State), Message: st.Error}
	}
	return e
}

// itemErrorCode maps a terminal-with-error item state onto its stream code.
func itemErrorCode(st JobState) string {
	if st == StateCancelled {
		return CodeCancelled
	}
	return CodeSolveFailed
}

// --- NDJSON streaming -----------------------------------------------------

// batchStreamHeader is the first NDJSON line of a batch stream.
type batchStreamHeader struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Items  int    `json:"items"`
}

// batchStreamItem is one per-item NDJSON line, written when the item is
// terminal. Result carries the member job's result document verbatim — the
// same bytes a /v1/solve of that scenario would serve.
type batchStreamItem struct {
	Item   int             `json:"item"`
	Job    string          `json:"job,omitempty"`
	State  string          `json:"state"`
	Point  int             `json:"point,omitempty"`
	Run    int             `json:"run,omitempty"`
	Values []float64       `json:"values,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *APIError       `json:"error,omitempty"`
}

// batchStreamTrailer is the final NDJSON line. Complete is false when the
// stream was a no-wait snapshot with items still pending.
type batchStreamTrailer struct {
	Done           bool `json:"done"`
	Complete       bool `json:"complete"`
	ItemsTotal     int  `json:"items_total"`
	ItemsDone      int  `json:"items_done"`
	ItemsFailed    int  `json:"items_failed"`
	ItemsCancelled int  `json:"items_cancelled"`
	ItemsRejected  int  `json:"items_rejected"`
	ItemsPending   int  `json:"items_pending,omitempty"`
}

func (it *BatchItem) streamLine() batchStreamItem {
	line := batchStreamItem{Item: it.Index, Point: it.Point, Run: it.Run, Values: it.Values}
	if it.Job == nil {
		line.State = "rejected"
		line.Error = it.Reject
		return line
	}
	st := it.Job.status()
	line.Job = st.ID
	line.State = string(st.State)
	switch st.State {
	case StateDone:
		doc, _ := it.Job.resultBytes()
		line.Result = json.RawMessage(doc)
	case StateFailed, StateCancelled:
		line.Error = &APIError{Code: itemErrorCode(st.State), Message: st.Error}
	}
	return line
}

// streamBatch writes the NDJSON stream: header, rejected and already-
// terminal items immediately, then — with wait — the rest as they complete,
// then the trailer. With owner set (the submitting POST ...?wait=1 request),
// a mid-stream client disconnect cancels all unstarted items: the client
// that wanted the results is gone, so queued work would be pure waste, while
// items already solving run to completion and stay fetchable.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, b *Batch, wait, owner bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeLine := func(v any) bool {
		js, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write(append(js, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	writeLine(batchStreamHeader{Schema: batchSchema, ID: b.ID, Items: len(b.items)})

	// One fan-in goroutine per still-pending item; the channel is per
	// request, so any number of concurrent readers can stream one batch.
	ch := make(chan int, len(b.items))
	waiting := 0
	for i, it := range b.items {
		if it.Job == nil || it.Job.terminal() {
			writeLine(it.streamLine())
			continue
		}
		if !wait {
			continue
		}
		waiting++
		go func(i int, j *Job) {
			select {
			case <-j.done:
				ch <- i
			case <-r.Context().Done():
			}
		}(i, it.Job)
	}
	for waiting > 0 {
		select {
		case i := <-ch:
			writeLine(b.items[i].streamLine())
			waiting--
		case <-r.Context().Done():
			if owner {
				b.CancelPending()
			}
			return
		}
	}
	c := b.counts()
	writeLine(batchStreamTrailer{
		Done:           true,
		Complete:       c.pending == 0,
		ItemsTotal:     len(b.items),
		ItemsDone:      c.done,
		ItemsFailed:    c.failed,
		ItemsCancelled: c.cancelled,
		ItemsRejected:  c.rejected,
		ItemsPending:   c.pending,
	})
}

// --- HTTP handlers --------------------------------------------------------

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeAPIError(w, err)
		return
	}
	b, err := s.SubmitBatchFrom(clientKey(r), req)
	if err != nil {
		s.writeAPIError(w, err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		s.streamBatch(w, r, b, true, true)
		return
	}
	writeJSON(w, http.StatusAccepted, b.statusDoc())
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	b, ok := s.BatchByID(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such batch")
		return
	}
	writeJSON(w, http.StatusOK, b.statusDoc())
}

func (s *Server) handleBatchResults(w http.ResponseWriter, r *http.Request) {
	b, ok := s.BatchByID(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such batch")
		return
	}
	s.streamBatch(w, r, b, r.URL.Query().Get("wait") == "1", false)
}

func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	b, ok := s.BatchByID(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such batch")
		return
	}
	b.Cancel()
	writeJSON(w, http.StatusOK, b.statusDoc())
}
