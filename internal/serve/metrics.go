package serve

import (
	"sync/atomic"

	"sagrelay/internal/core"
	"sagrelay/internal/fault"
	"sagrelay/internal/milp"
)

// Metrics holds the service's expvar-style counters: monotonically
// increasing atomics read without locks, published as one JSON document by
// the /metrics endpoint. Counters are process-lifetime; there is no reset.
type Metrics struct {
	// JobsAccepted counts solve submissions admitted to the queue
	// (cache hits included — they are accepted work, just free).
	JobsAccepted atomic.Int64
	// JobsRejected counts submissions refused with backpressure (queue
	// full) or during shutdown.
	JobsRejected atomic.Int64
	// JobsCompleted counts jobs that finished with a result document.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs that ended in a non-cancellation error.
	JobsFailed atomic.Int64
	// JobsCancelled counts jobs ended by deadline, client cancel or
	// shutdown.
	JobsCancelled atomic.Int64
	// JobsPanicked counts jobs whose solve panicked; each is also counted
	// in JobsFailed (the panic fails the job, never the process).
	JobsPanicked atomic.Int64
	// JobsDegraded counts completed jobs whose solution used a heuristic
	// fallback for at least one pipeline stage.
	JobsDegraded atomic.Int64
	// CacheHits and CacheMisses count result-cache lookups at submit time.
	CacheHits, CacheMisses atomic.Int64
	// SolveMicros accumulates wall-clock solver time (cache hits excluded),
	// and Solves the number of solves it spans, so mean latency is
	// SolveMicros/Solves.
	SolveMicros atomic.Int64
	Solves      atomic.Int64
	// JournalErrors counts journal append/compact/result-file failures;
	// they never fail the job, only this counter.
	JournalErrors atomic.Int64
	// JournalRestored counts jobs restored to a terminal state from the
	// journal at startup, and JournalReplayed counts journaled jobs the
	// previous process never finished that were re-submitted for solving.
	JournalRestored, JournalReplayed atomic.Int64
}

// metricsDoc is the JSON shape served by /metrics.
type metricsDoc struct {
	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsPanicked  int64 `json:"jobs_panicked"`
	JobsDegraded  int64 `json:"jobs_degraded"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheEntries  int   `json:"cache_entries"`
	SolveMicros   int64 `json:"solve_micros_total"`
	Solves        int64 `json:"solves"`
	// BBNodes is the process-wide branch-and-bound node count from
	// internal/milp — the solver-effort odometer behind ILP requests.
	BBNodes int64 `json:"bb_nodes_total"`
	// PanicsRecovered is the process-wide count of panics converted into
	// errors (internal/fault) — job solves plus pool-level recoveries.
	PanicsRecovered int64 `json:"panics_recovered"`
	// SolverRetries and SolverFallbacks are the process-wide degradation
	// ladder odometers from internal/core.
	SolverRetries   int64 `json:"solver_retries_total"`
	SolverFallbacks int64 `json:"solver_fallbacks_total"`
	// FaultsInjected counts fired fault-injection rules (0 in production).
	FaultsInjected  int64 `json:"faults_injected_total"`
	JournalErrors   int64 `json:"journal_errors"`
	JournalRestored int64 `json:"journal_restored_jobs"`
	JournalReplayed int64 `json:"journal_replayed_jobs"`
}

func (m *Metrics) snapshot(cacheEntries int) metricsDoc {
	return metricsDoc{
		JobsAccepted:    m.JobsAccepted.Load(),
		JobsRejected:    m.JobsRejected.Load(),
		JobsCompleted:   m.JobsCompleted.Load(),
		JobsFailed:      m.JobsFailed.Load(),
		JobsCancelled:   m.JobsCancelled.Load(),
		JobsPanicked:    m.JobsPanicked.Load(),
		JobsDegraded:    m.JobsDegraded.Load(),
		CacheHits:       m.CacheHits.Load(),
		CacheMisses:     m.CacheMisses.Load(),
		CacheEntries:    cacheEntries,
		SolveMicros:     m.SolveMicros.Load(),
		Solves:          m.Solves.Load(),
		BBNodes:         milp.TotalNodes(),
		PanicsRecovered: fault.RecoveredPanics(),
		SolverRetries:   core.TotalRetries(),
		SolverFallbacks: core.TotalFallbacks(),
		FaultsInjected:  fault.FiredTotal(),
		JournalErrors:   m.JournalErrors.Load(),
		JournalRestored: m.JournalRestored.Load(),
		JournalReplayed: m.JournalReplayed.Load(),
	}
}
