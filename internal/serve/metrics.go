package serve

import (
	"sync/atomic"

	"sagrelay/internal/milp"
)

// Metrics holds the service's expvar-style counters: monotonically
// increasing atomics read without locks, published as one JSON document by
// the /metrics endpoint. Counters are process-lifetime; there is no reset.
type Metrics struct {
	// JobsAccepted counts solve submissions admitted to the queue
	// (cache hits included — they are accepted work, just free).
	JobsAccepted atomic.Int64
	// JobsRejected counts submissions refused with backpressure (queue
	// full) or during shutdown.
	JobsRejected atomic.Int64
	// JobsCompleted counts jobs that finished with a result document.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs that ended in a non-cancellation error.
	JobsFailed atomic.Int64
	// JobsCancelled counts jobs ended by deadline, client cancel or
	// shutdown.
	JobsCancelled atomic.Int64
	// CacheHits and CacheMisses count result-cache lookups at submit time.
	CacheHits, CacheMisses atomic.Int64
	// SolveMicros accumulates wall-clock solver time (cache hits excluded),
	// and Solves the number of solves it spans, so mean latency is
	// SolveMicros/Solves.
	SolveMicros atomic.Int64
	Solves      atomic.Int64
}

// metricsDoc is the JSON shape served by /metrics.
type metricsDoc struct {
	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	CacheEntries  int   `json:"cache_entries"`
	SolveMicros   int64 `json:"solve_micros_total"`
	Solves        int64 `json:"solves"`
	// BBNodes is the process-wide branch-and-bound node count from
	// internal/milp — the solver-effort odometer behind ILP requests.
	BBNodes int64 `json:"bb_nodes_total"`
}

func (m *Metrics) snapshot(cacheEntries int) metricsDoc {
	return metricsDoc{
		JobsAccepted:  m.JobsAccepted.Load(),
		JobsRejected:  m.JobsRejected.Load(),
		JobsCompleted: m.JobsCompleted.Load(),
		JobsFailed:    m.JobsFailed.Load(),
		JobsCancelled: m.JobsCancelled.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		CacheEntries:  cacheEntries,
		SolveMicros:   m.SolveMicros.Load(),
		Solves:        m.Solves.Load(),
		BBNodes:       milp.TotalNodes(),
	}
}
