package serve

import (
	"sync/atomic"

	"sagrelay/internal/admit"
	"sagrelay/internal/core"
	"sagrelay/internal/fault"
	"sagrelay/internal/incr"
	"sagrelay/internal/milp"
	"sagrelay/internal/obs"
)

// Metrics holds the service's expvar-style counters: monotonically
// increasing atomics read without locks, published as one JSON document by
// the /metrics endpoint. Counters are process-lifetime; there is no reset.
type Metrics struct {
	// JobsAccepted counts solve submissions admitted to the queue
	// (cache hits included — they are accepted work, just free).
	JobsAccepted atomic.Int64
	// JobsRejected counts submissions refused with backpressure (queue
	// full) or during shutdown.
	JobsRejected atomic.Int64
	// JobsCompleted counts jobs that finished with a result document.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs that ended in a non-cancellation error.
	JobsFailed atomic.Int64
	// JobsCancelled counts jobs ended by deadline, client cancel or
	// shutdown.
	JobsCancelled atomic.Int64
	// JobsPanicked counts jobs whose solve panicked; each is also counted
	// in JobsFailed (the panic fails the job, never the process).
	JobsPanicked atomic.Int64
	// JobsDegraded counts completed jobs whose solution used a heuristic
	// fallback for at least one pipeline stage.
	JobsDegraded atomic.Int64
	// JobsShed counts submissions rejected by deadline-aware load shedding
	// (estimated queue wait + solve exceeded the job's deadline), before
	// they consumed a queue slot.
	JobsShed atomic.Int64
	// RateLimited counts submissions rejected by per-client rate limiting.
	RateLimited atomic.Int64
	// BatchesTotal counts accepted POST /v1/batch submissions;
	// BatchItemsTotal the items they expanded to (accepted jobs plus
	// rejections), and BatchItemsShed the items refused individually by
	// deadline-aware shedding while the rest of their batch proceeded.
	BatchesTotal, BatchItemsTotal, BatchItemsShed atomic.Int64
	// CacheHits and CacheMisses count result-cache lookups at submit time.
	CacheHits, CacheMisses atomic.Int64
	// Resolves counts accepted /v1/resolve submissions (before queueing; a
	// resolve that turns out to be a whole-result cache hit still counts).
	Resolves atomic.Int64
	// SolveMicros accumulates wall-clock solver time (cache hits excluded),
	// and Solves the number of solves it spans, so mean latency is
	// SolveMicros/Solves.
	SolveMicros atomic.Int64
	Solves      atomic.Int64
	// JournalErrors counts journal append/compact/result-file failures;
	// they never fail the job, only this counter.
	JournalErrors atomic.Int64
	// JournalRestored counts jobs restored to a terminal state from the
	// journal at startup, and JournalReplayed counts journaled jobs the
	// previous process never finished that were re-submitted for solving.
	JournalRestored, JournalReplayed atomic.Int64
	// JournalCorrupt counts mid-file journal records quarantined at startup
	// because their CRC32C checksum (or JSON) did not verify. A torn final
	// line — the one partial write a crash can leave — is not corruption
	// and is not counted.
	JournalCorrupt atomic.Int64
	// ProgressStreams counts opened GET /v1/jobs/{id}/progress?stream=1
	// live tails (lifetime total, not currently open).
	ProgressStreams atomic.Int64
}

// metricsSchema versions the /metrics JSON document. Bump it when keys are
// added, renamed or change meaning, so scrapers can detect drift instead of
// silently misreading counters. History:
//
//	sagmetrics/1  (implicit) the PR-3 document, no schema field
//	sagmetrics/2  schema field added; Prometheus exposition at
//	              /metrics?format=prometheus serves the same counters
//	sagmetrics/3  incremental re-solve keys added: incr_resolves,
//	              incr_zones_reused_total, incr_zones_resolved_total,
//	              zone_cache_entries
//	sagmetrics/4  admission-control keys added: jobs_shed_total,
//	              rate_limited_total, breaker_state, breaker_trips_total,
//	              inflight_limit, journal_corrupt_records
//	sagmetrics/5  batch keys added: batches_total, batch_items_total,
//	              batch_items_shed
//	sagmetrics/6  introspection keys added: job_queue_depth and
//	              flight_records gauges, progress_streams_total counter
const metricsSchema = "sagmetrics/6"

// metricsDoc is the JSON shape served by /metrics. Field order is the wire
// order (encoding/json preserves struct order), so keys appear in a stable,
// documented sequence: schema first, then counters grouped by subsystem.
type metricsDoc struct {
	Schema        string `json:"schema"`
	JobsAccepted  int64  `json:"jobs_accepted"`
	JobsRejected  int64  `json:"jobs_rejected"`
	JobsCompleted int64  `json:"jobs_completed"`
	JobsFailed    int64  `json:"jobs_failed"`
	JobsCancelled int64  `json:"jobs_cancelled"`
	JobsPanicked  int64  `json:"jobs_panicked"`
	JobsDegraded  int64  `json:"jobs_degraded"`
	// JobsShed and RateLimited are admission-control rejections (neither
	// consumed a queue slot); BreakerState is a gauge (0 closed, 1 open =
	// heuristic-first, 2 half-open probe) and InflightLimit the AIMD
	// limiter's current concurrency ceiling.
	JobsShed      int64  `json:"jobs_shed_total"`
	RateLimited   int64  `json:"rate_limited_total"`
	// The batch counters: batches accepted, the items they expanded to, and
	// the items individually refused by shedding (batch survives).
	BatchesTotal   int64 `json:"batches_total"`
	BatchItemsTot  int64 `json:"batch_items_total"`
	BatchItemsShed int64 `json:"batch_items_shed"`
	BreakerState  int64  `json:"breaker_state"`
	BreakerTrips  int64  `json:"breaker_trips_total"`
	InflightLimit int64  `json:"inflight_limit"`
	CacheHits     int64  `json:"cache_hits"`
	CacheMisses   int64  `json:"cache_misses"`
	CacheEntries  int    `json:"cache_entries"`
	// Resolves counts accepted /v1/resolve submissions; the two incr zone
	// counters are process-wide (internal/incr): a reuse is a zone coverage
	// solution spliced from the zone store, a resolve a zone actually solved.
	Resolves          int64 `json:"incr_resolves"`
	IncrZonesReused   int64 `json:"incr_zones_reused_total"`
	IncrZonesResolved int64 `json:"incr_zones_resolved_total"`
	// ZoneCacheEntries is the current zone-placement store size (the
	// coverage-level store; power and upper stores are bounded alike).
	ZoneCacheEntries int   `json:"zone_cache_entries"`
	SolveMicros      int64 `json:"solve_micros_total"`
	Solves           int64 `json:"solves"`
	// BBNodes is the process-wide branch-and-bound node count from
	// internal/milp — the solver-effort odometer behind ILP requests.
	BBNodes int64 `json:"bb_nodes_total"`
	// PanicsRecovered is the process-wide count of panics converted into
	// errors (internal/fault) — job solves plus pool-level recoveries.
	PanicsRecovered int64 `json:"panics_recovered"`
	// SolverRetries and SolverFallbacks are the process-wide degradation
	// ladder odometers from internal/core.
	SolverRetries   int64 `json:"solver_retries_total"`
	SolverFallbacks int64 `json:"solver_fallbacks_total"`
	// FaultsInjected counts fired fault-injection rules (0 in production).
	FaultsInjected  int64 `json:"faults_injected_total"`
	JournalErrors   int64 `json:"journal_errors"`
	JournalRestored int64 `json:"journal_restored_jobs"`
	JournalReplayed int64 `json:"journal_replayed_jobs"`
	JournalCorrupt  int64 `json:"journal_corrupt_records"`
	// The introspection trio: JobQueueDepth is the queued-but-not-running
	// gauge, FlightRecords the flight ring's current size, and
	// ProgressStreams the lifetime count of opened live progress tails.
	JobQueueDepth   int64 `json:"job_queue_depth"`
	FlightRecords   int64 `json:"flight_records"`
	ProgressStreams int64 `json:"progress_streams_total"`
}

func (m *Metrics) snapshot(cacheEntries, zoneCacheEntries int, adm *admit.Controller) metricsDoc {
	return metricsDoc{
		Schema:            metricsSchema,
		JobsAccepted:      m.JobsAccepted.Load(),
		JobsRejected:      m.JobsRejected.Load(),
		JobsCompleted:     m.JobsCompleted.Load(),
		JobsFailed:        m.JobsFailed.Load(),
		JobsCancelled:     m.JobsCancelled.Load(),
		JobsPanicked:      m.JobsPanicked.Load(),
		JobsDegraded:      m.JobsDegraded.Load(),
		JobsShed:          m.JobsShed.Load(),
		RateLimited:       m.RateLimited.Load(),
		BatchesTotal:      m.BatchesTotal.Load(),
		BatchItemsTot:     m.BatchItemsTotal.Load(),
		BatchItemsShed:    m.BatchItemsShed.Load(),
		BreakerState:      adm.BreakerState(),
		BreakerTrips:      adm.BreakerTrips(),
		InflightLimit:     adm.InflightLimit(),
		CacheHits:         m.CacheHits.Load(),
		CacheMisses:       m.CacheMisses.Load(),
		CacheEntries:      cacheEntries,
		Resolves:          m.Resolves.Load(),
		IncrZonesReused:   incr.ZonesReused(),
		IncrZonesResolved: incr.ZonesResolved(),
		ZoneCacheEntries:  zoneCacheEntries,
		SolveMicros:       m.SolveMicros.Load(),
		Solves:            m.Solves.Load(),
		BBNodes:           milp.TotalNodes(),
		PanicsRecovered:   fault.RecoveredPanics(),
		SolverRetries:     core.TotalRetries(),
		SolverFallbacks:   core.TotalFallbacks(),
		FaultsInjected:    fault.FiredTotal(),
		JournalErrors:     m.JournalErrors.Load(),
		JournalRestored:   m.JournalRestored.Load(),
		JournalReplayed:   m.JournalReplayed.Load(),
		JournalCorrupt:    m.JournalCorrupt.Load(),
		ProgressStreams:   m.ProgressStreams.Load(),
	}
}

// snapshotDoc is the server-level snapshot: the counter document plus the
// gauges only the Server can read (queue depth, flight ring size).
func (s *Server) snapshotDoc() metricsDoc {
	zones, _, _ := s.incrStores.Len()
	d := s.metrics.snapshot(s.cache.len(), zones, s.admit)
	d.JobQueueDepth = int64(s.pool.Len())
	d.FlightRecords = int64(s.flight.Len())
	return d
}

// promRegistry builds the Prometheus-side view of the service counters.
// Every series reads the same atomic the JSON snapshot reads, through a
// closure, so the two expositions cannot drift: a value mismatch between
// /metrics and /metrics?format=prometheus would mean a torn read, not a
// wiring bug. Names mirror the JSON keys with a "sag_" prefix.
func (s *Server) promRegistry() *obs.Registry {
	r := obs.NewRegistry()
	m := &s.metrics
	counter := func(key, help string, fn func() int64) {
		r.Counter("sag_"+key, help, fn)
	}
	counter("jobs_accepted", "Solve submissions admitted to the queue.", m.JobsAccepted.Load)
	counter("jobs_rejected", "Submissions refused with backpressure or during shutdown.", m.JobsRejected.Load)
	counter("jobs_completed", "Jobs that finished with a result document.", m.JobsCompleted.Load)
	counter("jobs_failed", "Jobs that ended in a non-cancellation error.", m.JobsFailed.Load)
	counter("jobs_cancelled", "Jobs ended by deadline, client cancel or shutdown.", m.JobsCancelled.Load)
	counter("jobs_panicked", "Jobs whose solve panicked (also counted in jobs_failed).", m.JobsPanicked.Load)
	counter("jobs_degraded", "Completed jobs that used a heuristic fallback stage.", m.JobsDegraded.Load)
	counter("jobs_shed_total", "Submissions rejected by deadline-aware load shedding.", m.JobsShed.Load)
	counter("rate_limited_total", "Submissions rejected by per-client rate limiting.", m.RateLimited.Load)
	counter("batches_total", "Accepted POST /v1/batch submissions.", m.BatchesTotal.Load)
	counter("batch_items_total", "Items accepted batches expanded to (jobs plus rejections).", m.BatchItemsTotal.Load)
	counter("batch_items_shed", "Batch items individually refused by deadline-aware shedding.", m.BatchItemsShed.Load)
	r.Gauge("sag_breaker_state", "Degrade circuit breaker state (0 closed, 1 open, 2 half-open).", s.admit.BreakerState)
	counter("breaker_trips_total", "Degrade circuit breaker trips (closed/half-open to open).", s.admit.BreakerTrips)
	r.Gauge("sag_inflight_limit", "Current AIMD adaptive concurrency ceiling.", s.admit.InflightLimit)
	counter("cache_hits", "Result-cache hits at submit time.", m.CacheHits.Load)
	counter("cache_misses", "Result-cache misses at submit time.", m.CacheMisses.Load)
	r.Gauge("sag_cache_entries", "Result documents currently cached.", func() int64 {
		return int64(s.cache.len())
	})
	counter("incr_resolves", "Accepted /v1/resolve submissions.", m.Resolves.Load)
	counter("incr_zones_reused_total", "Zone coverage solutions spliced from the zone store.", incr.ZonesReused)
	counter("incr_zones_resolved_total", "Zone coverage solutions computed by an actual solve.", incr.ZonesResolved)
	r.Gauge("sag_zone_cache_entries", "Zone placement entries currently stored.", func() int64 {
		zones, _, _ := s.incrStores.Len()
		return int64(zones)
	})
	counter("solve_micros_total", "Accumulated wall-clock solver microseconds.", m.SolveMicros.Load)
	counter("solves", "Completed solves behind solve_micros_total.", m.Solves.Load)
	counter("bb_nodes_total", "Process-wide branch-and-bound nodes explored.", milp.TotalNodes)
	counter("panics_recovered", "Process-wide panics converted into errors.", fault.RecoveredPanics)
	counter("solver_retries_total", "Degradation-ladder stage retries.", core.TotalRetries)
	counter("solver_fallbacks_total", "Degradation-ladder fallback activations.", core.TotalFallbacks)
	counter("faults_injected_total", "Fired fault-injection rules.", fault.FiredTotal)
	counter("journal_errors", "Journal append/compact/result-file failures.", m.JournalErrors.Load)
	counter("journal_restored_jobs", "Jobs restored to a terminal state from the journal.", m.JournalRestored.Load)
	counter("journal_replayed_jobs", "Journaled unfinished jobs re-submitted at startup.", m.JournalReplayed.Load)
	counter("journal_corrupt_records", "Mid-file journal records quarantined by checksum at startup.", m.JournalCorrupt.Load)
	r.Gauge("sag_job_queue_depth", "Jobs queued but not yet running.", func() int64 {
		return int64(s.pool.Len())
	})
	r.Gauge("sag_flight_records", "Completed-job records currently retained by the flight recorder.", func() int64 {
		return int64(s.flight.Len())
	})
	counter("progress_streams_total", "Opened live progress streams (?stream=1).", m.ProgressStreams.Load)
	return r
}
