// Package serve is the solve service: an HTTP JSON API over the sagrelay
// pipeline with a bounded job queue (internal/par.Pool), a content-addressed
// LRU result cache keyed by the canonical scenario/options encoding, and
// cooperative cancellation threaded from the request context down to the
// simplex pivot loop. A repeated request is answered from the cache with a
// byte-identical result document and no solver work.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/par"
	"sagrelay/internal/scenario"
)

// ErrShuttingDown reports a submission against a server that has begun
// graceful shutdown.
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrQueueFull re-exports the pool's backpressure signal for callers that
// do not import internal/par.
var ErrQueueFull = par.ErrQueueFull

// Options tunes a Server. Zero values mean the documented defaults.
type Options struct {
	// Workers is the number of concurrent solve jobs; 0 means GOMAXPROCS.
	// (Each job may additionally parallelize across zones; see
	// SolveOptions.Workers.)
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs before
	// submissions are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256 documents).
	CacheEntries int
	// MaxJobTime is the deadline applied to jobs that do not request their
	// own (default 2m). A request's timeout_ms may shorten but not exceed it.
	MaxJobTime time.Duration
	// MaxJobs bounds the in-memory job table; the oldest finished jobs are
	// forgotten beyond it (default 1024).
	MaxJobs int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.MaxJobTime <= 0 {
		o.MaxJobTime = 2 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	return o
}

// Server owns the job table, worker pool, result cache and metrics. Create
// one with NewServer, expose it with Handler, stop it with Shutdown.
type Server struct {
	opts    Options
	pool    *par.Pool
	cache   *cache
	metrics Metrics

	// baseCtx parents every job context; cancelAll aborts all in-flight
	// solves during forced shutdown.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	// inFlight counts accepted-but-unfinished jobs for shutdown draining.
	inFlight sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // job IDs in submission order, oldest first
	seq    int64
	closed bool
}

// NewServer starts the worker pool and returns a ready server.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:      opts,
		pool:      par.NewPool(opts.Workers, opts.QueueDepth),
		cache:     newCache(opts.CacheEntries),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
	}
}

// Submit validates, content-addresses and enqueues one solve request. A
// cache hit returns an already-done job without touching the solver. The
// error is ErrShuttingDown, ErrQueueFull, or a validation error from the
// scenario or options (the HTTP layer maps these to 503, 429 and 400).
func (s *Server) Submit(req SolveRequest) (*Job, error) {
	if req.Scenario == nil {
		return nil, fmt.Errorf("serve: request has no scenario")
	}
	if err := req.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	opts := req.Options.normalized()
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	key := requestKey(req.Scenario, opts)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		return nil, ErrShuttingDown
	}
	s.seq++
	job := &Job{
		ID:      "j-" + strconv.FormatInt(s.seq, 10),
		Key:     key,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictOldLocked()
	s.mu.Unlock()

	if doc, ok := s.cache.get(key); ok {
		s.metrics.JobsAccepted.Add(1)
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsCompleted.Add(1)
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		job.cancel = func() {}
		job.finish(StateDone, doc, "")
		return job, nil
	}
	s.metrics.CacheMisses.Add(1)

	timeout := s.opts.MaxJobTime
	if ms := opts.TimeoutMS; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	job.cancel = cancel

	s.inFlight.Add(1)
	if err := s.pool.Submit(func() { s.runJob(ctx, job, req.Scenario, cfg) }); err != nil {
		s.inFlight.Done()
		cancel()
		s.mu.Lock()
		delete(s.jobs, job.ID)
		if n := len(s.order); n > 0 && s.order[n-1] == job.ID {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		if errors.Is(err, par.ErrPoolClosed) {
			return nil, ErrShuttingDown
		}
		return nil, err
	}
	s.metrics.JobsAccepted.Add(1)
	return job, nil
}

// runJob executes one queued solve on a pool worker.
func (s *Server) runJob(ctx context.Context, job *Job, sc *scenario.Scenario, cfg core.Config) {
	defer s.inFlight.Done()
	defer job.cancel()

	if err := ctx.Err(); err != nil {
		// Cancelled or timed out while still queued.
		s.metrics.JobsCancelled.Add(1)
		job.finish(StateCancelled, nil, err.Error())
		return
	}
	job.markRunning()

	start := time.Now()
	sol, err := core.RunContext(ctx, sc, cfg)
	elapsed := time.Since(start)

	if err != nil {
		if ctx.Err() != nil {
			s.metrics.JobsCancelled.Add(1)
			job.finish(StateCancelled, nil, err.Error())
		} else {
			s.metrics.JobsFailed.Add(1)
			job.finish(StateFailed, nil, err.Error())
		}
		return
	}

	doc, err := buildResultDoc(sol)
	if err != nil {
		s.metrics.JobsFailed.Add(1)
		job.finish(StateFailed, nil, "encode result: "+err.Error())
		return
	}
	s.cache.put(job.Key, doc)
	s.metrics.Solves.Add(1)
	s.metrics.SolveMicros.Add(elapsed.Microseconds())
	s.metrics.JobsCompleted.Add(1)
	job.finish(StateDone, doc, "")
}

// Job returns the job with the given ID, if it is still in the table.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all retained jobs, newest first.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		if j, ok := s.jobs[s.order[i]]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation of a queued or running job. It reports
// whether the job exists; cancelling a finished job is a harmless no-op.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// evictOldLocked trims the oldest terminal jobs beyond Options.MaxJobs.
// Live (queued/running) jobs are never evicted, so the table can transiently
// exceed the bound under extreme load; it shrinks as jobs finish.
func (s *Server) evictOldLocked() {
	for len(s.order) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil || j.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Shutdown stops accepting jobs and drains in-flight ones. If ctx expires
// first, every remaining solve is cancelled (they observe their contexts
// within a few simplex pivots) and Shutdown still waits for them to unwind
// before returning ctx's error, so no solver goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if alreadyClosed {
		s.inFlight.Wait()
		return nil
	}

	drained := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(drained)
	}()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-drained
	}
	s.cancelAll()
	s.pool.Close()
	return err
}

// MetricsSnapshot returns the current counters (exported for tests and the
// smoke harness; the HTTP layer serves the same document at /metrics).
func (s *Server) MetricsSnapshot() map[string]int64 {
	d := s.metrics.snapshot(s.cache.len())
	return map[string]int64{
		"jobs_accepted":      d.JobsAccepted,
		"jobs_rejected":      d.JobsRejected,
		"jobs_completed":     d.JobsCompleted,
		"jobs_failed":        d.JobsFailed,
		"jobs_cancelled":     d.JobsCancelled,
		"cache_hits":         d.CacheHits,
		"cache_misses":       d.CacheMisses,
		"cache_entries":      int64(d.CacheEntries),
		"solve_micros_total": d.SolveMicros,
		"solves":             d.Solves,
		"bb_nodes_total":     d.BBNodes,
	}
}
