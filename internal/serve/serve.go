// Package serve is the solve service: an HTTP JSON API over the sagrelay
// pipeline with a bounded job queue (internal/par.Pool), a content-addressed
// LRU result cache keyed by the canonical scenario/options encoding, and
// cooperative cancellation threaded from the request context down to the
// simplex pivot loop. A repeated request is answered from the cache with a
// byte-identical result document and no solver work.
//
// With Options.DataDir set the server is also durable: every job lifecycle
// transition is appended to a JSONL write-ahead journal and finished results
// are stored content-addressed on disk, so a crashed or killed server
// replays its journal on the next start — completed jobs are served again
// byte-identically without re-solving, and jobs that were queued or running
// when the process died are re-run to a terminal state (at-least-once).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/core"
	"sagrelay/internal/fault"
	"sagrelay/internal/incr"
	"sagrelay/internal/milp"
	"sagrelay/internal/obs"
	"sagrelay/internal/par"
	"sagrelay/internal/scenario"
)

// siteJob is the fault-injection point at the top of job execution; one
// atomic load per job when injection is off.
var siteJob = fault.Register("serve.job")

// Service-level latency histograms live on the process-wide registry next
// to the solver-internal ones, so one Prometheus exposition carries both.
var (
	jobLatencySeconds = obs.Default.NewHistogram("sag_job_latency_seconds",
		"Wall-clock seconds from solve start to result (cache hits excluded).", obs.SecondsBuckets)
	queueWaitSeconds = obs.Default.NewHistogram("sag_queue_wait_seconds",
		"Seconds a job spent queued before a pool worker picked it up.", obs.SecondsBuckets)
)

// ErrShuttingDown reports a submission against a server that has begun
// graceful shutdown.
var ErrShuttingDown = errors.New("serve: shutting down")

// ErrQueueFull re-exports the pool's backpressure signal for callers that
// do not import internal/par.
var ErrQueueFull = par.ErrQueueFull

// Options tunes a Server. Zero values mean the documented defaults.
type Options struct {
	// Workers is the number of concurrent solve jobs; 0 means GOMAXPROCS.
	// (Each job may additionally parallelize across zones; see
	// SolveOptions.Workers.)
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs before
	// submissions are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256 documents).
	CacheEntries int
	// MaxJobTime is the deadline applied to jobs that do not request their
	// own (default 2m). A request's timeout_ms may shorten but not exceed it.
	MaxJobTime time.Duration
	// MaxJobs bounds the in-memory job table; the oldest finished jobs are
	// forgotten beyond it (default 1024).
	MaxJobs int
	// DataDir, when non-empty, enables the durable job journal: lifecycle
	// records are appended to <DataDir>/journal.jsonl and finished results
	// stored under <DataDir>/results/. On startup the journal is replayed —
	// finished jobs are restored (and served without re-solving), while jobs
	// the previous process never finished are re-run. Empty means fully
	// in-memory operation, as before.
	DataDir string
	// ZoneCacheEntries bounds each of the zone-level stores (coverage
	// placements, power blocks, upper-tier results) shared by every job of
	// this server (default 1024 entries each).
	ZoneCacheEntries int
	// ScenarioRetention bounds the LRU of scenarios kept so POST /v1/resolve
	// can name a base by job ID or scenario hash (default 256 scenarios).
	ScenarioRetention int
	// MaxBatchItems bounds the number of items one POST /v1/batch may expand
	// to (default 1024); a larger grid is refused with ErrBatchTooLarge.
	MaxBatchItems int
	// MaxBatches bounds the in-memory batch table; the oldest finished
	// batches are forgotten beyond it (default 64).
	MaxBatches int
	// Admit tunes the admission-control and overload-resilience layer:
	// per-client rate limiting, deadline-aware load shedding, the AIMD
	// in-flight limiter and the degrade circuit breaker. Zero values mean
	// the admit package defaults, with MaxInflight defaulting to this
	// server's worker count.
	Admit admit.Options
	// FlightRecords bounds the flight recorder's retained completed-job
	// records (default obs.DefaultFlightRecords; half the capacity is
	// reserved for failures/degrades/sheds).
	FlightRecords int
	// Logger receives the server's structured event log (submit, start,
	// finish, shed, breaker transitions, journal replay) with job_id /
	// batch_id / client correlation fields. nil discards everything.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.MaxJobTime <= 0 {
		o.MaxJobTime = 2 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 1024
	}
	if o.MaxBatches <= 0 {
		o.MaxBatches = 64
	}
	return o
}

// Server owns the job table, worker pool, result cache and metrics. Create
// one with NewServer, expose it with Handler, stop it with Shutdown.
type Server struct {
	opts    Options
	pool    *par.Pool
	cache   *cache
	metrics Metrics
	// incrStores are the zone-level content-addressed stores shared by every
	// job: full solves populate them and incremental re-solves splice from
	// them (see internal/incr).
	incrStores *incr.Stores
	// scenarios retains recently-submitted scenarios by canonical hash so
	// /v1/resolve can locate a delta's base.
	scenarios *scenarioStore
	// prom is the Prometheus-format view over the same counters the JSON
	// snapshot reads (see promRegistry).
	prom *obs.Registry
	// admit is the admission-control layer: rate limiting and deadline-aware
	// shedding at submit, AIMD concurrency and the degrade circuit breaker
	// around each solve.
	admit *admit.Controller
	// flight retains the last K completed-job records for postmortems (see
	// obs.FlightRecorder); log is the structured event logger (never nil —
	// a nil Options.Logger becomes obs.NopLogger).
	flight *obs.FlightRecorder
	log    *slog.Logger

	// baseCtx parents every job context; cancelAll aborts all in-flight
	// solves during forced shutdown.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	// inFlight counts accepted-but-unfinished jobs for shutdown draining.
	inFlight sync.WaitGroup

	// journal is the durable WAL, nil when Options.DataDir is empty.
	journal *journal

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in submission order, oldest first
	seq      int64
	batches  map[string]*Batch
	border   []string // batch IDs in submission order, oldest first
	bseq     int64
	closed   bool
	draining bool // Shutdown has begun: cancelled jobs journal as interrupted
}

// NewServer starts the worker pool and returns a ready server. With
// Options.DataDir set it first replays the journal left by the previous
// process: finished jobs are restored into the job table (and result cache)
// and unfinished ones are re-submitted to the pool, so their original IDs
// answer again once NewServer returns.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	logger := opts.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	aopts := opts.Admit
	if aopts.MaxInflight <= 0 {
		// The AIMD ceiling defaults to the worker count: the limiter can only
		// shrink concurrency below what the pool would run anyway.
		aopts.MaxInflight = par.DefaultWorkers(opts.Workers)
	}
	if aopts.OnBreakerChange == nil {
		// Breaker transitions are rare and load-bearing for operators:
		// always log them unless the caller installed their own observer.
		aopts.OnBreakerChange = func(from, to admit.BreakerState) {
			logger.Warn("breaker state change", "from", from.String(), "to", to.String())
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		pool:       par.NewPool(opts.Workers, opts.QueueDepth),
		cache:      newCache(opts.CacheEntries),
		incrStores: incr.NewStores(opts.ZoneCacheEntries),
		scenarios:  newScenarioStore(opts.ScenarioRetention),
		admit:      admit.New(aopts),
		flight:     obs.NewFlightRecorder(opts.FlightRecords),
		log:        logger,
		baseCtx:    ctx,
		cancelAll:  cancel,
		jobs:       make(map[string]*Job),
		batches:    make(map[string]*Batch),
	}
	s.prom = s.promRegistry()
	if opts.DataDir != "" {
		j, recs, corrupt, err := openJournal(opts.DataDir)
		if err != nil {
			cancel()
			s.pool.Close()
			return nil, err
		}
		if corrupt > 0 {
			s.log.Warn("journal corrupt records quarantined", "records", corrupt)
		}
		s.metrics.JournalCorrupt.Add(corrupt)
		s.journal = j
		s.replay(recs)
		s.log.Info("journal replay finished",
			"restored", s.metrics.JournalRestored.Load(),
			"replayed", s.metrics.JournalReplayed.Load())
	}
	return s, nil
}

// jappend writes a journal record when the journal is enabled. A journal
// write failure must not fail the job — the solve result is still correct —
// so it only increments the journal_errors counter.
func (s *Server) jappend(r jrec) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(r); err != nil {
		s.metrics.JournalErrors.Add(1)
	}
}

// replay folds the journal records left by the previous process into the
// job table: jobs with a durable terminal state are restored as-is (done
// jobs load their result document — and feed the cache — from results/, or
// from the inline copy journaled for degraded results), and every other
// journaled job is re-submitted to the pool under a fresh deadline, keeping
// its original ID. The journal is compacted to the retained state before
// the re-runs start appending to it.
func (s *Server) replay(recs []jrec) {
	type folded struct {
		submit jrec
		term   *jrec // first terminal record, nil while the job owes a run
	}
	byID := make(map[string]*folded)
	var order []string
	var maxSeq, maxBSeq int64
	var batchRecs []jrec
	for _, r := range recs {
		if r.T == recBatch {
			// Batch membership records ride along; the member jobs' own
			// records carry their lifecycles, so batches fold after jobs.
			if n, err := strconv.ParseInt(strings.TrimPrefix(r.ID, "b-"), 10, 64); err == nil && n > maxBSeq {
				maxBSeq = n
			}
			batchRecs = append(batchRecs, r)
			continue
		}
		if r.T == recSubmit {
			if _, ok := byID[r.ID]; !ok {
				byID[r.ID] = &folded{submit: r}
				order = append(order, r.ID)
				if n, err := strconv.ParseInt(strings.TrimPrefix(r.ID, "j-"), 10, 64); err == nil && n > maxSeq {
					maxSeq = n
				}
			}
			continue
		}
		f, ok := byID[r.ID]
		if !ok || f.term != nil {
			continue // torn history or duplicate terminal; first wins
		}
		switch r.T {
		case recDone, recFail, recCancel:
			rc := r
			f.term = &rc
		}
		// recStart and recInterrupt leave the job pending: it owes a re-run.
	}
	s.seq = maxSeq
	s.bseq = maxBSeq

	type pendingJob struct {
		job  *Job
		sc   *scenario.Scenario
		opts SolveOptions
		cfg  core.Config
	}
	var pending []pendingJob
	termRecs := make(map[string]jrec) // synthesized terminal records for compaction
	for _, id := range order {
		f := byID[id]
		job := &Job{
			ID:      id,
			Key:     f.submit.Key,
			done:    make(chan struct{}),
			state:   StateQueued,
			created: time.Now(),
			cancel:  func() {},
		}
		// Parse the journaled request up front (when one was journaled): even
		// terminally-restored jobs then carry their scenario hash and retain
		// the scenario, so they can serve as a base for /v1/resolve.
		var req SolveRequest
		haveReq := len(f.submit.Req) > 0 &&
			json.Unmarshal(f.submit.Req, &req) == nil && req.Scenario != nil
		if haveReq {
			job.ScenarioHash = req.Scenario.CanonicalHash()
			s.scenarios.put(job.ScenarioHash, req.Scenario)
		}
		s.jobs[id] = job
		s.order = append(s.order, id)

		if f.term != nil {
			switch f.term.T {
			case recFail:
				job.finish(StateFailed, nil, f.term.Err)
				s.metrics.JournalRestored.Add(1)
				termRecs[id] = jrec{T: recFail, ID: id, Err: f.term.Err}
				continue
			case recCancel:
				job.finish(StateCancelled, nil, f.term.Err)
				s.metrics.JournalRestored.Add(1)
				termRecs[id] = jrec{T: recCancel, ID: id, Err: f.term.Err}
				continue
			case recDone:
				if len(f.term.Doc) > 0 {
					// Degraded result, journaled inline.
					job.finish(StateDone, []byte(f.term.Doc), "")
					s.metrics.JournalRestored.Add(1)
					termRecs[id] = jrec{T: recDone, ID: id, Key: job.Key, Doc: f.term.Doc}
					continue
				}
				if doc, ok := s.journal.loadResult(job.Key); ok {
					s.cache.put(job.Key, doc)
					job.finish(StateDone, doc, "")
					s.metrics.JournalRestored.Add(1)
					termRecs[id] = jrec{T: recDone, ID: id, Key: job.Key}
					continue
				}
				// done record without its result file (lost or deleted):
				// fall through and re-run the job.
			}
		}

		if !haveReq {
			s.metrics.JournalErrors.Add(1)
			msg := "journal: submit record has no readable request"
			job.finish(StateFailed, nil, msg)
			termRecs[id] = jrec{T: recFail, ID: id, Err: msg}
			continue
		}
		opts := req.Options.normalized()
		cfg, err := opts.coreConfig()
		if err != nil {
			msg := "journal: " + err.Error()
			job.finish(StateFailed, nil, msg)
			termRecs[id] = jrec{T: recFail, ID: id, Err: msg}
			continue
		}
		if doc, ok := s.cache.get(job.Key); ok {
			// An already-restored job with the same content address pays for
			// this one too.
			job.mu.Lock()
			job.cacheHit = true
			job.mu.Unlock()
			job.finish(StateDone, doc, "")
			s.metrics.JournalRestored.Add(1)
			termRecs[id] = jrec{T: recDone, ID: id, Key: job.Key}
			continue
		}
		// Re-run jobs are live again: they get progress state like any
		// fresh submission.
		job.progress = newJobProgress()
		pending = append(pending, pendingJob{job: job, sc: req.Scenario, opts: opts, cfg: cfg})
	}
	s.evictOldLocked() // NewServer is single-threaded here; lock not yet needed

	// Compact before the re-runs append fresh start/terminal records. Batch
	// membership records come after every member job's records, matching the
	// order appends produce.
	var compacted []jrec
	for _, id := range s.order {
		f := byID[id]
		compacted = append(compacted, f.submit)
		if tr, ok := termRecs[id]; ok {
			compacted = append(compacted, tr)
		}
	}
	compacted = append(compacted, batchRecs...)
	if err := s.journal.compact(compacted); err != nil {
		s.metrics.JournalErrors.Add(1)
	}

	// Rebuild batches over the restored jobs: watchers re-attach to pending
	// members, so a batch whose items the crash left unfinished completes
	// once the re-runs below finish them.
	for _, r := range batchRecs {
		s.restoreBatch(r.ID, r.Doc)
	}

	for _, p := range pending {
		timeout := s.opts.MaxJobTime
		if ms := p.opts.TimeoutMS; ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < timeout {
				timeout = d
			}
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
		p.job.setCancel(cancel)
		s.inFlight.Add(1)
		job, sc, cfg := p.job, p.sc, p.cfg
		// The recovered backlog may exceed the queue depth; block rather
		// than drop — these jobs were already accepted in a previous life.
		if err := s.pool.SubmitBlocking(func() { s.runJob(ctx, job, sc, cfg) }); err != nil {
			s.inFlight.Done()
			cancel()
			s.failJob(job, "journal replay: "+err.Error())
			continue
		}
		s.metrics.JournalReplayed.Add(1)
	}
}

// Submit validates, content-addresses and enqueues one solve request. A
// cache hit returns an already-done job without touching the solver. The
// error is ErrShuttingDown, ErrQueueFull, or a validation error from the
// scenario or options (the HTTP layer maps these to 503, 429 and 400).
func (s *Server) Submit(req SolveRequest) (*Job, error) {
	return s.submit("", req, nil)
}

// SubmitFrom is Submit with a client identity for per-client rate limiting
// (the HTTP layer passes the API key or remote address). An empty client is
// never rate limited.
func (s *Server) SubmitFrom(client string, req SolveRequest) (*Job, error) {
	return s.submit(client, req, nil)
}

// submit is Submit plus the resolve path's incremental metadata, attached to
// the job before it is published so runJob sees it race-free.
func (s *Server) submit(client string, req SolveRequest, meta *incrMeta) (*Job, error) {
	if req.Scenario == nil {
		return nil, fmt.Errorf("serve: request has no scenario")
	}
	// Rate limiting comes first: a client past its budget is refused before
	// any per-request work (even a cache hit costs API capacity).
	if err := s.admit.AllowClient(client); err != nil {
		s.metrics.RateLimited.Add(1)
		s.log.Warn("submission rate limited", obs.LogClient, client)
		return nil, err
	}
	if err := req.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	opts := req.Options.normalized()
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	key := requestKey(req.Scenario, opts)
	// Retain the scenario before the job is visible: a client that reads the
	// accepted job's scenario_hash may immediately resolve against it.
	scHash := req.Scenario.CanonicalHash()
	s.scenarios.put(scHash, req.Scenario)

	timeout := s.opts.MaxJobTime
	if ms := opts.TimeoutMS; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}

	// Deadline-aware shedding, decided before the job takes a queue slot.
	// Cache hits skip it — they are answered without any solver work, so
	// shedding them would refuse free requests. The one-time cache lookup
	// here is reused below (a concurrent fill between lookup and publication
	// only means an admitted job re-solves to identical bytes).
	cachedDoc, cacheHit := s.cache.get(key)
	var admitDec admit.Decision
	if !cacheHit {
		dec, err := s.admit.Admit(admit.SizeClass(len(req.Scenario.Subscribers)), s.pool.Len(), timeout)
		if err != nil {
			s.metrics.JobsShed.Add(1)
			s.log.Warn("job shed", obs.LogClient, client, "error", err.Error())
			s.recordShed("shed", client, err.Error())
			return nil, err
		}
		admitDec = dec
	}

	// The job's context (and its cancel func) exist before the job is
	// published into the table, so a concurrent DELETE /v1/jobs/{id} can
	// never observe a job without a cancel function.
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		s.metrics.JobsRejected.Add(1)
		return nil, ErrShuttingDown
	}
	s.seq++
	job := &Job{
		ID:           "j-" + strconv.FormatInt(s.seq, 10),
		Key:          key,
		ScenarioHash: scHash,
		incr:         meta,
		admit:        admitDec,
		client:       client,
		cancel:       cancel,
		done:         make(chan struct{}),
		state:        StateQueued,
		created:      time.Now(),
	}
	if !cacheHit {
		job.progress = newJobProgress()
		if meta != nil {
			// The resolve planner already knows the zone partition and the
			// dirty set; pre-seed the rows so a watcher sees the full zone
			// map before the first solver event.
			job.progress.seed(meta.plan.ZoneSizes, meta.plan.Dirty)
		}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictOldLocked()
	s.mu.Unlock()

	if cacheHit {
		cancel() // nothing will run; release the deadline timer
		s.metrics.JobsAccepted.Add(1)
		s.metrics.CacheHits.Add(1)
		s.metrics.JobsCompleted.Add(1)
		job.mu.Lock()
		job.cacheHit = true
		job.mu.Unlock()
		// Cached documents always have a durable twin under results/ when
		// the journal is on, so submit+done suffices for replay.
		s.jappend(jrec{T: recSubmit, ID: job.ID, Key: key})
		s.jappend(jrec{T: recDone, ID: job.ID, Key: key})
		job.finish(StateDone, cachedDoc, "")
		s.log.Info("job done from cache", obs.LogJobID, job.ID, obs.LogClient, client, "key", key)
		s.recordFlight(job, "cache_hit", false, false)
		return job, nil
	}
	s.metrics.CacheMisses.Add(1)

	// Journal the submission before the pool can run it: the WAL must know
	// about a job before any of its later records, and before the client is
	// told it was accepted.
	if s.journal != nil {
		reqBytes, err := json.Marshal(SolveRequest{Scenario: req.Scenario, Options: opts})
		if err != nil {
			// Nothing was journaled and nothing will run: unpublish the job
			// so the table does not retain a phantom queued entry forever.
			cancel()
			s.removeJob(job.ID)
			s.metrics.JobsRejected.Add(1)
			return nil, fmt.Errorf("serve: encode request for journal: %w", err)
		}
		s.jappend(jrec{T: recSubmit, ID: job.ID, Key: key, Req: reqBytes})
	}

	s.inFlight.Add(1)
	if err := s.pool.Submit(func() { s.runJob(ctx, job, req.Scenario, cfg) }); err != nil {
		s.inFlight.Done()
		cancel()
		s.removeJob(job.ID)
		// The submission was journaled; record the rejection so replay does
		// not resurrect a job the client was refused.
		s.jappend(jrec{T: recCancel, ID: job.ID, Err: "rejected: " + err.Error()})
		s.metrics.JobsRejected.Add(1)
		if errors.Is(err, par.ErrPoolClosed) {
			return nil, ErrShuttingDown
		}
		return nil, err
	}
	s.metrics.JobsAccepted.Add(1)
	s.log.Info("job accepted", obs.LogJobID, job.ID, obs.LogClient, client, "key", key)
	return job, nil
}

// removeJob unpublishes an accepted-but-never-run job from the table (pool
// rejection or journal-encode failure in Submit).
func (s *Server) removeJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// runJob executes one queued solve on a pool worker.
func (s *Server) runJob(ctx context.Context, job *Job, sc *scenario.Scenario, cfg core.Config) {
	defer s.inFlight.Done()
	defer job.cancelNow()
	// Own the job's fate under panic: the pool's recover is only a
	// process-survival backstop and cannot settle job state (it has no idea
	// what a half-run task left behind). Without this, a panicking solve
	// would leave the job "running" forever and its done channel never
	// closed. Registered after inFlight.Done/job.cancel so it runs first.
	defer func() {
		if v := recover(); v != nil {
			pe := fault.NewPanicError("serve.job", v)
			s.metrics.JobsPanicked.Add(1)
			s.log.Error("job panicked", obs.LogJobID, job.ID, "panic", pe.Error())
			s.failJob(job, pe.Error())
		}
	}()

	if err := ctx.Err(); err != nil {
		// Cancelled or timed out while still queued.
		s.cancelJob(job, err.Error())
		return
	}
	job.markRunning()
	queueWaitSeconds.Observe(time.Since(job.created).Seconds())
	s.jappend(jrec{T: recStart, ID: job.ID, Key: job.Key})
	s.log.Info("job start", obs.LogJobID, job.ID)
	if p := job.progressState(); p != nil {
		// Arm the branch-and-bound progress hook: every zone solve under
		// this context reports into the job's per-zone rows. Observational
		// only — the solver's search is identical armed or disarmed.
		p.markStart()
		ctx = milp.WithProgress(ctx, p.observe)
	}
	if err := fault.Check(siteJob); err != nil {
		s.failJob(job, err.Error())
		return
	}

	// Admission control around the solve itself: the breaker decides the
	// execution mode (exact, heuristic-first, or half-open probe) and the
	// AIMD limiter may hold the job here until an in-flight slot frees up —
	// this worker goroutine idling is exactly how concurrency shrinks below
	// the pool's static count.
	grant, gerr := s.admit.Begin(ctx)
	if gerr != nil {
		// The job's deadline expired (or shutdown began) while it waited for
		// a slot; no slot is held.
		s.cancelJob(job, gerr.Error())
		return
	}
	sizeClass := admit.SizeClass(len(sc.Subscribers))
	outcome := admit.Outcome{SizeClass: sizeClass, Failed: true}
	// The deferred Finish is the panic backstop (Finish is idempotent; the
	// first call wins, and outcome defaults to Failed until the solve
	// settles it below).
	defer func() { s.admit.Finish(grant, outcome) }()
	if grant.HeuristicFirst() {
		cfg.HeuristicFirst = true
	}

	// Every job records a span tree: the "job" root plus the solver's own
	// stage spans, serialized into the result document's trace field.
	tr := obs.NewTrace("job")
	tr.Root().SetAttr("job_id", job.ID)
	ctx = obs.WithTrace(ctx, tr)
	asp := tr.Root().StartChild("admit")
	asp.SetInt("size_class", int64(sizeClass))
	asp.SetFloat("est_solve_s", job.admit.EstSolve.Seconds())
	asp.SetFloat("est_wait_s", job.admit.EstWait.Seconds())
	asp.SetBool("heuristic_first", grant.HeuristicFirst())
	asp.SetBool("probe", grant.Probe())
	asp.SetInt("inflight_limit", s.admit.InflightLimit())
	asp.End()

	// Every job runs through the shared zone-level stores: full solves
	// populate them, repeat or delta'd scenarios splice from them. Fast
	// resolves get read-only stores plus warm-start seeds instead — their
	// results may differ from a cold solve and must not contaminate caches.
	fast := job.incr != nil && job.incr.fast
	if fast {
		s.incrStores.WireFast(&cfg, job.incr.plan.Seeder)
	} else {
		s.incrStores.Wire(&cfg)
	}
	if m := job.incr; m != nil {
		sp := tr.Root().StartChild("incr")
		sp.SetAttr("base_scenario_hash", m.baseHash)
		sp.SetInt("total_zones", int64(m.plan.TotalZones))
		sp.SetInt("dirty_zones", int64(m.plan.DirtyZones))
		sp.SetFloat("dirty_fraction", m.plan.DirtyFraction)
		sp.SetBool("fast", m.fast)
		sp.End()
	}

	// Bind degrade overtime to forced shutdown: once the job's deadline has
	// expired the ladder's detached context ignores ctx, so cancelAll must
	// reach it through HardStop or Shutdown would block out DegradeTimeout.
	cfg.HardStop = s.baseCtx.Done()

	start := time.Now()
	sol, err := core.Run(ctx, sc, cfg)
	elapsed := time.Since(start)
	tr.Finish()
	job.setTrace(tr.Doc())
	jobLatencySeconds.Observe(elapsed.Seconds())
	outcome.Seconds = elapsed.Seconds()
	outcome.DeadlineMiss = errors.Is(ctx.Err(), context.DeadlineExceeded)

	if err != nil {
		if ctx.Err() != nil {
			// Deadline misses are the breaker's signal; a client cancel is
			// nobody's fault and must not shrink concurrency or trip anything.
			outcome.Failed = outcome.DeadlineMiss
			s.cancelJob(job, err.Error())
		} else {
			s.failJob(job, err.Error())
		}
		return
	}
	doc, err := buildResultDoc(sol)
	if err != nil {
		s.failJob(job, "encode result: "+err.Error())
		return
	}
	outcome.Failed = false
	outcome.Degraded = sol.Degraded
	s.metrics.Solves.Add(1)
	s.metrics.SolveMicros.Add(elapsed.Microseconds())
	s.metrics.JobsCompleted.Add(1)
	if sol.Degraded || fast {
		// Degraded results are timing-dependent (which stage fell back
		// depends on when the deadline hit) and fast-mode results are
		// seed-dependent (warm starts may land on a different equally-good
		// optimum), so neither may enter the content-addressed cache or
		// results directory — both promise byte-identical replay. The
		// journal carries the document inline so a restart can still serve
		// this job's result.
		if sol.Degraded {
			s.metrics.JobsDegraded.Add(1)
		}
		s.jappend(jrec{T: recDone, ID: job.ID, Key: job.Key, Doc: doc})
		job.finish(StateDone, doc, "")
		s.log.Warn("job done degraded", obs.LogJobID, job.ID,
			"elapsed_ms", elapsed.Milliseconds(), "degraded", sol.Degraded, "fast", fast)
		s.recordFlight(job, "degraded", true, sol.Degraded)
		return
	}
	s.cache.put(job.Key, doc)
	if s.journal != nil {
		// Result file before the done record: a done in the WAL promises a
		// loadable result (a crash between the two replays the job instead).
		if err := s.journal.writeResult(job.Key, doc); err != nil {
			s.metrics.JournalErrors.Add(1)
		}
		s.jappend(jrec{T: recDone, ID: job.ID, Key: job.Key})
	}
	job.finish(StateDone, doc, "")
	s.log.Info("job done", obs.LogJobID, job.ID, "elapsed_ms", elapsed.Milliseconds())
	s.recordFlight(job, "done", false, false)
}

// failJob finishes a job as failed, with the journal and counters agreeing.
func (s *Server) failJob(job *Job, msg string) {
	s.metrics.JobsFailed.Add(1)
	s.jappend(jrec{T: recFail, ID: job.ID, Err: msg})
	job.finish(StateFailed, nil, msg)
	s.log.Error("job failed", obs.LogJobID, job.ID, "error", msg)
	s.recordFlight(job, "failed", true, false)
}

// cancelJob finishes a cancelled job. During shutdown the journal records an
// interrupt instead of a cancel: the client never asked for the abort, so
// the next start re-runs the job; a deliberate cancel (client DELETE or
// per-job deadline) stays dead across restarts.
func (s *Server) cancelJob(job *Job, msg string) {
	s.metrics.JobsCancelled.Add(1)
	if s.isDraining() {
		s.jappend(jrec{T: recInterrupt, ID: job.ID, Err: msg})
		job.finish(StateCancelled, nil, "interrupted by shutdown: "+msg)
		s.log.Info("job interrupted by shutdown", obs.LogJobID, job.ID)
		return
	}
	s.jappend(jrec{T: recCancel, ID: job.ID, Err: msg})
	job.finish(StateCancelled, nil, msg)
	s.log.Info("job cancelled", obs.LogJobID, job.ID, "error", msg)
	s.recordFlight(job, "cancelled", true, false)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Job returns the job with the given ID, if it is still in the table.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all retained jobs, newest first.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		if j, ok := s.jobs[s.order[i]]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation of a queued or running job and returns the
// job it acted on, so callers keep a live reference even if a concurrent
// Submit evicts the table entry. The boolean reports whether the job
// exists; cancelling a finished job is a harmless no-op.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.cancelNow()
	return j, true
}

// evictOldLocked trims the oldest terminal jobs beyond Options.MaxJobs.
// Live (queued/running) jobs are never evicted, so the table can transiently
// exceed the bound under extreme load; it shrinks as jobs finish.
func (s *Server) evictOldLocked() {
	for len(s.order) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil || j.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Shutdown stops accepting jobs and drains in-flight ones. If ctx expires
// first, every remaining solve is cancelled (they observe their contexts
// within a few simplex pivots) and Shutdown still waits for them to unwind
// before returning ctx's error, so no solver goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.draining = true
	s.mu.Unlock()
	if alreadyClosed {
		s.inFlight.Wait()
		return nil
	}

	drained := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(drained)
	}()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-drained
	}
	s.cancelAll()
	s.pool.Close()
	if s.journal != nil {
		s.journal.close()
	}
	return err
}

// MetricsSnapshot returns the current counters (exported for tests and the
// smoke harness; the HTTP layer serves the same document at /metrics).
func (s *Server) MetricsSnapshot() map[string]int64 {
	d := s.snapshotDoc()
	return map[string]int64{
		"jobs_accepted":             d.JobsAccepted,
		"jobs_rejected":             d.JobsRejected,
		"jobs_completed":            d.JobsCompleted,
		"jobs_failed":               d.JobsFailed,
		"jobs_cancelled":            d.JobsCancelled,
		"jobs_panicked":             d.JobsPanicked,
		"jobs_degraded":             d.JobsDegraded,
		"jobs_shed_total":           d.JobsShed,
		"rate_limited_total":        d.RateLimited,
		"batches_total":             d.BatchesTotal,
		"batch_items_total":         d.BatchItemsTot,
		"batch_items_shed":          d.BatchItemsShed,
		"breaker_state":             d.BreakerState,
		"breaker_trips_total":       d.BreakerTrips,
		"inflight_limit":            d.InflightLimit,
		"cache_hits":                d.CacheHits,
		"cache_misses":              d.CacheMisses,
		"cache_entries":             int64(d.CacheEntries),
		"incr_resolves":             d.Resolves,
		"incr_zones_reused_total":   d.IncrZonesReused,
		"incr_zones_resolved_total": d.IncrZonesResolved,
		"zone_cache_entries":        int64(d.ZoneCacheEntries),
		"solve_micros_total":        d.SolveMicros,
		"solves":                    d.Solves,
		"bb_nodes_total":            d.BBNodes,
		"panics_recovered":          d.PanicsRecovered,
		"solver_retries_total":      d.SolverRetries,
		"solver_fallbacks_total":    d.SolverFallbacks,
		"faults_injected_total":     d.FaultsInjected,
		"journal_errors":            d.JournalErrors,
		"journal_restored_jobs":     d.JournalRestored,
		"journal_replayed_jobs":     d.JournalReplayed,
		"journal_corrupt_records":   d.JournalCorrupt,
		"job_queue_depth":           d.JobQueueDepth,
		"flight_records":            d.FlightRecords,
		"progress_streams_total":    d.ProgressStreams,
	}
}
