package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/milp"
	"sagrelay/internal/scenario"
)

// clusteredBase pins a multi-zone instance: three separated subscriber
// clusters whose coverage circles cannot merge, so a move inside one
// cluster leaves the other zones clean.
func clusteredBase(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 600, NumSS: 12, NumBS: 2, SNRdB: -15, Seed: 21,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	centers := []geom.Point{{X: 90, Y: 90}, {X: 510, Y: 90}, {X: 300, Y: 520}}
	for i := range sc.Subscribers {
		c := centers[i/4]
		sc.Subscribers[i].Pos = geom.Point{
			X: c.X + float64(i%4)*11 - 16,
			Y: c.Y + float64((i*7)%5)*9 - 18,
		}
		sc.Subscribers[i].DistReq = 30
		sc.Subscribers[i].MinRxPower = sc.DeriveMinRxPower(30)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("clustered base invalid: %v", err)
	}
	return sc
}

func moveDelta(id int, to geom.Point) *scenario.Delta {
	return &scenario.Delta{Version: scenario.DeltaVersion, Ops: []scenario.DeltaOp{
		{Op: scenario.OpMoveSS, ID: id, Pos: &to},
	}}
}

// stripTrace removes the span tree from a result document: resolve jobs
// carry an extra "incr" span and all spans carry wall-clock timings, so
// byte-identity claims compare everything except the trace.
func stripTrace(t *testing.T, doc []byte) []byte {
	t.Helper()
	var r ResultDoc
	if err := json.Unmarshal(doc, &r); err != nil {
		t.Fatalf("result not JSON: %v", err)
	}
	r.Trace = nil
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// coldSolveDoc solves sc on a fresh server (empty caches) and returns the
// trace-stripped result document — the ground truth a resolve must match.
func coldSolveDoc(t *testing.T, sc *scenario.Scenario, opts SolveOptions) []byte {
	t.Helper()
	s := newTestServer(t, Options{})
	job, err := s.Submit(SolveRequest{Scenario: sc, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 60*time.Second)
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("cold solve: %v (%s)", state, job.status().Error)
	}
	return stripTrace(t, doc)
}

// TestResolveNoOpDelta: an empty delta leaves the scenario untouched, so the
// resolve hashes to the same request key and is served from the whole-result
// cache — byte-identical, no solver work, zero branch-and-bound nodes.
func TestResolveNoOpDelta(t *testing.T) {
	s := newTestServer(t, Options{})
	opts := SolveOptions{Coverage: "IAC"}
	base, err := s.Submit(SolveRequest{Scenario: tinyScenario(t), Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, base, 60*time.Second)
	baseDoc, state := base.resultBytes()
	if state != StateDone {
		t.Fatalf("base solve: %v", state)
	}

	nodes0 := milp.TotalNodes()
	job, err := s.Resolve(ResolveRequest{
		BaseJob: base.ID,
		Delta:   &scenario.Delta{Version: scenario.DeltaVersion},
		Options: opts,
	})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	waitDone(t, job, 10*time.Second)
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("resolve: %v (%s)", state, job.status().Error)
	}
	st := job.status()
	if !st.CacheHit {
		t.Error("no-op resolve was not a cache hit")
	}
	if got := milp.TotalNodes() - nodes0; got != 0 {
		t.Errorf("no-op resolve explored %d B&B nodes, want 0", got)
	}
	if !bytes.Equal(doc, baseDoc) {
		t.Error("no-op resolve is not byte-identical to the base result")
	}
	if st.ScenarioHash != base.ScenarioHash {
		t.Errorf("no-op resolve scenario hash %s != base %s", st.ScenarioHash, base.ScenarioHash)
	}
}

// TestResolveMatchesColdSolve chains three deltas — a small in-cluster move,
// a zone-emptying removal, and a partition-changing cross-field move — and
// checks each resolved result is byte-identical (modulo trace) to a cold
// solve of the same mutated scenario on a fresh server.
func TestResolveMatchesColdSolve(t *testing.T) {
	s := newTestServer(t, Options{})
	sc := clusteredBase(t)
	var opts SolveOptions // defaults: SAMC + green + MBMC

	job, err := s.Submit(SolveRequest{Scenario: sc, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 60*time.Second)
	if _, state := job.resultBytes(); state != StateDone {
		t.Fatalf("base solve: %v", state)
	}

	cur := sc
	steps := []struct {
		name string
		d    *scenario.Delta
	}{
		{"small move", moveDelta(sc.Subscribers[0].ID, geom.Point{X: sc.Subscribers[0].Pos.X + 6, Y: sc.Subscribers[0].Pos.Y + 5})},
		{"zone-emptying remove", &scenario.Delta{Version: scenario.DeltaVersion, Ops: []scenario.DeltaOp{
			{Op: scenario.OpRemoveSS, ID: sc.Subscribers[11].ID},
		}}},
		{"partition-changing move", moveDelta(sc.Subscribers[1].ID, geom.Point{X: 305, Y: 512})},
	}
	baseJob := job.ID
	for i, step := range steps {
		rj, err := s.Resolve(ResolveRequest{BaseJob: baseJob, Delta: step.d, Options: opts})
		if err != nil {
			t.Fatalf("%s: Resolve: %v", step.name, err)
		}
		waitDone(t, rj, 60*time.Second)
		doc, state := rj.resultBytes()
		if state != StateDone {
			t.Fatalf("%s: resolve: %v (%s)", step.name, state, rj.status().Error)
		}
		st := rj.status()
		if st.TotalZones < 3 {
			t.Errorf("%s: base has %d zones, want >= 3", step.name, st.TotalZones)
		}
		if st.DirtyZones < 1 || st.DirtyZones > st.TotalZones {
			t.Errorf("%s: dirty zones %d/%d implausible", step.name, st.DirtyZones, st.TotalZones)
		}
		if i == 0 && st.DirtyZones >= st.TotalZones {
			t.Errorf("small in-cluster move dirtied all %d zones", st.TotalZones)
		}
		mut, err := step.d.Apply(cur)
		if err != nil {
			t.Fatalf("%s: Apply: %v", step.name, err)
		}
		if got, want := stripTrace(t, doc), coldSolveDoc(t, mut, opts); !bytes.Equal(got, want) {
			t.Errorf("%s: resolve differs from cold solve\nresolve: %s\ncold:    %s", step.name, got, want)
		}
		cur, baseJob = mut, rj.ID
	}
}

// TestResolveByHashAndErrors covers the addressing modes and the typed
// failure paths of Resolve.
func TestResolveByHashAndErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	sc := tinyScenario(t)
	base, err := s.Submit(SolveRequest{Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, base, 60*time.Second)
	d := moveDelta(sc.Subscribers[0].ID, geom.Point{X: 250, Y: 250})

	// Addressing by scenario hash works without naming the job.
	job, err := s.Resolve(ResolveRequest{BaseScenarioHash: base.ScenarioHash, Delta: d})
	if err != nil {
		t.Fatalf("resolve by hash: %v", err)
	}
	waitDone(t, job, 60*time.Second)
	if _, state := job.resultBytes(); state != StateDone {
		t.Fatalf("resolve by hash: %v", state)
	}

	cases := []struct {
		name string
		req  ResolveRequest
		want error
	}{
		{"missing job", ResolveRequest{BaseJob: "nope", Delta: d}, ErrNoBase},
		{"unknown hash", ResolveRequest{BaseScenarioHash: "deadbeef", Delta: d}, ErrNoBase},
		{"no delta", ResolveRequest{BaseJob: base.ID}, scenario.ErrBadDelta},
		{"no base", ResolveRequest{Delta: d}, scenario.ErrBadDelta},
		{"dangling entity", ResolveRequest{BaseJob: base.ID,
			Delta: moveDelta(99999, geom.Point{X: 1, Y: 1})}, scenario.ErrUnknownEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Resolve(tc.req); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestResolveHTTP exercises POST /v1/resolve end to end: happy path with
// wait=1, 404 for a missing base, 400 for a malformed delta.
func TestResolveHTTP(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sc := tinyScenario(t)
	body, _ := json.Marshal(SolveRequest{Scenario: sc})
	resp, err := http.Post(ts.URL+"/v1/solve?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: %d", resp.StatusCode)
	}
	var baseJobID string
	{
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []jobStatus `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(list.Jobs) == 0 {
			t.Fatal("no jobs listed")
		}
		baseJobID = list.Jobs[0].ID
	}

	post := func(req ResolveRequest) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/resolve?wait=1", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	d := moveDelta(sc.Subscribers[0].ID, geom.Point{X: 222, Y: 111})
	resp2, out := post(ResolveRequest{BaseJob: baseJobID, Delta: d})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resolve: %d %s", resp2.StatusCode, out)
	}
	var doc ResultDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("resolve result not JSON: %v", err)
	}
	if !doc.Feasible {
		t.Errorf("resolved scenario infeasible: %+v", doc)
	}

	if resp3, out := post(ResolveRequest{BaseJob: "missing", Delta: d}); resp3.StatusCode != http.StatusNotFound {
		t.Errorf("missing base: %d %s, want 404", resp3.StatusCode, out)
	}
	if resp4, out := post(ResolveRequest{BaseJob: baseJobID}); resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("nil delta: %d %s, want 400", resp4.StatusCode, out)
	}
	if resp5, out := post(ResolveRequest{BaseJob: baseJobID,
		Delta: moveDelta(12345, geom.Point{X: 1, Y: 2})}); resp5.StatusCode != http.StatusBadRequest {
		t.Errorf("dangling delta: %d %s, want 400", resp5.StatusCode, out)
	}
}
