package serve

import (
	"container/list"
	"sync"
)

// cache is a bounded, mutex-guarded LRU mapping content-address keys
// (SHA-256 hex over the canonical request encoding) to finished result
// documents. Values are the exact marshaled bytes of the first solve, so a
// cache hit replays a byte-identical document — the determinism guarantee
// of the solver stack extends through the service layer.
type cache struct {
	mu      sync.Mutex
	maxEnts int
	ll      *list.List // front = most recently used
	ents    map[string]*list.Element
}

type cacheEntry struct {
	key string
	doc []byte
}

func newCache(maxEnts int) *cache {
	if maxEnts <= 0 {
		maxEnts = 256
	}
	return &cache{
		maxEnts: maxEnts,
		ll:      list.New(),
		ents:    make(map[string]*list.Element, maxEnts),
	}
}

// get returns the cached document for key and marks it most recently used.
// The returned slice is shared; callers must not modify it.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ents[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).doc, true
}

// put stores doc under key, evicting the least recently used entry when
// over capacity. Re-putting an existing key refreshes its recency but
// keeps the original bytes: the first stored document is authoritative
// (deterministic solves make any successor identical anyway).
func (c *cache) put(key string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ents[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, doc: doc})
	c.ents[key] = el
	for c.ll.Len() > c.maxEnts {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.ents, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached documents.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
