package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sagrelay/internal/fault"
)

// armFault installs a fault plan for the test and disarms it at cleanup.
func armFault(t *testing.T, spec string) {
	t.Helper()
	if err := fault.EnableSpec(spec, 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
}

func waitState(t *testing.T, j *Job, want JobState, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if j.status().State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %v, want %v", j.ID, j.status().State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func shutdownNow(t *testing.T, s *Server, within time.Duration) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), within)
	defer cancel()
	return s.Shutdown(ctx)
}

func TestPanicInSolveFailsOnlyThatJob(t *testing.T) {
	// An injected panic inside job execution must fail that one job with a
	// typed panic error while the server keeps accepting and solving.
	s := newTestServer(t, Options{})
	armFault(t, "serve.job=panic:n=1")

	bad, err := s.Submit(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, bad, 30*time.Second)
	st := bad.status()
	if st.State != StateFailed {
		t.Fatalf("panicked job state = %v, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic in serve.job") {
		t.Fatalf("panicked job error = %q, want a serve.job panic", st.Error)
	}

	good, err := s.Submit(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatalf("server stopped accepting after a panic: %v", err)
	}
	waitDone(t, good, 60*time.Second)
	if state := good.status().State; state != StateDone {
		t.Fatalf("job after panic finished %v, want done", state)
	}

	m := s.MetricsSnapshot()
	if m["jobs_panicked"] != 1 {
		t.Errorf("jobs_panicked = %d, want 1", m["jobs_panicked"])
	}
	if m["jobs_failed"] != 1 {
		t.Errorf("jobs_failed = %d, want 1", m["jobs_failed"])
	}
	if m["panics_recovered"] < 1 {
		t.Errorf("panics_recovered = %d, want >= 1", m["panics_recovered"])
	}
}

func TestJournalRestoresFinishedJobsAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	a := newTestServer(t, Options{DataDir: dir})
	job, err := a.Submit(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 60*time.Second)
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("first life: %v", state)
	}
	if err := shutdownNow(t, a, 30*time.Second); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	b := newTestServer(t, Options{DataDir: dir})
	restored, ok := b.Job(job.ID)
	if !ok {
		t.Fatalf("job %s missing after restart", job.ID)
	}
	gotDoc, gotState := restored.resultBytes()
	if gotState != StateDone {
		t.Fatalf("restored state = %v, want done", gotState)
	}
	if !bytes.Equal(gotDoc, doc) {
		t.Fatal("restored result is not byte-identical")
	}
	m := b.MetricsSnapshot()
	if m["journal_restored_jobs"] != 1 || m["journal_replayed_jobs"] != 0 || m["solves"] != 0 {
		t.Fatalf("restart metrics restored=%d replayed=%d solves=%d, want 1/0/0",
			m["journal_restored_jobs"], m["journal_replayed_jobs"], m["solves"])
	}

	// The restored result also refilled the content-addressed cache: the
	// same request is a free cache hit in the second life.
	again, err := b.Submit(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again, 5*time.Second)
	if !again.status().CacheHit {
		t.Error("identical request after restart was not a cache hit")
	}
	if m := b.MetricsSnapshot(); m["solves"] != 0 {
		t.Errorf("solves = %d after cache-hit resubmit, want 0", m["solves"])
	}
}

func TestJournalReplaysCrashedJobFromRawWAL(t *testing.T) {
	// A crash leaves submit+start with no terminal record — plus, here, a
	// torn half-written line, which the tolerant reader must stop at. The
	// next start re-runs the job under its original ID.
	dir := t.TempDir()
	req, err := json.Marshal(SolveRequest{Scenario: tinyScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	key := requestKey(tinyScenario(t), SolveOptions{})
	var wal bytes.Buffer
	for _, r := range []jrec{
		{T: recSubmit, ID: "j-7", Key: key, Req: req},
		{T: recStart, ID: "j-7", Key: key},
	} {
		line, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		wal.Write(line)
		wal.WriteByte('\n')
	}
	wal.WriteString(`{"t":"done","id":"j-7","ke`) // torn tail from kill -9
	if err := os.WriteFile(journalPath(dir), wal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Options{DataDir: dir})
	if m := s.MetricsSnapshot(); m["journal_replayed_jobs"] != 1 {
		t.Fatalf("journal_replayed_jobs = %d, want 1", m["journal_replayed_jobs"])
	}
	job, ok := s.Job("j-7")
	if !ok {
		t.Fatal("crashed job not resurrected under its original ID")
	}
	waitDone(t, job, 60*time.Second)
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("replayed job finished %v (err %q), want done", state, job.status().Error)
	}
	var res ResultDoc
	if err := json.Unmarshal(doc, &res); err != nil || !res.Feasible {
		t.Fatalf("replayed result implausible: %s (%v)", doc, err)
	}
	// New submissions must not collide with the resurrected ID space.
	next, err := s.Submit(SolveRequest{Scenario: bigScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "j-8" {
		t.Errorf("next ID after replaying j-7 is %s, want j-8", next.ID)
	}
}

func TestShutdownInterruptedJobRerunsAfterRestart(t *testing.T) {
	dir := t.TempDir()

	// Slow every simplex pivot block so the GAC job is still mid-solve when
	// the forced shutdown lands; its cancellation journals as an interrupt.
	armFault(t, "lp.pivot=delay:d=5ms")
	a := newTestServer(t, Options{DataDir: dir, Workers: 2})
	job, err := a.Submit(SolveRequest{
		Scenario: tinyScenario(t),
		Options:  SolveOptions{Coverage: "GAC", TimeoutMS: 600_000, NoDegrade: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning, 30*time.Second)
	if err := shutdownNow(t, a, 50*time.Millisecond); err == nil {
		t.Fatal("forced shutdown should report its expired drain budget")
	}
	if st := job.status(); st.State != StateCancelled || !strings.Contains(st.Error, "interrupted by shutdown") {
		t.Fatalf("job after forced shutdown: %v %q, want cancelled as interrupted", st.State, st.Error)
	}
	fault.Disable()

	b := newTestServer(t, Options{DataDir: dir})
	if m := b.MetricsSnapshot(); m["journal_replayed_jobs"] != 1 {
		t.Fatalf("journal_replayed_jobs = %d, want 1", m["journal_replayed_jobs"])
	}
	reborn, ok := b.Job(job.ID)
	if !ok {
		t.Fatalf("interrupted job %s not replayed", job.ID)
	}
	waitDone(t, reborn, 60*time.Second)
	if state := reborn.status().State; state != StateDone {
		t.Fatalf("replayed job finished %v (err %q), want done", state, reborn.status().Error)
	}
}

func TestClientCancelStaysDeadAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	armFault(t, "lp.pivot=delay:d=5ms")
	a := newTestServer(t, Options{DataDir: dir, Workers: 2})
	job, err := a.Submit(SolveRequest{
		Scenario: tinyScenario(t),
		Options:  SolveOptions{Coverage: "GAC", TimeoutMS: 600_000, NoDegrade: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, StateRunning, 30*time.Second)
	if _, ok := a.Cancel(job.ID); !ok {
		t.Fatal("Cancel: no such job")
	}
	waitDone(t, job, 30*time.Second)
	if state := job.status().State; state != StateCancelled {
		t.Fatalf("cancelled job finished %v", state)
	}
	fault.Disable()
	if err := shutdownNow(t, a, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Options{DataDir: dir})
	if m := b.MetricsSnapshot(); m["journal_replayed_jobs"] != 0 {
		t.Fatalf("deliberately cancelled job was replayed (%d)", m["journal_replayed_jobs"])
	}
	dead, ok := b.Job(job.ID)
	if !ok {
		t.Fatal("cancelled job should still be visible after restart")
	}
	if state := dead.status().State; state != StateCancelled {
		t.Fatalf("restored state = %v, want cancelled", state)
	}
}

func TestZoneTimeoutTruncationNeverCached(t *testing.T) {
	// A per-zone wall-clock budget that expires mid-search yields a
	// load-dependent result (truncated incumbent, or heuristic fallback when
	// no incumbent exists). Such a result must reach the client marked
	// degraded but never the content-addressed cache or results directory —
	// a transient timeout under machine load must not be replayed as the
	// canonical answer for that content address.
	dir := t.TempDir()
	armFault(t, "milp.node=delay:d=20ms") // outlast the 1ms zone budget before the first node
	s := newTestServer(t, Options{DataDir: dir})
	req := SolveRequest{
		Scenario: tinyScenario(t),
		Options:  SolveOptions{Coverage: "GAC", ZoneTimeoutMS: 1, TimeoutMS: 600_000},
	}
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 60*time.Second)
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("job finished %v (err %q), want done (degraded)", state, job.status().Error)
	}
	var rd ResultDoc
	if err := json.Unmarshal(doc, &rd); err != nil {
		t.Fatal(err)
	}
	if !rd.Degraded {
		t.Fatalf("zone-timeout result not marked degraded: %s", doc)
	}
	if entries, _ := os.ReadDir(filepath.Join(dir, "results")); len(entries) != 0 {
		t.Fatalf("timing-dependent result persisted to results/: %d files", len(entries))
	}
	if m := s.MetricsSnapshot(); m["cache_entries"] != 0 {
		t.Fatalf("timing-dependent result entered the cache (%d entries)", m["cache_entries"])
	}

	// A repeat of the same request must be a cache miss, not a replay of
	// the truncated answer.
	again, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again, 60*time.Second)
	if m := s.MetricsSnapshot(); m["cache_hits"] != 0 {
		t.Fatalf("truncated result served from cache (%d hits)", m["cache_hits"])
	}
}

func TestDegradedResultSurvivesRestartInlineOnly(t *testing.T) {
	// A degraded result is journaled inline (never content-addressed): the
	// restart restores the job's document but leaves the cache empty.
	dir := t.TempDir()
	a := newTestServer(t, Options{DataDir: dir})
	job, err := a.Submit(SolveRequest{
		Scenario: bigScenario(t),
		Options: SolveOptions{
			Coverage: "IAC", MaxZoneSS: 64, MaxNodes: 1 << 30,
			ZoneTimeoutMS: 600_000, TimeoutMS: 50,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job, 30*time.Second)
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("degraded job finished %v (err %q)", state, job.status().Error)
	}
	if entries, _ := os.ReadDir(filepath.Join(dir, "results")); len(entries) != 0 {
		t.Fatalf("degraded result leaked into results/: %d files", len(entries))
	}
	if err := shutdownNow(t, a, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	b := newTestServer(t, Options{DataDir: dir})
	restored, ok := b.Job(job.ID)
	if !ok {
		t.Fatal("degraded job missing after restart")
	}
	gotDoc, gotState := restored.resultBytes()
	if gotState != StateDone || !bytes.Equal(gotDoc, doc) {
		t.Fatalf("restored degraded job: state %v, identical %v", gotState, bytes.Equal(gotDoc, doc))
	}
	if m := b.MetricsSnapshot(); m["cache_entries"] != 0 {
		t.Errorf("cache_entries = %d after restoring a degraded job, want 0", m["cache_entries"])
	}
}
