package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"sagrelay/internal/incr"
	"sagrelay/internal/scenario"
)

// ErrNoBase reports a resolve whose base scenario cannot be located: the
// referenced job does not exist (or predates scenario retention), or no
// retained scenario carries the given hash. The HTTP layer maps it to 404.
var ErrNoBase = errors.New("serve: base scenario not found")

// ResolveRequest is the body of POST /v1/resolve: a delta against a base
// scenario the server has already seen, identified either by the job that
// solved it or by its canonical scenario hash. The mutated scenario is
// solved through the zone-level stores, so unchanged zones splice from
// cache and the result is byte-identical to solving the mutated scenario
// cold.
type ResolveRequest struct {
	// BaseJob names a previous job whose scenario is the delta's base.
	BaseJob string `json:"base_job,omitempty"`
	// BaseScenarioHash addresses the base scenario directly (the
	// scenario_hash of any previous job); ignored when BaseJob is set.
	BaseScenarioHash string `json:"base_scenario_hash,omitempty"`
	// Delta is the typed mutation list applied to the base scenario.
	Delta *scenario.Delta `json:"delta"`
	// Options are the solve options for the mutated scenario. They need not
	// match the base job's options, but zone reuse is maximal when they do.
	Options SolveOptions `json:"options"`
	// Fast opts into warm-start seeding of dirty-zone solves from the base
	// scenario's cached incumbents and simplex bases. Fast results may land
	// on a different (equally good) optimum, so they forfeit the
	// byte-identity guarantee and are never cached.
	Fast bool `json:"fast,omitempty"`
}

// incrMeta rides on a resolve's Job from Resolve to runJob: the dirty-set
// plan (for the incr span and fast-mode seeds) and the fast flag that keeps
// the result out of every cache. Immutable after the job is published.
type incrMeta struct {
	baseHash string
	plan     *incr.Plan
	fast     bool
}

// Resolve applies a delta to a retained base scenario and submits the
// mutated scenario as a regular job. The journal sees a plain solve request
// (replay needs no base), the whole-result cache is consulted as usual (a
// no-op delta is a pure cache hit), and the zone stores make the solve
// incremental. Errors wrap ErrNoBase for a missing base, scenario.ErrBadDelta
// / scenario.ErrUnknownEntity for a malformed or dangling delta.
func (s *Server) Resolve(req ResolveRequest) (*Job, error) {
	return s.ResolveFrom("", req)
}

// ResolveFrom is Resolve with a client identity for per-client rate
// limiting; an empty client is never limited.
func (s *Server) ResolveFrom(client string, req ResolveRequest) (*Job, error) {
	if req.Delta == nil {
		return nil, fmt.Errorf("serve: %w: resolve request has no delta", scenario.ErrBadDelta)
	}
	hash := req.BaseScenarioHash
	if req.BaseJob != "" {
		j, ok := s.Job(req.BaseJob)
		if !ok {
			return nil, fmt.Errorf("%w: no such job %q", ErrNoBase, req.BaseJob)
		}
		hash = j.ScenarioHash
		if hash == "" {
			return nil, fmt.Errorf("%w: job %q has no retained scenario", ErrNoBase, req.BaseJob)
		}
	}
	if hash == "" {
		return nil, fmt.Errorf("serve: %w: resolve request names neither base_job nor base_scenario_hash", scenario.ErrBadDelta)
	}
	base, ok := s.scenarios.get(hash)
	if !ok {
		return nil, fmt.Errorf("%w: no retained scenario with hash %s", ErrNoBase, hash)
	}

	mutated, err := req.Delta.Apply(base)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	opts := req.Options.normalized()
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	plan, err := s.incrStores.Plan(base, mutated, incr.PlanOptions{
		Coverage: cfg.Coverage,
		ILP:      cfg.ILP,
		Fast:     req.Fast,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.metrics.Resolves.Add(1)
	return s.submit(client, SolveRequest{Scenario: mutated, Options: opts}, &incrMeta{
		baseHash: hash,
		plan:     plan,
		fast:     req.Fast,
	})
}

// scenarioStore is a bounded LRU of scenarios by canonical hash, retained at
// submit time so later deltas can name a base by job ID or hash without
// re-uploading it. Stored scenarios are shared and must not be mutated
// (Delta.Apply clones before changing anything).
type scenarioStore struct {
	mu   sync.Mutex
	max  int
	ll   *list.List // front = most recently used
	ents map[string]*list.Element
}

type scenarioEntry struct {
	hash string
	sc   *scenario.Scenario
}

func newScenarioStore(max int) *scenarioStore {
	if max <= 0 {
		max = 256
	}
	return &scenarioStore{
		max:  max,
		ll:   list.New(),
		ents: make(map[string]*list.Element, max),
	}
}

func (c *scenarioStore) get(hash string) (*scenario.Scenario, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ents[hash]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*scenarioEntry).sc, true
}

func (c *scenarioStore) put(hash string, sc *scenario.Scenario) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ents[hash]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.ents[hash] = c.ll.PushFront(&scenarioEntry{hash: hash, sc: sc})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.ents, oldest.Value.(*scenarioEntry).hash)
	}
}

func (c *scenarioStore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
