package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"sagrelay/internal/scenario"
)

// fetchMetricsJSON decodes /metrics preserving key order.
func fetchMetricsJSON(t *testing.T, base string) (map[string]json.Number, []string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]json.Number)
	var order []string
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.UseNumber()
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		t.Fatalf("metrics document is not a JSON object: %v %v", tok, err)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		key := keyTok.(string)
		order = append(order, key)
		var v any
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
		if n, ok := v.(json.Number); ok {
			vals[key] = n
		} else if s, ok := v.(string); ok && key == "schema" {
			vals[key] = json.Number(strconv.Quote(s)) // carry the schema through
		}
	}
	return vals, order
}

// fetchMetricsProm returns the sample value of every un-labelled Prometheus
// series in /metrics?format=prometheus.
func fetchMetricsProm(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET /metrics?format=prometheus: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want exactly %q", ct, "text/plain; version=0.0.4; charset=utf-8")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}

// TestMetricsExpositionsAgree asserts the JSON document and the Prometheus
// exposition report identical values for every counter: both read the same
// atomics, so any disagreement is a wiring bug.
func TestMetricsExpositionsAgree(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive some real traffic so the counters are non-trivial.
	job := submitAndWait(t, s, tinyScenario(t), SolveOptions{})
	if job.status().State != StateDone {
		t.Fatalf("solve job ended %v", job.status().State)
	}
	job2 := submitAndWait(t, s, tinyScenario(t), SolveOptions{}) // cache hit
	if job2.status().State != StateDone {
		t.Fatalf("cache-hit job ended %v", job2.status().State)
	}

	jsonVals, order := fetchMetricsJSON(t, ts.URL)
	promVals := fetchMetricsProm(t, ts.URL)

	if len(order) == 0 || order[0] != "schema" {
		t.Fatalf("metrics key order = %v, want schema first", order)
	}
	if got := jsonVals["schema"]; got != json.Number(strconv.Quote(metricsSchema)) {
		t.Errorf("schema = %s, want %q", got, metricsSchema)
	}

	checked := 0
	for key, jv := range jsonVals {
		if key == "schema" {
			continue
		}
		want, err := jv.Float64()
		if err != nil {
			t.Fatalf("non-numeric metric %q = %s", key, jv)
		}
		got, ok := promVals["sag_"+key]
		if !ok {
			t.Errorf("JSON key %q has no sag_%s series in the Prometheus exposition", key, key)
			continue
		}
		if got != want {
			t.Errorf("metric %q: JSON %v, Prometheus %v", key, want, got)
		}
		checked++
	}
	if checked < 18 {
		t.Fatalf("only %d counters compared; the JSON document shrank", checked)
	}
	if jsonVals["jobs_completed"] == "0" {
		t.Error("jobs_completed is zero after two completed jobs")
	}
	// sagmetrics/6 introspection keys must be present in both expositions.
	for _, key := range []string{"job_queue_depth", "flight_records", "progress_streams_total"} {
		if _, ok := jsonVals[key]; !ok {
			t.Errorf("JSON document is missing introspection key %q", key)
		}
		if _, ok := promVals["sag_"+key]; !ok {
			t.Errorf("Prometheus exposition is missing sag_%s", key)
		}
	}
	// Two finished jobs (one solved, one cache hit) leave flight records.
	if v, _ := jsonVals["flight_records"].Float64(); v < 2 {
		t.Errorf("flight_records = %v after two finished jobs, want >= 2", v)
	}
}

// TestMetricsPrometheusHistograms asserts the exposition carries the solver
// and service histograms, with the grammar ci.sh checks.
func TestMetricsPrometheusHistograms(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	job := submitAndWait(t, s, tinyScenario(t), SolveOptions{})
	if job.status().State != StateDone {
		t.Fatalf("solve job ended %v", job.status().State)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// One +Inf bucket line per histogram: count them to know how many
	// histograms the exposition carries.
	infBuckets := regexp.MustCompile(`(?m)^[a-z_]+_bucket\{le="\+Inf"\} \d+$`).FindAllString(text, -1)
	if len(infBuckets) < 5 {
		t.Fatalf("exposition has %d histograms, want >= 5:\n%v", len(infBuckets), infBuckets)
	}
	for _, name := range []string{
		"sag_job_latency_seconds", "sag_queue_wait_seconds",
		"sag_zone_solve_seconds", "sag_bb_nodes_per_solve", "sag_lp_pivots_per_solve",
	} {
		if !strings.Contains(text, "# TYPE "+name+" histogram") {
			t.Errorf("exposition lacks histogram %s", name)
		}
	}
	// Job latency must have recorded the solve above.
	if m := regexp.MustCompile(`(?m)^sag_job_latency_seconds_count (\d+)$`).FindStringSubmatch(text); m == nil || m[1] == "0" {
		t.Error("sag_job_latency_seconds_count missing or zero after a solve")
	}

	// promtool-style line grammar over the whole exposition.
	lineRE := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf|)$`)
	for _, line := range strings.Split(text, "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("exposition line fails grammar: %q", line)
		}
	}
}

func TestMetricsUnknownFormatRejected(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=yaml -> %d, want 400", resp.StatusCode)
	}
}

// TestResultDocCarriesTrace asserts the served result document embeds the
// solve's span tree: a job root over the pipeline stages, each with a
// non-zero duration — and that a cache hit replays the same trace bytes.
func TestResultDocCarriesTrace(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})

	job := submitAndWait(t, s, tinyScenario(t), SolveOptions{})
	doc, state := job.resultBytes()
	if state != StateDone {
		t.Fatalf("job ended %v", state)
	}
	var res ResultDoc
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("result document has no trace")
	}
	if res.Trace.Name != "job" {
		t.Fatalf("trace root = %q, want job", res.Trace.Name)
	}
	if res.Trace.Attrs["job_id"] != job.ID {
		t.Errorf("trace job_id = %q, want %q", res.Trace.Attrs["job_id"], job.ID)
	}
	stages := []string{"solve", "coverage", "coverage_power", "connectivity", "connectivity_power"}
	for _, stage := range stages {
		sp := res.Trace.Find(stage)
		if sp == nil {
			t.Errorf("trace lacks a %q span", stage)
			continue
		}
		if sp.DurNS <= 0 {
			t.Errorf("stage %q has non-positive duration %d", stage, sp.DurNS)
		}
	}
	if res.Trace.Count("zone") == 0 {
		t.Error("trace has no zone spans")
	}

	// Cache hit: byte-identical replay, original trace included.
	job2 := submitAndWait(t, s, tinyScenario(t), SolveOptions{})
	doc2, state2 := job2.resultBytes()
	if state2 != StateDone {
		t.Fatalf("cache-hit job ended %v", state2)
	}
	if string(doc) != string(doc2) {
		t.Error("cache hit served different bytes than the original solve")
	}
}

// submitAndWait submits one request and blocks until its job settles.
func submitAndWait(t *testing.T, s *Server, sc *scenario.Scenario, opts SolveOptions) *Job {
	t.Helper()
	job, err := s.Submit(SolveRequest{Scenario: sc, Options: opts})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, job, 60*time.Second)
	return job
}
