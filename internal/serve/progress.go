package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"sagrelay/internal/milp"
)

// progressSchema versions the /v1/jobs/{id}/progress document.
const progressSchema = "sagprogress/1"

// curveCap bounds the retained progress curve per job: when the curve
// fills, every other point is dropped (halving decimation), so long solves
// keep a coarser but full-history curve at bounded memory.
const curveCap = 512

// curveCoalesce is the minimum spacing between retained curve points;
// incumbent and final events are always retained.
const curveCoalesce = 20 * time.Millisecond

// zoneRow is one zone's convergence state inside a progress document.
type zoneRow struct {
	Zone        int     `json:"zone"`
	Subscribers int     `json:"subscribers"`
	Phase       string  `json:"phase"` // pending | solving | done | reused
	Dirty       bool    `json:"dirty,omitempty"`
	Nodes       int     `json:"nodes"`
	Pivots      int     `json:"pivots"`
	WarmSolves  int     `json:"warm_solves"`
	ColdSolves  int     `json:"cold_solves"`
	Incumbent   float64 `json:"incumbent,omitempty"`
	Bound       float64 `json:"bound,omitempty"`
	Gap         float64 `json:"gap"`
	HasGap      bool    `json:"has_gap"`
	Status      string  `json:"status,omitempty"`
}

// progressPoint is one sample of the job-wide progress curve, retained for
// the flight record so a postmortem can see the convergence shape.
type progressPoint struct {
	ElapsedMS float64 `json:"elapsed_ms"`
	Nodes     int     `json:"nodes"`
	Pivots    int     `json:"pivots"`
	ZonesDone int     `json:"zones_done"`
	WorstGap  float64 `json:"worst_gap"`
}

// progressDoc is the JSON shape of GET /v1/jobs/{id}/progress and of each
// NDJSON line of the ?stream=1 live tail.
type progressDoc struct {
	Schema    string   `json:"schema"`
	JobID     string   `json:"job_id"`
	State     JobState `json:"state"`
	Seq       uint64   `json:"seq"`
	ElapsedMS int64    `json:"elapsed_ms"`
	Nodes     int      `json:"nodes"`
	Pivots    int      `json:"pivots"`
	Warm      int      `json:"warm_solves"`
	Cold      int      `json:"cold_solves"`
	ZonesSeen int      `json:"zones_seen"`
	ZonesDone int      `json:"zones_done"`
	Reused    int      `json:"zones_reused"`
	// WorstGap is the largest current gap across zones that have an
	// incumbent; WorstZone its index (-1 when no zone reported a gap yet).
	WorstGap  float64   `json:"worst_gap"`
	WorstZone int       `json:"worst_zone"`
	Final     bool      `json:"final"`
	Zones     []zoneRow `json:"zones"`
}

// jobProgress accumulates milp progress events into per-zone rows. One
// instance per solver-bound job; cache hits and journal-restored jobs have
// none (their progress endpoint serves an empty terminal snapshot).
// observe is called concurrently from every zone worker of the solve.
type jobProgress struct {
	mu      sync.Mutex
	started time.Time
	zones   map[int]*zoneRow
	seq     uint64
	// changed is closed and replaced whenever the state advances; stream
	// watchers re-fetch it each round (closed-channel broadcast).
	changed   chan struct{}
	curve     []progressPoint
	lastPoint time.Time
}

func newJobProgress() *jobProgress {
	return &jobProgress{
		zones:   make(map[int]*zoneRow),
		changed: make(chan struct{}),
	}
}

// seed pre-creates zone rows (resolve jobs: the planner already knows the
// partition), so watchers see the full zone set before any solver event.
func (p *jobProgress) seed(sizes []int, dirty []bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for zi, n := range sizes {
		row := &zoneRow{Zone: zi, Subscribers: n, Phase: "pending"}
		if zi < len(dirty) {
			row.Dirty = dirty[zi]
		}
		p.zones[zi] = row
	}
}

// markStart stamps the solve start time (queue wait excluded from the
// curve's elapsed axis).
func (p *jobProgress) markStart() {
	p.mu.Lock()
	p.started = time.Now()
	p.mu.Unlock()
}

// observe folds one solver event in. It is the milp.ProgressFunc installed
// on the job's context.
func (p *jobProgress) observe(ev milp.Progress) {
	p.mu.Lock()
	defer p.mu.Unlock()
	row := p.zones[ev.Zone]
	if row == nil {
		row = &zoneRow{Zone: ev.Zone, Phase: "solving"}
		p.zones[ev.Zone] = row
	}
	row.Subscribers = ev.Subscribers
	if ev.Kind == milp.KindZoneReused {
		row.Phase = "reused"
	} else {
		row.Nodes = ev.Nodes
		row.Pivots = ev.Pivots
		row.WarmSolves = ev.WarmSolves
		row.ColdSolves = ev.ColdSolves
		if ev.HasIncumbent {
			row.Incumbent = ev.Incumbent
			row.Bound = ev.Bound
			row.Gap = ev.Gap
			row.HasGap = true
		}
		if ev.Final {
			row.Phase = "done"
			row.Status = ev.Status.String()
		} else {
			row.Phase = "solving"
		}
	}
	p.seq++
	close(p.changed)
	p.changed = make(chan struct{})
	p.notePointLocked(ev.Final || ev.Kind == milp.KindIncumbent)
}

// notePointLocked appends a curve point, coalescing bursts and halving the
// curve when it outgrows curveCap.
func (p *jobProgress) notePointLocked(force bool) {
	now := time.Now()
	if !force && now.Sub(p.lastPoint) < curveCoalesce {
		return
	}
	p.lastPoint = now
	var pt progressPoint
	if !p.started.IsZero() {
		pt.ElapsedMS = float64(now.Sub(p.started).Microseconds()) / 1000
	}
	pt.WorstGap = -1
	for _, row := range p.zones {
		pt.Nodes += row.Nodes
		pt.Pivots += row.Pivots
		if row.Phase == "done" || row.Phase == "reused" {
			pt.ZonesDone++
		}
		if row.HasGap && row.Phase == "solving" && row.Gap > pt.WorstGap {
			pt.WorstGap = row.Gap
		}
	}
	p.curve = append(p.curve, pt)
	if len(p.curve) > curveCap {
		half := p.curve[:0]
		for i := 0; i < len(p.curve); i += 2 {
			half = append(half, p.curve[i])
		}
		p.curve = half
	}
}

// watch returns the current change channel; it is closed on the next state
// advance.
func (p *jobProgress) watch() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.changed
}

// curvePoints returns a copy of the retained progress curve.
func (p *jobProgress) curvePoints() []progressPoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]progressPoint(nil), p.curve...)
}

// snapshot renders the current progress document for job.
func (p *jobProgress) snapshot(job *Job) progressDoc {
	st := job.status()
	doc := progressDoc{
		Schema:    progressSchema,
		JobID:     job.ID,
		State:     st.State,
		ElapsedMS: st.ElapsedMS,
		WorstZone: -1,
		Final:     st.State == StateDone || st.State == StateFailed || st.State == StateCancelled,
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	doc.Seq = p.seq
	doc.Zones = make([]zoneRow, 0, len(p.zones))
	for _, row := range p.zones {
		doc.Zones = append(doc.Zones, *row)
	}
	sort.Slice(doc.Zones, func(i, j int) bool { return doc.Zones[i].Zone < doc.Zones[j].Zone })
	for _, row := range doc.Zones {
		doc.Nodes += row.Nodes
		doc.Pivots += row.Pivots
		doc.Warm += row.WarmSolves
		doc.Cold += row.ColdSolves
		doc.ZonesSeen++
		switch row.Phase {
		case "done":
			doc.ZonesDone++
		case "reused":
			doc.ZonesDone++
			doc.Reused++
		}
		if row.HasGap && row.Gap > doc.WorstGap && row.Phase == "solving" {
			doc.WorstGap = row.Gap
			doc.WorstZone = row.Zone
		}
	}
	return doc
}

// emptyProgressDoc is the snapshot for jobs with no progress state (cache
// hits, journal-restored jobs): identity and terminal state only.
func emptyProgressDoc(job *Job) progressDoc {
	st := job.status()
	return progressDoc{
		Schema:    progressSchema,
		JobID:     job.ID,
		State:     st.State,
		ElapsedMS: st.ElapsedMS,
		WorstZone: -1,
		Final:     st.State == StateDone || st.State == StateFailed || st.State == StateCancelled,
		Zones:     []zoneRow{},
	}
}

// handleProgress serves GET /v1/jobs/{id}/progress: a JSON snapshot of the
// job's live convergence state, or — with ?stream=1 — an NDJSON tail that
// emits a new snapshot whenever the state advances and closes with a final
// snapshot when the job reaches a terminal state.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such job")
		return
	}
	p := job.progressState()
	if r.URL.Query().Get("stream") != "1" {
		if p == nil {
			writeJSON(w, http.StatusOK, emptyProgressDoc(job))
			return
		}
		writeJSON(w, http.StatusOK, p.snapshot(job))
		return
	}

	s.metrics.ProgressStreams.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	write := func(doc progressDoc) bool {
		if err := enc.Encode(doc); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if p == nil {
		// No live progress to tail; emit the terminal (or empty) snapshot
		// once the job settles.
		select {
		case <-job.done:
		case <-r.Context().Done():
			return
		}
		write(emptyProgressDoc(job))
		return
	}

	var lastSeq uint64
	first := true
	for {
		ch := p.watch()
		doc := p.snapshot(job)
		if doc.Final {
			// Terminal: one closing line carrying the settled state.
			write(doc)
			return
		}
		if first || doc.Seq != lastSeq {
			if !write(doc) {
				return
			}
			lastSeq, first = doc.Seq, false
		}
		select {
		case <-ch:
		case <-job.done:
		case <-r.Context().Done():
			return
		}
	}
}
