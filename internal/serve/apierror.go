package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/scenario"
)

// Error codes of the unified API error envelope. Every non-2xx JSON answer
// from the service carries exactly one of these in error.code, so clients
// branch on a stable machine-readable token instead of parsing messages or
// mapping status codes themselves (two codes can share a status: shed and
// shutting_down are both 503). The README's error-code table documents each.
const (
	CodeBadRequest   = "bad_request"    // 400: malformed JSON, invalid scenario or options
	CodeBadDelta     = "bad_delta"      // 400: malformed delta or unknown entity in /v1/resolve
	CodeBatchLimit   = "batch_limit"    // 400: batch expands past the server's item bound
	CodeNotFound     = "not_found"      // 404: unknown job, batch, or resolve base
	CodeRateLimited  = "rate_limited"   // 429: per-client token bucket exhausted
	CodeQueueFull    = "queue_full"     // 429: job queue backpressure
	CodeShed         = "shed"           // 503: deadline-aware load shedding
	CodeShuttingDown = "shutting_down"  // 503: graceful shutdown in progress
	CodeUnprocessable = "unprocessable" // 422: job finished without a result document

	// Batch stream-only codes: these appear inline on per-item NDJSON lines
	// and batch status entries, never as an HTTP status.
	CodeSolveFailed = "solve_failed" // batch item's solve ended in an error
	CodeCancelled   = "cancelled"    // batch item cancelled (deadline, client, shutdown)
)

// APIError is the typed error body: the envelope every HTTP error response
// nests under its "error" key, and the shape batch NDJSON streams embed
// inline for per-item failures.
type APIError struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable error text.
	Message string `json:"message"`
	// RetryAfterS suggests, in seconds, when a retry could succeed; only
	// overload rejections (shed, rate_limited, queue_full, shutting_down)
	// set it, mirroring the Retry-After header at sub-second precision.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
	// Details carries code-specific structured context: queue_depth and
	// queue_capacity for overload codes, field for validation errors, item
	// for batch expansion errors.
	Details map[string]any `json:"details,omitempty"`
}

// errorEnvelope is the JSON document of every HTTP error response:
// {"error":{"code","message","retry_after_s","details"}} plus the pre-v5
// top-level fields kept as deprecated aliases for one release (the old
// string-valued "error" key is gone — its text now lives at error.message).
type errorEnvelope struct {
	Error APIError `json:"error"`

	// Deprecated: reason duplicated error.code for overload rejections.
	Reason string `json:"reason,omitempty"`
	// Deprecated: field duplicated error.details.field for validation errors.
	Field string `json:"field,omitempty"`
	// Deprecated: queue state now lives under error.details.
	QueueDepth    int `json:"queue_depth,omitempty"`
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// Deprecated: retry_after_ms duplicated error.retry_after_s.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// apiError classifies err into its envelope body and HTTP status. It is the
// single mapping every handler (and the batch stream) goes through, so the
// same error can never wear two codes on two endpoints.
func apiError(err error) (int, APIError) {
	var rl *admit.RateLimitError
	var shed *admit.ShedError
	var ve *scenario.ValueError
	switch {
	case errors.As(err, &rl):
		return http.StatusTooManyRequests, APIError{
			Code: CodeRateLimited, Message: err.Error(),
			RetryAfterS: rl.RetryAfter.Seconds(),
		}
	case errors.As(err, &shed):
		return http.StatusServiceUnavailable, APIError{
			Code: CodeShed, Message: err.Error(),
			RetryAfterS: shed.RetryAfter.Seconds(),
		}
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, APIError{
			Code: CodeQueueFull, Message: err.Error(), RetryAfterS: 1,
		}
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, APIError{
			Code: CodeShuttingDown, Message: err.Error(), RetryAfterS: 1,
		}
	case errors.Is(err, ErrNoBase):
		return http.StatusNotFound, APIError{Code: CodeNotFound, Message: err.Error()}
	case errors.Is(err, ErrBatchTooLarge):
		return http.StatusBadRequest, APIError{Code: CodeBatchLimit, Message: err.Error()}
	case errors.Is(err, scenario.ErrBadDelta), errors.Is(err, scenario.ErrUnknownEntity):
		return http.StatusBadRequest, APIError{Code: CodeBadDelta, Message: err.Error()}
	case errors.As(err, &ve):
		return http.StatusBadRequest, APIError{
			Code: CodeBadRequest, Message: err.Error(),
			Details: map[string]any{"field": ve.Field},
		}
	default:
		return http.StatusBadRequest, APIError{Code: CodeBadRequest, Message: err.Error()}
	}
}

// isOverloadCode reports whether code is an overload rejection that carries
// queue state and a Retry-After header.
func isOverloadCode(code string) bool {
	switch code {
	case CodeRateLimited, CodeQueueFull, CodeShed, CodeShuttingDown:
		return true
	}
	return false
}

// writeAPIError writes the unified envelope for err. Overload codes gain
// queue state in details, the deprecated top-level aliases, and a
// Retry-After header (whole seconds, rounded up, at least 1 — the header
// does not admit finer precision).
func (s *Server) writeAPIError(w http.ResponseWriter, err error) {
	status, body := apiError(err)
	s.writeAPIErrorBody(w, status, body)
}

// writeAPIErrorBody finishes an already-classified error: alias fields and
// the Retry-After header derive from the body, never from the caller.
func (s *Server) writeAPIErrorBody(w http.ResponseWriter, status int, body APIError) {
	env := errorEnvelope{Error: body}
	if f, ok := body.Details["field"].(string); ok {
		env.Field = f
	}
	if isOverloadCode(body.Code) {
		depth, capacity := s.pool.Len(), s.pool.Cap()
		if body.Details == nil {
			body.Details = map[string]any{}
		}
		body.Details["queue_depth"] = depth
		body.Details["queue_capacity"] = capacity
		env.Error = body
		env.Reason = body.Code
		env.QueueDepth = depth
		env.QueueCapacity = capacity
		retry := time.Duration(body.RetryAfterS * float64(time.Second))
		if retry <= 0 {
			retry = time.Second
		}
		env.RetryAfterMS = retry.Milliseconds()
		secs := int64((retry + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, env)
}
