package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/fault"
	"sagrelay/internal/scenario"
)

// distinctScenario generates a unique tiny instance per seed so repeated
// admission-test submissions never collapse into cache hits (cache hits
// bypass shedding by design).
func distinctScenario(t *testing.T, seed int64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

func TestRateLimitPerClient(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, Admit: admit.Options{Rate: 0.001, Burst: 2}})

	// Two submissions fit the burst; the third bounces with the typed error.
	var jobs []*Job
	for i := 0; i < 2; i++ {
		job, err := s.SubmitFrom("key:alice", SolveRequest{Scenario: distinctScenario(t, int64(200+i))})
		if err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	_, err := s.SubmitFrom("key:alice", SolveRequest{Scenario: distinctScenario(t, 299)})
	var rl *admit.RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("third submit: err = %v, want *admit.RateLimitError", err)
	}
	if rl.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", rl.RetryAfter)
	}

	// A different client is an independent bucket.
	if _, err := s.SubmitFrom("key:bob", SolveRequest{Scenario: distinctScenario(t, 298)}); err != nil {
		t.Fatalf("other client limited by alice's bucket: %v", err)
	}
	// The anonymous/internal client (empty key) is never limited.
	if _, err := s.Submit(SolveRequest{Scenario: distinctScenario(t, 297)}); err != nil {
		t.Fatalf("empty client rate limited: %v", err)
	}

	if got := s.MetricsSnapshot()["rate_limited_total"]; got != 1 {
		t.Errorf("rate_limited_total = %d, want 1", got)
	}
	for _, j := range jobs {
		waitDone(t, j, 60*time.Second)
	}
}

func TestRateLimitHTTPRetryAfterAndBody(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, Admit: admit.Options{Rate: 0.001, Burst: 1}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(seed int64) *http.Response {
		body, err := json.Marshal(SolveRequest{Scenario: distinctScenario(t, seed)})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", ts.URL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", "tenant-7")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := post(300)
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", first.StatusCode)
	}

	second := post(301)
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST = %d, want 429", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response has no Retry-After header")
	}
	var doc errorEnvelope
	if err := json.NewDecoder(second.Body).Decode(&doc); err != nil {
		t.Fatalf("429 body not an error envelope: %v", err)
	}
	if doc.Error.Code != CodeRateLimited {
		t.Errorf("error.code = %q, want rate_limited", doc.Error.Code)
	}
	if doc.Error.RetryAfterS <= 0 {
		t.Errorf("error.retry_after_s = %v, want > 0", doc.Error.RetryAfterS)
	}
	// The pre-v5 top-level fields ride along as deprecated aliases.
	if doc.Reason != "rate_limited" {
		t.Errorf("reason alias = %q, want rate_limited", doc.Reason)
	}
	if doc.QueueCapacity <= 0 {
		t.Errorf("queue_capacity alias = %d, want > 0", doc.QueueCapacity)
	}
	if doc.RetryAfterMS <= 0 {
		t.Errorf("retry_after_ms alias = %d, want > 0", doc.RetryAfterMS)
	}
}

func TestForcedShedIsTypedCountedAndA503(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	armFault(t, "admit.shed=error:n=1")

	_, err := s.Submit(SolveRequest{Scenario: distinctScenario(t, 310)})
	var shed *admit.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *admit.ShedError", err)
	}
	if !strings.Contains(shed.Reason, "fault injection") {
		t.Errorf("Reason = %q, want a fault-injection marker", shed.Reason)
	}
	if got := s.MetricsSnapshot()["jobs_shed_total"]; got != 1 {
		t.Errorf("jobs_shed_total = %d, want 1", got)
	}

	// The HTTP mapping: a shed is a 503 with Retry-After and the overload body.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	armFault(t, "admit.shed=error:n=1")
	body, _ := json.Marshal(SolveRequest{Scenario: distinctScenario(t, 311)})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed POST = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 shed response has no Retry-After header")
	}
	var doc errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("503 body not an error envelope: %v", err)
	}
	if doc.Error.Code != CodeShed {
		t.Errorf("error.code = %q, want shed", doc.Error.Code)
	}
	if doc.Reason != "shed" {
		t.Errorf("reason alias = %q, want shed", doc.Reason)
	}
}

func TestOrganicShedOnImpossibleDeadline(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})

	// Warm the cost model past its minimum sample count with real exact
	// solves — GAC branch-and-bound always costs multiple milliseconds on
	// this size, so the learned mean safely dwarfs the 1ms deadline below.
	for i := 0; i < 3; i++ {
		job, err := s.Submit(SolveRequest{
			Scenario: distinctScenario(t, int64(320 + i)),
			Options:  SolveOptions{Coverage: "GAC"},
		})
		if err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
		waitDone(t, job, 60*time.Second)
	}

	// A 1ms deadline cannot cover any real solve of this size: shed at the
	// door, with the estimates that justified the decision attached.
	_, err := s.Submit(SolveRequest{
		Scenario: distinctScenario(t, 330),
		Options:  SolveOptions{Coverage: "GAC", TimeoutMS: 1},
	})
	var shed *admit.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want *admit.ShedError", err)
	}
	if shed.EstSolve <= 0 {
		t.Errorf("EstSolve = %v, want > 0", shed.EstSolve)
	}
	if shed.Deadline != time.Millisecond {
		t.Errorf("Deadline = %v, want 1ms", shed.Deadline)
	}
	if shed.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
	// A generous deadline on the same scenario sails through.
	job, err := s.Submit(SolveRequest{Scenario: distinctScenario(t, 330)})
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	waitDone(t, job, 60*time.Second)
}

// TestBreakerLifecycleEndToEnd drives the degrade circuit breaker through
// its full state machine at the server level: repeated degraded solves trip
// it open, an open breaker forces heuristic-first execution, the cooldown
// admits exactly one half-open probe, and a clean probe closes it again.
// Every transition is observed through the public metrics surface.
func TestBreakerLifecycleEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, Admit: admit.Options{
		BreakerThreshold:  0.5,
		BreakerWindow:     4,
		BreakerMinSamples: 2,
		BreakerCooldown:   time.Second,
	}})

	// Every branch-and-bound node errors: exact GAC solves fall back to the
	// SAMC heuristic and complete Degraded — the breaker's bad signal.
	armFault(t, "milp.node=error:p=1")
	for i := 0; i < 2; i++ {
		job, err := s.Submit(SolveRequest{
			Scenario: distinctScenario(t, int64(340 + i)),
			Options:  SolveOptions{Coverage: "GAC"},
		})
		if err != nil {
			t.Fatalf("degrading job %d: %v", i, err)
		}
		waitDone(t, job, 60*time.Second)
		if state := job.status().State; state != StateDone {
			t.Fatalf("degrading job %d finished %v (err %q)", i, state, job.status().Error)
		}
	}

	snap := s.MetricsSnapshot()
	if snap["breaker_state"] != 1 {
		t.Fatalf("breaker_state = %d after two degraded jobs, want 1 (open)", snap["breaker_state"])
	}
	if snap["breaker_trips_total"] != 1 {
		t.Errorf("breaker_trips_total = %d, want 1", snap["breaker_trips_total"])
	}

	// Both expositions must carry the breaker gauge while it is open.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"sag_breaker_state 1", "sag_breaker_trips_total 1", "sag_jobs_shed_total ", "sag_rate_limited_total ", "sag_inflight_limit "} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("prometheus exposition lacks %q", series)
		}
	}

	// Open breaker, still inside the cooldown: the next exact request runs
	// heuristic-first — it completes (the heuristics dodge the armed B&B
	// fault entirely) and says so in its degraded reason.
	hfJob, err := s.Submit(SolveRequest{
		Scenario: distinctScenario(t, 350),
		Options:  SolveOptions{Coverage: "GAC"},
	})
	if err != nil {
		t.Fatalf("heuristic-first job rejected: %v", err)
	}
	waitDone(t, hfJob, 60*time.Second)
	doc, state := hfJob.resultBytes()
	if state != StateDone {
		t.Fatalf("heuristic-first job finished %v (err %q)", state, hfJob.status().Error)
	}
	var res ResultDoc
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "heuristic-first") {
		t.Fatalf("open-breaker job not marked heuristic-first: degraded=%v reason=%q",
			res.Degraded, res.DegradedReason)
	}
	if s.MetricsSnapshot()["breaker_state"] != 1 {
		t.Fatal("heuristic-first job moved the breaker out of open")
	}

	// Heal the fault, wait out the cooldown: the next job is the half-open
	// probe. It must finish clean for the breaker to close — the default
	// heuristic pipeline is used so the probe's cleanliness depends only on
	// the healed fault, never on a B&B time budget on a slow runner.
	fault.Disable()
	time.Sleep(1100 * time.Millisecond)
	probe, err := s.Submit(SolveRequest{Scenario: distinctScenario(t, 351)})
	if err != nil {
		t.Fatalf("probe job rejected: %v", err)
	}
	waitDone(t, probe, 60*time.Second)
	pdoc, state := probe.resultBytes()
	if state != StateDone {
		t.Fatalf("probe finished %v (err %q)", state, probe.status().Error)
	}
	var pres ResultDoc
	if err := json.Unmarshal(pdoc, &pres); err != nil {
		t.Fatal(err)
	}
	if pres.Degraded {
		t.Fatalf("probe ran degraded (%q), want a clean solve", pres.DegradedReason)
	}
	snap = s.MetricsSnapshot()
	if snap["breaker_state"] != 0 {
		t.Fatalf("breaker_state = %d after clean probe, want 0 (closed)", snap["breaker_state"])
	}
	if snap["breaker_trips_total"] != 1 {
		t.Errorf("breaker_trips_total = %d after recovery, want still 1", snap["breaker_trips_total"])
	}
}

// TestJournalCorruptRecordQuarantined flips one byte inside a committed
// mid-file journal record: the reader must quarantine exactly that record
// (counting it), restore every intact job byte-identically, and re-run the
// job whose durable state was destroyed.
func TestJournalCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServer(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential solves: the journal is then strictly ordered, so j-1's done
	// record is mid-file (j-2's records follow it) and corrupting it can
	// never be mistaken for a torn tail.
	docs := map[string][]byte{}
	for i := 0; i < 2; i++ {
		job, err := s1.Submit(SolveRequest{Scenario: distinctScenario(t, int64(360 + i))})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job, 60*time.Second)
		doc, state := job.resultBytes()
		if state != StateDone {
			t.Fatalf("job %s finished %v", job.ID, state)
		}
		docs[job.ID] = doc
	}
	if err := shutdownNow(t, s1, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Corrupt j-1's done record in place: flip one byte inside its JSON so
	// the CRC32C no longer verifies.
	path := journalPath(dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	target := -1
	for i, line := range lines {
		if strings.Contains(line, `"t":"done"`) && strings.Contains(line, `"id":"j-1"`) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatalf("no done record for j-1 in journal:\n%s", raw)
	}
	if target == len(lines)-1 || (target == len(lines)-2 && lines[len(lines)-1] == "") {
		t.Fatalf("j-1's done record is the final line; corruption would read as a torn tail")
	}
	b := []byte(lines[target])
	b[len(b)/2] ^= 0x40
	lines[target] = string(b)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s2, 30*time.Second)

	if got := s2.MetricsSnapshot()["journal_corrupt_records"]; got != 1 {
		t.Errorf("journal_corrupt_records = %d, want 1", got)
	}
	// j-2's record verified: restored terminal, byte-identical document.
	j2, ok := s2.Job("j-2")
	if !ok {
		t.Fatal("j-2 not restored")
	}
	doc2, state := j2.resultBytes()
	if state != StateDone {
		t.Fatalf("j-2 restored as %v, want done", state)
	}
	if !bytes.Equal(doc2, docs["j-2"]) {
		t.Error("j-2's restored document is not byte-identical to the original")
	}
	// j-1 lost its terminal record: it owes a re-run and must reach done
	// again with the same answer (the trace differs — it describes the new
	// solve — so compare modulo trace).
	j1, ok := s2.Job("j-1")
	if !ok {
		t.Fatal("j-1 not restored")
	}
	waitDone(t, j1, 60*time.Second)
	doc1, state := j1.resultBytes()
	if state != StateDone {
		t.Fatalf("j-1 re-ran to %v (err %q), want done", state, j1.status().Error)
	}
	if !bytes.Equal(stripTrace(t, doc1), stripTrace(t, docs["j-1"])) {
		t.Error("j-1's re-solved document differs from the original beyond its trace")
	}
}
