package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"sagrelay/internal/obs"
)

// Handler returns the service's HTTP routes on a fresh mux:
//
//	POST   /v1/solve             submit {scenario, options}; ?wait=1 blocks
//	POST   /v1/resolve           submit {base_job|base_scenario_hash, delta,
//	                             options}; incremental re-solve, ?wait=1 blocks
//	POST   /v1/batch             submit {items|grid, options}; ?wait=1 streams
//	                             per-item results as NDJSON as they complete
//	GET    /v1/batch/{id}        one batch's per-item status
//	GET    /v1/batch/{id}/results NDJSON of finished item results; ?wait=1
//	                             streams the rest as they complete
//	DELETE /v1/batch/{id}        cancel every unfinished item
//	GET    /v1/jobs              list retained jobs, newest first
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/result  the finished result document
//	GET    /v1/jobs/{id}/progress live convergence snapshot (per-zone B&B
//	                             gap/phase rows); ?stream=1 tails NDJSON
//	                             snapshots until the job finishes
//	DELETE /v1/jobs/{id}         request cancellation
//	GET    /healthz              liveness probe
//	GET    /metrics              counters (JSON; ?format=prometheus for
//	                             text exposition with histograms)
//
// Every non-2xx JSON answer is the unified error envelope
// {"error":{"code","message","retry_after_s","details"}} (see apierror.go;
// pre-v5 top-level overload fields ride along as deprecated aliases).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/resolve", s.handleResolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/batch/{id}", s.handleBatchStatus)
	mux.HandleFunc("GET /v1/batch/{id}/results", s.handleBatchResults)
	mux.HandleFunc("DELETE /v1/batch/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeRawResult serves pre-marshaled result bytes untouched, preserving
// the byte-identical replay guarantee of the cache.
func writeRawResult(w http.ResponseWriter, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(doc)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeAPIError(w, err)
		return
	}
	job, err := s.SubmitFrom(clientKey(r), req)
	if err != nil {
		s.writeAPIError(w, err)
		return
	}
	s.answerSubmit(w, r, job)
}

// handleResolve is handleSolve's incremental twin: the request names a base
// scenario plus a delta, and a missing base is a 404 rather than a 400.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req ResolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeAPIError(w, err)
		return
	}
	job, err := s.ResolveFrom(clientKey(r), req)
	if err != nil {
		s.writeAPIError(w, err)
		return
	}
	s.answerSubmit(w, r, job)
}

// clientKey identifies the submitting client for rate limiting: the
// X-API-Key header when present, else the remote address with its ephemeral
// port stripped (so one host is one bucket across connections).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	if host == "" {
		return ""
	}
	return "addr:" + host
}

// answerSubmit finishes a successful submission: 202 with the job status,
// or — with ?wait=1 — block until the job finishes and serve its result. A
// client disconnect while waiting cancels the solve — the whole point of
// the context plumbing — and the handler just unwinds.
func (s *Server) answerSubmit(w http.ResponseWriter, r *http.Request, job *Job) {
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-job.done:
		case <-r.Context().Done():
			job.cancelNow()
			<-job.done
			return
		}
		if doc, state := job.resultBytes(); state == StateDone {
			writeRawResult(w, doc)
			return
		}
		s.writeUnprocessable(w, job)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

// writeUnprocessable answers a result fetch for a job that finished without
// a result document (failed or cancelled): the unified envelope, with the
// job's terminal status under details.
func (s *Server) writeUnprocessable(w http.ResponseWriter, job *Job) {
	st := job.status()
	msg := st.Error
	if msg == "" {
		msg = "job finished without a result document"
	}
	s.writeAPIErrorBody(w, http.StatusUnprocessableEntity, APIError{
		Code:    CodeUnprocessable,
		Message: msg,
		Details: map[string]any{"job": st},
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such job")
		return
	}
	doc, state := job.resultBytes()
	switch state {
	case StateDone:
		writeRawResult(w, doc)
	case StateQueued, StateRunning:
		// 202: try again later.
		writeJSON(w, http.StatusAccepted, job.status())
	default:
		s.writeUnprocessable(w, job)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	// Use the job Cancel returns: a concurrent Submit may evict the table
	// entry between the cancel and a re-lookup, and the status must come
	// from the job that was actually cancelled.
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		s.writeNotFound(w, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.snapshotDoc())
	case "prometheus":
		// Two registries, one exposition: the per-server counters first,
		// then the process-wide solver histograms (zone solve time, B&B
		// nodes, LP pivots, job latency, queue wait).
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.prom.WritePrometheus(w)
		_ = obs.Default.WritePrometheus(w)
	default:
		s.writeAPIErrorBody(w, http.StatusBadRequest, APIError{
			Code:    CodeBadRequest,
			Message: fmt.Sprintf("unknown metrics format %q", format),
		})
	}
}

// writeNotFound answers a lookup miss (job, batch) with the unified envelope.
func (s *Server) writeNotFound(w http.ResponseWriter, msg string) {
	s.writeAPIErrorBody(w, http.StatusNotFound, APIError{Code: CodeNotFound, Message: msg})
}
