package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// Handler returns the service's HTTP routes on a fresh mux:
//
//	POST   /v1/solve            submit {scenario, options}; ?wait=1 blocks
//	POST   /v1/resolve          submit {base_job|base_scenario_hash, delta,
//	                            options}; incremental re-solve, ?wait=1 blocks
//	GET    /v1/jobs             list retained jobs, newest first
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result the finished result document
//	DELETE /v1/jobs/{id}        request cancellation
//	GET    /healthz             liveness probe
//	GET    /metrics             counters (JSON; ?format=prometheus for
//	                            text exposition with histograms)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/resolve", s.handleResolve)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type errorDoc struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	doc := errorDoc{Error: err.Error()}
	var ve *scenario.ValueError
	if errors.As(err, &ve) {
		doc.Field = ve.Field
	}
	writeJSON(w, code, doc)
}

// writeRawResult serves pre-marshaled result bytes untouched, preserving
// the byte-identical replay guarantee of the cache.
func writeRawResult(w http.ResponseWriter, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(doc)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.SubmitFrom(clientKey(r), req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.answerSubmit(w, r, job)
}

// handleResolve is handleSolve's incremental twin: the request names a base
// scenario plus a delta, and a missing base is a 404 rather than a 400.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req ResolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.ResolveFrom(clientKey(r), req)
	if err != nil {
		if errors.Is(err, ErrNoBase) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.writeSubmitError(w, err)
		return
	}
	s.answerSubmit(w, r, job)
}

// clientKey identifies the submitting client for rate limiting: the
// X-API-Key header when present, else the remote address with its ephemeral
// port stripped (so one host is one bucket across connections).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	if host == "" {
		return ""
	}
	return "addr:" + host
}

// overloadDoc is the JSON body of every overload rejection (429/503): the
// machine-readable reason plus enough queue state for a client to make an
// informed retry decision. retry_after_ms mirrors the Retry-After header at
// millisecond precision.
type overloadDoc struct {
	Error         string `json:"error"`
	Reason        string `json:"reason"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	RetryAfterMS  int64  `json:"retry_after_ms"`
}

// writeOverload answers an admission rejection with a Retry-After header
// (whole seconds, rounded up, at least 1 — the header does not admit finer
// precision) and the structured overload body.
func (s *Server) writeOverload(w http.ResponseWriter, code int, err error, reason string, retryAfter time.Duration) {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, code, overloadDoc{
		Error:         err.Error(),
		Reason:        reason,
		QueueDepth:    s.pool.Len(),
		QueueCapacity: s.pool.Cap(),
		RetryAfterMS:  retryAfter.Milliseconds(),
	})
}

// writeSubmitError maps a Submit/Resolve error to its status code: 429 for
// rate limiting and queue backpressure, 503 for load shedding and shutdown
// (all four with Retry-After and the overload body), 400 for everything
// else (validation, malformed deltas, unknown entities).
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var rl *admit.RateLimitError
	var shed *admit.ShedError
	switch {
	case errors.As(err, &rl):
		s.writeOverload(w, http.StatusTooManyRequests, err, "rate_limited", rl.RetryAfter)
	case errors.As(err, &shed):
		s.writeOverload(w, http.StatusServiceUnavailable, err, "shed", shed.RetryAfter)
	case errors.Is(err, ErrQueueFull):
		s.writeOverload(w, http.StatusTooManyRequests, err, "queue_full", time.Second)
	case errors.Is(err, ErrShuttingDown):
		s.writeOverload(w, http.StatusServiceUnavailable, err, "shutting_down", time.Second)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// answerSubmit finishes a successful submission: 202 with the job status,
// or — with ?wait=1 — block until the job finishes and serve its result. A
// client disconnect while waiting cancels the solve — the whole point of
// the context plumbing — and the handler just unwinds.
func (s *Server) answerSubmit(w http.ResponseWriter, r *http.Request, job *Job) {
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-job.done:
		case <-r.Context().Done():
			job.cancelNow()
			<-job.done
			return
		}
		if doc, state := job.resultBytes(); state == StateDone {
			writeRawResult(w, doc)
			return
		}
		st := job.status()
		writeJSON(w, http.StatusUnprocessableEntity, st)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatus `json:"jobs"`
	}{out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	doc, state := job.resultBytes()
	switch state {
	case StateDone:
		writeRawResult(w, doc)
	case StateQueued, StateRunning:
		// 202: try again later.
		writeJSON(w, http.StatusAccepted, job.status())
	default:
		writeJSON(w, http.StatusUnprocessableEntity, job.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	// Use the job Cancel returns: a concurrent Submit may evict the table
	// entry between the cancel and a re-lookup, and the status must come
	// from the job that was actually cancelled.
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		zones, _, _ := s.incrStores.Len()
		writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.len(), zones, s.admit))
	case "prometheus":
		// Two registries, one exposition: the per-server counters first,
		// then the process-wide solver histograms (zone solve time, B&B
		// nodes, LP pivots, job latency, queue wait).
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.prom.WritePrometheus(w)
		_ = obs.Default.WritePrometheus(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown metrics format %q", format))
	}
}
