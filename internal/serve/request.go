package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sagrelay/internal/core"
	"sagrelay/internal/geom"
	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// SolveRequest is the body of POST /v1/solve: a full scenario document
// plus pipeline and budget options.
type SolveRequest struct {
	Scenario *scenario.Scenario `json:"scenario"`
	Options  SolveOptions       `json:"options"`
}

// SolveOptions selects the pipeline stages and solver budgets for one
// request. Zero values mean the documented defaults, and defaults are
// normalized before hashing, so an explicit default and an omitted field
// produce the same cache key.
type SolveOptions struct {
	// Coverage is SAMC (default), IAC or GAC.
	Coverage string `json:"coverage,omitempty"`
	// CoveragePower is green (default), baseline or optimal.
	CoveragePower string `json:"coverage_power,omitempty"`
	// Connectivity is MBMC (default) or MUST.
	Connectivity string `json:"connectivity,omitempty"`
	// ConnectivityPower is green (default) or baseline.
	ConnectivityPower string `json:"connectivity_power,omitempty"`
	// MUSTBaseStation is the forced base station index for MUST.
	MUSTBaseStation int `json:"must_base_station,omitempty"`
	// GridSize is the GAC grid cell size (default 15).
	GridSize float64 `json:"grid_size,omitempty"`
	// MaxZoneSS caps subscribers per solved sub-zone (default 10).
	MaxZoneSS int `json:"max_zone_ss,omitempty"`
	// MaxNodes caps branch-and-bound nodes per zone (default 3000).
	MaxNodes int `json:"max_nodes,omitempty"`
	// ZoneTimeoutMS caps branch-and-bound time per zone (default 2000).
	ZoneTimeoutMS int64 `json:"zone_timeout_ms,omitempty"`
	// TimeoutMS is the per-job deadline; 0 means the server's default. It
	// bounds when a solve is abandoned, never what a finished solve
	// returns, so it is excluded from the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers bounds per-zone solve concurrency inside this job; results
	// are identical for any worker count (the PR 1 determinism contract),
	// so it too is excluded from the cache key.
	Workers int `json:"workers,omitempty"`
	// NoDegrade disables the graceful-degradation ladder for this job: a
	// failed or deadline-blown stage then fails the job instead of falling
	// back to the paper's heuristics. Degradation only changes what happens
	// on failure, never the content of a full-fidelity result (and degraded
	// results are never cached), so this is excluded from the cache key too.
	NoDegrade bool `json:"no_degrade,omitempty"`
}

// normalized returns a copy with every cache-key-relevant zero value
// replaced by its default, mirroring the solver layers' own withDefaults
// so the key always describes the options the solve actually ran with.
func (o SolveOptions) normalized() SolveOptions {
	if o.Coverage == "" {
		o.Coverage = "SAMC"
	} else {
		o.Coverage = strings.ToUpper(o.Coverage)
	}
	if o.CoveragePower == "" {
		o.CoveragePower = "green"
	} else {
		o.CoveragePower = strings.ToLower(o.CoveragePower)
	}
	if o.Connectivity == "" {
		o.Connectivity = "MBMC"
	} else {
		o.Connectivity = strings.ToUpper(o.Connectivity)
	}
	if o.ConnectivityPower == "" {
		o.ConnectivityPower = "green"
	} else {
		o.ConnectivityPower = strings.ToLower(o.ConnectivityPower)
	}
	if o.Connectivity != "MUST" {
		o.MUSTBaseStation = 0 // irrelevant: never let it split cache keys
	}
	if o.GridSize <= 0 {
		o.GridSize = 15
	}
	if o.MaxZoneSS <= 0 {
		o.MaxZoneSS = 10
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 3000
	}
	if o.ZoneTimeoutMS <= 0 {
		o.ZoneTimeoutMS = 2000
	}
	return o
}

// coreConfig translates the options into a pipeline configuration.
func (o SolveOptions) coreConfig() (core.Config, error) {
	var cfg core.Config
	switch o.Coverage {
	case "SAMC":
		cfg.Coverage = core.CoverSAMC
	case "IAC":
		cfg.Coverage = core.CoverIAC
	case "GAC":
		cfg.Coverage = core.CoverGAC
	default:
		return cfg, fmt.Errorf("unknown coverage method %q", o.Coverage)
	}
	switch o.CoveragePower {
	case "green":
		cfg.CoveragePower = core.PowerGreen
	case "baseline":
		cfg.CoveragePower = core.PowerBaseline
	case "optimal":
		cfg.CoveragePower = core.PowerOptimal
	default:
		return cfg, fmt.Errorf("unknown coverage power %q", o.CoveragePower)
	}
	switch o.Connectivity {
	case "MBMC":
		cfg.Connectivity = core.ConnMBMC
	case "MUST":
		cfg.Connectivity = core.ConnMUST
		cfg.MUSTBaseStation = o.MUSTBaseStation
	default:
		return cfg, fmt.Errorf("unknown connectivity method %q", o.Connectivity)
	}
	switch o.ConnectivityPower {
	case "green":
		cfg.ConnectivityPower = core.PowerGreen
	case "baseline":
		cfg.ConnectivityPower = core.PowerBaseline
	default:
		return cfg, fmt.Errorf("unknown connectivity power %q", o.ConnectivityPower)
	}
	cfg.Workers = o.Workers
	cfg.Degrade = !o.NoDegrade
	cfg.ILP = lower.ILPOptions{
		GridSize:  o.GridSize,
		MaxZoneSS: o.MaxZoneSS,
		MaxNodes:  o.MaxNodes,
		TimeLimit: time.Duration(o.ZoneTimeoutMS) * time.Millisecond,
		Workers:   o.Workers,
	}
	return cfg, nil
}

// requestKeyVersion tags the request-key encoding; bump on any change to
// the option set or layout so stale keys cannot alias new requests.
const requestKeyVersion = "sagreq/2"

// resultSchema is the version tag of ResultDoc, serialized first-keyed like
// the metrics document; bump alongside any wire-visible shape change.
const resultSchema = "sagresult/1"

// requestKey returns the content address of (scenario, options): the
// SHA-256 hex over the canonical scenario encoding plus a canonical
// encoding of the normalized solver-relevant options. Identical queries —
// regardless of JSON field order, whitespace, or explicitly-spelled
// defaults — collapse to one key; anything that could change the result
// document separates keys.
func requestKey(sc *scenario.Scenario, opts SolveOptions) string {
	o := opts.normalized()
	h := sha256.New()
	var b strings.Builder
	b.WriteString(requestKeyVersion)
	b.WriteByte('\n')
	b.WriteString("cov ")
	b.WriteString(o.Coverage)
	b.WriteByte('\n')
	b.WriteString("covp ")
	b.WriteString(o.CoveragePower)
	b.WriteByte('\n')
	b.WriteString("conn ")
	b.WriteString(o.Connectivity)
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(o.MUSTBaseStation))
	b.WriteByte('\n')
	b.WriteString("connp ")
	b.WriteString(o.ConnectivityPower)
	b.WriteByte('\n')
	b.WriteString("grid ")
	b.WriteString(strconv.FormatFloat(o.GridSize, 'x', -1, 64))
	b.WriteByte('\n')
	b.WriteString("zone ")
	b.WriteString(strconv.Itoa(o.MaxZoneSS))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(o.MaxNodes))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(o.ZoneTimeoutMS, 10))
	b.WriteByte('\n')
	h.Write([]byte(b.String()))
	h.Write(sc.CanonicalBytes())
	return hex.EncodeToString(h.Sum(nil))
}

// ResultDoc is the deterministic solve result served by the API and stored
// in the cache. The solution fields carry no timing: wall-clock varies run
// to run and would break the byte-identical replay guarantee, so solve
// timing lives on the job status instead. Two deliberate exceptions:
//
//   - Degraded: a document with Degraded set came from a heuristic fallback
//     or a wall-clock-truncated branch-and-bound incumbent, is
//     timing-dependent, and is therefore never cached or content-addressed
//     (see runJob).
//   - Trace: the span tree of the solve that actually produced this
//     document. Cache hits and journal restores replay the original solve's
//     trace verbatim — the document is addressed and replayed as a whole,
//     so the trace describes the work that built the answer, not the
//     (free) lookup that served it.
type ResultDoc struct {
	Schema             string       `json:"schema"`
	Method             string       `json:"method"`
	Feasible           bool         `json:"feasible"`
	Degraded           bool         `json:"degraded,omitempty"`
	DegradedReason     string       `json:"degraded_reason,omitempty"`
	CoverageRelays     []RelayDoc   `json:"coverage_relays,omitempty"`
	ConnectivityRelays []geom.Point `json:"connectivity_relays,omitempty"`
	PL                 float64      `json:"coverage_power,omitempty"`
	PH                 float64      `json:"connectivity_power,omitempty"`
	PTotal             float64      `json:"total_power,omitempty"`
	NumCoverage        int          `json:"num_coverage_relays"`
	NumConnectivity    int          `json:"num_connectivity_relays"`
	Trace              *obs.SpanDoc `json:"trace,omitempty"`
}

// RelayDoc is one coverage relay in a ResultDoc.
type RelayDoc struct {
	Pos    geom.Point `json:"pos"`
	Power  float64    `json:"power"`
	Covers []int      `json:"covers"`
}

// buildResultDoc marshals a solution into the canonical result document
// bytes. encoding/json is deterministic for struct-typed values (fixed
// field order, shortest-round-trip floats), so equal solutions yield equal
// bytes.
func buildResultDoc(sol *core.Solution) ([]byte, error) {
	doc := ResultDoc{
		Schema:         resultSchema,
		Method:         sol.Method,
		Feasible:       sol.Feasible,
		Degraded:       sol.Degraded,
		DegradedReason: sol.DegradedReason,
	}
	if sol.Feasible {
		doc.PL, doc.PH, doc.PTotal = sol.PL, sol.PH, sol.PTotal
		doc.NumCoverage = sol.Coverage.NumRelays()
		doc.NumConnectivity = sol.Connectivity.NumRelays()
		for i, r := range sol.Coverage.Relays {
			doc.CoverageRelays = append(doc.CoverageRelays, RelayDoc{
				Pos:    r.Pos,
				Power:  sol.CoveragePower.Powers[i],
				Covers: r.Covers,
			})
		}
		for _, r := range sol.Connectivity.Relays {
			doc.ConnectivityRelays = append(doc.ConnectivityRelays, r.Pos)
		}
	}
	doc.Trace = sol.Trace.Doc()
	return json.Marshal(&doc)
}
