package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"sagrelay/internal/obs"
)

// flightDetail is the Detail document of a job's flight record: everything
// a postmortem wants that the record header does not carry — the full span
// tree, the final progress snapshot, the convergence curve, and the
// admission decision that let the job in.
type flightDetail struct {
	Schema   string `json:"schema"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// EstSolveMS/EstWaitMS are the cost-model estimates behind admission
	// (zero when the model was cold or the job skipped admission).
	EstSolveMS float64         `json:"est_solve_ms,omitempty"`
	EstWaitMS  float64         `json:"est_wait_ms,omitempty"`
	Trace      *obs.SpanDoc    `json:"trace,omitempty"`
	Progress   *progressDoc    `json:"progress,omitempty"`
	Curve      []progressPoint `json:"curve,omitempty"`
}

// flightSeq numbers synthetic flight IDs (shed requests have no job ID).
var flightSeq atomic.Int64

// recordFlight retains a finished job in the flight ring. outcome is the
// record's headline ("done", "degraded", "failed", "cancelled",
// "cache_hit"); bad routes it into the preferentially-retained half.
func (s *Server) recordFlight(job *Job, outcome string, bad, degraded bool) {
	if s.flight == nil {
		return
	}
	errMsg, cacheHit, created, started, finished, trace := job.flightInfo()
	if finished.IsZero() {
		finished = time.Now()
	}
	queueEnd := started
	if queueEnd.IsZero() {
		queueEnd = finished
	}
	detail := flightDetail{
		Schema:     "sagflightdetail/1",
		CacheHit:   cacheHit,
		Degraded:   degraded,
		EstSolveMS: float64(job.admit.EstSolve.Microseconds()) / 1000,
		EstWaitMS:  float64(job.admit.EstWait.Microseconds()) / 1000,
		Trace:      trace,
	}
	if p := job.progressState(); p != nil {
		doc := p.snapshot(job)
		detail.Progress = &doc
		detail.Curve = p.curvePoints()
	}
	detailBytes, err := json.Marshal(detail)
	if err != nil {
		detailBytes = nil
	}
	kind := "solve"
	if job.incr != nil {
		kind = "resolve"
	}
	s.flight.Record(obs.FlightRecord{
		ID:      job.ID,
		Kind:    kind,
		Outcome: outcome,
		Client:  job.client,
		Error:   errMsg,
		Start:   created,
		End:     finished,
		QueueMS: float64(queueEnd.Sub(created).Microseconds()) / 1000,
		WallMS:  float64(finished.Sub(created).Microseconds()) / 1000,
		Bad:     bad,
		Detail:  json.RawMessage(detailBytes),
	})
}

// recordShed retains a shed or rate-limited submission: these never become
// jobs, so they get synthetic IDs and no detail document beyond the error.
func (s *Server) recordShed(outcome, client, errMsg string) {
	if s.flight == nil {
		return
	}
	now := time.Now()
	s.flight.Record(obs.FlightRecord{
		ID:      "shed-" + strconv.FormatInt(flightSeq.Add(1), 10),
		Kind:    "admission",
		Outcome: outcome,
		Client:  client,
		Error:   errMsg,
		Start:   now,
		End:     now,
		Bad:     true,
	})
}

// FlightRecorder exposes the server's flight ring (for the debug listener
// and smoke tests).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// FlightHandler serves GET /debug/flight and /debug/flight/{id}; mount it
// on the pprof side listener, away from the API port.
func (s *Server) FlightHandler() http.Handler {
	return s.flight.Handler("/debug/flight")
}
