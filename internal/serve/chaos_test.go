//go:build faultinject

// Chaos gate: enumerate every registered fault-injection site and storm the
// solve service with each failure kind armed. The invariants are blunt on
// purpose — every job reaches a terminal state, the process never dies, and
// the server still solves cleanly once the plan is disarmed. Run with
//
//	go test -race -tags faultinject -run Chaos ./internal/serve/
package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sagrelay/internal/admit"
	"sagrelay/internal/fault"
	"sagrelay/internal/scenario"
)

// shedByDesign reports an admission-control rejection: the admit.shed site
// rejects at the door (by design, before a queue slot is consumed), so a
// chaos submit bouncing off it is correct behaviour, not a failure.
func shedByDesign(err error) bool {
	var shed *admit.ShedError
	return errors.As(err, &shed)
}

// chaosScenario generates a distinct tiny instance per seed so chaos jobs
// never collapse into cache hits (the cache would shield sites from fire).
func chaosScenario(t *testing.T, seed int64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

func TestChaosEverySiteEveryKind(t *testing.T) {
	sites := fault.Sites()
	if len(sites) < 4 {
		t.Fatalf("only %d registered fault sites %v, expected the solve stack to register at least 4", len(sites), sites)
	}
	t.Logf("chaos over sites %v", sites)

	const jobsPerArm = 3
	for _, site := range sites {
		for _, kind := range []string{"error", "panic", "delay"} {
			t.Run(site+"/"+kind, func(t *testing.T) {
				s := newTestServer(t, Options{Workers: 2})
				armFault(t, fmt.Sprintf("%s=%s:d=1ms", site, kind))

				jobs := make([]*Job, 0, jobsPerArm)
				for i := 0; i < jobsPerArm; i++ {
					job, err := s.Submit(SolveRequest{
						Scenario: chaosScenario(t, int64(i+1)),
						Options:  SolveOptions{Coverage: "GAC"},
					})
					if err != nil {
						if shedByDesign(err) {
							continue
						}
						t.Fatalf("submit %d under %s=%s: %v", i, site, kind, err)
					}
					jobs = append(jobs, job)
				}
				for i, job := range jobs {
					waitDone(t, job, 2*time.Minute)
					if st := job.status(); !job.terminal() {
						t.Errorf("job %d non-terminal under %s=%s: %v", i, site, kind, st.State)
					}
				}
				if fault.Fired(site) == 0 {
					t.Errorf("armed %s=%s but the site never fired", site, kind)
				}

				// The wounded server must still serve an untainted solve.
				fault.Disable()
				clean, err := s.Submit(SolveRequest{
					Scenario: chaosScenario(t, 99),
					Options:  SolveOptions{Coverage: "GAC"},
				})
				if err != nil {
					t.Fatalf("server rejects work after %s=%s chaos: %v", site, kind, err)
				}
				waitDone(t, clean, 2*time.Minute)
				if state := clean.status().State; state != StateDone {
					t.Fatalf("clean job after %s=%s chaos finished %v (err %q)",
						site, kind, state, clean.status().Error)
				}
			})
		}
	}
}

func TestChaosAllSitesAtOnce(t *testing.T) {
	// Arm every site with a probabilistic mix of all kinds simultaneously
	// and pour jobs through: the worst realistic storm. Determinism of the
	// per-site rng streams makes a given seed reproducible.
	sites := fault.Sites()
	spec := ""
	for i, site := range sites {
		if i > 0 {
			spec += ","
		}
		switch i % 3 {
		case 0:
			spec += site + "=error:p=0.3"
		case 1:
			spec += site + "=panic:p=0.2"
		default:
			spec += site + "=delay:p=0.5:d=1ms"
		}
	}
	s := newTestServer(t, Options{Workers: 4})
	armFault(t, spec)
	t.Logf("storm plan: %s", spec)

	const n = 12
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		job, err := s.Submit(SolveRequest{
			Scenario: chaosScenario(t, int64(i+1)),
			Options:  SolveOptions{Coverage: "GAC"},
		})
		if err != nil {
			if shedByDesign(err) {
				continue
			}
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	for i, job := range jobs {
		waitDone(t, job, 2*time.Minute)
		if !job.terminal() {
			t.Errorf("job %d not terminal: %v", i, job.status().State)
		}
	}
	if fault.FiredTotal() == 0 {
		t.Error("storm plan never fired")
	}

	fault.Disable()
	clean, err := s.Submit(SolveRequest{Scenario: chaosScenario(t, 99), Options: SolveOptions{Coverage: "GAC"}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, clean, 2*time.Minute)
	if state := clean.status().State; state != StateDone {
		t.Fatalf("clean job after the storm finished %v (err %q)", state, clean.status().Error)
	}
	t.Logf("storm: %d faults fired, %d panics recovered, all %d jobs terminal",
		fault.FiredTotal(), fault.RecoveredPanics(), n)
}
