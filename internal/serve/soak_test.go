package serve

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"sagrelay/internal/admit"
)

// TestBurstSoakAccountingAndDrain storms a deliberately tiny server (2
// workers, 4 queue slots) with 4x queue-capacity concurrent submissions and
// checks the overload invariants: every submission is either accepted or
// rejected with a typed overload error, the accounting identities hold
// exactly (no lost or double-counted job), an accepted job's answer is
// byte-identical to an unloaded server's, and after shutdown the goroutine
// count returns to its pre-server baseline (no leaks under pressure).
func TestBurstSoakAccountingAndDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, err := NewServer(Options{Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The control job runs on the idle server before the burst; its answer
	// is the one we hold to the unloaded ground truth afterwards.
	controlSc := distinctScenario(t, 400)
	control, err := s.Submit(SolveRequest{Scenario: controlSc})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, control, 60*time.Second)
	controlDoc, state := control.resultBytes()
	if state != StateDone {
		t.Fatalf("control job finished %v", state)
	}

	const burst = 16 // 4x queue capacity
	var (
		mu       sync.Mutex
		jobs     []*Job
		overload int
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			job, err := s.Submit(SolveRequest{Scenario: distinctScenario(t, seed)})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var shed *admit.ShedError
				if errors.As(err, &shed) || errors.Is(err, ErrQueueFull) {
					overload++
					return
				}
				t.Errorf("submit seed %d: unexpected error %v", seed, err)
				return
			}
			jobs = append(jobs, job)
		}(int64(401 + i))
	}
	wg.Wait()

	if len(jobs)+overload != burst {
		t.Fatalf("accounting: %d accepted + %d overload-rejected != %d submitted",
			len(jobs), overload, burst)
	}
	for _, j := range jobs {
		waitDone(t, j, 2*time.Minute)
	}

	snap := s.MetricsSnapshot()
	submitted := int64(burst + 1) // the control job included
	accepted := snap["jobs_accepted"]
	turnedAway := snap["jobs_rejected"] + snap["jobs_shed_total"] + snap["rate_limited_total"]
	if accepted+turnedAway != submitted {
		t.Errorf("accepted %d + turned away %d != submitted %d (snapshot %v)",
			accepted, turnedAway, submitted, snap)
	}
	settled := snap["jobs_completed"] + snap["jobs_failed"] + snap["jobs_cancelled"]
	if settled != accepted {
		t.Errorf("settled %d (completed %d + failed %d + cancelled %d) != accepted %d",
			settled, snap["jobs_completed"], snap["jobs_failed"], snap["jobs_cancelled"], accepted)
	}
	if snap["jobs_failed"] != 0 || snap["jobs_cancelled"] != 0 {
		t.Errorf("burst of valid tiny jobs failed/cancelled some: %v", snap)
	}
	// The queue drained: nothing is left waiting for a worker.
	if depth := s.pool.Len(); depth != 0 {
		t.Errorf("queue depth %d after every job settled, want 0", depth)
	}

	// Load must not bend answers: the control result matches a fresh,
	// unloaded server solving the same scenario (traces differ by wall
	// clock, everything else is the answer).
	fresh := newTestServer(t, Options{Workers: 2})
	ref, err := fresh.Submit(SolveRequest{Scenario: controlSc})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ref, 60*time.Second)
	refDoc, state := ref.resultBytes()
	if state != StateDone {
		t.Fatalf("reference job finished %v", state)
	}
	if !bytes.Equal(stripTrace(t, controlDoc), stripTrace(t, refDoc)) {
		t.Error("result under burst load differs from the unloaded server's")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Goroutines wind down asynchronously after Shutdown returns; poll
	// briefly rather than demanding an instant quiesce.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d never returned near baseline %d after shutdown",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
