package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sagrelay/internal/experiment"
	"sagrelay/internal/geom"
	"sagrelay/internal/incr"
	"sagrelay/internal/scenario"
)

// readStream decodes one NDJSON batch stream into its header, item lines
// (keyed by item index) and trailer.
func readStream(t *testing.T, body io.Reader) (batchStreamHeader, map[int]batchStreamItem, *batchStreamTrailer) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		t.Fatalf("stream has no header line: %v", sc.Err())
	}
	var hdr batchStreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header line not JSON: %v", err)
	}
	items := make(map[int]batchStreamItem)
	var trailer *batchStreamTrailer
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(line, []byte(`{"done"`)) {
			var tr batchStreamTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatalf("trailer line not JSON: %v", err)
			}
			trailer = &tr
			continue
		}
		var it batchStreamItem
		if err := json.Unmarshal(line, &it); err != nil {
			t.Fatalf("item line not JSON: %v", err)
		}
		items[it.Item] = it
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return hdr, items, trailer
}

func postBatch(t *testing.T, url string, req BatchRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBatchGridStreamMatchesIndividualSolves is the tentpole acceptance
// check: a streamed grid batch is byte-identical (modulo trace) to the same
// scenarios solved one at a time, and the grid form expands server-side to
// the exact scenarios the shared experiment.GridSpec expands to locally.
func TestBatchGridStreamMatchesIndividualSolves(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	grid := BatchGrid{
		Template: GridTemplate{FieldSide: 300, NumBS: 2, SNRdB: -15},
		Dims:     []experiment.GridDim{{Name: experiment.DimUsers, Values: []float64{6, 8}}},
		Runs:     1,
		Seed:     100,
	}
	resp := postBatch(t, ts.URL+"/v1/batch?wait=1", BatchRequest{Grid: &grid})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch?wait=1 = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	hdr, items, trailer := readStream(t, resp.Body)
	if hdr.Schema != batchSchema || hdr.Items != 2 {
		t.Fatalf("header = %+v, want schema %s with 2 items", hdr, batchSchema)
	}
	if trailer == nil || !trailer.Done || !trailer.Complete || trailer.ItemsDone != 2 {
		t.Fatalf("trailer = %+v, want done+complete with 2 items done", trailer)
	}

	// The same grid expanded locally through the shared spec, solved one at
	// a time on a fresh server (cold caches).
	spec := experiment.GridSpec{
		Base: scenario.GenConfig{FieldSide: 300, NumBS: 2, SNRdB: -15},
		Dims: grid.Dims,
		Runs: 1,
		Seed: 100,
	}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("local expansion has %d cells, want 2", len(cells))
	}
	solo := newTestServer(t, Options{})
	for i, c := range cells {
		sc, err := scenario.Generate(c.Gen)
		if err != nil {
			t.Fatal(err)
		}
		job, err := solo.Submit(SolveRequest{Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, job, 60*time.Second)
		doc, state := job.resultBytes()
		if state != StateDone {
			t.Fatalf("individual solve %d: %v (%s)", i, state, job.status().Error)
		}
		line, ok := items[i]
		if !ok || line.State != string(StateDone) {
			t.Fatalf("batch item %d = %+v, want a done line", i, line)
		}
		if len(line.Values) != 1 || line.Values[0] != c.Values[0] || line.Point != c.Point {
			t.Errorf("item %d provenance = point %d values %v, want point %d values %v",
				i, line.Point, line.Values, c.Point, c.Values)
		}
		if got, want := stripTrace(t, line.Result), stripTrace(t, doc); !bytes.Equal(got, want) {
			t.Errorf("batch item %d differs from individual solve:\n batch: %s\n  solo: %s", i, got, want)
		}
		var rd ResultDoc
		if err := json.Unmarshal(line.Result, &rd); err != nil || rd.Schema != resultSchema {
			t.Errorf("item %d result schema = %q, want %q", i, rd.Schema, resultSchema)
		}
	}
	if got := s.MetricsSnapshot(); got["batches_total"] != 1 || got["batch_items_total"] != 2 {
		t.Errorf("batch counters = %d/%d, want 1/2", got["batches_total"], got["batch_items_total"])
	}
}

// TestBatchDisconnectCancelsUnstartedItems: a mid-stream client disconnect
// cancels every item that has not started solving, and the solve counter
// proves the cancelled items never cost solver work.
func TestBatchDisconnectCancelsUnstartedItems(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Hold the first (and only) worker inside item 0's runJob long enough to
	// disconnect while items 1 and 2 are still queued behind it.
	armFault(t, "serve.job=delay:n=1:d=1500ms")

	req := BatchRequest{Items: []BatchItemRequest{
		{Scenario: distinctScenario(t, 710)},
		{Scenario: distinctScenario(t, 711)},
		{Scenario: distinctScenario(t, 712)},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/batch?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hdr batchStreamHeader
	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil || json.Unmarshal(line, &hdr) != nil {
		t.Fatalf("reading stream header: %v (%q)", err, line)
	}
	b, ok := s.BatchByID(hdr.ID)
	if !ok {
		t.Fatalf("batch %s not in table", hdr.ID)
	}

	// Wait for item 0 to be running (the delay keeps it there), then drop
	// the connection mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for b.Items()[0].Job.status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("item 0 stuck in %v", b.Items()[0].Job.status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelReq()

	select {
	case <-b.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("batch did not settle after disconnect")
	}
	if st := b.Items()[0].Job.status(); st.State != StateDone {
		t.Errorf("running item 0 = %v (%s), want done (it had already started)", st.State, st.Error)
	}
	for _, i := range []int{1, 2} {
		if st := b.Items()[i].Job.status(); st.State != StateCancelled {
			t.Errorf("unstarted item %d = %v, want cancelled", i, st.State)
		}
	}
	snap := s.MetricsSnapshot()
	if snap["solves"] != 1 {
		t.Errorf("solves = %d, want exactly 1 — cancelled items must cost zero solver work", snap["solves"])
	}
	if snap["jobs_cancelled"] != 2 {
		t.Errorf("jobs_cancelled = %d, want 2", snap["jobs_cancelled"])
	}
}

// TestBatchItemShedBatchSurvives: an injected admit.shed rejects one item
// up front while the rest of the batch solves; the stream carries the
// rejection inline with the typed envelope.
func TestBatchItemShedBatchSurvives(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	armFault(t, "admit.shed=error:n=1")

	b, err := s.SubmitBatch(BatchRequest{Items: []BatchItemRequest{
		{Scenario: distinctScenario(t, 720)},
		{Scenario: distinctScenario(t, 721)},
		{Scenario: distinctScenario(t, 722)},
	}})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	it0 := b.Items()[0]
	if it0.Reject == nil || it0.Reject.Code != CodeShed {
		t.Fatalf("item 0 = %+v, want an inline shed rejection", it0.Reject)
	}
	select {
	case <-b.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("batch did not finish")
	}
	for _, i := range []int{1, 2} {
		if st := b.Items()[i].Job.status(); st.State != StateDone {
			t.Errorf("item %d = %v (%s), want done", i, st.State, st.Error)
		}
	}
	snap := s.MetricsSnapshot()
	if snap["batch_items_shed"] != 1 || snap["jobs_shed_total"] != 1 {
		t.Errorf("shed counters = %d/%d, want 1/1", snap["batch_items_shed"], snap["jobs_shed_total"])
	}

	// The finished batch streams the rejection inline.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/batch/" + b.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	hdr, items, trailer := readStream(t, resp.Body)
	if hdr.Items != 3 {
		t.Errorf("header items = %d, want 3", hdr.Items)
	}
	if line := items[0]; line.State != "rejected" || line.Error == nil || line.Error.Code != CodeShed {
		t.Errorf("rejected stream line = %+v, want state rejected with error.code shed", line)
	}
	if trailer == nil || trailer.ItemsRejected != 1 || trailer.ItemsDone != 2 || !trailer.Complete {
		t.Fatalf("trailer = %+v, want 1 rejected / 2 done / complete", trailer)
	}
}

// copyDir snapshots a journal data dir mid-run — the kill -9 image a crash
// would leave (appends are fsynced, so the copy sees every acknowledged
// record; at worst a torn tail, which the reader tolerates).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copyDir: %v", err)
	}
}

// TestBatchKillRecoveryResumesUnfinishedItems: a journaled batch killed with
// one item done, one mid-solve and one queued resumes on the next start —
// the finished item is restored byte-identically without re-solving, the
// other two re-run, and the restored batch completes.
func TestBatchKillRecoveryResumesUnfinishedItems(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := newTestServer(t, Options{Workers: 1, DataDir: dirA})
	// Delay the second runJob: item 0 finishes, item 1 sits mid-solve while
	// the "crash" snapshot is taken, item 2 never starts.
	armFault(t, "serve.job=delay:n=2:d=2s")

	b, err := a.SubmitBatch(BatchRequest{Items: []BatchItemRequest{
		{Scenario: distinctScenario(t, 730)},
		{Scenario: distinctScenario(t, 731)},
		{Scenario: distinctScenario(t, 732)},
	}})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	waitDone(t, b.Items()[0].Job, 60*time.Second)
	doneDoc, state := b.Items()[0].Job.resultBytes()
	if state != StateDone {
		t.Fatalf("item 0 = %v, want done", state)
	}
	waitState(t, b.Items()[1].Job, StateRunning, 10*time.Second)
	copyDir(t, dirA, dirB)

	rb := newTestServer(t, Options{Workers: 1, DataDir: dirB})
	b2, ok := rb.BatchByID(b.ID)
	if !ok {
		t.Fatalf("restored server has no batch %s", b.ID)
	}
	select {
	case <-b2.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("restored batch did not finish")
	}
	for i, it := range b2.Items() {
		st := it.Job.status()
		if st.State != StateDone {
			t.Errorf("restored item %d = %v (%s), want done", i, st.State, st.Error)
		}
		if it.Job.ID != b.Items()[i].Job.ID {
			t.Errorf("restored item %d job ID = %s, want %s", i, it.Job.ID, b.Items()[i].Job.ID)
		}
	}
	// The finished item was restored from the results dir, not re-solved.
	restoredDoc, _ := b2.Items()[0].Job.resultBytes()
	if !bytes.Equal(restoredDoc, doneDoc) {
		t.Error("restored item 0 is not byte-identical to its pre-crash result")
	}
	snap := rb.MetricsSnapshot()
	if snap["journal_restored_jobs"] < 1 {
		t.Errorf("journal_restored_jobs = %d, want >= 1", snap["journal_restored_jobs"])
	}
	if snap["journal_replayed_jobs"] != 2 {
		t.Errorf("journal_replayed_jobs = %d, want 2 (the unfinished items)", snap["journal_replayed_jobs"])
	}
}

// TestBatchNeighborItemsReuseZoneCaches: batch items that differ by a small
// delta splice unchanged zones from the shared zone stores instead of
// re-solving them.
func TestBatchNeighborItemsReuseZoneCaches(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	base := clusteredBase(t)
	moved, err := moveDelta(1, geom.Point{X: 96, Y: 88}).Apply(base)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	reused0 := incr.ZonesReused()
	b, err := s.SubmitBatch(BatchRequest{Items: []BatchItemRequest{
		{Scenario: base},
		{Scenario: moved},
	}})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	select {
	case <-b.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("batch did not finish")
	}
	for i, it := range b.Items() {
		if st := it.Job.status(); st.State != StateDone {
			t.Fatalf("item %d = %v (%s), want done", i, st.State, st.Error)
		}
	}
	if reused := incr.ZonesReused() - reused0; reused == 0 {
		t.Error("neighboring batch items reused no zones; expected shared-store splices")
	}
}

// TestBatchLimitsAndErrors: oversize batches and empty requests map to the
// typed envelope.
func TestBatchLimitsAndErrors(t *testing.T) {
	s := newTestServer(t, Options{MaxBatchItems: 2})
	_, err := s.SubmitBatch(BatchRequest{Items: []BatchItemRequest{
		{Scenario: distinctScenario(t, 740)},
		{Scenario: distinctScenario(t, 741)},
		{Scenario: distinctScenario(t, 742)},
	}})
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("3-item batch on a 2-item server: err = %v, want ErrBatchTooLarge", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postBatch(t, ts.URL+"/v1/batch", BatchRequest{Grid: &BatchGrid{
		Template: GridTemplate{FieldSide: 300, NumBS: 2},
		Dims:     []experiment.GridDim{{Name: experiment.DimUsers, Values: []float64{4, 6, 8}}},
	}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize grid = %d, want 400", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeBatchLimit {
		t.Errorf("error.code = %q, want %q", env.Error.Code, CodeBatchLimit)
	}

	resp2 := postBatch(t, ts.URL+"/v1/batch", BatchRequest{})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", resp2.StatusCode)
	}
	resp3, err := http.Get(ts.URL + "/v1/batch/b-999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch = %d, want 404", resp3.StatusCode)
	}
	var env404 errorEnvelope
	if err := json.NewDecoder(resp3.Body).Decode(&env404); err != nil {
		t.Fatal(err)
	}
	if env404.Error.Code != CodeNotFound {
		t.Errorf("404 error.code = %q, want not_found", env404.Error.Code)
	}
}

// TestBatchAsyncPollAndCancel: the async form (no wait) answers 202 with the
// versioned status document, GET polls it, DELETE cancels every unfinished
// item.
func TestBatchAsyncPollAndCancel(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	armFault(t, "serve.job=delay:n=1:d=1500ms")

	resp := postBatch(t, ts.URL+"/v1/batch", BatchRequest{Items: []BatchItemRequest{
		{Scenario: distinctScenario(t, 750)},
		{Scenario: distinctScenario(t, 751)},
	}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST = %d, want 202", resp.StatusCode)
	}
	var doc batchStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != batchSchema || doc.ItemsTotal != 2 {
		t.Fatalf("status doc = %+v, want schema %s with 2 items", doc, batchSchema)
	}
	b, ok := s.BatchByID(doc.ID)
	if !ok {
		t.Fatal("batch missing from table")
	}
	waitState(t, b.Items()[0].Job, StateRunning, 10*time.Second)

	dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/batch/"+doc.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", dresp.StatusCode)
	}
	select {
	case <-b.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled batch did not settle")
	}
	// DELETE cancels running items too (unlike a stream disconnect).
	for i, it := range b.Items() {
		if st := it.Job.status(); st.State != StateCancelled {
			t.Errorf("item %d = %v after DELETE, want cancelled", i, st.State)
		}
	}
	sresp, err := http.Get(ts.URL + "/v1/batch/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var final batchStatusDoc
	if err := json.NewDecoder(sresp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || !final.Cancelled || final.ItemsCancelled != 2 {
		t.Errorf("final status = %+v, want done/cancelled with 2 cancelled items", final)
	}
	if final.Trace == nil {
		t.Error("finished batch status has no trace")
	}
}
