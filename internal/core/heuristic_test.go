package core

import (
	"context"
	"strings"
	"testing"
)

// TestHeuristicFirstDowngradesExactStages: with HeuristicFirst set, an
// exact-pipeline request runs the heuristics instead, is tagged Degraded
// with a heuristic-first reason, and its answer matches a plain SAMC/PRO
// run bit for bit (the downgrade is a config rewrite, not a new algorithm).
func TestHeuristicFirstDowngradesExactStages(t *testing.T) {
	sc := gen(t, 500, 12, 3)

	hf, err := Run(context.Background(), sc, Config{
		Coverage:       CoverGAC,
		CoveragePower:  PowerOptimal,
		HeuristicFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hf.Degraded {
		t.Fatal("heuristic-first downgrade did not tag the solution Degraded")
	}
	if !strings.Contains(hf.DegradedReason, "heuristic-first") {
		t.Fatalf("DegradedReason %q lacks the heuristic-first marker", hf.DegradedReason)
	}
	if !strings.Contains(hf.DegradedReason, "GAC -> SAMC") ||
		!strings.Contains(hf.DegradedReason, "LPQC -> PRO") {
		t.Fatalf("DegradedReason %q does not name both downgrades", hf.DegradedReason)
	}

	plain, err := Run(context.Background(), sc, Config{
		Coverage:      CoverSAMC,
		CoveragePower: PowerGreen,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hf.Method != plain.Method {
		t.Fatalf("downgraded method %q != plain heuristic method %q", hf.Method, plain.Method)
	}
	if hf.PTotal != plain.PTotal {
		t.Fatalf("downgraded total power %v != plain heuristic %v", hf.PTotal, plain.PTotal)
	}
}

// TestHeuristicFirstNoOpOnHeuristicConfig: a request that already asks for
// the heuristics is untouched — not Degraded, so it stays cacheable.
func TestHeuristicFirstNoOpOnHeuristicConfig(t *testing.T) {
	sc := gen(t, 500, 12, 3)
	sol, err := Run(context.Background(), sc, Config{HeuristicFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Degraded {
		t.Fatalf("heuristic-only config was tagged Degraded: %q", sol.DegradedReason)
	}
}

// TestHeuristicFirstStillValidates: configuration errors must fail fast,
// never be masked by the downgrade.
func TestHeuristicFirstStillValidates(t *testing.T) {
	sc := gen(t, 500, 12, 3)
	_, err := Run(context.Background(), sc, Config{
		Coverage:       CoverageMethod(99),
		HeuristicFirst: true,
	})
	if err == nil {
		t.Fatal("unknown coverage method accepted under HeuristicFirst")
	}
}
