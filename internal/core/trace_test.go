package core

import (
	"context"
	"testing"
	"time"

	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
)

// TestSolveTraceStages: a context armed with a trace yields a span tree on
// Solution.Trace covering every pipeline stage, each with a real duration.
func TestSolveTraceStages(t *testing.T) {
	sc := degradeScenario(t)
	tr := obs.NewTrace("test")
	ctx := obs.WithTrace(context.Background(), tr)
	sol, err := Run(ctx, sc, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sol.Trace != tr {
		t.Fatal("Solution.Trace is not the trace armed on the context")
	}
	tr.Finish()
	doc := tr.Doc()
	for _, stage := range []string{"solve", "coverage", "coverage_power", "connectivity", "connectivity_power"} {
		sp := doc.Find(stage)
		if sp == nil {
			t.Errorf("trace lacks a %q span", stage)
			continue
		}
		if sp.DurNS <= 0 {
			t.Errorf("stage %q has non-positive duration %d", stage, sp.DurNS)
		}
	}
	solve := doc.Find("solve")
	if solve.Attrs["feasible"] != "true" {
		t.Errorf("solve span feasible = %q, want true", solve.Attrs["feasible"])
	}
	if solve.Attrs["method"] == "" {
		t.Error("solve span has no method attribute")
	}
	if solve.Attrs["degraded"] != "" {
		t.Errorf("full-fidelity solve carries degraded = %q", solve.Attrs["degraded"])
	}
	if doc.Count("zone") == 0 {
		t.Error("trace has no per-zone spans")
	}
}

// TestUntracedSolveLeavesTraceNil: without an armed context the solution
// carries no trace (and the solver did no span bookkeeping).
func TestUntracedSolveLeavesTraceNil(t *testing.T) {
	sol, err := Run(context.Background(), degradeScenario(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Trace != nil {
		t.Fatalf("untraced solve produced a trace: %+v", sol.Trace.Doc())
	}
}

// TestDegradedSolveTraceAttrs: a solve that fell back to a heuristic stage
// marks its root span degraded, names the reason, and records the fallback
// stage as its own span.
func TestDegradedSolveTraceAttrs(t *testing.T) {
	sc := degradeScenario(t)
	armFault(t, "milp.node=error") // every B&B solve fails -> GAC cannot succeed
	cfg := Config{Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond}
	tr := obs.NewTrace("test")
	sol, err := Run(obs.WithTrace(context.Background(), tr), sc, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sol.Degraded {
		t.Fatal("solution not degraded; fault plan did not bite")
	}
	tr.Finish()
	doc := tr.Doc()
	solve := doc.Find("solve")
	if solve == nil {
		t.Fatal("no solve span")
	}
	if solve.Attrs["degraded"] != "true" {
		t.Errorf("solve span degraded = %q, want true", solve.Attrs["degraded"])
	}
	if solve.Attrs["degraded_reason"] == "" {
		t.Error("solve span has no degraded_reason")
	}
	if doc.Find("coverage_fallback") == nil {
		t.Error("trace lacks the coverage_fallback span")
	}
	// The failed primary attempts each left an error-annotated span.
	if sp := doc.Find("coverage"); sp == nil || sp.Attrs["error"] == "" {
		t.Error("failed coverage attempt span missing its error attribute")
	}
}

// TestTruncatedSolutionSpanAttr checks the root-span wiring for wall-clock
// truncated coverage directly: truncation is load-dependent, so the
// integration path cannot be forced deterministically, but the attribute
// contract can.
func TestTruncatedSolutionSpanAttr(t *testing.T) {
	tr := obs.NewTrace("test")
	ctx := obs.WithSpan(context.Background(), tr.Root())
	_, span := obs.StartSpan(ctx, "solve")
	sol := &Solution{Feasible: true, Coverage: &lower.Result{Truncated: true}}
	finishSolveSpan(span, sol)
	span.End()
	if sol.Trace != tr {
		t.Fatal("finishSolveSpan did not attach the trace")
	}
	solve := tr.Doc().Find("solve")
	if solve.Attrs["truncated"] != "true" {
		t.Errorf("truncated coverage: solve span truncated = %q, want true", solve.Attrs["truncated"])
	}
	if solve.Attrs["feasible"] != "true" {
		t.Errorf("solve span feasible = %q, want true", solve.Attrs["feasible"])
	}
}
