package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// totalRetries and totalFallbacks count degradation-ladder activity
// process-wide, mirroring milp.TotalNodes: observability without threading
// counters through every caller. The solve service publishes both on
// /metrics.
var (
	totalRetries   atomic.Int64
	totalFallbacks atomic.Int64
)

// TotalRetries returns how many failed pipeline stages have been retried
// by the degradation ladder since process start.
func TotalRetries() int64 { return totalRetries.Load() }

// TotalFallbacks returns how many pipeline stages have fallen back to a
// heuristic algorithm since process start.
func TotalFallbacks() int64 { return totalFallbacks.Load() }

// ladder carries the degradation state of one pipeline run. Once the
// caller's deadline has expired it hands every remaining stage a single
// shared detached context bounded by Config.DegradeTimeout: degraded work
// deliberately outlives the original job deadline — the paper's heuristics
// are cheap, and a late approximate answer beats returning nothing — but
// the total overtime is bounded once, not per stage. Caller-initiated
// cancellation (context.Canceled) is never detached from: the client is
// gone or the server is shutting down, so the run aborts as before. A
// closed Config.HardStop likewise cancels the detached context, so forced
// shutdown interrupts overtime work that started before the shutdown.
type ladder struct {
	cfg      Config
	caller   context.Context
	detached context.Context
	cancel   context.CancelFunc
}

func newLadder(ctx context.Context, cfg Config) *ladder {
	return &ladder{cfg: cfg, caller: ctx}
}

func (l *ladder) close() {
	if l.cancel != nil {
		l.cancel()
	}
}

// stageCtx returns the context the next stage attempt should run under:
// the caller's while it is usable (or when degradation is off, or the
// caller cancelled), else the shared detached overtime context.
func (l *ladder) stageCtx() context.Context {
	if !l.cfg.Degrade || l.caller.Err() == nil || errors.Is(l.caller.Err(), context.Canceled) {
		return l.caller
	}
	if l.detached == nil {
		l.detached, l.cancel = context.WithTimeout(context.WithoutCancel(l.caller), l.cfg.DegradeTimeout)
		if stop := l.cfg.HardStop; stop != nil {
			// Overtime detaches from the caller's deadline, never from a
			// forced shutdown: cancel the detached context as soon as
			// HardStop closes. The watcher exits when the detached context
			// dies (ladder.close cancels it), so it cannot leak.
			cancel, done := l.cancel, l.detached.Done()
			go func() {
				select {
				case <-stop:
					cancel()
				case <-done:
				}
			}()
		}
	}
	return l.detached
}

// degradeRun executes one pipeline stage under the degradation ladder:
// run once; on a transient failure (injected fault, numerical breakdown)
// retry once after cfg.RetryBackoff; on failure again run the heuristic
// fallback (when the stage has one). A deadline-driven failure skips the
// exact retry when a fallback exists — re-running the same solve that just
// outran the clock would mostly burn the recovery budget the heuristic
// needs — and degrades immediately; without a fallback the retry under the
// detached context is the only recovery and is attempted anyway.
//
// A non-empty reason in the return marks the result as degraded — it came
// from the fallback, and reason records why the exact stage was abandoned.
// A retry that succeeds is not degraded: it produced the exact result,
// merely late.
func degradeRun[T any](l *ladder, run, fallback func(context.Context) (T, error)) (out T, reason string, err error) {
	sctx := l.stageCtx()
	out, err = run(sctx)
	if err == nil || !l.cfg.Degrade {
		return out, "", err
	}
	if errors.Is(l.caller.Err(), context.Canceled) {
		return out, "", err
	}
	firstErr := err

	if sctx.Err() == nil || fallback == nil {
		totalRetries.Add(1)
		time.Sleep(l.cfg.RetryBackoff)
		if errors.Is(l.caller.Err(), context.Canceled) {
			return out, "", firstErr
		}
		out, err = run(l.stageCtx())
		if err == nil {
			return out, "", nil
		}
		if fallback == nil {
			return out, "", firstErr
		}
	}

	totalFallbacks.Add(1)
	out, ferr := fallback(l.stageCtx())
	if ferr != nil {
		var zero T
		return zero, "", fmt.Errorf("%w (heuristic fallback also failed: %v)", firstErr, ferr)
	}
	return out, firstErr.Error(), nil
}

// degrade appends a stage's degradation reason to the solution.
func (s *Solution) degrade(stage, reason string) {
	if reason == "" {
		return
	}
	s.Degraded = true
	entry := stage + ": " + reason
	if s.DegradedReason != "" {
		s.DegradedReason += "; " + entry
	} else {
		s.DegradedReason = entry
	}
}
