// Package core assembles the paper's primary contribution: the SNR-Aware
// Green (SAG) relay pipeline of Algorithm 9, and the DARP-style baseline
// pipelines it is evaluated against (Section IV-D).
//
// A pipeline has four stages, each with the paper's algorithm choices:
//
//	coverage            SAMC (Alg. 1) | IAC | GAC (ILPQC, eqs. 3.1-3.5)
//	coverage power      PRO (Alg. 6) | LPQC-optimal | max-power baseline
//	connectivity        MBMC (Alg. 7) | MUST (single base station, [1])
//	connectivity power  UCPO (Alg. 8) | max-power baseline
//
// SAG is {SAMC, PRO, MBMC, UCPO}. The Fig. 7 baselines "X+DARP" keep X's
// coverage but follow [1] upstream: MUST to a single base station with all
// relays at maximum power and no power optimization on either tier.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sagrelay/internal/lower"
	"sagrelay/internal/scenario"
	"sagrelay/internal/upper"
)

// CoverageMethod selects the lower-tier placement algorithm.
type CoverageMethod int

// Coverage methods. (Enums start at 1 so the zero value is invalid.)
const (
	CoverSAMC CoverageMethod = iota + 1
	CoverIAC
	CoverGAC
)

// String renders the method name as used in the paper's figures.
func (m CoverageMethod) String() string {
	switch m {
	case CoverSAMC:
		return "SAMC"
	case CoverIAC:
		return "IAC"
	case CoverGAC:
		return "GAC"
	default:
		return fmt.Sprintf("CoverageMethod(%d)", int(m))
	}
}

// PowerMethod selects a power-allocation algorithm for either tier.
type PowerMethod int

// Power methods. (Enums start at 1 so the zero value is invalid.)
const (
	// PowerBaseline keeps every relay at PMax.
	PowerBaseline PowerMethod = iota + 1
	// PowerGreen runs the tier's green algorithm (PRO below, UCPO above).
	PowerGreen
	// PowerOptimal solves the tier's exact optimum (LPQC; lower tier only).
	PowerOptimal
)

// String renders the method.
func (m PowerMethod) String() string {
	switch m {
	case PowerBaseline:
		return "baseline"
	case PowerGreen:
		return "green"
	case PowerOptimal:
		return "optimal"
	default:
		return fmt.Sprintf("PowerMethod(%d)", int(m))
	}
}

// ConnectivityMethod selects the upper-tier tree algorithm.
type ConnectivityMethod int

// Connectivity methods. (Enums start at 1 so the zero value is invalid.)
const (
	// ConnMBMC attaches every coverage relay toward its nearest base
	// station (Alg. 7).
	ConnMBMC ConnectivityMethod = iota + 1
	// ConnMUST forces a single base station (the baseline of [1]).
	ConnMUST
)

// String renders the method.
func (m ConnectivityMethod) String() string {
	switch m {
	case ConnMBMC:
		return "MBMC"
	case ConnMUST:
		return "MUST"
	default:
		return fmt.Sprintf("ConnectivityMethod(%d)", int(m))
	}
}

// Config selects and tunes the pipeline stages.
type Config struct {
	// Coverage selects the lower-tier algorithm; zero means SAMC.
	Coverage CoverageMethod
	// CoveragePower selects the lower-tier power stage; zero means green
	// (PRO).
	CoveragePower PowerMethod
	// Connectivity selects the upper-tier algorithm; zero means MBMC.
	Connectivity ConnectivityMethod
	// ConnectivityPower selects the upper-tier power stage; zero means
	// green (UCPO).
	ConnectivityPower PowerMethod
	// MUSTBaseStation is the forced base station index for ConnMUST.
	MUSTBaseStation int
	// SAMC tunes the SAMC heuristic.
	SAMC lower.SAMCOptions
	// ILP tunes the IAC/GAC formulations.
	ILP lower.ILPOptions
	// Workers bounds zone-level solve concurrency across the pipeline
	// stages; 0 means runtime.GOMAXPROCS(0). It fills SAMC.Workers and
	// ILP.Workers unless those are set individually. Results are identical
	// for any worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Coverage == 0 {
		c.Coverage = CoverSAMC
	}
	if c.SAMC.Workers == 0 {
		c.SAMC.Workers = c.Workers
	}
	if c.ILP.Workers == 0 {
		c.ILP.Workers = c.Workers
	}
	if c.CoveragePower == 0 {
		c.CoveragePower = PowerGreen
	}
	if c.Connectivity == 0 {
		c.Connectivity = ConnMBMC
	}
	if c.ConnectivityPower == 0 {
		c.ConnectivityPower = PowerGreen
	}
	return c
}

// Solution is a fully solved deployment: both tiers plus power allocations.
type Solution struct {
	// Feasible is false when the coverage stage could not satisfy every
	// subscriber; the remaining fields are then zero.
	Feasible bool
	// Coverage is the lower-tier placement.
	Coverage *lower.Result
	// CoveragePower allocates power to the coverage relays.
	CoveragePower *lower.PowerAllocation
	// Connectivity is the upper-tier plan.
	Connectivity *upper.Result
	// ConnectivityPower allocates power to the connectivity relays.
	ConnectivityPower *upper.PowerAllocation
	// PL, PH and PTotal are the paper's lower-tier, upper-tier and total
	// power costs (Alg. 9, Steps 3-6).
	PL, PH, PTotal float64
	// Elapsed is the end-to-end wall-clock time.
	Elapsed time.Duration
	// Method describes the pipeline, e.g. "SAG" or "SAMC+DARP".
	Method string
}

// TotalRelays returns the number of placed relays across both tiers.
func (s *Solution) TotalRelays() int {
	if !s.Feasible {
		return 0
	}
	return s.Coverage.NumRelays() + s.Connectivity.NumRelays()
}

// ErrInfeasible mirrors lower.ErrInfeasible at the pipeline level.
var ErrInfeasible = lower.ErrInfeasible

// SAG runs Algorithm 9 with the default stages (SAMC + PRO + MBMC + UCPO):
// L_low <- SAMC; P_L <- PRO; L_high <- MBMC; P_H <- UCPO; P_total = P_L+P_H.
func SAG(sc *scenario.Scenario, cfg Config) (*Solution, error) {
	return SAGContext(context.Background(), sc, cfg)
}

// SAGContext is SAG with cooperative cancellation; see RunContext.
func SAGContext(ctx context.Context, sc *scenario.Scenario, cfg Config) (*Solution, error) {
	cfg = cfg.withDefaults()
	sol, err := RunContext(ctx, sc, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Coverage == CoverSAMC && cfg.CoveragePower == PowerGreen &&
		cfg.Connectivity == ConnMBMC && cfg.ConnectivityPower == PowerGreen {
		sol.Method = "SAG"
	}
	return sol, nil
}

// DARP runs an "X+DARP" baseline pipeline (Section IV-D): coverage by the
// given method, then the upstream approach of [1] — MUST to a single base
// station with every relay at maximum power on both tiers.
func DARP(sc *scenario.Scenario, coverage CoverageMethod, cfg Config) (*Solution, error) {
	return DARPContext(context.Background(), sc, coverage, cfg)
}

// DARPContext is DARP with cooperative cancellation; see RunContext.
func DARPContext(ctx context.Context, sc *scenario.Scenario, coverage CoverageMethod, cfg Config) (*Solution, error) {
	cfg.Coverage = coverage
	cfg.CoveragePower = PowerBaseline
	cfg.Connectivity = ConnMUST
	cfg.ConnectivityPower = PowerBaseline
	sol, err := RunContext(ctx, sc, cfg)
	if err != nil {
		return nil, err
	}
	sol.Method = coverage.String() + "+DARP"
	return sol, nil
}

// Run executes an arbitrary pipeline configuration.
func Run(sc *scenario.Scenario, cfg Config) (*Solution, error) {
	return RunContext(context.Background(), sc, cfg)
}

// RunContext executes an arbitrary pipeline configuration under ctx. The
// context is threaded through every stage down to the branch-and-bound
// node loops and simplex pivot iterations, so a client disconnect, per-job
// deadline or server shutdown cancels an in-flight solve promptly; the
// returned error then wraps ctx.Err(). Cancellation never changes the
// result of a solve that completes: the checks only abort work, they do
// not reorder it.
func RunContext(ctx context.Context, sc *scenario.Scenario, cfg Config) (*Solution, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var cover *lower.Result
	var err error
	switch cfg.Coverage {
	case CoverSAMC:
		cover, err = lower.SAMCContext(ctx, sc, cfg.SAMC)
	case CoverIAC:
		cover, err = lower.IACContext(ctx, sc, cfg.ILP)
	case CoverGAC:
		cover, err = lower.GACContext(ctx, sc, cfg.ILP)
	default:
		return nil, fmt.Errorf("core: unknown coverage method %v", cfg.Coverage)
	}
	if err != nil {
		return nil, fmt.Errorf("core: coverage: %w", err)
	}
	sol := &Solution{Method: pipelineName(cfg)}
	if !cover.Feasible {
		sol.Coverage = cover
		sol.Elapsed = time.Since(start)
		return sol, nil
	}

	var coverPower *lower.PowerAllocation
	switch cfg.CoveragePower {
	case PowerBaseline:
		coverPower = lower.BaselinePower(sc, cover)
	case PowerGreen:
		coverPower, err = lower.PROContext(ctx, sc, cover)
	case PowerOptimal:
		coverPower, err = lower.OptimalPowerContext(ctx, sc, cover)
	default:
		return nil, fmt.Errorf("core: unknown coverage power method %v", cfg.CoveragePower)
	}
	if err != nil {
		return nil, fmt.Errorf("core: coverage power: %w", err)
	}

	var conn *upper.Result
	switch cfg.Connectivity {
	case ConnMBMC:
		conn, err = upper.MBMCContext(ctx, sc, cover)
	case ConnMUST:
		conn, err = upper.MUSTContext(ctx, sc, cover, cfg.MUSTBaseStation)
	default:
		return nil, fmt.Errorf("core: unknown connectivity method %v", cfg.Connectivity)
	}
	if err != nil {
		return nil, fmt.Errorf("core: connectivity: %w", err)
	}

	var connPower *upper.PowerAllocation
	switch cfg.ConnectivityPower {
	case PowerBaseline:
		connPower = upper.BaselinePower(sc, conn)
	case PowerGreen:
		connPower, err = upper.UCPOContext(ctx, sc, cover, conn)
	case PowerOptimal:
		return nil, errors.New("core: optimal power is only defined for the lower tier (LPQC)")
	default:
		return nil, fmt.Errorf("core: unknown connectivity power method %v", cfg.ConnectivityPower)
	}
	if err != nil {
		return nil, fmt.Errorf("core: connectivity power: %w", err)
	}

	sol.Feasible = true
	sol.Coverage = cover
	sol.CoveragePower = coverPower
	sol.Connectivity = conn
	sol.ConnectivityPower = connPower
	sol.PL = coverPower.Total
	sol.PH = connPower.Total
	sol.PTotal = sol.PL + sol.PH
	sol.Elapsed = time.Since(start)
	return sol, nil
}

func pipelineName(cfg Config) string {
	return fmt.Sprintf("%s/%s+%s/%s",
		cfg.Coverage, cfg.CoveragePower, cfg.Connectivity, cfg.ConnectivityPower)
}
