// Package core assembles the paper's primary contribution: the SNR-Aware
// Green (SAG) relay pipeline of Algorithm 9, and the DARP-style baseline
// pipelines it is evaluated against (Section IV-D).
//
// A pipeline has four stages, each with the paper's algorithm choices:
//
//	coverage            SAMC (Alg. 1) | IAC | GAC (ILPQC, eqs. 3.1-3.5)
//	coverage power      PRO (Alg. 6) | LPQC-optimal | max-power baseline
//	connectivity        MBMC (Alg. 7) | MUST (single base station, [1])
//	connectivity power  UCPO (Alg. 8) | max-power baseline
//
// SAG is {SAMC, PRO, MBMC, UCPO}. The Fig. 7 baselines "X+DARP" keep X's
// coverage but follow [1] upstream: MUST to a single base station with all
// relays at maximum power and no power optimization on either tier.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
	"sagrelay/internal/upper"
)

// CoverageMethod selects the lower-tier placement algorithm.
type CoverageMethod int

// Coverage methods. (Enums start at 1 so the zero value is invalid.)
const (
	CoverSAMC CoverageMethod = iota + 1
	CoverIAC
	CoverGAC
)

// String renders the method name as used in the paper's figures.
func (m CoverageMethod) String() string {
	switch m {
	case CoverSAMC:
		return "SAMC"
	case CoverIAC:
		return "IAC"
	case CoverGAC:
		return "GAC"
	default:
		return fmt.Sprintf("CoverageMethod(%d)", int(m))
	}
}

// PowerMethod selects a power-allocation algorithm for either tier.
type PowerMethod int

// Power methods. (Enums start at 1 so the zero value is invalid.)
const (
	// PowerBaseline keeps every relay at PMax.
	PowerBaseline PowerMethod = iota + 1
	// PowerGreen runs the tier's green algorithm (PRO below, UCPO above).
	PowerGreen
	// PowerOptimal solves the tier's exact optimum (LPQC; lower tier only).
	PowerOptimal
)

// String renders the method.
func (m PowerMethod) String() string {
	switch m {
	case PowerBaseline:
		return "baseline"
	case PowerGreen:
		return "green"
	case PowerOptimal:
		return "optimal"
	default:
		return fmt.Sprintf("PowerMethod(%d)", int(m))
	}
}

// ConnectivityMethod selects the upper-tier tree algorithm.
type ConnectivityMethod int

// Connectivity methods. (Enums start at 1 so the zero value is invalid.)
const (
	// ConnMBMC attaches every coverage relay toward its nearest base
	// station (Alg. 7).
	ConnMBMC ConnectivityMethod = iota + 1
	// ConnMUST forces a single base station (the baseline of [1]).
	ConnMUST
)

// String renders the method.
func (m ConnectivityMethod) String() string {
	switch m {
	case ConnMBMC:
		return "MBMC"
	case ConnMUST:
		return "MUST"
	default:
		return fmt.Sprintf("ConnectivityMethod(%d)", int(m))
	}
}

// Config selects and tunes the pipeline stages.
type Config struct {
	// Coverage selects the lower-tier algorithm; zero means SAMC.
	Coverage CoverageMethod
	// CoveragePower selects the lower-tier power stage; zero means green
	// (PRO).
	CoveragePower PowerMethod
	// Connectivity selects the upper-tier algorithm; zero means MBMC.
	Connectivity ConnectivityMethod
	// ConnectivityPower selects the upper-tier power stage; zero means
	// green (UCPO).
	ConnectivityPower PowerMethod
	// MUSTBaseStation is the forced base station index for ConnMUST.
	MUSTBaseStation int
	// SAMC tunes the SAMC heuristic.
	SAMC lower.SAMCOptions
	// ILP tunes the IAC/GAC formulations.
	ILP lower.ILPOptions
	// Workers bounds zone-level solve concurrency across the pipeline
	// stages; 0 means runtime.GOMAXPROCS(0). It fills SAMC.Workers and
	// ILP.Workers unless those are set individually. Results are identical
	// for any worker count.
	Workers int
	// Degrade enables the graceful-degradation ladder: a pipeline stage
	// that fails or blows its deadline is retried once after RetryBackoff,
	// then replaced by the paper's heuristic for that stage (coverage
	// ILP -> SAMC, optimal power -> PRO, green power -> max-power
	// baseline). A solution produced this way is tagged Degraded with the
	// reason. Caller-initiated cancellation (context.Canceled) never
	// degrades — it aborts, as before.
	Degrade bool
	// RetryBackoff is the pause before the single retry (default 100ms).
	RetryBackoff time.Duration
	// DegradeTimeout bounds retry/fallback work when the original context
	// deadline has already expired (default 30s).
	DegradeTimeout time.Duration
	// HeuristicFirst downgrades the exact stages to the paper's heuristics
	// before the pipeline runs: coverage IAC/GAC become SAMC and the
	// optimal lower-tier power stage (LPQC) becomes PRO. The solve service
	// sets it while its overload circuit breaker is open, so doomed exact
	// attempts are skipped instead of timing out into the same fallbacks.
	// A downgrade that actually changed the configuration tags the solution
	// Degraded (keeping it out of byte-identical result caches); a request
	// that was already heuristic-only is unaffected.
	HeuristicFirst bool
	// HardStop, when non-nil, force-aborts degrade overtime: the ladder's
	// detached overtime context — which deliberately outlives the caller's
	// *deadline* — is additionally cancelled when this channel closes, so
	// overtime work never outlives a forced shutdown. The solve service
	// passes its shutdown signal here; a nil channel preserves the plain
	// deadline-detached behaviour.
	HardStop <-chan struct{}
	// ZonePowerCache, when non-nil, switches the green coverage-power stage
	// to the per-zone PRO decomposition (lower.PROZoned), which caches and
	// reuses per-zone power blocks. Bit-identical to the global PRO.
	ZonePowerCache lower.ZonePowerCache
	// UpperCache, when non-nil, caches the whole connectivity stage (tree +
	// power) keyed by upper.CacheKey: when a re-solve leaves the coverage
	// relay set unchanged, both upper stages are spliced from cache instead
	// of re-run. Degraded upper results are never stored.
	UpperCache UpperCache
}

// UpperEntry is one cached connectivity-stage outcome: the tree and its
// power allocation, both treated as immutable shared values.
type UpperEntry struct {
	Conn  *upper.Result
	Power *upper.PowerAllocation
}

// UpperCache caches connectivity-stage results by upper.CacheKey.
type UpperCache interface {
	Get(key string) (*UpperEntry, bool)
	Put(key string, e *UpperEntry)
}

func (c Config) withDefaults() Config {
	if c.Coverage == 0 {
		c.Coverage = CoverSAMC
	}
	if c.SAMC.Workers == 0 {
		c.SAMC.Workers = c.Workers
	}
	if c.ILP.Workers == 0 {
		c.ILP.Workers = c.Workers
	}
	if c.CoveragePower == 0 {
		c.CoveragePower = PowerGreen
	}
	if c.Connectivity == 0 {
		c.Connectivity = ConnMBMC
	}
	if c.ConnectivityPower == 0 {
		c.ConnectivityPower = PowerGreen
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.DegradeTimeout <= 0 {
		c.DegradeTimeout = 30 * time.Second
	}
	return c
}

// Solution is a fully solved deployment: both tiers plus power allocations.
type Solution struct {
	// Feasible is false when the coverage stage could not satisfy every
	// subscriber; the remaining fields are then zero.
	Feasible bool
	// Coverage is the lower-tier placement.
	Coverage *lower.Result
	// CoveragePower allocates power to the coverage relays.
	CoveragePower *lower.PowerAllocation
	// Connectivity is the upper-tier plan.
	Connectivity *upper.Result
	// ConnectivityPower allocates power to the connectivity relays.
	ConnectivityPower *upper.PowerAllocation
	// PL, PH and PTotal are the paper's lower-tier, upper-tier and total
	// power costs (Alg. 9, Steps 3-6).
	PL, PH, PTotal float64
	// Elapsed is the end-to-end wall-clock time.
	Elapsed time.Duration
	// Method describes the requested pipeline, e.g. "SAG" or "SAMC+DARP".
	// When Degraded is true one or more stages actually ran a heuristic
	// substitute instead; DegradedReason says which and why.
	Method string
	// Degraded reports an approximate, timing-dependent solution: either a
	// stage fell back to a heuristic after the exact algorithm failed or
	// blew its deadline (Config.Degrade), or a zone's branch-and-bound
	// search was truncated by its wall-clock time limit and contributed a
	// load-dependent incumbent (lower.Result.Truncated). Degraded results
	// must never enter deterministic, content-addressed caches.
	Degraded bool
	// DegradedReason records each degraded stage and its cause.
	DegradedReason string
	// Trace is the span tree of this solve when the caller attached one to
	// the context (obs.WithTrace); nil otherwise. It carries per-stage
	// timings and attributes (zone counts, B&B nodes, degradation markers)
	// and serializes via (*obs.Trace).Doc.
	Trace *obs.Trace
}

// TotalRelays returns the number of placed relays across both tiers.
func (s *Solution) TotalRelays() int {
	if !s.Feasible {
		return 0
	}
	return s.Coverage.NumRelays() + s.Connectivity.NumRelays()
}

// ErrInfeasible mirrors lower.ErrInfeasible at the pipeline level.
var ErrInfeasible = lower.ErrInfeasible

// SAG runs Algorithm 9 with the default stages (SAMC + PRO + MBMC + UCPO):
// L_low <- SAMC; P_L <- PRO; L_high <- MBMC; P_H <- UCPO; P_total = P_L+P_H.
// Cancellation behaves as in Run.
func SAG(ctx context.Context, sc *scenario.Scenario, cfg Config) (*Solution, error) {
	cfg = cfg.withDefaults()
	sol, err := Run(ctx, sc, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Coverage == CoverSAMC && cfg.CoveragePower == PowerGreen &&
		cfg.Connectivity == ConnMBMC && cfg.ConnectivityPower == PowerGreen {
		sol.Method = "SAG"
	}
	return sol, nil
}

// DARP runs an "X+DARP" baseline pipeline (Section IV-D): coverage by the
// given method, then the upstream approach of [1] — MUST to a single base
// station with every relay at maximum power on both tiers. Cancellation
// behaves as in Run.
func DARP(ctx context.Context, sc *scenario.Scenario, coverage CoverageMethod, cfg Config) (*Solution, error) {
	cfg.Coverage = coverage
	cfg.CoveragePower = PowerBaseline
	cfg.Connectivity = ConnMUST
	cfg.ConnectivityPower = PowerBaseline
	sol, err := Run(ctx, sc, cfg)
	if err != nil {
		return nil, err
	}
	sol.Method = coverage.String() + "+DARP"
	return sol, nil
}

// traced wraps a stage function so every invocation — first attempt, retry
// and fallback each get their own — records a child span named after the
// stage. A nil fn (no fallback) stays nil so the ladder's "has a fallback"
// checks keep working.
func traced[T any](name string, fn func(context.Context) (T, error)) func(context.Context) (T, error) {
	if fn == nil {
		return nil
	}
	return func(c context.Context) (T, error) {
		c, span := obs.StartSpan(c, name)
		v, err := fn(c)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		return v, err
	}
}

// Run executes an arbitrary pipeline configuration under ctx. The context
// is threaded through every stage down to the branch-and-bound node loops
// and simplex pivot iterations, so a client disconnect, per-job deadline or
// server shutdown cancels an in-flight solve promptly; the returned error
// then wraps ctx.Err(). Cancellation never changes the result of a solve
// that completes: the checks only abort work, they do not reorder it.
//
// With Config.Degrade set, a stage that fails or exceeds the deadline is
// retried once and then replaced by the paper's heuristic for that stage
// (see Config.Degrade); the solution is then tagged Degraded. A context
// cancelled by the caller (context.Canceled) still aborts unconditionally.
//
// When ctx carries an obs trace, Run opens a "solve" span with one child
// per pipeline stage (coverage, coverage_power, connectivity,
// connectivity_power; fallback runs get a "_fallback" suffix) and attaches
// the trace to Solution.Trace. Instrumentation never reorders work, so
// traced and untraced solves are bit-identical.
func Run(ctx context.Context, sc *scenario.Scenario, cfg Config) (*Solution, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Validate method selections before any stage runs: a configuration
	// error must fail fast, never be retried or masked by a heuristic
	// fallback.
	switch cfg.Coverage {
	case CoverSAMC, CoverIAC, CoverGAC:
	default:
		return nil, fmt.Errorf("core: unknown coverage method %v", cfg.Coverage)
	}
	switch cfg.CoveragePower {
	case PowerBaseline, PowerGreen, PowerOptimal:
	default:
		return nil, fmt.Errorf("core: unknown coverage power method %v", cfg.CoveragePower)
	}
	switch cfg.Connectivity {
	case ConnMBMC, ConnMUST:
	default:
		return nil, fmt.Errorf("core: unknown connectivity method %v", cfg.Connectivity)
	}
	switch cfg.ConnectivityPower {
	case PowerBaseline, PowerGreen:
	case PowerOptimal:
		return nil, errors.New("core: optimal power is only defined for the lower tier (LPQC)")
	default:
		return nil, fmt.Errorf("core: unknown connectivity power method %v", cfg.ConnectivityPower)
	}

	// Heuristic-first mode rewrites the exact stages to their heuristic
	// substitutes up front — after validation (a bad method must still fail
	// fast) and before the span opens (the method attribute reports what
	// actually runs). Each real downgrade is noted so the solution carries
	// the Degraded tag exactly when the answer differs from the requested
	// pipeline's.
	var heuristicNotes []string
	if cfg.HeuristicFirst {
		if cfg.Coverage == CoverIAC || cfg.Coverage == CoverGAC {
			heuristicNotes = append(heuristicNotes,
				"coverage: "+cfg.Coverage.String()+" -> SAMC")
			cfg.Coverage = CoverSAMC
		}
		if cfg.CoveragePower == PowerOptimal {
			heuristicNotes = append(heuristicNotes, "coverage power: LPQC -> PRO")
			cfg.CoveragePower = PowerGreen
		}
	}

	// The solve span opens before the ladder captures ctx: the ladder's
	// detached overtime context is built with context.WithoutCancel, which
	// preserves values, so even overtime fallback work attaches its stage
	// spans under this root.
	ctx, span := obs.StartSpan(ctx, "solve")
	defer span.End()
	span.SetAttr("method", pipelineName(cfg))

	l := newLadder(ctx, cfg)
	defer l.close()

	// Coverage: the exact ILP formulations degrade to the paper's SAMC
	// heuristic; SAMC itself has no cheaper substitute (it still gets the
	// single retry for transient faults).
	coverRun := traced("coverage", func(c context.Context) (*lower.Result, error) {
		switch cfg.Coverage {
		case CoverSAMC:
			return lower.SAMC(c, sc, cfg.SAMC)
		case CoverIAC:
			return lower.IAC(c, sc, cfg.ILP)
		case CoverGAC:
			return lower.GAC(c, sc, cfg.ILP)
		default:
			return nil, fmt.Errorf("core: unknown coverage method %v", cfg.Coverage)
		}
	})
	var coverFallback func(context.Context) (*lower.Result, error)
	if cfg.Coverage != CoverSAMC {
		coverFallback = traced("coverage_fallback", func(c context.Context) (*lower.Result, error) {
			return lower.SAMC(c, sc, cfg.SAMC)
		})
	}
	cover, coverReason, err := degradeRun(l, coverRun, coverFallback)
	if err != nil {
		return nil, fmt.Errorf("core: coverage: %w", err)
	}
	sol := &Solution{Method: pipelineName(cfg)}
	for _, note := range heuristicNotes {
		sol.degrade(note, "heuristic-first mode (overload circuit breaker)")
	}
	sol.degrade("coverage: "+cfg.Coverage.String()+" -> SAMC", coverReason)
	if cover.Truncated {
		// A zone's branch-and-bound was cut short by the wall-clock zone time
		// limit: the incumbent is approximate and load-dependent, so the
		// solution must carry the Degraded tag that keeps it out of the
		// byte-identical result cache (see internal/serve).
		sol.degrade("coverage: "+cfg.Coverage.String(),
			"zone time limit truncated branch and bound; incumbent is load-dependent")
	}
	if !cover.Feasible {
		sol.Coverage = cover
		sol.Elapsed = time.Since(start)
		finishSolveSpan(span, sol)
		return sol, nil
	}

	// Coverage power: the exact LPQC optimum degrades to PRO, PRO to the
	// max-power baseline (always feasible by construction).
	powerRun := traced("coverage_power", func(c context.Context) (*lower.PowerAllocation, error) {
		switch cfg.CoveragePower {
		case PowerBaseline:
			return lower.BaselinePower(sc, cover), nil
		case PowerGreen:
			return lower.PROZoned(c, sc, cover, cfg.ZonePowerCache)
		case PowerOptimal:
			return lower.OptimalPower(c, sc, cover)
		default:
			return nil, fmt.Errorf("core: unknown coverage power method %v", cfg.CoveragePower)
		}
	})
	var powerFallback func(context.Context) (*lower.PowerAllocation, error)
	var powerLadder string
	switch cfg.CoveragePower {
	case PowerOptimal:
		powerLadder = "coverage power: LPQC -> PRO"
		powerFallback = traced("coverage_power_fallback", func(c context.Context) (*lower.PowerAllocation, error) {
			return lower.PRO(c, sc, cover)
		})
	case PowerGreen:
		powerLadder = "coverage power: PRO -> baseline"
		powerFallback = traced("coverage_power_fallback", func(context.Context) (*lower.PowerAllocation, error) {
			return lower.BaselinePower(sc, cover), nil
		})
	}
	coverPower, powerReason, err := degradeRun(l, powerRun, powerFallback)
	if err != nil {
		return nil, fmt.Errorf("core: coverage power: %w", err)
	}
	sol.degrade(powerLadder, powerReason)

	// Connectivity + connectivity power: the upper tier's inputs are fully
	// captured by upper.CacheKey (method, model, base stations, demands,
	// and the coverage relay set), so when an UpperCache is configured and
	// holds the key, both stages are spliced verbatim — the tree and power
	// algorithms are deterministic, so the splice is byte-identical to
	// re-running them. The key changes whenever the relay set changes,
	// which is the only way a scenario delta can reach the upper tier.
	var (
		conn      *upper.Result
		connPower *upper.PowerAllocation
	)
	upperKey := ""
	spliced := false
	if cfg.UpperCache != nil {
		upperKey = upper.CacheKey(sc, cover, cfg.Connectivity.String(), cfg.MUSTBaseStation, cfg.ConnectivityPower.String())
		if e, ok := cfg.UpperCache.Get(upperKey); ok && e != nil && e.Conn != nil && e.Power != nil {
			conn, connPower = e.Conn, e.Power
			spliced = true
			span.SetBool("upper_splice", true)
		}
	}
	if !spliced {
		// Connectivity: MBMC/MUST are cheap tree constructions with no cheaper
		// substitute, so the ladder has no fallback here — only the retry (which
		// detaches from a blown deadline) applies.
		connRun := traced("connectivity", func(c context.Context) (*upper.Result, error) {
			switch cfg.Connectivity {
			case ConnMBMC:
				return upper.MBMC(c, sc, cover)
			case ConnMUST:
				return upper.MUST(c, sc, cover, cfg.MUSTBaseStation)
			default:
				return nil, fmt.Errorf("core: unknown connectivity method %v", cfg.Connectivity)
			}
		})
		conn, _, err = degradeRun(l, connRun, nil)
		if err != nil {
			return nil, fmt.Errorf("core: connectivity: %w", err)
		}

		// Connectivity power: UCPO degrades to the max-power baseline.
		connPowerRun := traced("connectivity_power", func(c context.Context) (*upper.PowerAllocation, error) {
			switch cfg.ConnectivityPower {
			case PowerBaseline:
				return upper.BaselinePower(sc, conn), nil
			case PowerGreen:
				return upper.UCPO(c, sc, cover, conn)
			case PowerOptimal:
				return nil, errors.New("core: optimal power is only defined for the lower tier (LPQC)")
			default:
				return nil, fmt.Errorf("core: unknown connectivity power method %v", cfg.ConnectivityPower)
			}
		})
		var connPowerFallback func(context.Context) (*upper.PowerAllocation, error)
		if cfg.ConnectivityPower == PowerGreen {
			connPowerFallback = traced("connectivity_power_fallback", func(context.Context) (*upper.PowerAllocation, error) {
				return upper.BaselinePower(sc, conn), nil
			})
		}
		var connPowerReason string
		connPower, connPowerReason, err = degradeRun(l, connPowerRun, connPowerFallback)
		if err != nil {
			return nil, fmt.Errorf("core: connectivity power: %w", err)
		}
		sol.degrade("connectivity power: UCPO -> baseline", connPowerReason)
		if cfg.UpperCache != nil && connPowerReason == "" {
			cfg.UpperCache.Put(upperKey, &UpperEntry{Conn: conn, Power: connPower})
		}
	}

	sol.Feasible = true
	sol.Coverage = cover
	sol.CoveragePower = coverPower
	sol.Connectivity = conn
	sol.ConnectivityPower = connPower
	sol.PL = coverPower.Total
	sol.PH = connPower.Total
	sol.PTotal = sol.PL + sol.PH
	sol.Elapsed = time.Since(start)
	finishSolveSpan(span, sol)
	return sol, nil
}

// finishSolveSpan stamps the solve outcome onto the root solve span and
// hands the trace to the solution for serialization. Nil-safe when tracing
// is disarmed.
func finishSolveSpan(span *obs.Span, sol *Solution) {
	span.SetBool("feasible", sol.Feasible)
	if sol.Degraded {
		span.SetBool("degraded", true)
		span.SetAttr("degraded_reason", sol.DegradedReason)
	}
	if sol.Coverage != nil && sol.Coverage.Truncated {
		span.SetBool("truncated", true)
	}
	sol.Trace = span.Trace()
}

func pipelineName(cfg Config) string {
	return fmt.Sprintf("%s/%s+%s/%s",
		cfg.Coverage, cfg.CoveragePower, cfg.Connectivity, cfg.ConnectivityPower)
}
