package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"sagrelay/internal/fault"
	"sagrelay/internal/lower"
	"sagrelay/internal/scenario"
)

func degradeScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: 300, NumSS: 8, NumBS: 2, SNRdB: -15, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// armFault installs a fault plan for the test and disarms it at cleanup.
func armFault(t *testing.T, spec string) {
	t.Helper()
	if err := fault.EnableSpec(spec, 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)
}

func TestDegradeFallsBackToSAMC(t *testing.T) {
	sc := degradeScenario(t)
	armFault(t, "milp.node=error") // every B&B solve fails -> GAC cannot succeed
	cfg := Config{Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond}

	retriesBefore, fallbacksBefore := TotalRetries(), TotalFallbacks()
	sol, err := Run(context.Background(), sc, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !sol.Degraded {
		t.Fatal("solution not marked Degraded after coverage fallback")
	}
	if !strings.Contains(sol.DegradedReason, "GAC -> SAMC") {
		t.Fatalf("DegradedReason = %q, want mention of GAC -> SAMC", sol.DegradedReason)
	}
	if !sol.Feasible {
		t.Fatal("degraded solution infeasible; SAMC should cover this scenario")
	}
	if err := sol.Coverage.Verify(sc, true); err != nil {
		t.Fatalf("degraded coverage does not verify: %v", err)
	}
	if TotalRetries() <= retriesBefore {
		t.Fatal("TotalRetries did not increase")
	}
	if TotalFallbacks() <= fallbacksBefore {
		t.Fatal("TotalFallbacks did not increase")
	}
}

func TestDegradeDisabledStillFails(t *testing.T) {
	sc := degradeScenario(t)
	armFault(t, "milp.node=error")
	cfg := Config{Coverage: CoverGAC} // Degrade off

	_, err := Run(context.Background(), sc, cfg)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want wrapping fault.ErrInjected", err)
	}
}

func TestDegradeSkipsOnCallerCancel(t *testing.T) {
	sc := degradeScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond}

	fallbacksBefore := TotalFallbacks()
	_, err := Run(ctx, sc, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if TotalFallbacks() != fallbacksBefore {
		t.Fatal("caller cancellation must not trigger a fallback")
	}
}

func TestDegradeExpiredDeadlineRunsInOvertime(t *testing.T) {
	// A deadline that expired before the pipeline even started: every stage
	// runs under the shared detached overtime budget and succeeds at full
	// fidelity — the result is NOT degraded, just late.
	sc := degradeScenario(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// Full fidelity requires the deterministic node cap to be the binding
	// budget: a reachable wall-clock zone limit would truncate the search
	// and (correctly) mark the solution Degraded.
	cfg := Config{
		Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond,
		ILP: lower.ILPOptions{TimeLimit: time.Hour},
	}

	sol, err := Run(ctx, sc, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if sol.Degraded {
		t.Fatalf("overtime run succeeded at full fidelity but solution marked Degraded: %q", sol.DegradedReason)
	}
	if !sol.Feasible {
		t.Fatal("expected feasible solution from overtime run")
	}
}

func TestDegradeHardStopAbortsOvertime(t *testing.T) {
	// Same setup as TestDegradeExpiredDeadlineRunsInOvertime — the caller's
	// deadline expired before the pipeline started, so every stage runs on
	// the detached overtime context — but HardStop is already closed (the
	// server force-shut down). Overtime must abort instead of running out
	// the DegradeTimeout budget.
	sc := degradeScenario(t)
	armFault(t, "milp.node=delay:d=200ms:n=1") // hold the stage until the watcher fires
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	stop := make(chan struct{})
	close(stop)
	cfg := Config{
		Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond,
		HardStop: stop,
	}

	start := time.Now()
	_, err := Run(ctx, sc, cfg)
	if err == nil {
		t.Fatal("overtime run under a closed HardStop succeeded; want cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("HardStop took %v to unwind; want prompt abort", elapsed)
	}
}

func TestDegradeMidRunDeadlineFallsBackWithoutRetry(t *testing.T) {
	// The deadline blows while the first attempt is inside branch-and-bound
	// (an injected delay outlasts it). Re-running the exact solve that just
	// outran the clock would burn the recovery budget, so the ladder skips
	// the retry and goes straight to the SAMC fallback.
	sc := degradeScenario(t)
	armFault(t, "milp.node=delay:d=500ms:n=1")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	cfg := Config{Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond}

	retriesBefore, fallbacksBefore := TotalRetries(), TotalFallbacks()
	sol, err := Run(ctx, sc, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !sol.Degraded || !sol.Feasible {
		t.Fatalf("Degraded = %v, Feasible = %v; want degraded feasible solution", sol.Degraded, sol.Feasible)
	}
	if !strings.Contains(sol.DegradedReason, "GAC -> SAMC") {
		t.Fatalf("DegradedReason = %q, want mention of GAC -> SAMC", sol.DegradedReason)
	}
	if TotalFallbacks() <= fallbacksBefore {
		t.Fatal("TotalFallbacks did not increase")
	}
	if TotalRetries() != retriesBefore {
		t.Fatalf("deadline failure with a fallback must not retry the exact solve (retries %d -> %d)",
			retriesBefore, TotalRetries())
	}
}

func TestDegradeTransientErrorRecoveredByRetry(t *testing.T) {
	// A fault that fires exactly once: the first attempt fails, the retry
	// runs clean and produces the full-fidelity result — no fallback.
	sc := degradeScenario(t)
	armFault(t, "milp.node=error:n=1")
	// Wall-clock zone limit out of reach: the retry must reach full
	// fidelity, which a truncated (Degraded) search would not be.
	cfg := Config{
		Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond,
		ILP: lower.ILPOptions{TimeLimit: time.Hour},
	}

	retriesBefore, fallbacksBefore := TotalRetries(), TotalFallbacks()
	sol, err := Run(context.Background(), sc, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if sol.Degraded {
		t.Fatalf("retry succeeded at full fidelity but solution marked Degraded: %q", sol.DegradedReason)
	}
	if !sol.Feasible {
		t.Fatal("expected feasible solution from retry")
	}
	if TotalRetries() <= retriesBefore {
		t.Fatal("TotalRetries did not increase")
	}
	if TotalFallbacks() != fallbacksBefore {
		t.Fatal("transient failure recovered by retry must not fall back")
	}
}

func TestDegradeInjectedCancelIsNotCallerCancel(t *testing.T) {
	// A fault-injected "cancel" looks like context.Canceled to the stage
	// but the caller's context is alive, so the ladder must engage.
	sc := degradeScenario(t)
	armFault(t, "milp.node=cancel")
	cfg := Config{Coverage: CoverGAC, Degrade: true, RetryBackoff: time.Millisecond}

	sol, err := Run(context.Background(), sc, cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !sol.Degraded || !sol.Feasible {
		t.Fatalf("Degraded = %v, Feasible = %v; want degraded feasible solution", sol.Degraded, sol.Feasible)
	}
}

func TestUnknownMethodFailsFastEvenWithDegrade(t *testing.T) {
	sc := degradeScenario(t)
	cfg := Config{Coverage: CoverageMethod(99), Degrade: true}
	if _, err := Run(context.Background(), sc, cfg); err == nil ||
		!strings.Contains(err.Error(), "unknown coverage method") {
		t.Fatalf("err = %v, want unknown coverage method", err)
	}
}
