package core

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"sagrelay/internal/scenario"
)

func gen(t *testing.T, side float64, n int, seed int64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: side, NumSS: n, NumBS: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSAGEndToEnd(t *testing.T) {
	sc := gen(t, 500, 15, 3)
	sol, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("SAG infeasible on a benign instance")
	}
	if sol.Method != "SAG" {
		t.Errorf("Method = %q", sol.Method)
	}
	if sol.PTotal != sol.PL+sol.PH {
		t.Errorf("PTotal %v != PL %v + PH %v", sol.PTotal, sol.PL, sol.PH)
	}
	if sol.PL <= 0 || sol.PH < 0 {
		t.Errorf("power costs PL=%v PH=%v", sol.PL, sol.PH)
	}
	if sol.TotalRelays() != sol.Coverage.NumRelays()+sol.Connectivity.NumRelays() {
		t.Error("TotalRelays inconsistent")
	}
	if err := sol.Coverage.Verify(sc, true); err != nil {
		t.Errorf("coverage invalid: %v", err)
	}
	if err := sol.Connectivity.Verify(sc, sol.Coverage); err != nil {
		t.Errorf("connectivity invalid: %v", err)
	}
}

func TestDARPBaseline(t *testing.T) {
	sc := gen(t, 500, 15, 3)
	sol, err := DARP(context.Background(), sc, CoverSAMC, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("SAMC+DARP infeasible")
	}
	if sol.Method != "SAMC+DARP" {
		t.Errorf("Method = %q", sol.Method)
	}
	// DARP keeps every relay at PMax.
	wantPL := sc.PMax * float64(sol.Coverage.NumRelays())
	if sol.PL != wantPL {
		t.Errorf("PL = %v, want %v", sol.PL, wantPL)
	}
	wantPH := sc.PMax * float64(sol.Connectivity.NumRelays())
	if sol.PH != wantPH {
		t.Errorf("PH = %v, want %v", sol.PH, wantPH)
	}
}

func TestSAGBeatsDARP(t *testing.T) {
	// The headline Fig. 7 result: SAG's total power is below SAMC+DARP's.
	sc := gen(t, 500, 20, 7)
	sag, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	darp, err := DARP(context.Background(), sc, CoverSAMC, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sag.Feasible || !darp.Feasible {
		t.Skip("instance infeasible for one pipeline")
	}
	if sag.PTotal >= darp.PTotal {
		t.Errorf("SAG %v not below SAMC+DARP %v", sag.PTotal, darp.PTotal)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	sc := gen(t, 300, 5, 1)
	if _, err := Run(context.Background(), sc, Config{Coverage: CoverageMethod(42)}); err == nil {
		t.Error("bad coverage method accepted")
	}
	if _, err := Run(context.Background(), sc, Config{ConnectivityPower: PowerOptimal}); err == nil {
		t.Error("optimal upper-tier power accepted (undefined)")
	}
	if _, err := Run(context.Background(), sc, Config{CoveragePower: PowerMethod(9)}); err == nil {
		t.Error("bad power method accepted")
	}
	if _, err := Run(context.Background(), sc, Config{Connectivity: ConnectivityMethod(9)}); err == nil {
		t.Error("bad connectivity method accepted")
	}
}

func TestRunWithOptimalCoveragePower(t *testing.T) {
	sc := gen(t, 500, 10, 9)
	sol, err := Run(context.Background(), sc, Config{CoveragePower: PowerOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Skip("infeasible draw")
	}
	green, err := Run(context.Background(), sc, Config{CoveragePower: PowerGreen})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PL > green.PL+1e-6 {
		t.Errorf("optimal PL %v above PRO PL %v", sol.PL, green.PL)
	}
}

func TestMethodStrings(t *testing.T) {
	if CoverSAMC.String() != "SAMC" || CoverIAC.String() != "IAC" || CoverGAC.String() != "GAC" {
		t.Error("coverage strings wrong")
	}
	if ConnMBMC.String() != "MBMC" || ConnMUST.String() != "MUST" {
		t.Error("connectivity strings wrong")
	}
	if PowerBaseline.String() != "baseline" || PowerGreen.String() != "green" || PowerOptimal.String() != "optimal" {
		t.Error("power strings wrong")
	}
	if !strings.Contains(CoverageMethod(0).String(), "CoverageMethod") {
		t.Error("invalid enum should stringify diagnostically")
	}
}

func TestPipelineNameForCustomRuns(t *testing.T) {
	sc := gen(t, 300, 5, 11)
	sol, err := Run(context.Background(), sc, Config{Coverage: CoverSAMC, CoveragePower: PowerBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method == "" || sol.Method == "SAG" {
		t.Errorf("custom pipeline mislabeled: %q", sol.Method)
	}
}

// Property: SAG is never more expensive than the same placement at max
// power on both tiers.
func TestSAGNeverAboveFullPower(t *testing.T) {
	f := func(seed int64) bool {
		sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: 10, NumBS: 3, Seed: seed})
		if err != nil {
			return false
		}
		sag, err := SAG(context.Background(), sc, Config{})
		if err != nil {
			return false
		}
		if !sag.Feasible {
			return true
		}
		maxPower := sc.PMax * float64(sag.TotalRelays())
		return sag.PTotal <= maxPower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestInfeasibleCoveragePropagates(t *testing.T) {
	// A very strict positive-dB threshold with overlapping subscribers is
	// infeasible for SAMC; the pipeline must report it without error.
	sc := gen(t, 300, 20, 13)
	sc.SNRThresholdDB = 20
	sol, err := SAG(context.Background(), sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Skip("surprisingly feasible; nothing to check")
	}
	if sol.Coverage == nil || sol.Coverage.Feasible {
		t.Error("infeasible solution carries inconsistent coverage")
	}
	if sol.PTotal != 0 || sol.TotalRelays() != 0 {
		t.Error("infeasible solution reports non-zero outputs")
	}
}
