package lower

import (
	"context"
	"testing"

	"sagrelay/internal/obs"
)

// zoneSpanCounts runs one IAC solve with the given worker count and returns
// (direct children of the trace root named "zone", total "zone" spans
// anywhere in the tree). The two must agree: a zone span nested under
// another zone's span would mean a worker attached to the wrong parent.
func zoneSpanCounts(t *testing.T, workers int) (direct, total int) {
	t.Helper()
	sc := testScenario(t, 500, 15, 41)
	tr := obs.NewTrace("root")
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := IAC(ctx, sc, ILPOptions{Workers: workers})
	if err != nil {
		t.Fatalf("IAC(workers=%d): %v", workers, err)
	}
	if !res.Feasible {
		t.Fatalf("IAC(workers=%d) infeasible", workers)
	}
	tr.Finish()
	doc := tr.Doc()
	for _, c := range doc.Spans {
		if c.Name == "zone" {
			direct++
		}
	}
	return direct, doc.Count("zone")
}

// TestZoneSpansLandUnderRootParallel: with Workers > 1 the per-zone spans
// are opened on pool-worker goroutines, yet every one of them must attach
// directly under the span that was on the context at fan-out time — the
// trace root here. Run under -race this also exercises the concurrent
// child-append path.
func TestZoneSpansLandUnderRootParallel(t *testing.T) {
	direct, total := zoneSpanCounts(t, 4)
	if total == 0 {
		t.Fatal("no zone spans recorded")
	}
	if direct != total {
		t.Fatalf("%d of %d zone spans are direct children of the root; workers attached to the wrong parent", direct, total)
	}

	seqDirect, seqTotal := zoneSpanCounts(t, 1)
	if seqDirect != direct || seqTotal != total {
		t.Fatalf("zone span tree differs by worker count: sequential %d/%d, parallel %d/%d",
			seqDirect, seqTotal, direct, total)
	}
}
