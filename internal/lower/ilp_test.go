package lower

import (
	"context"
	"errors"
	"testing"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/milp"
	"sagrelay/internal/scenario"
)

// TestILPOptimalCountTinyInstance verifies the ILPQC formulation against a
// hand-solvable instance: three subscribers whose circles share a common
// region, so one relay at an intersection point suffices.
func TestILPOptimalCountTinyInstance(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 40},
		{Pos: geom.Pt(30, 0), DistReq: 40},
		{Pos: geom.Pt(15, 25), DistReq: 40},
	}, -15)
	res, err := IAC(context.Background(), sc, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("tiny instance infeasible")
	}
	if res.NumRelays() != 1 {
		t.Errorf("placed %d relays, want 1", res.NumRelays())
	}
	if err := res.Verify(sc, true); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestILPNeedsTwoRelays verifies the optimum on a two-cluster instance.
func TestILPNeedsTwoRelays(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 30},
		{Pos: geom.Pt(20, 0), DistReq: 30},
		{Pos: geom.Pt(400, 400), DistReq: 30},
	}, -15)
	res, err := IAC(context.Background(), sc, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.NumRelays() != 2 {
		t.Errorf("feasible=%v relays=%d, want 2", res.Feasible, res.NumRelays())
	}
}

// TestILPSNRConstraintBinds builds an instance where pure coverage would
// use two relays serving two co-located subscriber pairs, but a strict
// positive-dB threshold forbids the cross interference; the formulation
// must either find an SNR-clean layout or report infeasibility — never an
// SNR-violating "solution".
func TestILPSNRConstraintBinds(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 35},
		{Pos: geom.Pt(25, 0), DistReq: 35},
		{Pos: geom.Pt(50, 0), DistReq: 35},
		{Pos: geom.Pt(75, 0), DistReq: 35},
	}, 3) // +3 dB: serving signal must exceed 2x total interference
	res, err := IAC(context.Background(), sc, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		if err := res.Verify(sc, true); err != nil {
			t.Errorf("claimed feasible but: %v", err)
		}
	}
	// Either outcome is acceptable; what matters is consistency, which
	// Verify checked above.
}

// TestGACGridSizeQuality: a finer grid never yields more relays than a
// coarser one on the same instance (more candidates = superset model).
func TestGACGridSizeQuality(t *testing.T) {
	sc := testScenario(t, 500, 10, 37)
	coarse, err := GAC(context.Background(), sc, ILPOptions{GridSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := GAC(context.Background(), sc, ILPOptions{GridSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !fine.Feasible {
		t.Skip("fine grid infeasible (node budget); nothing to compare")
	}
	if coarse.Feasible && fine.NumRelays() > coarse.NumRelays()+1 {
		t.Errorf("fine grid %d relays much worse than coarse %d", fine.NumRelays(), coarse.NumRelays())
	}
}

// TestGACInfeasibleWhenGridMissesCircles: a grid far coarser than the
// circles cannot cover anyone.
func TestGACInfeasibleWhenGridMisses(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(30, 30), DistReq: 10},
	}, -15)
	res, err := GAC(context.Background(), sc, ILPOptions{GridSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		// The single grid center may land inside by luck; verify if so.
		if err := res.Verify(sc, false); err != nil {
			t.Errorf("feasible but invalid: %v", err)
		}
		return
	}
	if res.NumRelays() != 0 {
		t.Error("infeasible result carries relays")
	}
}

// TestILPRespectsTimeLimit: a tiny node budget must not hang and must
// still produce a warm-started solution, infeasible, or — if the wall
// clock beats the node cap — ErrZoneDeadline.
func TestILPRespectsTimeLimit(t *testing.T) {
	sc := testScenario(t, 500, 15, 41)
	start := time.Now()
	res, err := IAC(context.Background(), sc, ILPOptions{MaxNodes: 1, TimeLimit: 50 * time.Millisecond})
	if err != nil {
		if errors.Is(err, ErrZoneDeadline) {
			return // deadline fired before the single node on a loaded machine
		}
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("time limit ignored")
	}
	if res.Feasible {
		if err := res.Verify(sc, false); err != nil {
			t.Errorf("warm-start result invalid: %v", err)
		}
	}
}

// TestILPDeadlineTruncationSurfaces: an already-expired wall-clock zone
// budget must never produce a clean (cacheable) result — either the warm
// start is returned with Truncated set, or the solve errors with
// ErrZoneDeadline. Silently reporting "infeasible" would let a transient
// timeout poison deterministic caches.
func TestILPDeadlineTruncationSurfaces(t *testing.T) {
	sc := testScenario(t, 500, 15, 41)
	res, err := IAC(context.Background(), sc, ILPOptions{TimeLimit: time.Nanosecond})
	if err != nil {
		if !errors.Is(err, ErrZoneDeadline) {
			t.Fatalf("err = %v, want wrapping ErrZoneDeadline", err)
		}
		return
	}
	if !res.Feasible {
		t.Fatal("expired deadline reported infeasible: load-dependent non-answer leaked")
	}
	if !res.Truncated {
		t.Fatal("deadline-truncated incumbent not marked Truncated")
	}
	if err := res.Verify(sc, false); err != nil {
		t.Errorf("truncated warm-start result invalid: %v", err)
	}
}

func TestZoneStatusErr(t *testing.T) {
	cases := []struct {
		status      milp.Status
		deadlineHit bool
		want        error
	}{
		{milp.Optimal, false, nil},
		{milp.Feasible, false, nil},
		{milp.Feasible, true, nil}, // truncated incumbent: usable, flagged by caller
		{milp.Infeasible, false, ErrInfeasible},
		{milp.Limit, false, ErrInfeasible},  // node cap: deterministic
		{milp.Limit, true, ErrZoneDeadline}, // wall clock: load-dependent
	}
	for _, c := range cases {
		if got := zoneStatusErr(c.status, c.deadlineHit); !errors.Is(got, c.want) || (c.want == nil && got != nil) {
			t.Errorf("zoneStatusErr(%v, %v) = %v, want %v", c.status, c.deadlineHit, got, c.want)
		}
	}
	if err := zoneStatusErr(milp.Unbounded, false); err == nil {
		t.Error("unexpected status must error")
	}
}

// TestILPZoneCapChangesDecomposition: capping zones produces more, smaller
// zones but still a valid cover.
func TestILPZoneCapChangesDecomposition(t *testing.T) {
	sc := testScenario(t, 500, 16, 43)
	res, err := IAC(context.Background(), sc, ILPOptions{MaxZoneSS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("infeasible under tight zones")
	}
	for _, z := range res.Zones {
		if len(z) > 4 {
			t.Errorf("zone of %d subscribers exceeds cap 4", len(z))
		}
	}
	if err := res.Verify(sc, false); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestSkipSlidingAblation: without sliding the relay count cannot shrink
// and feasibility cannot improve.
func TestSkipSlidingAblation(t *testing.T) {
	sc := testScenario(t, 500, 15, 47)
	with, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := SAMC(context.Background(), sc, SAMCOptions{SkipSliding: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.Feasible && !with.Feasible {
		t.Error("sliding made a feasible instance infeasible")
	}
	if with.Feasible && without.Feasible && with.NumRelays() != without.NumRelays() {
		t.Errorf("sliding changed the relay count: %d vs %d (it must only move relays)",
			with.NumRelays(), without.NumRelays())
	}
}

// TestPRONaiveOrderNeverBelowOptimal: the ablation variant is still a
// valid allocation and never beats the LP optimum.
func TestPRONaiveOrderStillValid(t *testing.T) {
	sc := testScenario(t, 500, 15, 53)
	res, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !res.Feasible {
		t.Fatalf("SAMC failed")
	}
	naive, err := PROWithOptions(context.Background(), sc, res, PROOptions{NaiveStuckOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPower(sc, res, naive.Powers); err != nil {
		t.Errorf("naive allocation invalid: %v", err)
	}
	opt, err := OptimalPower(context.Background(), sc, res)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Total < opt.Total-1e-6 {
		t.Errorf("naive PRO %v below LP optimum %v", naive.Total, opt.Total)
	}
}
