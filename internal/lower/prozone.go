package lower

import (
	"context"
	"fmt"
	"math"

	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// PROZoned runs Power Reduction Optimization zone by zone with a per-zone
// power cache, producing bit-identical output to the global PRO.
//
// Why the decomposition is exact: interferenceAt sums only same-zone relays
// (zone independence, Alg. 2), so one zone's power trajectory is a
// deterministic function of zone-local state alone. In the global sweep, a
// failed drop attempt restores the exact previous float, extra sweeps over
// an already-stuck zone are no-ops, and a stuck-settle that lands in a zone
// always settles that zone's own min-delta relay (the global minimum is a
// fortiori the zone minimum; delta values involve only same-zone relays).
// Within a zone both runs visit relays in the same ascending index order
// and accumulate interference sums in the same order, so every float op is
// reproduced exactly; the final Total is summed in global relay order.
//
// The decomposition requires every relay to belong to a zone and the relay
// list to be grouped contiguously in zone order (which every coverage
// solver in this package produces). When that does not hold — or when the
// result has no zones — PROZoned falls back to the global PRO.
func PROZoned(cctx context.Context, sc *scenario.Scenario, res *Result, cache ZonePowerCache) (*PowerAllocation, error) {
	if cache == nil {
		return PRO(cctx, sc, res)
	}
	if cctx == nil {
		cctx = context.Background()
	}
	ctx, err := newPowerContext(sc, res)
	if err != nil {
		return nil, err
	}
	blocks, ok := zoneBlocks(ctx)
	if !ok {
		return PRO(cctx, sc, res)
	}
	_, span := obs.StartSpan(cctx, "pro")
	span.SetInt("relays", int64(len(res.Relays)))
	span.SetInt("zones", int64(len(blocks)))
	defer span.End()
	n := len(res.Relays)
	powers := make([]float64, n)
	reused := 0
	for _, blk := range blocks {
		key := powerZoneKey(sc, res.Relays[blk.lo:blk.hi])
		if cached, hit := cache.GetPower(key); hit && len(cached) == blk.hi-blk.lo {
			copy(powers[blk.lo:blk.hi], cached)
			reused++
			continue
		}
		if err := ctx.proBlock(cctx, blk.lo, blk.hi, powers); err != nil {
			return nil, err
		}
		cache.PutPower(key, append([]float64(nil), powers[blk.lo:blk.hi]...))
	}
	span.SetInt("zones_reused", int64(reused))
	alloc := &PowerAllocation{Powers: powers, Method: "PRO"}
	for _, p := range powers {
		alloc.Total += p
	}
	if err := VerifyPower(sc, res, powers); err != nil {
		return nil, fmt.Errorf("lower: PRO: produced invalid allocation: %w", err)
	}
	return alloc, nil
}

// block is a contiguous relay index range [lo, hi) belonging to one zone.
type block struct{ lo, hi int }

// zoneBlocks splits the relay list into per-zone contiguous blocks.
// ok=false when a relay has no zone (empty Covers) or the list is not
// grouped in non-decreasing zone order — the caller must then fall back to
// the global algorithm.
func zoneBlocks(ctx *powerContext) ([]block, bool) {
	var blocks []block
	prev := -1
	for i, z := range ctx.rZone {
		if z < 0 {
			return nil, false
		}
		if z != prev {
			if z < prev {
				return nil, false
			}
			blocks = append(blocks, block{lo: i, hi: i + 1})
			prev = z
		} else {
			blocks[len(blocks)-1].hi = i + 1
		}
	}
	return blocks, true
}

// proBlock runs the PRO relaxation restricted to relays [lo, hi), writing
// their powers into the full-length powers vector. It reuses the global
// powerContext helpers: interferenceAt and psnr skip cross-zone relays, so
// evaluating them with a partially-filled global vector is exact — entries
// outside the block are never read.
func (ctx *powerContext) proBlock(cctx context.Context, lo, hi int, powers []float64) error {
	sc := ctx.sc
	remaining := hi - lo
	inK := make([]bool, hi-lo)
	for i := lo; i < hi; i++ {
		powers[i] = sc.PMax
		inK[i-lo] = true
	}
	for remaining > 0 {
		if err := cctx.Err(); err != nil {
			return fmt.Errorf("lower: PRO: %w", err)
		}
		changed := false
		for i := lo; i < hi; i++ {
			if !inK[i-lo] {
				continue
			}
			old := powers[i]
			powers[i] = ctx.pmin[i]
			if ctx.snrOKForRelay(i, powers) {
				inK[i-lo] = false
				remaining--
				changed = true
			} else {
				powers[i] = old
			}
		}
		if changed || remaining == 0 {
			continue
		}
		// Stuck: settle the relay with minimal delta = Psnr - Pc at Psnr
		// (Alg. 6, Steps 10-13), exactly as the global sweep would for this
		// zone.
		best, bestDelta := -1, math.Inf(1)
		bestP := 0.0
		for i := lo; i < hi; i++ {
			if !inK[i-lo] {
				continue
			}
			p := ctx.psnr(i, powers)
			if p < ctx.pmin[i] {
				p = ctx.pmin[i]
			}
			if p > sc.PMax {
				p = sc.PMax
			}
			if delta := p - ctx.pmin[i]; delta < bestDelta {
				best, bestDelta, bestP = i, delta, p
			}
		}
		if best < 0 {
			return fmt.Errorf("lower: PRO: internal: stuck with %d relays unresolved", remaining)
		}
		powers[best] = bestP
		inK[best-lo] = false
		remaining--
	}
	return nil
}
