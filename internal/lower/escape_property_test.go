package lower

import (
	"context"
	"testing"
	"testing/quick"

	"sagrelay/internal/geom"
	"sagrelay/internal/hitting"
	"sagrelay/internal/scenario"
)

// Property: Coverage Link Escape on a feasible hitting set always produces
// relays whose every assigned subscriber is within its distance
// requirement, each subscriber is assigned exactly once, and no returned
// relay is empty.
func TestEscapeInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		sc, err := scenario.Generate(scenario.GenConfig{
			FieldSide: 400, NumSS: n, NumBS: 1, Seed: seed,
		})
		if err != nil {
			return false
		}
		zone := make([]int, n)
		disks := make([]geom.Circle, n)
		for i := range zone {
			zone[i] = i
			disks[i] = sc.Subscribers[i].Circle()
		}
		inst := &hitting.Instance{
			Disks:      disks,
			Candidates: geom.IntersectionCandidates(disks),
			Tol:        1e-7,
		}
		sol, err := inst.Solve(hitting.DefaultOptions())
		if err != nil {
			return false
		}
		points := make([]geom.Point, len(sol.Chosen))
		for i, c := range sol.Chosen {
			points[i] = inst.Candidates[c]
		}
		relays, err := CoverageLinkEscape(sc, zone, points)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, r := range relays {
			if len(r.Covers) == 0 {
				return false // empty relays must be dropped
			}
			for _, s := range r.Covers {
				if seen[s] {
					return false // double assignment
				}
				seen[s] = true
				if r.Pos.Dist(sc.Subscribers[s].Pos) > sc.Subscribers[s].DistReq+1e-6 {
					return false // out of range
				}
			}
		}
		return len(seen) == n // everyone assigned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SlidingMovement never breaks distance coverage — every
// subscriber remains within range of its (possibly moved) serving relay.
func TestSlidingPreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		sc, err := scenario.Generate(scenario.GenConfig{
			FieldSide: 400, NumSS: 10, NumBS: 1, Seed: seed,
		})
		if err != nil {
			return false
		}
		res, err := SAMC(context.Background(), sc, SAMCOptions{})
		if err != nil {
			return false
		}
		if !res.Feasible {
			return true
		}
		return res.Verify(sc, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
