package lower

import (
	"context"
	"fmt"
	"math"

	"sagrelay/internal/lp"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// PowerAllocation is a transmission-power assignment for a set of coverage
// relays.
type PowerAllocation struct {
	// Powers holds the transmit power of each relay, indexed like
	// Result.Relays.
	Powers []float64
	// Total is the summed transmit power (the paper's P_L).
	Total float64
	// Method names the algorithm that produced the allocation.
	Method string
}

// BaselinePower returns the paper's baseline allocation: every placed relay
// transmits at PMax (the assumption under which coverage was computed).
func BaselinePower(sc *scenario.Scenario, res *Result) *PowerAllocation {
	powers := make([]float64, len(res.Relays))
	for i := range powers {
		powers[i] = sc.PMax
	}
	return &PowerAllocation{
		Powers: powers,
		Total:  sc.PMax * float64(len(res.Relays)),
		Method: "baseline",
	}
}

// powerContext precomputes the per-(relay, subscriber) path gains and zone
// structure used by the power algorithms.
type powerContext struct {
	sc     *scenario.Scenario
	res    *Result
	gain   [][]float64 // gain[i][j] = path gain between relay i and subscriber j
	zoneOf []int       // subscriber -> zone
	rZone  []int       // relay -> zone
	pmin   []float64   // coverage power Pc per relay
	beta   float64
}

func newPowerContext(sc *scenario.Scenario, res *Result) (*powerContext, error) {
	if err := res.Verify(sc, false); err != nil {
		return nil, fmt.Errorf("lower: power optimization needs a feasible coverage result: %w", err)
	}
	ctx := &powerContext{
		sc:     sc,
		res:    res,
		zoneOf: zoneIndex(sc.NumSS(), res.Zones),
		beta:   sc.Beta(),
	}
	n := len(res.Relays)
	ctx.gain = make([][]float64, n)
	ctx.rZone = make([]int, n)
	ctx.pmin = make([]float64, n)
	for i, relay := range res.Relays {
		ctx.gain[i] = make([]float64, sc.NumSS())
		for j, ss := range sc.Subscribers {
			ctx.gain[i][j] = sc.Model.Gain(relay.Pos.Dist(ss.Pos))
		}
		ctx.rZone[i] = relayZone(relay, ctx.zoneOf)
		// Coverage power Pc (Section III-A.2): the minimum power meeting
		// every covered subscriber's received-power demand.
		for _, j := range relay.Covers {
			need := sc.Subscribers[j].MinRxPower / ctx.gain[i][j]
			if need > ctx.pmin[i] {
				ctx.pmin[i] = need
			}
		}
		if ctx.pmin[i] > sc.PMax {
			// Coverage was verified, so the demand is met at PMax up to
			// rounding; clamp.
			ctx.pmin[i] = sc.PMax
		}
	}
	return ctx, nil
}

// sameZone reports whether relay k interferes with subscriber j under the
// zone-independence assumption.
func (ctx *powerContext) sameZone(k, j int) bool {
	if ctx.zoneOf == nil {
		return true
	}
	return ctx.rZone[k] == ctx.zoneOf[j]
}

// interferenceAt returns the total interference power received at
// subscriber j from all same-zone relays except exclude, under powers.
func (ctx *powerContext) interferenceAt(j, exclude int, powers []float64) float64 {
	total := 0.0
	for k := range ctx.res.Relays {
		if k == exclude || !ctx.sameZone(k, j) {
			continue
		}
		total += powers[k] * ctx.gain[k][j]
	}
	return total
}

// snrOKForRelay checks the SNR constraint of every subscriber covered by
// relay i under powers.
func (ctx *powerContext) snrOKForRelay(i int, powers []float64) bool {
	for _, j := range ctx.res.Relays[i].Covers {
		signal := powers[i] * ctx.gain[i][j]
		if signal < ctx.beta*ctx.interferenceAt(j, i, powers)-1e-12 {
			return false
		}
	}
	return true
}

// psnr returns the SNR power P_snr of relay i: the minimum transmit power
// meeting every covered subscriber's SNR given the other relays' current
// powers (Section III-A.2).
func (ctx *powerContext) psnr(i int, powers []float64) float64 {
	p := 0.0
	for _, j := range ctx.res.Relays[i].Covers {
		need := ctx.beta * ctx.interferenceAt(j, i, powers) / ctx.gain[i][j]
		if need > p {
			p = need
		}
	}
	return p
}

// PROOptions tune Power Reduction Optimization for ablation studies.
type PROOptions struct {
	// NaiveStuckOrder settles the first stuck relay instead of the one with
	// the minimal gap Psnr - Pc (Alg. 6, Step 11). The paper's rule settles
	// the cheapest compromise first so later relays see less interference.
	NaiveStuckOrder bool
}

// PRO implements Algorithm 6, Power Reduction Optimization: starting from
// all relays at PMax, it repeatedly drops to the coverage power Pc every
// relay whose covered subscribers' SNR survives the drop; when stuck, it
// settles the relay with the smallest gap Psnr - Pc at its SNR power and
// continues. The result is a (1+phi)-approximation of the optimal power
// cost (Theorem 1).
//
// Cancellation is cooperative: the relaxation sweep checks cctx once per
// round, so a cancelled context aborts within one O(relays²) pass.
func PRO(cctx context.Context, sc *scenario.Scenario, res *Result) (*PowerAllocation, error) {
	return PROWithOptions(cctx, sc, res, PROOptions{})
}

// PROWithOptions runs PRO with explicit knobs (see PROOptions).
func PROWithOptions(cctx context.Context, sc *scenario.Scenario, res *Result, popts PROOptions) (*PowerAllocation, error) {
	if cctx == nil {
		cctx = context.Background()
	}
	_, span := obs.StartSpan(cctx, "pro")
	span.SetInt("relays", int64(len(res.Relays)))
	defer span.End()
	ctx, err := newPowerContext(sc, res)
	if err != nil {
		return nil, err
	}
	n := len(res.Relays)
	powers := make([]float64, n)
	inK := make([]bool, n)
	remaining := n
	for i := range powers {
		powers[i] = sc.PMax
		inK[i] = true
	}
	rounds := 0
	for remaining > 0 {
		if err := cctx.Err(); err != nil {
			return nil, fmt.Errorf("lower: PRO: %w", err)
		}
		rounds++
		changed := false
		for i := 0; i < n; i++ {
			if !inK[i] {
				continue
			}
			old := powers[i]
			powers[i] = ctx.pmin[i]
			if ctx.snrOKForRelay(i, powers) {
				inK[i] = false
				remaining--
				changed = true
			} else {
				powers[i] = old
			}
		}
		if changed || remaining == 0 {
			continue
		}
		// Stuck: settle the relay with minimal delta = Psnr - Pc at Psnr
		// (Alg. 6, Steps 10-13).
		best, bestDelta := -1, math.Inf(1)
		bestP := 0.0
		for i := 0; i < n; i++ {
			if !inK[i] {
				continue
			}
			p := ctx.psnr(i, powers)
			if p < ctx.pmin[i] {
				p = ctx.pmin[i]
			}
			if p > sc.PMax {
				p = sc.PMax
			}
			if delta := p - ctx.pmin[i]; delta < bestDelta {
				best, bestDelta, bestP = i, delta, p
			}
			if popts.NaiveStuckOrder && best >= 0 {
				break // ablation: take the first stuck relay as-is
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("lower: PRO: internal: stuck with %d relays unresolved", remaining)
		}
		powers[best] = bestP
		inK[best] = false
		remaining--
	}
	span.SetInt("rounds", int64(rounds))
	alloc := &PowerAllocation{Powers: powers, Method: "PRO"}
	for _, p := range powers {
		alloc.Total += p
	}
	if err := VerifyPower(sc, res, powers); err != nil {
		return nil, fmt.Errorf("lower: PRO: produced invalid allocation: %w", err)
	}
	return alloc, nil
}

// OptimalPower solves the paper's LPQC (eqs. 3.6-3.9) exactly: with the
// assignment fixed by the coverage result, the quadratic SNR constraint
// (3.9) is linear in the powers, so the model is a pure LP:
//
//	min  sum_i P_i
//	s.t. P_a(j) * g_a(j),j >= Pss_j                       (3.8, coverage)
//	     P_a(j) * g_a(j),j >= beta * sum_{k!=a(j)} P_k * g_kj   (3.9, SNR)
//	     0 <= P_i <= PMax
//
// It is the benchmark the paper compares PRO against ("optimal" curves in
// Figs. 4a and 5a). The LP solve polls cctx between simplex pivots, so a
// cancelled context aborts promptly.
func OptimalPower(cctx context.Context, sc *scenario.Scenario, res *Result) (*PowerAllocation, error) {
	if cctx == nil {
		cctx = context.Background()
	}
	_, span := obs.StartSpan(cctx, "lpqc")
	span.SetInt("relays", int64(len(res.Relays)))
	defer span.End()
	ctx, err := newPowerContext(sc, res)
	if err != nil {
		return nil, err
	}
	prob := lp.NewProblem()
	n := len(res.Relays)
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		vars[i] = prob.AddVariable(fmt.Sprintf("P%d", i), 1)
		if err := prob.SetUpperBound(vars[i], sc.PMax); err != nil {
			return nil, fmt.Errorf("lower: optimal power: %w", err)
		}
	}
	for j := range sc.Subscribers {
		a := res.AssignOf[j]
		// Coverage (3.8).
		cov := []lp.Term{{Var: vars[a], Coef: ctx.gain[a][j]}}
		if err := prob.AddConstraint(cov, lp.GE, sc.Subscribers[j].MinRxPower); err != nil {
			return nil, fmt.Errorf("lower: optimal power: %w", err)
		}
		// SNR (3.9), linear in P with the assignment fixed.
		terms := []lp.Term{{Var: vars[a], Coef: ctx.gain[a][j]}}
		for k := 0; k < n; k++ {
			if k == a || !ctx.sameZone(k, j) {
				continue
			}
			terms = append(terms, lp.Term{Var: vars[k], Coef: -ctx.beta * ctx.gain[k][j]})
		}
		if err := prob.AddConstraint(terms, lp.GE, 0); err != nil {
			return nil, fmt.Errorf("lower: optimal power: %w", err)
		}
	}
	sol, err := prob.SolveContext(cctx)
	if err != nil {
		return nil, fmt.Errorf("lower: optimal power: %w", err)
	}
	span.SetInt("pivots", int64(sol.Iterations))
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("lower: optimal power: LP status %v (coverage result should be PMax-feasible)", sol.Status)
	}
	alloc := &PowerAllocation{
		Powers: append([]float64(nil), sol.X[:n]...),
		Total:  sol.Objective,
		Method: "optimal",
	}
	return alloc, nil
}

// VerifyPower checks that powers satisfy every subscriber's coverage
// (received power) and SNR constraints under the zone-independence
// assumption. A small relative tolerance absorbs float rounding.
func VerifyPower(sc *scenario.Scenario, res *Result, powers []float64) error {
	ctx, err := newPowerContext(sc, res)
	if err != nil {
		return err
	}
	if len(powers) != len(res.Relays) {
		return fmt.Errorf("lower: power vector has %d entries for %d relays", len(powers), len(res.Relays))
	}
	const rel = 1e-6
	for i, p := range powers {
		if p < -1e-12 || p > sc.PMax*(1+rel) {
			return fmt.Errorf("lower: relay %d power %v outside [0, %v]", i, p, sc.PMax)
		}
	}
	for j := range sc.Subscribers {
		a := res.AssignOf[j]
		signal := powers[a] * ctx.gain[a][j]
		if signal < sc.Subscribers[j].MinRxPower*(1-rel)-1e-15 {
			return fmt.Errorf("lower: subscriber %d received power %.4g below demand %.4g", j, signal, sc.Subscribers[j].MinRxPower)
		}
		noise := ctx.interferenceAt(j, a, powers)
		if signal < ctx.beta*noise*(1-rel)-1e-15 {
			return fmt.Errorf("lower: subscriber %d SIR %.4g below threshold %.4g", j, signal/noise, ctx.beta)
		}
	}
	return nil
}
