package lower

import (
	"context"
	"math"
	"testing"

	"sagrelay/internal/geom"
	"sagrelay/internal/radio"
	"sagrelay/internal/scenario"
)

// testScenario builds a deterministic random scenario.
func testScenario(t *testing.T, side float64, nSS int, seed int64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{
		FieldSide: side, NumSS: nSS, NumBS: 4, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return sc
}

// handScenario builds a fully explicit scenario for precise unit tests.
func handScenario(t *testing.T, subs []scenario.Subscriber, snrDB float64) *scenario.Scenario {
	t.Helper()
	sc := &scenario.Scenario{
		Field:          geom.SquareField(500),
		BaseStations:   []scenario.BaseStation{{ID: 0, Pos: geom.Pt(0, 0)}},
		Model:          radio.DefaultModel(),
		PMax:           scenario.DefaultPMax,
		SNRThresholdDB: snrDB,
		NMax:           scenario.DefaultNMax,
	}
	for i := range subs {
		subs[i].ID = i
		if subs[i].MinRxPower == 0 {
			subs[i].MinRxPower = sc.DeriveMinRxPower(subs[i].DistReq)
		}
	}
	sc.Subscribers = subs
	if err := sc.Validate(); err != nil {
		t.Fatalf("hand scenario invalid: %v", err)
	}
	return sc
}

func TestZonePartitionSeparatesDistantGroups(t *testing.T) {
	// Two clusters far beyond dmax (~149) + distance requirements.
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(-200, -200), DistReq: 30},
		{Pos: geom.Pt(-180, -200), DistReq: 30},
		{Pos: geom.Pt(200, 200), DistReq: 30},
	}, -15)
	zones, err := ZonePartition(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 2 {
		t.Fatalf("got %d zones: %v", len(zones), zones)
	}
	if len(zones[0]) != 2 || zones[0][0] != 0 || zones[0][1] != 1 {
		t.Errorf("zone 0 = %v", zones[0])
	}
	if len(zones[1]) != 1 || zones[1][0] != 2 {
		t.Errorf("zone 1 = %v", zones[1])
	}
}

func TestZonePartitionCouplesNearGroups(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 30},
		{Pos: geom.Pt(100, 0), DistReq: 30},
	}, -15)
	zones, err := ZonePartition(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("near subscribers split into %d zones", len(zones))
	}
}

func TestSplitLargeZones(t *testing.T) {
	sc := testScenario(t, 500, 20, 3)
	zones := [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}}
	split := SplitLargeZones(sc, zones, 6)
	total := 0
	for _, z := range split {
		if len(z) > 6 {
			t.Errorf("zone of size %d exceeds cap", len(z))
		}
		total += len(z)
	}
	if total != 20 {
		t.Errorf("split lost subscribers: %d", total)
	}
	// A no-op cap returns the input unchanged.
	same := SplitLargeZones(sc, zones, 0)
	if len(same) != 1 {
		t.Error("cap 0 should not split")
	}
}

func TestCoverageLinkEscapeAssignsEveryone(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 35},
		{Pos: geom.Pt(20, 0), DistReq: 35},
		{Pos: geom.Pt(200, 0), DistReq: 35},
	}, -15)
	points := []geom.Point{geom.Pt(10, 0), geom.Pt(200, 0)}
	relays, err := CoverageLinkEscape(sc, []int{0, 1, 2}, points)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := buildAssign(3, relays)
	if err != nil {
		t.Fatal(err)
	}
	for j, a := range assign {
		if a == -1 {
			t.Errorf("subscriber %d unassigned", j)
		}
	}
	// SS 0 and 1 share the point at (10,0); SS 2 is one-on-one.
	if len(relays) != 2 {
		t.Fatalf("got %d relays", len(relays))
	}
}

func TestCoverageLinkEscapePrefersHighDegree(t *testing.T) {
	// Point A covers SS0,SS1,SS2; point B covers SS2 only. After escape,
	// SS2 must be assigned to A (processed first, higher degree), leaving B
	// unused (dropped).
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 35},
		{Pos: geom.Pt(10, 0), DistReq: 35},
		{Pos: geom.Pt(20, 0), DistReq: 35},
	}, -15)
	points := []geom.Point{geom.Pt(10, 0), geom.Pt(45, 0)} // B covers only SS2 (dist 25)
	relays, err := CoverageLinkEscape(sc, []int{0, 1, 2}, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != 1 {
		t.Fatalf("got %d relays, want 1 (high-degree point absorbs all)", len(relays))
	}
	if len(relays[0].Covers) != 3 {
		t.Errorf("relay covers %v", relays[0].Covers)
	}
}

func TestCoverageLinkEscapeErrors(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{{Pos: geom.Pt(0, 0), DistReq: 35}}, -15)
	if _, err := CoverageLinkEscape(sc, []int{0}, []geom.Point{geom.Pt(300, 300)}); err == nil {
		t.Error("uncovered subscriber accepted")
	}
	if _, err := CoverageLinkEscape(sc, []int{0}, nil); err == nil {
		t.Error("no points accepted")
	}
	if relays, err := CoverageLinkEscape(sc, nil, nil); err != nil || relays != nil {
		t.Error("empty zone should be a no-op")
	}
}

func TestSlidingMovementCoLocatesOneOnOne(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 35},
	}, -15)
	relays := []Relay{{Pos: geom.Pt(30, 0), Covers: []int{0}}}
	out, ok := SlidingMovement(sc, relays)
	if !ok {
		t.Fatal("single subscriber infeasible")
	}
	if !out[0].Pos.AlmostEqual(geom.Pt(0, 0), 1e-9) {
		t.Errorf("one-on-one relay not co-located: %v", out[0].Pos)
	}
	// Input untouched.
	if !relays[0].Pos.AlmostEqual(geom.Pt(30, 0), 0) {
		t.Error("input relays mutated")
	}
}

func TestSlidingMovementResolvesViolation(t *testing.T) {
	// Two shared relays close together create strong mutual interference at
	// a strict threshold; sliding should still find positions because each
	// relay can move inside its subscribers' circles.
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 40},
		{Pos: geom.Pt(30, 0), DistReq: 40},
		{Pos: geom.Pt(80, 0), DistReq: 40},
		{Pos: geom.Pt(110, 0), DistReq: 40},
	}, -5)
	relays := []Relay{
		{Pos: geom.Pt(15, 0), Covers: []int{0, 1}},
		{Pos: geom.Pt(95, 0), Covers: []int{2, 3}},
	}
	out, ok := SlidingMovement(sc, relays)
	if !ok {
		t.Skip("configuration genuinely infeasible at this threshold; skip")
	}
	// Every subscriber must now clear the threshold.
	st := &slidingState{sc: sc, beta: sc.Beta(), relays: out, servingOf: map[int]int{0: 0, 1: 0, 2: 1, 3: 1}}
	if v := st.violatedSubscribers(); len(v) != 0 {
		t.Errorf("violations remain: %v", v)
	}
}

func TestSlidingMovementInfeasibleWhenHopeless(t *testing.T) {
	// Two subscribers at the same location served by different relays: the
	// serving signals interfere symmetrically and no movement can give both
	// a 10 dB advantage.
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 30},
		{Pos: geom.Pt(1, 0), DistReq: 30},
	}, 10)
	relays := []Relay{
		{Pos: geom.Pt(-20, 0), Covers: []int{0}},
		{Pos: geom.Pt(21, 0), Covers: []int{1}},
	}
	if _, ok := SlidingMovement(sc, relays); ok {
		t.Error("hopeless configuration reported feasible")
	}
}

func TestSAMCEndToEnd(t *testing.T) {
	sc := testScenario(t, 500, 20, 7)
	res, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("SAMC infeasible on a benign -15dB instance")
	}
	if err := res.Verify(sc, true); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.NumRelays() == 0 || res.NumRelays() > 20 {
		t.Errorf("placed %d relays for 20 subscribers", res.NumRelays())
	}
	if res.Method != "SAMC" {
		t.Errorf("Method = %q", res.Method)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestSAMCDeterministic(t *testing.T) {
	sc := testScenario(t, 500, 15, 11)
	a, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRelays() != b.NumRelays() {
		t.Errorf("non-deterministic relay count: %d vs %d", a.NumRelays(), b.NumRelays())
	}
}

func TestPROReducesPower(t *testing.T) {
	sc := testScenario(t, 500, 20, 13)
	res, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !res.Feasible {
		t.Fatalf("SAMC failed: %v feasible=%v", err, res != nil && res.Feasible)
	}
	base := BaselinePower(sc, res)
	pro, err := PRO(context.Background(), sc, res)
	if err != nil {
		t.Fatal(err)
	}
	if pro.Total > base.Total+1e-9 {
		t.Errorf("PRO total %v exceeds baseline %v", pro.Total, base.Total)
	}
	if err := VerifyPower(sc, res, pro.Powers); err != nil {
		t.Errorf("PRO allocation invalid: %v", err)
	}
	if pro.Total <= 0 {
		t.Error("PRO total should be positive")
	}
}

func TestOptimalPowerIsLowerBound(t *testing.T) {
	sc := testScenario(t, 500, 15, 17)
	res, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !res.Feasible {
		t.Fatalf("SAMC failed")
	}
	opt, err := OptimalPower(context.Background(), sc, res)
	if err != nil {
		t.Fatal(err)
	}
	pro, err := PRO(context.Background(), sc, res)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Total > pro.Total+1e-6 {
		t.Errorf("optimal %v above PRO %v", opt.Total, pro.Total)
	}
	if err := VerifyPower(sc, res, opt.Powers); err != nil {
		t.Errorf("optimal allocation invalid: %v", err)
	}
}

func TestVerifyPowerCatchesViolations(t *testing.T) {
	sc := testScenario(t, 500, 10, 19)
	res, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !res.Feasible {
		t.Fatalf("SAMC failed")
	}
	powers := make([]float64, len(res.Relays))
	// All-zero powers violate coverage.
	if err := VerifyPower(sc, res, powers); err == nil {
		t.Error("zero powers accepted")
	}
	for i := range powers {
		powers[i] = sc.PMax * 2
	}
	if err := VerifyPower(sc, res, powers); err == nil {
		t.Error("over-PMax powers accepted")
	}
	if err := VerifyPower(sc, res, powers[:1]); err == nil {
		t.Error("wrong-length powers accepted")
	}
}

func TestIACEndToEnd(t *testing.T) {
	sc := testScenario(t, 500, 12, 23)
	res, err := IAC(context.Background(), sc, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("IAC infeasible on this instance (candidate-set limitation; acceptable)")
	}
	if err := res.Verify(sc, true); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Method != "IAC" {
		t.Errorf("Method = %q", res.Method)
	}
}

func TestGACEndToEnd(t *testing.T) {
	sc := testScenario(t, 500, 12, 23)
	res, err := GAC(context.Background(), sc, ILPOptions{GridSize: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("GAC infeasible on this instance (grid too coarse; acceptable)")
	}
	if err := res.Verify(sc, true); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSAMCNotWorseThanILPByMuch(t *testing.T) {
	// The paper's headline lower-tier result: SAMC needs no more relays
	// than IAC/GAC (Fig. 3). Check the weaker, robust property: SAMC is
	// within +2 relays of IAC on a small instance.
	sc := testScenario(t, 500, 10, 29)
	samc, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !samc.Feasible {
		t.Fatalf("SAMC failed")
	}
	iac, err := IAC(context.Background(), sc, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if iac.Feasible && samc.NumRelays() > iac.NumRelays()+2 {
		t.Errorf("SAMC %d relays much worse than IAC %d", samc.NumRelays(), iac.NumRelays())
	}
}

func TestResultVerifyRejectsBadAssignments(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 35},
		{Pos: geom.Pt(200, 0), DistReq: 35},
	}, -15)
	res := &Result{
		Feasible: true,
		Relays:   []Relay{{Pos: geom.Pt(0, 0), Covers: []int{0}}},
		AssignOf: []int{0, -1},
	}
	if err := res.Verify(sc, false); err == nil {
		t.Error("uncovered subscriber accepted")
	}
	// Out-of-range distance.
	res = &Result{
		Feasible: true,
		Relays:   []Relay{{Pos: geom.Pt(100, 0), Covers: []int{0, 1}}},
		AssignOf: []int{0, 0},
	}
	if err := res.Verify(sc, false); err == nil {
		t.Error("distance violation accepted")
	}
	// Double assignment.
	res = &Result{
		Feasible: true,
		Relays: []Relay{
			{Pos: geom.Pt(0, 0), Covers: []int{0}},
			{Pos: geom.Pt(5, 0), Covers: []int{0}},
		},
		AssignOf: []int{0, 0},
	}
	if err := res.Verify(sc, false); err == nil {
		t.Error("double assignment accepted")
	}
}

func TestSIRAtSubscriberNoInterference(t *testing.T) {
	sc := handScenario(t, []scenario.Subscriber{{Pos: geom.Pt(0, 0), DistReq: 35}}, -15)
	res := &Result{
		Feasible: true,
		Relays:   []Relay{{Pos: geom.Pt(10, 0), Covers: []int{0}}},
		AssignOf: []int{0},
	}
	if sir := res.SIRAtSubscriber(sc, 0, nil); !math.IsInf(sir, 1) {
		t.Errorf("lone relay SIR = %v, want +Inf", sir)
	}
}

func TestCombinationsBySize(t *testing.T) {
	masks := combinationsBySize(3, 100)
	if len(masks) != 7 {
		t.Fatalf("got %d masks, want 7", len(masks))
	}
	if masks[0] != 7 {
		t.Errorf("first mask = %b, want 111", masks[0])
	}
	// Large n: capped prefix with full mask first.
	big := combinationsBySize(20, 10)
	if len(big) != 10 || big[0] != (1<<20)-1 {
		t.Errorf("large-n masks wrong: len=%d first=%b", len(big), big[0])
	}
	if combinationsBySize(0, 5) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestPowerMonotoneInSNRThreshold(t *testing.T) {
	// A stricter threshold can only increase optimal power on the same
	// placement.
	sc := testScenario(t, 500, 15, 31)
	res, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !res.Feasible {
		t.Fatalf("SAMC failed")
	}
	optLoose, err := OptimalPower(context.Background(), sc, res)
	if err != nil {
		t.Fatal(err)
	}
	strict := *sc
	strict.SNRThresholdDB = -18 // looser, actually: -18dB < -15dB threshold
	optLooser, err := OptimalPower(context.Background(), &strict, res)
	if err != nil {
		t.Fatal(err)
	}
	if optLooser.Total > optLoose.Total+1e-6 {
		t.Errorf("loosening the threshold increased power: %v -> %v", optLoose.Total, optLooser.Total)
	}
}
