package lower

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/hitting"
	"sagrelay/internal/lp"
	"sagrelay/internal/milp"
	"sagrelay/internal/obs"
	"sagrelay/internal/par"
	"sagrelay/internal/scenario"
)

// ILPOptions tune the ILPQC-based coverage solvers (IAC and GAC).
type ILPOptions struct {
	// GridSize is the GAC grid cell size (paper sweeps 13-20); 0 means 15.
	GridSize float64
	// MaxZoneSS caps the subscribers per solved sub-zone; larger zones are
	// spatially bisected first (see SplitLargeZones). 0 means 10.
	MaxZoneSS int
	// MaxNodes caps branch-and-bound nodes per sub-zone; 0 means 3000.
	MaxNodes int
	// TimeLimit caps branch-and-bound time per sub-zone; 0 means 2s.
	TimeLimit time.Duration
	// Workers bounds the number of Zone-Partition zones solved
	// concurrently; 0 means runtime.GOMAXPROCS(0), 1 solves zones
	// sequentially. Zones are independent subproblems (Section IV-A) and
	// relays are assembled in zone order, so the result is identical at any
	// worker count.
	Workers int
	// MILP carries search-strategy knobs (node order, branching rule,
	// rounding heuristic) through to the branch-and-bound solver; its
	// MaxNodes/TimeLimit/Incumbent fields are overridden per zone.
	MILP milp.Options
	// Cache, when non-nil, is consulted before each zone's branch-and-bound
	// solve and handed every solved zone afterwards (see ZoneCache). A hit
	// splices the cached placement verbatim, which is byte-identical to
	// re-solving: the key covers every determinism-relevant input.
	Cache ZoneCache
	// Seed, when non-nil, supplies fast-mode warm starts (previous
	// incumbent + final basis) for zones the cache misses. Seeding is NOT
	// byte-reproducible — see ZoneSeed — so callers must not combine it
	// with result caching.
	Seed ZoneSeed
}

// DefaultMaxZoneSS is the default sub-zone size cap applied when
// ILPOptions.MaxZoneSS is zero; exported so the incremental planner
// (internal/incr) reproduces the exact zone partition a solve will use.
const DefaultMaxZoneSS = 10

func (o ILPOptions) withDefaults() ILPOptions {
	if o.GridSize <= 0 {
		o.GridSize = 15
	}
	if o.MaxZoneSS <= 0 {
		o.MaxZoneSS = DefaultMaxZoneSS
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 3000
	}
	if o.TimeLimit <= 0 {
		o.TimeLimit = 2 * time.Second
	}
	return o
}

// IAC solves the ILPQC coverage formulation (eqs. 3.1-3.5) with
// Intersections As Candidates (Fig. 2a): candidate relay positions are the
// pairwise intersection points of the subscribers' feasible circles (plus
// the circle centers, so isolated subscribers stay coverable).
//
// Cancellation is cooperative: a cancelled ctx stops unstarted zones and
// aborts in-flight branch-and-bound searches between nodes and simplex
// pivots. The error wraps ctx.Err().
func IAC(ctx context.Context, sc *scenario.Scenario, opts ILPOptions) (*Result, error) {
	return solveILP(ctx, sc, opts, "IAC", func(zone []int, disks []geom.Circle) []geom.Point {
		return geom.IntersectionCandidates(disks)
	})
}

// GAC solves the ILPQC coverage formulation with Grids As Candidates
// (Fig. 2b): candidate relay positions are the centers of the square grid
// cells tiling the field; smaller grid sizes give more accurate results at
// higher cost (Section III-A). Cancellation behaves as in IAC.
func GAC(ctx context.Context, sc *scenario.Scenario, opts ILPOptions) (*Result, error) {
	opts = opts.withDefaults()
	gridAll := geom.GridCenters(sc.Field, opts.GridSize)
	return solveILP(ctx, sc, opts, "GAC", func(zone []int, disks []geom.Circle) []geom.Point {
		// Restrict the field-wide grid to points that cover some zone
		// subscriber; the rest cannot appear in any zone-local solution.
		var pts []geom.Point
		for _, p := range gridAll {
			for _, d := range disks {
				if d.Contains(p, coverTol) {
					pts = append(pts, p)
					break
				}
			}
		}
		return pts
	})
}

// solveILP runs the shared per-zone ILPQC pipeline with the given candidate
// construction.
func solveILP(ctx context.Context, sc *scenario.Scenario, opts ILPOptions, method string, candidatesFor func([]int, []geom.Circle) []geom.Point) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	opts = opts.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("lower: %s: %w", method, err)
	}
	_, zpSpan := obs.StartSpan(ctx, "zone_partition")
	zones, err := ZonePartition(sc)
	if err != nil {
		zpSpan.End()
		return nil, fmt.Errorf("lower: %s: %w", method, err)
	}
	zones = SplitLargeZones(sc, zones, opts.MaxZoneSS)
	zpSpan.SetInt("zones", int64(len(zones)))
	zpSpan.End()
	res := &Result{Method: method, Zones: zones}
	// The zones are independent ILPQC subproblems: fan them out over the
	// worker pool, collect each zone's relays into its index-addressed
	// slot, and concatenate in zone order so the relay list is identical to
	// a sequential solve. An infeasible zone cancels the remaining ones,
	// and a cancelled ctx both stops unstarted zones and aborts in-flight
	// branch-and-bound searches.
	zoneRelays := make([][]Relay, len(zones))
	zoneTrunc := make([]bool, len(zones))
	err = par.ForEachContext(ctx, opts.Workers, len(zones), func(zi int) error {
		zone := zones[zi]
		// The captured ctx carries the solve span, so every worker's zone
		// span lands under the same parent regardless of which goroutine
		// runs it.
		zoneStart := time.Now()
		zCtx, zSpan := obs.StartSpan(ctx, "zone")
		zSpan.SetInt("index", int64(zi))
		zSpan.SetInt("subscribers", int64(len(zone)))
		// Re-arm any installed progress hook with zone identity stamped on
		// every event, so a consumer watching the whole solve can keep
		// per-zone convergence rows. The wrapper is built only when a hook
		// is armed; disarmed solves stay allocation-free.
		pfn := milp.ProgressFrom(ctx)
		if pfn != nil {
			zCtx = milp.WithProgress(zCtx, func(p milp.Progress) {
				p.Zone = zi
				p.Subscribers = len(zone)
				pfn(p)
			})
		}
		var cacheKey string
		if opts.Cache != nil {
			cacheKey = ilpZoneKey(sc, zone, method, opts)
			e, hit, cerr := opts.Cache.Get(cacheKey)
			if cerr != nil {
				zSpan.SetAttr("error", cerr.Error())
				zSpan.End()
				return cerr
			}
			if hit {
				if relays, ok := globalizeRelays(e.Relays, zone); ok {
					zSpan.SetBool("cache_hit", true)
					zSpan.SetInt("relays", int64(len(relays)))
					zSpan.End()
					zoneSolveSeconds.Observe(time.Since(zoneStart).Seconds())
					zoneRelays[zi] = relays
					if pfn != nil {
						pfn(milp.Progress{
							Kind:        milp.KindZoneReused,
							Zone:        zi,
							Subscribers: len(zone),
							Final:       true,
						})
					}
					return nil
				}
			}
		}
		disks := make([]geom.Circle, len(zone))
		for i, s := range zone {
			disks[i] = sc.Subscribers[s].Circle()
		}
		relays, mres, err := solveZoneILP(zCtx, sc, zone, disks, candidatesFor(zone, disks), opts)
		zSpan.End()
		zoneSolveSeconds.Observe(time.Since(zoneStart).Seconds())
		if err != nil {
			zSpan.SetAttr("error", err.Error())
			return err
		}
		truncated := mres != nil && mres.DeadlineHit
		zSpan.SetInt("relays", int64(len(relays)))
		if truncated {
			zSpan.SetBool("truncated", true)
		}
		if opts.Cache != nil && mres != nil {
			if local, ok := localizeRelays(relays, zone); ok {
				opts.Cache.Put(cacheKey, &ZoneEntry{
					Relays:    local,
					X:         mres.X,
					Obj:       mres.Objective,
					Basis:     mres.Basis,
					NumVars:   len(mres.X),
					Truncated: truncated,
				})
			}
		}
		zoneRelays[zi] = relays
		zoneTrunc[zi] = truncated
		return nil
	})
	if err != nil {
		// ErrZoneDeadline deliberately falls through to the error return:
		// "out of wall-clock before any incumbent" is load-dependent and must
		// not be reported as (cacheable, deterministic) infeasibility.
		if errors.Is(err, ErrInfeasible) {
			res.Feasible = false
			res.Elapsed = time.Since(start)
			return res, nil
		}
		return nil, fmt.Errorf("lower: %s: %w", method, err)
	}
	for zi, relays := range zoneRelays {
		res.Relays = append(res.Relays, relays...)
		res.Truncated = res.Truncated || zoneTrunc[zi]
	}
	res.Feasible = true
	res.AssignOf, err = buildAssign(sc.NumSS(), res.Relays)
	if err != nil {
		return nil, fmt.Errorf("lower: %s: %w", method, err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// solveZoneILP builds and solves the ILPQC for one zone.
//
// Variables: T_i (place a relay at candidate i) and T_ij (subscriber j's
// access link uses candidate i), both binary; T_ij exists only for pairs
// within the distance requirement (constraint 3.4 by construction).
//
// Constraints (numbers from the paper):
//
//	(3.2)  T_i <= sum_j T_ij <= n*T_i        placed relays cover >= 1 SS,
//	                                         links only to placed relays
//	(3.3)  sum_i T_ij = 1                    exactly one access link per SS
//	(3.5)  sum_k w_kj*T_k - w_ij*T_i <= w_ij/beta + M_j*(1 - T_ij)
//
// (3.5) is the paper's quadratic SNR constraint linearized exactly with
// M_j = sum_k w_kj (the largest possible interference at j): when T_ij = 1
// the relay at i serves j, so the total received power minus the serving
// signal must be at most signal/beta.
func solveZoneILP(ctx context.Context, sc *scenario.Scenario, zone []int, disks []geom.Circle, candidates []geom.Point, opts ILPOptions) (relays []Relay, mres *milp.Result, err error) {
	if len(zone) == 0 {
		return nil, nil, nil
	}
	// Keep only candidates that cover at least one subscriber.
	var cands []geom.Point
	for _, p := range candidates {
		for _, d := range disks {
			if d.Contains(p, coverTol) {
				cands = append(cands, p)
				break
			}
		}
	}
	if len(cands) == 0 {
		return nil, nil, ErrInfeasible
	}
	n := len(zone)
	nC := len(cands)
	beta := sc.Beta()

	// Path gains w_kj between every candidate and every zone subscriber.
	w := make([][]float64, nC)
	for i, p := range cands {
		w[i] = make([]float64, n)
		for j, s := range zone {
			w[i][j] = sc.Model.Gain(p.Dist(sc.Subscribers[s].Pos))
		}
	}

	prob := lp.NewProblem()
	tVar := make([]int, nC)
	for i := range tVar {
		tVar[i] = prob.AddVariable(fmt.Sprintf("T%d", i), 1)
		if err := prob.SetUpperBound(tVar[i], 1); err != nil {
			return nil, nil, err
		}
	}
	// Feasible pairs and their variables.
	pairVar := make(map[[2]int]int) // (candidate, zoneSS) -> var
	pairsOfCand := make([][]int, nC)
	pairsOfSS := make([][]int, n)
	for i := range cands {
		for j := range zone {
			if disks[j].Contains(cands[i], coverTol) {
				v := prob.AddVariable(fmt.Sprintf("T%d_%d", i, j), 0)
				if err := prob.SetUpperBound(v, 1); err != nil {
					return nil, nil, err
				}
				pairVar[[2]int{i, j}] = v
				pairsOfCand[i] = append(pairsOfCand[i], j)
				pairsOfSS[j] = append(pairsOfSS[j], i)
			}
		}
	}
	for j := range zone {
		if len(pairsOfSS[j]) == 0 {
			return nil, nil, ErrInfeasible // no candidate covers this subscriber
		}
	}
	// (3.2): T_i - sum_j T_ij <= 0 and sum_j T_ij - n*T_i <= 0.
	for i := range cands {
		lowTerms := []lp.Term{{Var: tVar[i], Coef: 1}}
		highTerms := []lp.Term{{Var: tVar[i], Coef: -float64(n)}}
		for _, j := range pairsOfCand[i] {
			v := pairVar[[2]int{i, j}]
			lowTerms = append(lowTerms, lp.Term{Var: v, Coef: -1})
			highTerms = append(highTerms, lp.Term{Var: v, Coef: 1})
		}
		if err := prob.AddConstraint(lowTerms, lp.LE, 0); err != nil {
			return nil, nil, err
		}
		if err := prob.AddConstraint(highTerms, lp.LE, 0); err != nil {
			return nil, nil, err
		}
	}
	// (3.3): exactly one access link per subscriber.
	for j := range zone {
		terms := make([]lp.Term, 0, len(pairsOfSS[j]))
		for _, i := range pairsOfSS[j] {
			terms = append(terms, lp.Term{Var: pairVar[[2]int{i, j}], Coef: 1})
		}
		if err := prob.AddConstraint(terms, lp.EQ, 1); err != nil {
			return nil, nil, err
		}
	}
	// (3.5) big-M linearized per feasible pair.
	for j := range zone {
		mj := 0.0
		for k := range cands {
			mj += w[k][j]
		}
		for _, i := range pairsOfSS[j] {
			terms := make([]lp.Term, 0, nC+2)
			for k := range cands {
				terms = append(terms, lp.Term{Var: tVar[k], Coef: w[k][j]})
			}
			terms = append(terms, lp.Term{Var: tVar[i], Coef: -w[i][j]})
			terms = append(terms, lp.Term{Var: pairVar[[2]int{i, j}], Coef: mj})
			rhs := w[i][j]/beta + mj
			if err := prob.AddConstraint(terms, lp.LE, rhs); err != nil {
				return nil, nil, err
			}
		}
	}

	isInt := make([]bool, prob.NumVariables())
	for i := range isInt {
		isInt[i] = true
	}
	mopts := opts.MILP
	mopts.MaxNodes = opts.MaxNodes
	mopts.TimeLimit = opts.TimeLimit
	mopts.Incumbent = nil
	mopts.IncumbentObj = 0
	if inc, obj, ok := greedyIncumbent(sc, zone, disks, cands, w, beta, pairVar, prob.NumVariables(), tVar); ok {
		mopts.Incumbent = inc
		mopts.IncumbentObj = obj
	}
	// Fast-mode warm start: adopt a previous solve's incumbent when it is
	// still feasible for (and cheaper than the greedy start of) the current
	// model, and seed the root relaxation with its final basis. Both only
	// steer the search; CheckFeasible re-verifies the point against the
	// current constraints before adoption.
	if opts.Seed != nil {
		if x, basis, ok := opts.Seed.SeedFor(zone, prob.NumVariables()); ok {
			if feas, ferr := prob.CheckFeasible(x, 1e-6); ferr == nil && feas {
				if obj, oerr := prob.Objective(x); oerr == nil && (mopts.Incumbent == nil || obj < mopts.IncumbentObj) {
					mopts.Incumbent = x
					mopts.IncumbentObj = obj
				}
			}
			mopts.SeedBasis = basis
		}
	}
	mres, err = milp.Solve(ctx, prob, isInt, mopts)
	if err != nil {
		return nil, nil, fmt.Errorf("branch and bound: %w", err)
	}
	if err := zoneStatusErr(mres.Status, mres.DeadlineHit); err != nil {
		return nil, nil, err
	}
	// Extract placement and assignment.
	covers := make(map[int][]int)
	for j := range zone {
		for _, i := range pairsOfSS[j] {
			if mres.X[pairVar[[2]int{i, j}]] > 0.5 {
				covers[i] = append(covers[i], zone[j])
				break
			}
		}
	}
	for i := range cands {
		if mres.X[tVar[i]] > 0.5 && len(covers[i]) > 0 {
			relays = append(relays, Relay{Pos: cands[i], Covers: covers[i]})
		}
	}
	return relays, mres, nil
}

// zoneStatusErr maps a zone's branch-and-bound outcome to the error the
// zone solve reports. Optimal and Feasible proceed to extraction (a
// Feasible incumbent truncated by the wall-clock deadline is usable but
// marks the result Truncated). A Limit caused by the wall-clock deadline
// is ErrZoneDeadline: running out of time before any incumbent is a
// load-dependent non-answer, not proof of infeasibility. A node-cap Limit
// is deterministic — the same nodes are explored on every machine — and
// keeps the historical infeasible mapping.
func zoneStatusErr(status milp.Status, deadlineHit bool) error {
	switch status {
	case milp.Optimal, milp.Feasible:
		return nil
	case milp.Infeasible:
		return ErrInfeasible
	case milp.Limit:
		if deadlineHit {
			return ErrZoneDeadline
		}
		return ErrInfeasible
	default:
		return fmt.Errorf("branch and bound: unexpected status %v", status)
	}
}

// greedyIncumbent warm-starts branch and bound with a greedy hitting set
// whose max-signal assignment happens to satisfy the SNR constraints.
// ok=false when greedy's placement violates SNR (the search then starts
// cold).
func greedyIncumbent(sc *scenario.Scenario, zone []int, disks []geom.Circle, cands []geom.Point, w [][]float64, beta float64, pairVar map[[2]int]int, numVars int, tVar []int) ([]float64, float64, bool) {
	inst := &hitting.Instance{Disks: disks, Candidates: cands, Tol: coverTol}
	sol, err := inst.Solve(hitting.Options{LocalSearch: true, MaxSwap: 2, MaxRounds: 10})
	if err != nil {
		return nil, 0, false
	}
	chosen := make(map[int]bool, len(sol.Chosen))
	for _, c := range sol.Chosen {
		chosen[c] = true
	}
	// Assign each subscriber to the strongest chosen covering candidate.
	assign := make([]int, len(zone))
	for j := range zone {
		best, bestW := -1, 0.0
		for i := range cands {
			if !chosen[i] || !disks[j].Contains(cands[i], coverTol) {
				continue
			}
			if w[i][j] > bestW {
				best, bestW = i, w[i][j]
			}
		}
		if best < 0 {
			return nil, 0, false
		}
		assign[j] = best
	}
	// Drop chosen candidates that serve nobody (3.2 would be violated).
	// used is indexed by candidate so the SNR noise sum below runs in
	// candidate order: floating-point accumulation order is part of the
	// bit-identical determinism contract, and ranging over a map here would
	// let Go's randomized iteration order perturb the rounding.
	used := make([]bool, len(cands))
	for _, a := range assign {
		used[a] = true
	}
	// SNR check under the used set.
	for j := range zone {
		signal := w[assign[j]][j]
		noise := 0.0
		for i, u := range used {
			if u && i != assign[j] {
				noise += w[i][j]
			}
		}
		if signal < beta*noise {
			return nil, 0, false
		}
	}
	x := make([]float64, numVars)
	usedCount := 0
	for i, u := range used {
		if u {
			x[tVar[i]] = 1
			usedCount++
		}
	}
	for j, a := range assign {
		v, ok := pairVar[[2]int{a, j}]
		if !ok {
			return nil, 0, false
		}
		x[v] = 1
	}
	return x, float64(usedCount), true
}
