package lower

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/hitting"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// zoneSolveSeconds is the process-wide distribution of per-zone coverage
// solve times, across both the SAMC heuristic and the ILP paths.
var zoneSolveSeconds = obs.Default.NewHistogram(
	"sag_zone_solve_seconds",
	"Wall-clock seconds spent solving one Zone-Partition zone.",
	obs.SecondsBuckets,
)

// SAMCOptions tune the SAMC heuristic.
type SAMCOptions struct {
	// Hitting configures the minimum hitting set PTAS; the zero value
	// selects hitting.DefaultOptions().
	Hitting hitting.Options
	// SkipSliding disables RS Sliding Movement (Alg. 4) for ablation: the
	// hitting-set points are used verbatim and any SNR violation makes the
	// zone infeasible. The paper's design rests on sliding rescuing exactly
	// these cases (Section III-A.1).
	SkipSliding bool
	// Workers bounds the number of Zone-Partition zones solved concurrently
	// by the zone-parallel pipelines (DistanceCoverage, DualCoverage); 0
	// means runtime.GOMAXPROCS(0). Zone results are assembled in zone
	// order, so any worker count yields the identical placement.
	Workers int
	// Cache, when non-nil, is consulted before each zone's hitting-set +
	// sliding solve and handed every solved zone afterwards (see
	// ZoneCache). A hit splices the cached placement verbatim — SAMC is
	// deterministic per zone, so the splice is byte-identical to solving.
	Cache ZoneCache
}

func (o SAMCOptions) withDefaults() SAMCOptions {
	if o.Hitting == (hitting.Options{}) {
		o.Hitting = hitting.DefaultOptions()
	}
	return o
}

// ErrInfeasible reports that an algorithm could not satisfy every
// subscriber's coverage and SNR requirements (the paper's algorithms return
// "infeasible" in that case rather than a partial placement).
var ErrInfeasible = errors.New("lower: no feasible coverage satisfying the SNR threshold")

// ErrZoneDeadline reports that a zone's branch-and-bound search exhausted
// its wall-clock time limit (ILPOptions.TimeLimit) before finding any
// integer-feasible point. Unlike a proven-infeasible zone this is a
// load-dependent non-answer — a faster or idler machine might have found a
// cover — so it surfaces as an error (letting the degradation ladder retry
// or fall back to SAMC) instead of masquerading as infeasibility, which
// would poison deterministic result caches.
var ErrZoneDeadline = errors.New("lower: zone time limit exhausted before any feasible placement was found")

// SAMC implements Algorithm 1, SNR Aware Minimum Coverage:
//
//  1. Zone Partition (Alg. 2) splits the field into independent zones.
//  2. Per zone: a minimum hitting set over the subscribers' feasible
//     circles places the coverage relays (candidates are the circles'
//     intersection points and centers); Coverage Link Escape (Alg. 3)
//     assigns each subscriber to exactly one relay, maximizing one-on-one
//     coverage; RS Sliding Movement (Alg. 4) slides relays along/inside
//     their feasible circles until every subscriber's SNR clears.
//  3. The union of the zones' relays is returned; if any zone fails, SAMC
//     is infeasible (Alg. 1, Step 5).
//
// The relay count equals the hitting set size per zone (no relays are added
// or deleted while massaging SNR), so a feasible SAMC result inherits the
// hitting set PTAS's (1+eps) approximation on the relay count.
//
// Cancellation is cooperative: a cancelled ctx stops the zone loop between
// zones and the error wraps ctx.Err(). Zones are the natural check
// granularity — each zone's hitting-set and sliding work is bounded — so
// cancellation is prompt without perturbing any zone's result.
func SAMC(ctx context.Context, sc *scenario.Scenario, opts SAMCOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	opts = opts.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("lower: SAMC: %w", err)
	}
	_, zpSpan := obs.StartSpan(ctx, "zone_partition")
	zones, err := ZonePartition(sc)
	zpSpan.SetInt("zones", int64(len(zones)))
	zpSpan.End()
	if err != nil {
		return nil, fmt.Errorf("lower: SAMC: %w", err)
	}
	res := &Result{Method: "SAMC", Zones: zones}
	for zi, zone := range zones {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("lower: SAMC: %w", err)
		}
		zoneStart := time.Now()
		_, zSpan := obs.StartSpan(ctx, "zone")
		zSpan.SetInt("index", int64(zi))
		zSpan.SetInt("subscribers", int64(len(zone)))
		var cacheKey string
		if opts.Cache != nil {
			cacheKey = samcZoneKey(sc, zone, opts)
			e, hit, cerr := opts.Cache.Get(cacheKey)
			if cerr != nil {
				zSpan.SetAttr("error", cerr.Error())
				zSpan.End()
				return nil, fmt.Errorf("lower: SAMC: %w", cerr)
			}
			if hit {
				if relays, ok := globalizeRelays(e.Relays, zone); ok {
					zSpan.SetBool("cache_hit", true)
					zSpan.SetInt("relays", int64(len(relays)))
					zSpan.End()
					zoneSolveSeconds.Observe(time.Since(zoneStart).Seconds())
					res.Relays = append(res.Relays, relays...)
					continue
				}
			}
		}
		relays, err := samcZone(sc, zone, opts)
		zSpan.End()
		zoneSolveSeconds.Observe(time.Since(zoneStart).Seconds())
		if err != nil {
			if errors.Is(err, ErrInfeasible) || errors.Is(err, hitting.ErrUncoverable) {
				zSpan.SetBool("infeasible", true)
				res.Feasible = false
				res.Relays = nil
				res.AssignOf = nil
				res.Elapsed = time.Since(start)
				return res, nil
			}
			zSpan.SetAttr("error", err.Error())
			return nil, fmt.Errorf("lower: SAMC: %w", err)
		}
		zSpan.SetInt("relays", int64(len(relays)))
		if opts.Cache != nil {
			if local, ok := localizeRelays(relays, zone); ok {
				opts.Cache.Put(cacheKey, &ZoneEntry{Relays: local})
			}
		}
		res.Relays = append(res.Relays, relays...)
	}
	res.Feasible = true
	res.AssignOf, err = buildAssign(sc.NumSS(), res.Relays)
	if err != nil {
		return nil, fmt.Errorf("lower: SAMC: %w", err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// samcZone runs steps 4 of Algorithm 1 for one zone.
func samcZone(sc *scenario.Scenario, zone []int, opts SAMCOptions) ([]Relay, error) {
	disks := make([]geom.Circle, len(zone))
	for i, s := range zone {
		disks[i] = sc.Subscribers[s].Circle()
	}
	inst := &hitting.Instance{
		Disks:      disks,
		Candidates: geom.IntersectionCandidates(disks),
		Tol:        coverTol,
	}
	mhs, err := inst.Solve(opts.Hitting)
	if err != nil {
		return nil, err
	}
	points := make([]geom.Point, len(mhs.Chosen))
	for i, c := range mhs.Chosen {
		points[i] = inst.Candidates[c]
	}
	relays, err := CoverageLinkEscape(sc, zone, points)
	if err != nil {
		return nil, err
	}
	if opts.SkipSliding {
		if !snrSatisfied(sc, relays) {
			return nil, ErrInfeasible
		}
		return relays, nil
	}
	slid, ok := SlidingMovement(sc, relays)
	if !ok {
		return nil, ErrInfeasible
	}
	return slid, nil
}

// snrSatisfied checks every covered subscriber's Definition 2 SNR against
// the zone's relays at PMax (used by the SkipSliding ablation path).
func snrSatisfied(sc *scenario.Scenario, relays []Relay) bool {
	st := &slidingState{
		sc:        sc,
		beta:      sc.Beta(),
		relays:    relays,
		servingOf: make(map[int]int),
	}
	for r, relay := range relays {
		for _, s := range relay.Covers {
			st.servingOf[s] = r
		}
	}
	return len(st.violatedSubscribers()) == 0
}
