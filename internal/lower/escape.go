package lower

import (
	"fmt"

	"sagrelay/internal/geom"
	"sagrelay/internal/graph"
	"sagrelay/internal/scenario"
)

// CoverageLinkEscape implements Algorithm 3: given a zone's subscribers and
// the points of a minimum hitting set, it assigns every subscriber to
// exactly one covering point, concentrating subscribers on the
// highest-degree points first so that the remaining points keep as few
// subscribers as possible — maximizing one-on-one coverage, which gives RS
// Sliding Movement the most freedom (Section III-A.1).
//
// zone lists subscriber indices into sc.Subscribers; points are the chosen
// candidate positions. The returned relays carry their assigned subscriber
// indices; points that end up with no assigned subscriber are dropped
// (their disks are all covered by other chosen points, so removing them
// preserves coverage and strictly reduces interference).
func CoverageLinkEscape(sc *scenario.Scenario, zone []int, points []geom.Point) ([]Relay, error) {
	if len(zone) == 0 {
		return nil, nil
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("lower: link escape: no points for a non-empty zone")
	}
	// Steps 1-2: bipartite graph, side A subscribers, side B points; edge
	// when the point lies in or on the subscriber's feasible circle.
	g := graph.NewBipartite(len(zone), len(points))
	for a, s := range zone {
		c := sc.Subscribers[s].Circle()
		covered := false
		for b, p := range points {
			if c.Contains(p, coverTol) {
				if err := g.AddEdge(a, b); err != nil {
					return nil, fmt.Errorf("lower: link escape: %w", err)
				}
				covered = true
			}
		}
		if !covered {
			return nil, fmt.Errorf("lower: link escape: subscriber %d not covered by any point", s)
		}
	}
	// Steps 3-5: process points from the maximum degree nmax down to 1.
	// Marking a point assigns its currently-unassigned subscribers to it;
	// those subscribers' other edges are deleted.
	nmax := g.MaxDegB()
	assignedTo := make([]int, len(zone)) // a -> b
	for i := range assignedTo {
		assignedTo[i] = -1
	}
	markedB := make([]bool, len(points))
	for n := nmax; n >= 1; n-- {
		for b := 0; b < len(points); b++ {
			if markedB[b] || g.DegB(b) != n {
				continue
			}
			markedB[b] = true
			for _, a := range g.AsOfB(b) {
				assignedTo[a] = b
				// Delete the subscriber's other (unmarked) edges.
				for _, other := range g.BsOfA(a) {
					if other != b {
						g.RemoveEdge(a, other)
					}
				}
			}
		}
	}
	// Collect assignments per point, dropping unused points.
	covers := make(map[int][]int, len(points))
	for a, b := range assignedTo {
		if b == -1 {
			return nil, fmt.Errorf("lower: link escape: subscriber %d left unassigned", zone[a])
		}
		covers[b] = append(covers[b], zone[a])
	}
	relays := make([]Relay, 0, len(covers))
	for b := 0; b < len(points); b++ {
		if ss := covers[b]; len(ss) > 0 {
			relays = append(relays, Relay{Pos: points[b], Covers: ss})
		}
	}
	return relays, nil
}

// coverTol is the boundary tolerance for coverage membership: candidate
// constructions (IAC intersections, one-on-one co-location) place points
// exactly on circle boundaries.
const coverTol = 1e-7
