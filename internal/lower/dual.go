package lower

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/hitting"
	"sagrelay/internal/par"
	"sagrelay/internal/scenario"
)

// DualResult is a dual-coverage placement: every subscriber has a primary
// access relay (Result.AssignOf) and a distinct backup relay within its
// distance requirement, following the dual-relay MMR architecture of [8],
// [9] in the paper's related work. Any single coverage-relay failure
// leaves every subscriber with a working access link.
type DualResult struct {
	// Result carries the relays and the primary assignment.
	Result
	// BackupOf maps each subscriber to its backup relay index (distinct
	// from the primary).
	BackupOf []int
}

// DualCoverage places coverage relays such that every subscriber's
// feasible circle contains at least two of them. It reuses Zone Partition
// and the hitting-set machinery with a 2-fold coverage demand, assigns
// primaries by Coverage Link Escape, and picks each subscriber's strongest
// remaining covering relay as backup.
//
// Sliding is intentionally skipped: moving a relay to favour its primary
// subscribers could evict it from circles where it serves as backup. Use
// SNRViolations to audit the SNR cost of the redundancy.
func DualCoverage(ctx context.Context, sc *scenario.Scenario, opts SAMCOptions) (*DualResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	opts = opts.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("lower: dual coverage: %w", err)
	}
	zones, err := ZonePartition(sc)
	if err != nil {
		return nil, fmt.Errorf("lower: dual coverage: %w", err)
	}
	res := &DualResult{Result: Result{Method: "dual-cover", Zones: zones}}
	// Zones are independent: solve them concurrently, then concatenate the
	// relay lists in zone order for a worker-count-independent result.
	zoneRelays := make([][]Relay, len(zones))
	err = par.ForEachContext(ctx, opts.Workers, len(zones), func(zi int) error {
		relays, err := dualZone(sc, zones[zi])
		if err != nil {
			return err
		}
		zoneRelays[zi] = relays
		return nil
	})
	if err != nil {
		if errors.Is(err, hitting.ErrUncoverable) {
			res.Feasible = false
			res.Elapsed = time.Since(start)
			return res, nil
		}
		return nil, fmt.Errorf("lower: dual coverage: %w", err)
	}
	for _, relays := range zoneRelays {
		res.Relays = append(res.Relays, relays...)
	}
	res.Feasible = true
	res.AssignOf, err = buildAssign(sc.NumSS(), res.Relays)
	if err != nil {
		return nil, fmt.Errorf("lower: dual coverage: %w", err)
	}
	if err := res.assignBackups(sc); err != nil {
		return nil, fmt.Errorf("lower: dual coverage: %w", err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// dualZone places 2-fold coverage for one zone and derives the primary
// assignment.
func dualZone(sc *scenario.Scenario, zone []int) ([]Relay, error) {
	disks := make([]geom.Circle, len(zone))
	for i, s := range zone {
		disks[i] = sc.Subscribers[s].Circle()
	}
	inst := &hitting.Instance{
		Disks:      disks,
		Candidates: geom.IntersectionCandidates(disks),
		Tol:        coverTol,
	}
	sol, err := inst.SolveMultiCover(2)
	if err != nil {
		return nil, err
	}
	points := make([]geom.Point, len(sol.Chosen))
	for i, c := range sol.Chosen {
		points[i] = inst.Candidates[c]
	}
	// Primary assignment via link escape. Escape drops relays that end up
	// with no primary subscriber, which would break 2-fold coverage — so
	// re-add any dropped points as pure-backup relays with no primaries.
	relays, err := CoverageLinkEscape(sc, zone, points)
	if err != nil {
		return nil, err
	}
	used := make(map[geom.Point]bool, len(relays))
	for _, r := range relays {
		used[r.Pos] = true
	}
	for _, p := range points {
		if !used[p] {
			relays = append(relays, Relay{Pos: p})
		}
	}
	return relays, nil
}

// assignBackups picks, for each subscriber, the strongest covering relay
// other than its primary.
func (r *DualResult) assignBackups(sc *scenario.Scenario) error {
	r.BackupOf = make([]int, sc.NumSS())
	for j := range sc.Subscribers {
		primary := r.AssignOf[j]
		ss := sc.Subscribers[j]
		best, bestDist := -1, math.Inf(1)
		for k, relay := range r.Relays {
			if k == primary {
				continue
			}
			d := relay.Pos.Dist(ss.Pos)
			if d <= ss.DistReq+coverTol && d < bestDist {
				best, bestDist = k, d
			}
		}
		if best < 0 {
			return fmt.Errorf("subscriber %d has no backup relay in range", j)
		}
		r.BackupOf[j] = best
	}
	return nil
}

// VerifyDual checks primary coverage (via Result.Verify) and that every
// backup is distinct from the primary and within range.
func (r *DualResult) VerifyDual(sc *scenario.Scenario) error {
	if err := r.Verify(sc, false); err != nil {
		return err
	}
	if len(r.BackupOf) != sc.NumSS() {
		return fmt.Errorf("lower: BackupOf has %d entries for %d subscribers", len(r.BackupOf), sc.NumSS())
	}
	for j, b := range r.BackupOf {
		if b < 0 || b >= len(r.Relays) {
			return fmt.Errorf("lower: subscriber %d backup %d out of range", j, b)
		}
		if b == r.AssignOf[j] {
			return fmt.Errorf("lower: subscriber %d backup equals primary", j)
		}
		ss := sc.Subscribers[j]
		if d := r.Relays[b].Pos.Dist(ss.Pos); d > ss.DistReq+1e-6 {
			return fmt.Errorf("lower: subscriber %d backup at distance %.3f exceeds %.3f", j, d, ss.DistReq)
		}
	}
	return nil
}

// SurvivesSingleFailure reports whether every subscriber keeps a covering
// relay (primary or backup) when the given relay fails. For a placement
// passing VerifyDual this always holds — the method makes the guarantee
// checkable against corrupted or hand-built placements.
func (r *DualResult) SurvivesSingleFailure(failed int) bool {
	for j := range r.AssignOf {
		if r.AssignOf[j] == failed && r.BackupOf[j] == failed {
			return false
		}
	}
	return true
}
