package lower

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/hitting"
	"sagrelay/internal/obs"
	"sagrelay/internal/par"
	"sagrelay/internal/scenario"
)

// DistanceCoverage is the lower tier of DARP [1]: minimum hitting set
// coverage under distance requirements only, with no SNR awareness — the
// approach the paper improves on ("[1] does not take SNR constraint into
// account"). It runs Zone Partition and Coverage Link Escape like SAMC but
// skips RS Sliding Movement entirely and accepts whatever SNR results.
//
// The returned result is always "feasible" in DARP's distance-only sense;
// callers can measure the SNR damage with Result.SIRAtSubscriber or
// Verify(sc, true) — quantifying exactly the gap the paper's Fig. 3
// feasibility arguments are about.
func DistanceCoverage(ctx context.Context, sc *scenario.Scenario, opts SAMCOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	opts = opts.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("lower: distance coverage: %w", err)
	}
	_, zpSpan := obs.StartSpan(ctx, "zone_partition")
	zones, err := ZonePartition(sc)
	zpSpan.SetInt("zones", int64(len(zones)))
	zpSpan.End()
	if err != nil {
		return nil, fmt.Errorf("lower: distance coverage: %w", err)
	}
	res := &Result{Method: "DARP-cover", Zones: zones}
	// Zones are independent: solve them concurrently, then concatenate the
	// relay lists in zone order for a worker-count-independent result.
	zoneRelays := make([][]Relay, len(zones))
	err = par.ForEachContext(ctx, opts.Workers, len(zones), func(zi int) error {
		zone := zones[zi]
		disks := make([]geom.Circle, len(zone))
		for i, s := range zone {
			disks[i] = sc.Subscribers[s].Circle()
		}
		inst := &hitting.Instance{
			Disks:      disks,
			Candidates: geom.IntersectionCandidates(disks),
			Tol:        coverTol,
		}
		mhs, err := inst.Solve(opts.Hitting)
		if err != nil {
			return err
		}
		points := make([]geom.Point, len(mhs.Chosen))
		for i, c := range mhs.Chosen {
			points[i] = inst.Candidates[c]
		}
		relays, err := CoverageLinkEscape(sc, zone, points)
		if err != nil {
			return err
		}
		zoneRelays[zi] = relays
		return nil
	})
	if err != nil {
		if errors.Is(err, hitting.ErrUncoverable) {
			res.Feasible = false
			res.Elapsed = time.Since(start)
			return res, nil
		}
		return nil, fmt.Errorf("lower: distance coverage: %w", err)
	}
	for _, relays := range zoneRelays {
		res.Relays = append(res.Relays, relays...)
	}
	res.Feasible = true
	res.AssignOf, err = buildAssign(sc.NumSS(), res.Relays)
	if err != nil {
		return nil, fmt.Errorf("lower: distance coverage: %w", err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// SNRViolations counts the subscribers whose Definition 2 SNR (all relays
// at PMax, zone-local interference) falls below the threshold — the
// diagnostic that separates SNR-aware placements from distance-only ones.
func SNRViolations(ctx context.Context, sc *scenario.Scenario, res *Result) (int, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("lower: SNR violations: %w", err)
		}
	}
	if err := res.Verify(sc, false); err != nil {
		return 0, err
	}
	zoneOf := zoneIndex(sc.NumSS(), res.Zones)
	violations := 0
	for j := range sc.Subscribers {
		if res.SIRAtSubscriber(sc, j, zoneOf) < sc.Beta()-1e-12 {
			violations++
		}
	}
	return violations, nil
}
