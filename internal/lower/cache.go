package lower

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"sagrelay/internal/lp"
	"sagrelay/internal/scenario"
)

// Zone-level content-addressed caching. The zone partition makes zones
// independent subproblems, so a zone's coverage solution is a pure function
// of (zone inputs, solver method, determinism-relevant options). Keys are
// SHA-256 content addresses built from scenario.CanonicalZoneBytes plus a
// canonical options encoding, so identical zones reuse solutions across
// deltas of one scenario and across unrelated jobs alike.
//
// What is deliberately NOT in the keys:
//
//   - TimeLimit: wall-clock truncation is load-dependent; truncated entries
//     are never cached (see ZoneEntry.Truncated), and every non-truncated
//     result is deterministic regardless of the time budget.
//   - Workers: worker count never changes any result (zone results are
//     assembled in zone order).
//   - MaxZoneSS: it decides which zones exist, not how a given zone solves;
//     the zone membership is already the key's content.
//   - Subscriber IDs and global indices: covers are stored zone-local so an
//     entry survives the zone drifting through the subscriber list.

// ZoneEntry is one cached zone-level coverage solution. Covers in Relays
// are ZONE-LOCAL subscriber indices (positions within the zone slice), so
// the entry is position-independent; callers remap to global indices on
// reuse. The MILP artifacts (X, Obj, Basis, NumVars) are kept for fast-mode
// warm-start seeding of related models and are nil/zero for heuristic
// (SAMC) entries. Entries are shared between jobs and must be treated as
// immutable.
type ZoneEntry struct {
	Relays []Relay
	// X, Obj are the final incumbent of the zone's branch-and-bound solve.
	X   []float64
	Obj float64
	// Basis is the final incumbent's node relaxation basis (may be nil).
	Basis *lp.Basis
	// NumVars is the ILPQC variable count, used to sanity-check a seed
	// against a re-solved model before reuse.
	NumVars int
	// Truncated marks a wall-clock-truncated (load-dependent) solve.
	// Compliant caches must refuse to store truncated entries; the flag
	// exists so the solver can hand every outcome to Put and let the cache
	// keep its counters accurate.
	Truncated bool
}

// ZoneCache is consulted by the coverage solvers once per zone. Get's error
// aborts the zone solve (it carries injected faults and I/O failures, not
// misses); a miss is (nil, false, nil). The solvers call Put for every zone
// they solved themselves, including truncated ones — storage policy
// (refusing truncated entries, eviction) belongs to the implementation.
type ZoneCache interface {
	Get(key string) (*ZoneEntry, bool, error)
	Put(key string, e *ZoneEntry)
}

// ZoneSeed supplies fast-mode warm-start artifacts for zones about to be
// solved: a previous incumbent and final simplex basis from a closely
// related model (typically the same zone before a small delta). ok=false
// means no seed. Seeds only steer the search — every returned point is
// re-verified against the current model before adoption — but they change
// which of several equally-good optima the search lands on first, so
// byte-reproducible solves must not seed.
type ZoneSeed interface {
	SeedFor(zone []int, numVars int) (x []float64, basis *lp.Basis, ok bool)
}

// ZonePowerCache caches per-zone PRO power blocks (see PROZoned). Values
// are relay-power slices in zone-relay order; implementations must copy on
// Put and treat stored slices as immutable.
type ZonePowerCache interface {
	GetPower(key string) ([]float64, bool)
	PutPower(key string, powers []float64)
}

// keyBuf builds canonical key bytes: labeled fields, exact hex floats.
type keyBuf struct{ bytes.Buffer }

func (b *keyBuf) field(label string, vals ...float64) {
	b.WriteString(label)
	for _, v := range vals {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	b.WriteByte('\n')
}

func (b *keyBuf) count(label string, n int) {
	b.WriteString(label)
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(n))
	b.WriteByte('\n')
}

func (b *keyBuf) hash() string {
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

// ZoneKeyILP returns the cache key solveILP uses for one zone under opts —
// exported so the incremental planner (internal/incr) can look up a base
// scenario's entries when building fast-mode seeds.
func ZoneKeyILP(sc *scenario.Scenario, zone []int, method string, opts ILPOptions) string {
	return ilpZoneKey(sc, zone, method, opts.withDefaults())
}

// ZoneKeySAMC is ZoneKeyILP's SAMC counterpart.
func ZoneKeySAMC(sc *scenario.Scenario, zone []int, opts SAMCOptions) string {
	return samcZoneKey(sc, zone, opts.withDefaults())
}

// ilpZoneKey content-addresses one zone's ILPQC solve: method, the
// determinism-relevant options, and the coverage-variant zone bytes.
func ilpZoneKey(sc *scenario.Scenario, zone []int, method string, opts ILPOptions) string {
	var b keyBuf
	b.WriteString("sagzonekey/ilp/1\n")
	b.WriteString(method)
	b.WriteByte('\n')
	b.field("grid", opts.GridSize)
	b.count("maxnodes", opts.MaxNodes)
	b.count("order", int(opts.MILP.Order))
	b.count("branch", int(opts.MILP.Branch))
	if opts.MILP.DisableRounding {
		b.count("norounding", 1)
	}
	b.field("inttol", opts.MILP.IntTol)
	b.Write(sc.CanonicalZoneBytes(zone, scenario.ZoneHashCoverage))
	return b.hash()
}

// samcZoneKey content-addresses one zone's SAMC solve.
func samcZoneKey(sc *scenario.Scenario, zone []int, opts SAMCOptions) string {
	var b keyBuf
	b.WriteString("sagzonekey/samc/1\n")
	if opts.Hitting.LocalSearch {
		b.count("localsearch", 1)
	}
	b.count("maxswap", opts.Hitting.MaxSwap)
	b.count("maxrounds", opts.Hitting.MaxRounds)
	if opts.SkipSliding {
		b.count("skipsliding", 1)
	}
	b.Write(sc.CanonicalZoneBytes(zone, scenario.ZoneHashCoverage))
	return b.hash()
}

// powerZoneKey content-addresses one zone's PRO power block. The block's
// trajectory depends only on the zone's own relays (positions and covered
// subscribers' positions and receive-power floors), the radio model, PMax,
// and the SNR threshold — cross-zone relays never interact — so the key
// encodes exactly those, independent of the coverage method that produced
// the placement.
func powerZoneKey(sc *scenario.Scenario, relays []Relay) string {
	var b keyBuf
	b.WriteString("sagzonekey/pro/1\n")
	b.field("model", sc.Model.Gt, sc.Model.Gr, sc.Model.Ht, sc.Model.Hr, sc.Model.Alpha, sc.Model.MinDist)
	b.field("pmax", sc.PMax)
	b.field("snrdb", sc.SNRThresholdDB)
	b.count("relays", len(relays))
	for _, r := range relays {
		b.field("r", r.Pos.X, r.Pos.Y)
		b.count("covers", len(r.Covers))
		for _, j := range r.Covers {
			s := sc.Subscribers[j]
			b.field("c", s.Pos.X, s.Pos.Y, s.MinRxPower)
		}
	}
	return b.hash()
}

// localizeRelays rewrites Covers from global subscriber indices to
// zone-local ones for storage. ok=false when a cover is not a zone member
// (the entry must then not be cached).
func localizeRelays(relays []Relay, zone []int) ([]Relay, bool) {
	idx := make(map[int]int, len(zone))
	for li, g := range zone {
		idx[g] = li
	}
	out := make([]Relay, len(relays))
	for i, r := range relays {
		covers := make([]int, len(r.Covers))
		for k, g := range r.Covers {
			li, ok := idx[g]
			if !ok {
				return nil, false
			}
			covers[k] = li
		}
		out[i] = Relay{Pos: r.Pos, Covers: covers}
	}
	return out, true
}

// globalizeRelays rewrites a cached entry's zone-local Covers to the
// current zone's global subscriber indices, allocating fresh slices so the
// shared entry stays immutable. ok=false on an out-of-range cover
// (corrupt or mismatched entry; the caller must solve instead).
func globalizeRelays(relays []Relay, zone []int) ([]Relay, bool) {
	out := make([]Relay, len(relays))
	for i, r := range relays {
		covers := make([]int, len(r.Covers))
		for k, li := range r.Covers {
			if li < 0 || li >= len(zone) {
				return nil, false
			}
			covers[k] = zone[li]
		}
		out[i] = Relay{Pos: r.Pos, Covers: covers}
	}
	return out, true
}
