package lower

import (
	"fmt"

	"sagrelay/internal/graph"
	"sagrelay/internal/scenario"
)

// ZonePartition implements Algorithm 2: it partitions the subscribers into
// zones such that stations in different zones are far enough apart that
// their mutual interference is at most NMax and can be ignored.
//
// Two subscribers s_i, s_j are interference-coupled when
//
//	d_eff = min(dist(s_i,s_j) - d_i, dist(s_i,s_j) - d_j) <= dmax,
//
// where dmax satisfies PMax*G*dmax^(-alpha) = NMax (Alg. 2, Step 1): a relay
// serving s_i can sit up to d_i towards s_j, so d_eff bounds the relay-to-
// subscriber gap from below. Zones are the connected components of the
// resulting graph, returned as sorted subscriber-index groups.
func ZonePartition(sc *scenario.Scenario) ([][]int, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("lower: zone partition: %w", err)
	}
	dmax, err := sc.MaxNoiseDistance()
	if err != nil {
		return nil, fmt.Errorf("lower: zone partition: %w", err)
	}
	n := sc.NumSS()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			si, sj := sc.Subscribers[i], sc.Subscribers[j]
			dist := si.Pos.Dist(sj.Pos)
			deff := dist - si.DistReq
			if other := dist - sj.DistReq; other < deff {
				deff = other
			}
			if deff <= dmax {
				if err := g.AddEdge(i, j, dist); err != nil {
					return nil, fmt.Errorf("lower: zone partition: %w", err)
				}
			}
		}
	}
	return g.ConnectedComponents(), nil
}

// SplitLargeZones subdivides zones larger than maxSS by recursive spatial
// bisection (split across the longer bounding-box axis at the median
// subscriber). The ILP formulations use it to keep per-zone models within
// the homegrown branch-and-bound's reach — the same tractability dial the
// paper turns by limiting field sizes and grid resolution for Gurobi
// (Section IV-A). SAMC does not need it. maxSS <= 0 returns zones
// unchanged.
func SplitLargeZones(sc *scenario.Scenario, zones [][]int, maxSS int) [][]int {
	if maxSS <= 0 {
		return zones
	}
	var out [][]int
	var split func(group []int)
	split = func(group []int) {
		if len(group) <= maxSS {
			out = append(out, group)
			return
		}
		// Choose the axis with the larger spread.
		minX, maxX := sc.Subscribers[group[0]].Pos.X, sc.Subscribers[group[0]].Pos.X
		minY, maxY := sc.Subscribers[group[0]].Pos.Y, sc.Subscribers[group[0]].Pos.Y
		for _, s := range group[1:] {
			p := sc.Subscribers[s].Pos
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		byX := maxX-minX >= maxY-minY
		// Median split: sort group by the chosen coordinate.
		sorted := append([]int(nil), group...)
		for i := 1; i < len(sorted); i++ { // insertion sort: groups are small
			for k := i; k > 0; k-- {
				a, b := sc.Subscribers[sorted[k-1]].Pos, sc.Subscribers[sorted[k]].Pos
				var less bool
				if byX {
					less = b.X < a.X
				} else {
					less = b.Y < a.Y
				}
				if !less {
					break
				}
				sorted[k-1], sorted[k] = sorted[k], sorted[k-1]
			}
		}
		mid := len(sorted) / 2
		split(sorted[:mid])
		split(sorted[mid:])
	}
	for _, z := range zones {
		split(z)
	}
	return out
}
