package lower

import (
	"math"
	"math/bits"

	"sagrelay/internal/geom"
	"sagrelay/internal/scenario"
)

// maxUpdateCombos caps the number of update combinations Update RS Topology
// (Alg. 5, Step 3) enumerates per recursion level. The paper enumerates
// "all the possible combinations" of updatable relays; combinations are
// tried from largest (apply every update) to smallest, which finds the
// all-updates fix — the common case — first.
const maxUpdateCombos = 4096

// maxUpdateDepth caps the recursion of Update RS Topology. The recursion is
// naturally bounded because |B| strictly decreases, but the cap keeps
// adversarial inputs polynomial.
const maxUpdateDepth = 16

// slidingState carries the per-zone context shared by Sliding Movement and
// Update RS Topology.
type slidingState struct {
	sc   *scenario.Scenario
	beta float64
	// relays are the zone's coverage relays (positions mutate as they
	// slide); servingOf maps zone subscriber -> relay index.
	relays    []Relay
	servingOf map[int]int
	// final marks relays in H: finalized, never updated again.
	final []bool
}

// SlidingMovement implements Algorithm 4 (with Algorithm 5 as a
// subroutine): adjust the positions of the zone's coverage relays so every
// subscriber meets the SNR threshold with all relays at PMax. It returns
// the updated relays, or ok=false when no combination of slides clears the
// SNR violations (the SAMC caller then reports infeasible).
//
// The relays slice is not modified; a copy is returned.
func SlidingMovement(sc *scenario.Scenario, relays []Relay) ([]Relay, bool) {
	st := &slidingState{
		sc:        sc,
		beta:      sc.Beta(),
		relays:    cloneRelays(relays),
		servingOf: make(map[int]int),
		final:     make([]bool, len(relays)),
	}
	for r, relay := range st.relays {
		for _, s := range relay.Covers {
			st.servingOf[s] = r
		}
	}
	// Step 2: one-on-one relays move onto their subscriber and are
	// finalized (added to H, removed from further consideration).
	for r := range st.relays {
		if len(st.relays[r].Covers) == 1 {
			s := st.relays[r].Covers[0]
			st.relays[r].Pos = sc.Subscribers[s].Pos
			st.final[r] = true
		}
	}
	// Steps 3-4: collect SNR-violated subscribers.
	violated := st.violatedSubscribers()
	if len(violated) == 0 {
		return st.relays, true
	}
	// Step 5: escalate to Update RS Topology.
	if st.updateTopology(violated, 0) {
		return st.relays, true
	}
	return nil, false
}

// violatedSubscribers returns the zone subscribers whose Definition 2 SNR
// (all relays at PMax, current positions) is below the threshold.
func (st *slidingState) violatedSubscribers() []int {
	var out []int
	for s := range st.servingOf {
		if st.sirAt(s) < st.beta-1e-12 {
			out = append(out, s)
		}
	}
	sortInts(out)
	return out
}

// sirAt evaluates the SIR of subscriber s against the zone's relays.
func (st *slidingState) sirAt(s int) float64 {
	serving := st.servingOf[s]
	pos := st.sc.Subscribers[s].Pos
	signal := st.sc.Model.ReceivedPower(st.sc.PMax, pos.Dist(st.relays[serving].Pos))
	interference := 0.0
	for r := range st.relays {
		if r == serving {
			continue
		}
		interference += st.sc.Model.ReceivedPower(st.sc.PMax, pos.Dist(st.relays[r].Pos))
	}
	if interference <= 0 {
		return math.Inf(1)
	}
	return signal / interference
}

// interferenceAtExcluding sums received power at subscriber s from every
// relay except exclude.
func (st *slidingState) interferenceAtExcluding(s, exclude int) float64 {
	pos := st.sc.Subscribers[s].Pos
	total := 0.0
	for r := range st.relays {
		if r == exclude {
			continue
		}
		total += st.sc.Model.ReceivedPower(st.sc.PMax, pos.Dist(st.relays[r].Pos))
	}
	return total
}

// updateTopology implements Algorithm 5. violated is the current set B of
// SNR-unsatisfied subscribers; depth guards the recursion.
func (st *slidingState) updateTopology(violated []int, depth int) bool {
	if depth > maxUpdateDepth {
		return false
	}
	inB := make(map[int]bool, len(violated))
	for _, s := range violated {
		inB[s] = true
	}
	// R^s_u: non-final relays covering a violated subscriber.
	var updatable []int // relay indices with a feasible retarget position
	newPos := make(map[int]geom.Point)
	for r := range st.relays {
		if st.final[r] {
			continue
		}
		coversViolated := false
		for _, s := range st.relays[r].Covers {
			if inB[s] {
				coversViolated = true
				break
			}
		}
		if !coversViolated {
			continue
		}
		// Step 2: build W = virtual circles of unmet subscribers + feasible
		// circles of met subscribers, all covered by r.
		var w []geom.Circle
		feasible := true
		for _, s := range st.relays[r].Covers {
			ss := st.sc.Subscribers[s]
			if !inB[s] {
				w = append(w, ss.Circle())
				continue
			}
			// Virtual circle c'_s: positions of r at which s's SNR clears,
			// given the other relays' current positions:
			// PMax*Gain(d) >= beta * N_s  =>  d <= (PMax*G/(beta*N_s))^(1/alpha).
			ns := st.interferenceAtExcluding(s, r)
			radius := ss.DistReq
			if ns > 0 {
				need := st.beta * ns
				rsnr, err := st.sc.Model.DistanceForPower(st.sc.PMax, need)
				if err != nil {
					feasible = false
					break
				}
				if rsnr < radius {
					radius = rsnr
				}
			}
			w = append(w, geom.C(ss.Pos, radius))
		}
		if !feasible {
			continue // r is un-updatable
		}
		if p, ok := geom.CommonPoint(w, coverTol); ok {
			updatable = append(updatable, r)
			newPos[r] = p
		}
	}
	if len(updatable) == 0 {
		return false
	}
	// Step 3: try combinations of updates, largest first.
	combos := combinationsBySize(len(updatable), maxUpdateCombos)
	saved := make(map[int]geom.Point, len(updatable))
	for _, r := range updatable {
		saved[r] = st.relays[r].Pos
	}
	for _, mask := range combos {
		// Apply the combination.
		for i, r := range updatable {
			if mask&(1<<uint(i)) != 0 {
				st.relays[r].Pos = newPos[r]
			} else {
				st.relays[r].Pos = saved[r]
			}
		}
		after := st.violatedSubscribers()
		if len(after) == 0 {
			return true
		}
		if len(after) < len(violated) {
			if st.updateTopology(after, depth+1) {
				return true
			}
		}
		// Restore before the next combination.
		for _, r := range updatable {
			st.relays[r].Pos = saved[r]
		}
	}
	// Leave positions restored on failure.
	for _, r := range updatable {
		st.relays[r].Pos = saved[r]
	}
	return false
}

// combinationsBySize returns non-empty bitmasks over n items ordered by
// descending popcount (the all-updates mask first), capped at limit masks.
// For large n, full enumeration is replaced by the practically useful
// prefix of that order: the full mask, all leave-one-out masks, and all
// singleton masks.
func combinationsBySize(n, limit int) []uint64 {
	if n <= 0 {
		return nil
	}
	if n > 12 {
		full := (uint64(1) << uint(n)) - 1
		masks := []uint64{full}
		for i := 0; i < n; i++ {
			masks = append(masks, full&^(1<<uint(i)))
		}
		for i := 0; i < n; i++ {
			masks = append(masks, 1<<uint(i))
		}
		if len(masks) > limit {
			masks = masks[:limit]
		}
		return masks
	}
	total := (uint64(1) << uint(n)) - 1
	masks := make([]uint64, 0, total)
	for m := total; m >= 1; m-- {
		masks = append(masks, m)
	}
	// Order by descending popcount, stable by descending mask value.
	buckets := make([][]uint64, 65)
	for _, m := range masks {
		pc := bits.OnesCount64(m)
		buckets[pc] = append(buckets[pc], m)
	}
	out := masks[:0]
	for pc := 64; pc >= 0; pc-- {
		out = append(out, buckets[pc]...)
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func cloneRelays(rs []Relay) []Relay {
	out := make([]Relay, len(rs))
	for i, r := range rs {
		out[i] = Relay{Pos: r.Pos, Covers: append([]int(nil), r.Covers...)}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}
