package lower

import (
	"context"
	"testing"
	"testing/quick"

	"sagrelay/internal/geom"
	"sagrelay/internal/scenario"
)

func TestDistanceCoverageIgnoresSNR(t *testing.T) {
	// A +20 dB threshold makes SAMC infeasible on dense overlapping
	// subscribers, but the DARP lower tier does not care.
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 40},
		{Pos: geom.Pt(50, 0), DistReq: 40},
		{Pos: geom.Pt(100, 0), DistReq: 40},
		{Pos: geom.Pt(150, 0), DistReq: 40},
	}, 20)
	darp, err := DistanceCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !darp.Feasible {
		t.Fatal("distance-only coverage infeasible")
	}
	if err := darp.Verify(sc, false); err != nil {
		t.Fatalf("distance verification failed: %v", err)
	}
	// The SNR audit should reveal violations at this absurd threshold
	// whenever more than one relay was placed.
	v, err := SNRViolations(context.Background(), sc, darp)
	if err != nil {
		t.Fatal(err)
	}
	if darp.NumRelays() > 1 && v == 0 {
		t.Error("no SNR violations at +20 dB despite multiple relays")
	}
}

func TestDistanceCoverageMatchesSAMCCount(t *testing.T) {
	// Both use the same hitting set machinery, so on SNR-benign instances
	// the counts agree (SAMC only moves relays).
	sc := testScenario(t, 500, 15, 61)
	samc, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !samc.Feasible {
		t.Fatalf("SAMC failed")
	}
	darp, err := DistanceCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil || !darp.Feasible {
		t.Fatalf("DistanceCoverage failed")
	}
	if samc.NumRelays() != darp.NumRelays() {
		t.Errorf("counts differ: SAMC %d, DARP %d", samc.NumRelays(), darp.NumRelays())
	}
}

func TestSNRViolationsZeroOnSAMC(t *testing.T) {
	sc := testScenario(t, 500, 12, 67)
	samc, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !samc.Feasible {
		t.Fatalf("SAMC failed")
	}
	v, err := SNRViolations(context.Background(), sc, samc)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("SAMC result has %d SNR violations", v)
	}
}

func TestDualCoverageBasics(t *testing.T) {
	sc := testScenario(t, 500, 12, 71)
	dual, err := DualCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dual.Feasible {
		t.Skip("2-fold coverage uncoverable on this draw")
	}
	if err := dual.VerifyDual(sc); err != nil {
		t.Fatalf("VerifyDual: %v", err)
	}
	// Dual coverage needs at least as many relays as single coverage.
	single, err := SAMC(context.Background(), sc, SAMCOptions{})
	if err != nil || !single.Feasible {
		t.Fatalf("SAMC failed")
	}
	if dual.NumRelays() < single.NumRelays() {
		t.Errorf("dual %d relays below single %d", dual.NumRelays(), single.NumRelays())
	}
	// Every single relay failure is survivable.
	for k := range dual.Relays {
		if !dual.SurvivesSingleFailure(k) {
			t.Errorf("failure of relay %d uncovers a subscriber", k)
		}
	}
}

func TestDualCoverageTwoSubscribers(t *testing.T) {
	// Two overlapping subscribers: their circles intersect in two points
	// plus centers, so 2-fold coverage is achievable with 2 relays.
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 40},
		{Pos: geom.Pt(30, 0), DistReq: 40},
	}, -15)
	dual, err := DualCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !dual.Feasible {
		t.Fatal("2-fold coverage of overlapping pair infeasible")
	}
	if err := dual.VerifyDual(sc); err != nil {
		t.Fatal(err)
	}
	if dual.NumRelays() < 2 {
		t.Errorf("dual coverage with %d relays", dual.NumRelays())
	}
}

func TestDualCoverageUncoverable(t *testing.T) {
	// A single isolated subscriber has only one candidate (its center):
	// 2-fold coverage is impossible over intersection candidates.
	sc := handScenario(t, []scenario.Subscriber{
		{Pos: geom.Pt(0, 0), DistReq: 30},
	}, -15)
	dual, err := DualCoverage(context.Background(), sc, SAMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Feasible {
		t.Error("isolated subscriber reported 2-fold coverable")
	}
}

func TestSurvivesSingleFailureDetectsCorruption(t *testing.T) {
	dual := &DualResult{
		Result:   Result{AssignOf: []int{0, 1}},
		BackupOf: []int{0, 0}, // subscriber 0's backup == primary: corrupt
	}
	if dual.SurvivesSingleFailure(0) {
		t.Error("corrupted placement reported survivable")
	}
	if !dual.SurvivesSingleFailure(1) {
		t.Error("unrelated failure reported fatal")
	}
}

// Property: on random benign instances, a feasible dual coverage always
// passes VerifyDual and survives every single relay failure.
func TestDualCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: 10, NumBS: 2, Seed: seed})
		if err != nil {
			return false
		}
		dual, err := DualCoverage(context.Background(), sc, SAMCOptions{})
		if err != nil {
			return false
		}
		if !dual.Feasible {
			return true // isolated subscribers make 2-fold coverage impossible
		}
		if dual.VerifyDual(sc) != nil {
			return false
		}
		for k := range dual.Relays {
			if !dual.SurvivesSingleFailure(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1Bound empirically validates Theorem 1: PRO's power cost is
// within (1+phi) of optimal with phi = sum_i (Psnr_i - Pc_i) / OPT over
// the relays where PRO settled above coverage power — and in particular
// PRO <= OPT + sum(max(0, Psnr-Pc)).
func TestTheorem1Bound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: 15, NumBS: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := SAMC(context.Background(), sc, SAMCOptions{})
		if err != nil || !res.Feasible {
			continue
		}
		pro, err := PRO(context.Background(), sc, res)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalPower(context.Background(), sc, res)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := newPowerContext(sc, res)
		if err != nil {
			t.Fatal(err)
		}
		// Slack: sum over relays of (final PRO power - coverage power),
		// an upper bound on sum(Psnr - Pc) over the compromise set C.
		slack := 0.0
		for i, p := range pro.Powers {
			if d := p - ctx.pmin[i]; d > 0 {
				slack += d
			}
		}
		if pro.Total > opt.Total+slack+1e-6 {
			t.Errorf("seed %d: PRO %v exceeds OPT %v + slack %v", seed, pro.Total, opt.Total, slack)
		}
		if pro.Total < opt.Total-1e-6 {
			t.Errorf("seed %d: PRO %v below the LP optimum %v", seed, pro.Total, opt.Total)
		}
	}
}
