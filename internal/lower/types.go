// Package lower implements the Lower-tier Coverage Relay Allocation (LCRA)
// problem of the paper: place the minimum number of coverage relay stations
// so that every subscriber has a feasible-coverage access link (distance +
// SNR), then minimize the relays' transmission power.
//
// It contains:
//   - Zone Partition (Alg. 2)
//   - SAMC, the SNR Aware Minimum Coverage heuristic (Alg. 1), built from
//     minimum hitting set, Coverage Link Escape (Alg. 3), RS Sliding
//     Movement (Alg. 4) and Update RS Topology (Alg. 5)
//   - PRO, Power Reduction Optimization (Alg. 6), and the LP-optimal power
//     allocation (the paper's LPQC, eqs. 3.6-3.9)
//   - the ILPQC coverage formulations (eqs. 3.1-3.5) under the IAC and GAC
//     candidate constructions, solved by branch-and-bound with the
//     quadratic SNR constraint big-M linearized
package lower

import (
	"fmt"
	"math"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/scenario"
)

// Relay is a placed coverage relay with its assigned subscribers.
type Relay struct {
	// Pos is the relay position.
	Pos geom.Point
	// Covers lists the subscriber indices (into Scenario.Subscribers) with
	// an access link to this relay. Constraint (3.3): each subscriber has
	// exactly one access link, so Covers sets partition the covered SSs.
	Covers []int
}

// Result is the outcome of a coverage algorithm run.
type Result struct {
	// Feasible reports whether every subscriber got feasible coverage
	// (distance and SNR). The paper's algorithms return "infeasible" rather
	// than a partial placement.
	Feasible bool
	// Relays are the placed coverage relays (empty when infeasible).
	Relays []Relay
	// AssignOf maps each subscriber index to its serving relay index in
	// Relays (-1 when infeasible).
	AssignOf []int
	// Zones records the zone partition used (subscriber index groups).
	Zones [][]int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
	// Method names the algorithm that produced the result.
	Method string
	// Truncated reports that at least one zone's branch-and-bound search was
	// stopped by the wall-clock ILPOptions.TimeLimit and contributed its
	// best incumbent instead of a proven optimum. How much search fits in a
	// wall-clock budget depends on machine load, so a Truncated result is
	// excluded from the bit-identical determinism contract; the pipeline
	// marks such solutions Degraded and the solve service never caches or
	// content-addresses them. Node-cap (MaxNodes) truncation is
	// deterministic and does not set this flag.
	Truncated bool
}

// NumRelays returns the number of placed coverage relays.
func (r *Result) NumRelays() int { return len(r.Relays) }

// assignment-related helpers shared by the algorithms and tests.

// buildAssign derives AssignOf from the relays' Covers lists.
func buildAssign(nSS int, relays []Relay) ([]int, error) {
	assign := make([]int, nSS)
	for i := range assign {
		assign[i] = -1
	}
	for r, relay := range relays {
		for _, s := range relay.Covers {
			if s < 0 || s >= nSS {
				return nil, fmt.Errorf("lower: relay %d covers unknown subscriber %d", r, s)
			}
			if assign[s] != -1 {
				return nil, fmt.Errorf("lower: subscriber %d assigned to relays %d and %d", s, assign[s], r)
			}
			assign[s] = r
		}
	}
	return assign, nil
}

// Verify checks a coverage result against the scenario: every subscriber is
// assigned exactly once within its distance requirement, and (when
// checkSNR) meets the SNR threshold with all relays transmitting at PMax.
// The SNR evaluation follows the paper's zone-independence assumption:
// interference is summed over the relays serving the subscriber's own zone
// when zones are recorded, and over all relays otherwise.
func (r *Result) Verify(sc *scenario.Scenario, checkSNR bool) error {
	if !r.Feasible {
		return fmt.Errorf("lower: result marked infeasible")
	}
	if len(r.AssignOf) != sc.NumSS() {
		return fmt.Errorf("lower: AssignOf has %d entries for %d subscribers", len(r.AssignOf), sc.NumSS())
	}
	assign, err := buildAssign(sc.NumSS(), r.Relays)
	if err != nil {
		return err
	}
	for j, a := range assign {
		if a == -1 {
			return fmt.Errorf("lower: subscriber %d uncovered", j)
		}
		if r.AssignOf[j] != a {
			return fmt.Errorf("lower: AssignOf[%d]=%d disagrees with Covers (%d)", j, r.AssignOf[j], a)
		}
		ss := sc.Subscribers[j]
		d := ss.Pos.Dist(r.Relays[a].Pos)
		if d > ss.DistReq+1e-6 {
			return fmt.Errorf("lower: subscriber %d at distance %.3f from relay %d exceeds requirement %.3f", j, d, a, ss.DistReq)
		}
	}
	if !checkSNR {
		return nil
	}
	zoneOf := zoneIndex(sc.NumSS(), r.Zones)
	for j := range sc.Subscribers {
		sir := r.SIRAtSubscriber(sc, j, zoneOf)
		if sir < sc.Beta()-1e-9 {
			return fmt.Errorf("lower: subscriber %d SIR %.4g below threshold %.4g", j, sir, sc.Beta())
		}
	}
	return nil
}

// zoneIndex maps each subscriber to its zone id, or nil when no zones are
// recorded (meaning: single global zone).
func zoneIndex(nSS int, zones [][]int) []int {
	if len(zones) == 0 {
		return nil
	}
	idx := make([]int, nSS)
	for i := range idx {
		idx[i] = -1
	}
	for z, group := range zones {
		for _, s := range group {
			if s >= 0 && s < nSS {
				idx[s] = z
			}
		}
	}
	return idx
}

// relayZone returns the zone a relay belongs to: the zone of its covered
// subscribers (they are always in one zone by construction), or -1 for an
// empty relay.
func relayZone(relay Relay, zoneOf []int) int {
	if zoneOf == nil || len(relay.Covers) == 0 {
		return -1
	}
	return zoneOf[relay.Covers[0]]
}

// SIRAtSubscriber evaluates Definition 2 at subscriber j with all relays at
// PMax: serving signal over summed interference from the other relays of
// the same zone (inter-zone noise is ignorable by Zone Partition). zoneOf
// may be nil to evaluate against all relays.
func (r *Result) SIRAtSubscriber(sc *scenario.Scenario, j int, zoneOf []int) float64 {
	a := r.AssignOf[j]
	if a < 0 || a >= len(r.Relays) {
		return 0
	}
	ss := sc.Subscribers[j]
	myZone := -1
	if zoneOf != nil {
		myZone = zoneOf[j]
	}
	signal := sc.Model.ReceivedPower(sc.PMax, ss.Pos.Dist(r.Relays[a].Pos))
	interference := 0.0
	for k, relay := range r.Relays {
		if k == a {
			continue
		}
		if zoneOf != nil && relayZone(relay, zoneOf) != myZone {
			continue
		}
		interference += sc.Model.ReceivedPower(sc.PMax, ss.Pos.Dist(relay.Pos))
	}
	if interference <= 0 {
		if signal <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return signal / interference
}
