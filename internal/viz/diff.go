package viz

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"sagrelay/internal/core"
	"sagrelay/internal/geom"
	"sagrelay/internal/lower"
	"sagrelay/internal/scenario"
)

// RenderDiff draws what a scenario delta did to a deployment: the mutated
// scenario's stations over a comparison of the two coverage placements.
// Relays present only in the new solution are drawn green (added), relays
// present only in the base solution red (removed), and relays that serve
// mostly the same subscribers from a different position are joined by an
// arrow (moved). Unchanged relays stay the usual green-square-on-gray
// rendering, dimmed. Either solution may be nil or infeasible; the diff then
// degenerates to all-added or all-removed.
func RenderDiff(base, mutated *scenario.Scenario, baseSol, newSol *core.Solution, style Style) (string, error) {
	if err := base.Validate(); err != nil {
		return "", fmt.Errorf("viz: base: %w", err)
	}
	if err := mutated.Validate(); err != nil {
		return "", fmt.Errorf("viz: mutated: %w", err)
	}
	style = style.withDefaults()
	field := unionRect(base.Field, mutated.Field)
	cv := canvas{field: field.Expand(style.Margin), size: float64(style.SizePx)}

	var baseRelays, newRelays []lower.Relay
	if baseSol != nil && baseSol.Feasible {
		baseRelays = baseSol.Coverage.Relays
	}
	if newSol != nil && newSol.Feasible {
		newRelays = newSol.Coverage.Relays
	}
	d := diffRelays(base, mutated, baseRelays, newRelays)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		style.SizePx, style.SizePx, style.SizePx, style.SizePx)
	b.WriteString(`<defs><marker id="mvarrow" markerWidth="8" markerHeight="8" refX="6" refY="3" orient="auto">` +
		`<path d="M0,0 L6,3 L0,6 z" fill="#ff7f0e"/></marker></defs>` + "\n")
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888" stroke-width="1"/>`+"\n",
		cv.x(field.Min), cv.y(field.Max), cv.scale(field.Width()), cv.scale(field.Height()))
	if style.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="14" font-size="13" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			style.SizePx/2, escape(style.Title))
	}

	// Subscribers the delta removed: hollow gray dots on the mutated plot.
	newIDs := make(map[int]bool, len(mutated.Subscribers))
	for _, s := range mutated.Subscribers {
		newIDs[s.ID] = true
	}
	for _, s := range base.Subscribers {
		if !newIDs[s.ID] {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="none" stroke="#aaa" stroke-width="1"><title>SS %d (removed)</title></circle>`+"\n",
				cv.x(s.Pos), cv.y(s.Pos), s.ID)
		}
	}
	// Mutated scenario's subscribers and base stations, as in Render.
	for _, s := range mutated.Subscribers {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="#1f77b4"><title>SS %d</title></circle>`+"\n",
			cv.x(s.Pos), cv.y(s.Pos), s.ID)
	}
	for _, bs := range mutated.BaseStations {
		x, y := cv.x(bs.Pos), cv.y(bs.Pos)
		fmt.Fprintf(&b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="#d62728"><title>BS %d</title></polygon>`+"\n",
			x, y-6, x-5, y+4, x+5, y+4, bs.ID)
	}

	// Move arrows first, then markers on top of their endpoints.
	for _, mv := range d.moved {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ff7f0e" stroke-width="1.5" marker-end="url(#mvarrow)"/>`+"\n",
			cv.x(mv[0]), cv.y(mv[0]), cv.x(mv[1]), cv.y(mv[1]))
	}
	for _, p := range d.kept {
		x, y := cv.x(p), cv.y(p)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#2ca02c" fill-opacity="0.35"><title>RS unchanged</title></rect>`+"\n",
			x-4, y-4)
	}
	for _, mv := range d.moved {
		x, y := cv.x(mv[1]), cv.y(mv[1])
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="none" stroke="#ff7f0e" stroke-width="2"><title>RS moved</title></rect>`+"\n",
			x-4, y-4)
	}
	for _, p := range d.removed {
		x, y := cv.x(p), cv.y(p)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#d62728"><title>RS removed</title></rect>`+"\n",
			x-4, y-4)
	}
	for _, p := range d.added {
		x, y := cv.x(p), cv.y(p)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#2ca02c"><title>RS added</title></rect>`+"\n",
			x-4, y-4)
	}
	b.WriteString(diffLegend(style.SizePx))
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// RenderDiffToFile renders the diff and writes the SVG to path.
func RenderDiffToFile(base, mutated *scenario.Scenario, baseSol, newSol *core.Solution, style Style, path string) error {
	svg, err := RenderDiff(base, mutated, baseSol, newSol, style)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return fmt.Errorf("viz: write %s: %w", path, err)
	}
	return nil
}

// relayChanges classifies the two placements' relays against each other.
type relayChanges struct {
	added   []geom.Point    // in the new placement only
	removed []geom.Point    // in the base placement only
	moved   [][2]geom.Point // matched pair at different positions: {from, to}
	kept    []geom.Point    // matched pair at the same position
}

// diffRelays matches relays across the two placements by greedy maximum
// overlap of covered subscriber IDs (IDs survive deltas; indices do not).
// Each relay matches at most one counterpart; pairs are taken in decreasing
// overlap order with index order breaking ties, so the diff is
// deterministic. A matched pair at the same position is "kept", at different
// positions "moved"; unmatched relays are added or removed.
func diffRelays(base, mutated *scenario.Scenario, baseRelays, newRelays []lower.Relay) relayChanges {
	coveredIDs := func(sc *scenario.Scenario, r lower.Relay) map[int]bool {
		ids := make(map[int]bool, len(r.Covers))
		for _, j := range r.Covers {
			if j >= 0 && j < len(sc.Subscribers) {
				ids[sc.Subscribers[j].ID] = true
			}
		}
		return ids
	}
	baseIDs := make([]map[int]bool, len(baseRelays))
	for i, r := range baseRelays {
		baseIDs[i] = coveredIDs(base, r)
	}
	type cand struct{ bi, ni, overlap int }
	var cands []cand
	for ni, r := range newRelays {
		ids := coveredIDs(mutated, r)
		for bi := range baseRelays {
			overlap := 0
			for id := range ids {
				if baseIDs[bi][id] {
					overlap++
				}
			}
			if overlap > 0 {
				cands = append(cands, cand{bi: bi, ni: ni, overlap: overlap})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].overlap != cands[b].overlap {
			return cands[a].overlap > cands[b].overlap
		}
		if cands[a].bi != cands[b].bi {
			return cands[a].bi < cands[b].bi
		}
		return cands[a].ni < cands[b].ni
	})
	baseTaken := make([]bool, len(baseRelays))
	newTaken := make([]bool, len(newRelays))
	var d relayChanges
	for _, c := range cands {
		if baseTaken[c.bi] || newTaken[c.ni] {
			continue
		}
		baseTaken[c.bi], newTaken[c.ni] = true, true
		from, to := baseRelays[c.bi].Pos, newRelays[c.ni].Pos
		if from == to {
			d.kept = append(d.kept, to)
		} else {
			d.moved = append(d.moved, [2]geom.Point{from, to})
		}
	}
	for i, r := range baseRelays {
		if !baseTaken[i] {
			d.removed = append(d.removed, r.Pos)
		}
	}
	for i, r := range newRelays {
		if !newTaken[i] {
			d.added = append(d.added, r.Pos)
		}
	}
	return d
}

func unionRect(a, b geom.Rect) geom.Rect {
	out := a
	if b.Min.X < out.Min.X {
		out.Min.X = b.Min.X
	}
	if b.Min.Y < out.Min.Y {
		out.Min.Y = b.Min.Y
	}
	if b.Max.X > out.Max.X {
		out.Max.X = b.Max.X
	}
	if b.Max.Y > out.Max.Y {
		out.Max.Y = b.Max.Y
	}
	return out
}

func diffLegend(size int) string {
	var b strings.Builder
	y := size - 12
	x := 10
	entry := func(marker, label string) {
		b.WriteString(marker)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n", x+10, y+4, label)
		x += 20 + 8*len(label)
	}
	entry(fmt.Sprintf(`<circle cx="%d" cy="%d" r="3" fill="#1f77b4"/>`, x, y), "SS")
	entry(fmt.Sprintf(`<polygon points="%d,%d %d,%d %d,%d" fill="#d62728"/>`, x, y-4, x-4, y+3, x+4, y+3), "BS")
	entry(fmt.Sprintf(`<rect x="%d" y="%d" width="7" height="7" fill="#2ca02c"/>`, x-3, y-3), "added")
	entry(fmt.Sprintf(`<rect x="%d" y="%d" width="7" height="7" fill="#d62728"/>`, x-3, y-3), "removed")
	entry(fmt.Sprintf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ff7f0e" stroke-width="2"/>`, x-4, y, x+4, y), "moved")
	return b.String()
}
