// Package viz renders deployment topologies as SVG, reproducing the
// paper's Fig. 6 panels: subscriber stations, base stations, coverage
// relays, connectivity relays, and the upper-tier tree edges.
package viz

import (
	"fmt"
	"os"
	"strings"

	"sagrelay/internal/core"
	"sagrelay/internal/geom"
	"sagrelay/internal/scenario"
)

// Style configures the rendering.
type Style struct {
	// SizePx is the output image width and height in pixels; 0 means 640.
	SizePx int
	// Margin is the field-coordinate margin around the plot; 0 means 20.
	Margin float64
	// ShowCircles draws each subscriber's feasible coverage circle.
	ShowCircles bool
	// ShowEdges draws the upper-tier tree segments.
	ShowEdges bool
	// Title is drawn at the top when non-empty.
	Title string
}

func (s Style) withDefaults() Style {
	if s.SizePx <= 0 {
		s.SizePx = 640
	}
	if s.Margin <= 0 {
		s.Margin = 20
	}
	return s
}

// canvas maps field coordinates to pixel coordinates (y flipped).
type canvas struct {
	field geom.Rect
	size  float64
}

func (c canvas) x(p geom.Point) float64 {
	return (p.X - c.field.Min.X) / c.field.Width() * c.size
}

func (c canvas) y(p geom.Point) float64 {
	return (1 - (p.Y-c.field.Min.Y)/c.field.Height()) * c.size
}

func (c canvas) scale(d float64) float64 { return d / c.field.Width() * c.size }

// Render draws the scenario and (optionally) a solved deployment. sol may
// be nil to plot the raw scenario; an infeasible solution plots like nil.
func Render(sc *scenario.Scenario, sol *core.Solution, style Style) (string, error) {
	if err := sc.Validate(); err != nil {
		return "", fmt.Errorf("viz: %w", err)
	}
	style = style.withDefaults()
	cv := canvas{field: sc.Field.Expand(style.Margin), size: float64(style.SizePx)}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		style.SizePx, style.SizePx, style.SizePx, style.SizePx)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Field boundary.
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888" stroke-width="1"/>`+"\n",
		cv.x(sc.Field.Min), cv.y(sc.Field.Max), cv.scale(sc.Field.Width()), cv.scale(sc.Field.Height()))
	if style.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="14" font-size="13" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			style.SizePx/2, escape(style.Title))
	}
	if style.ShowCircles {
		for _, s := range sc.Subscribers {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#cfe" stroke-width="1"/>`+"\n",
				cv.x(s.Pos), cv.y(s.Pos), cv.scale(s.DistReq))
		}
	}
	feasible := sol != nil && sol.Feasible
	// Tree edges first, so markers draw on top.
	if feasible && style.ShowEdges {
		for _, e := range sol.Connectivity.Edges {
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#bbb" stroke-width="1"/>`+"\n",
				cv.x(e.From), cv.y(e.From), cv.x(e.To), cv.y(e.To))
		}
	}
	// Subscribers: blue dots.
	for _, s := range sc.Subscribers {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="#1f77b4"><title>SS %d</title></circle>`+"\n",
			cv.x(s.Pos), cv.y(s.Pos), s.ID)
	}
	// Base stations: red triangles.
	for _, bs := range sc.BaseStations {
		x, y := cv.x(bs.Pos), cv.y(bs.Pos)
		fmt.Fprintf(&b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="#d62728"><title>BS %d</title></polygon>`+"\n",
			x, y-6, x-5, y+4, x+5, y+4, bs.ID)
	}
	if feasible {
		// Coverage relays: green squares.
		for i, r := range sol.Coverage.Relays {
			x, y := cv.x(r.Pos), cv.y(r.Pos)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="#2ca02c"><title>RS(Cover) %d</title></rect>`+"\n",
				x-4, y-4, i)
		}
		// Connectivity relays: purple diamonds.
		for i, r := range sol.Connectivity.Relays {
			x, y := cv.x(r.Pos), cv.y(r.Pos)
			fmt.Fprintf(&b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="#9467bd"><title>RS(Connect) %d</title></polygon>`+"\n",
				x, y-4, x+4, y, x, y+4, x-4, y, i)
		}
	}
	b.WriteString(legend(style.SizePx, feasible))
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// RenderToFile renders and writes the SVG to path.
func RenderToFile(sc *scenario.Scenario, sol *core.Solution, style Style, path string) error {
	svg, err := Render(sc, sol, style)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return fmt.Errorf("viz: write %s: %w", path, err)
	}
	return nil
}

func legend(size int, feasible bool) string {
	var b strings.Builder
	y := size - 12
	x := 10
	entry := func(marker, label string) {
		b.WriteString(marker)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n", x+10, y+4, label)
		x += 20 + 8*len(label)
	}
	entry(fmt.Sprintf(`<circle cx="%d" cy="%d" r="3" fill="#1f77b4"/>`, x, y), "SS")
	entry(fmt.Sprintf(`<polygon points="%d,%d %d,%d %d,%d" fill="#d62728"/>`, x, y-4, x-4, y+3, x+4, y+3), "BS")
	if feasible {
		entry(fmt.Sprintf(`<rect x="%d" y="%d" width="7" height="7" fill="#2ca02c"/>`, x-3, y-3), "RS(Cover)")
		entry(fmt.Sprintf(`<polygon points="%d,%d %d,%d %d,%d %d,%d" fill="#9467bd"/>`, x, y-4, x+4, y, x, y+4, x-4, y), "RS(Connect)")
	}
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
