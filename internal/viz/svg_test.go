package viz

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sagrelay/internal/core"
	"sagrelay/internal/scenario"
)

func fixture(t *testing.T) (*scenario.Scenario, *core.Solution) {
	t.Helper()
	sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 300, NumSS: 8, NumBS: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SAG(context.Background(), sc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sc, sol
}

func TestRenderScenarioOnly(t *testing.T) {
	sc, _ := fixture(t)
	svg, err := Render(sc, nil, Style{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	if got := strings.Count(svg, "<title>SS"); got != 8 {
		t.Errorf("drew %d subscriber markers, want 8", got)
	}
	if got := strings.Count(svg, "<title>BS"); got != 2 {
		t.Errorf("drew %d base station markers, want 2", got)
	}
	if strings.Contains(svg, "RS(Cover)") && strings.Contains(svg, "<title>RS(Cover)") {
		t.Error("relays drawn without a solution")
	}
}

func TestRenderSolution(t *testing.T) {
	sc, sol := fixture(t)
	if !sol.Feasible {
		t.Skip("fixture infeasible")
	}
	svg, err := Render(sc, sol, Style{ShowEdges: true, ShowCircles: true, Title: "SAMC+MBMC"})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<title>RS(Cover)"); got != sol.Coverage.NumRelays() {
		t.Errorf("drew %d coverage relays, want %d", got, sol.Coverage.NumRelays())
	}
	if got := strings.Count(svg, "<title>RS(Connect)"); got != sol.Connectivity.NumRelays() {
		t.Errorf("drew %d connectivity relays, want %d", got, sol.Connectivity.NumRelays())
	}
	if got := strings.Count(svg, "<line "); got != len(sol.Connectivity.Edges) {
		t.Errorf("drew %d edges, want %d", got, len(sol.Connectivity.Edges))
	}
	if !strings.Contains(svg, "SAMC+MBMC") {
		t.Error("title missing")
	}
}

func TestRenderEscapesTitle(t *testing.T) {
	sc, _ := fixture(t)
	svg, err := Render(sc, nil, Style{Title: `a<b&"c"`})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b&"c"`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestRenderToFile(t *testing.T) {
	sc, sol := fixture(t)
	path := filepath.Join(t.TempDir(), "topo.svg")
	if err := RenderToFile(sc, sol, Style{}, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("file does not contain SVG")
	}
}

func TestRenderRejectsInvalidScenario(t *testing.T) {
	sc, _ := fixture(t)
	sc.Subscribers = nil
	if _, err := Render(sc, nil, Style{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestCanvasMapping(t *testing.T) {
	sc, _ := fixture(t)
	svg, err := Render(sc, nil, Style{SizePx: 100, Margin: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, `width="100"`) {
		t.Error("custom size ignored")
	}
}
