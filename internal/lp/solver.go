package lp

import (
	"context"
	"fmt"
	"math"
)

// Solver runs two-phase simplex with memory reused across solves. It exists
// for the branch-and-bound hot path: every search-tree node re-solves the
// same base problem with only per-variable bounds changed, so the dense
// tableau (by far the largest allocation of a solve) is rebuilt in place
// inside the Solver's buffers instead of being re-made per node.
//
// A Solver is not safe for concurrent use; concurrent solves (e.g. parallel
// per-zone ILPs) each use their own Solver.
type Solver struct {
	flat    []float64   // backing storage for all tableau rows
	rows    [][]float64 // row views into flat
	basis   []int
	objRow  []float64
	origObj []float64
	lb, ub  []float64 // effective per-variable bounds for the current solve
}

// NewSolver returns an empty Solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// Solve minimizes p under per-variable bound overrides and returns the
// solution. lower[v] imposes x_v >= lb (values <= 0 are no-ops: x >= 0 is
// implicit), upper[v] tightens x_v's upper bound when below the problem's
// own (negative values clamp to 0). The base problem is not modified, so
// branch-and-bound can re-solve it with different bounds node after node.
// Either map may be nil. Solution.X is freshly allocated per call; all
// other working memory is reused.
//
// Bound rows are emitted in ascending variable order, so two solves of the
// same (problem, bounds) input run the identical pivot sequence — map
// iteration order never leaks into the result.
func (s *Solver) Solve(p *Problem, lower, upper map[int]float64) (*Solution, error) {
	return s.SolveContext(context.Background(), p, lower, upper)
}

// SolveContext is Solve with cooperative cancellation: the simplex
// iteration loop polls ctx every few pivots and aborts with ctx's error
// (context.Canceled or context.DeadlineExceeded) when it is done. The
// cancellation check never changes the pivot sequence of a solve that runs
// to completion, so determinism is unaffected.
func (s *Solver) SolveContext(ctx context.Context, p *Problem, lower, upper map[int]float64) (*Solution, error) {
	t, err := s.build(p, lower, upper)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx != context.Background() {
		t.ctx = ctx
	}
	return t.solve()
}

// grow returns buf resized to n, reallocating only when capacity is short.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// build assembles the phase-ready tableau inside the Solver's buffers:
// finite (effective) upper bounds become explicit <= rows, positive lower
// bounds >= rows, right-hand sides are normalized non-negative, LE rows get
// slacks, GE rows surplus+artificial, EQ rows artificial — the same
// canonical form the package has always used, built without per-row
// allocations.
func (s *Solver) build(p *Problem, lower, upper map[int]float64) (*tableau, error) {
	n := len(p.obj)

	// Reject non-finite inputs up front: a single NaN coefficient would
	// otherwise spread through the tableau and surface as garbage bounds
	// far from its source.
	for i, c := range p.obj {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("%w: objective coefficient of variable %d is %v", ErrNumerical, i, c)
		}
	}
	for i, ub := range p.ub {
		if math.IsNaN(ub) || math.IsInf(ub, -1) {
			return nil, fmt.Errorf("%w: upper bound of variable %d is %v", ErrNumerical, i, ub)
		}
	}
	for k, c := range p.cons {
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return nil, fmt.Errorf("%w: right-hand side of constraint %d is %v", ErrNumerical, k, c.rhs)
		}
		for _, term := range c.terms {
			if math.IsNaN(term.Coef) || math.IsInf(term.Coef, 0) {
				return nil, fmt.Errorf("%w: coefficient of variable %d in constraint %d is %v", ErrNumerical, term.Var, k, term.Coef)
			}
		}
	}
	for v, b := range lower {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("%w: lower bound override of variable %d is %v", ErrNumerical, v, b)
		}
	}
	for v, b := range upper {
		if math.IsNaN(b) || math.IsInf(b, -1) {
			return nil, fmt.Errorf("%w: upper bound override of variable %d is %v", ErrNumerical, v, b)
		}
	}

	// Effective bounds: the problem's own, tightened by the overrides.
	s.ub = grow(s.ub, n)
	copy(s.ub, p.ub)
	for v, ub := range upper {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("lp: upper bound for unknown variable %d", v)
		}
		if ub < 0 {
			ub = 0
		}
		if ub < s.ub[v] {
			s.ub[v] = ub
		}
	}
	s.lb = grow(s.lb, n)
	for i := range s.lb {
		s.lb[i] = 0
	}
	for v, lb := range lower {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("lp: lower bound for unknown variable %d", v)
		}
		if lb > 0 {
			s.lb[v] = lb
		}
	}

	// First pass: classify every row (after rhs normalization) to size the
	// tableau. Constraint rows flip LE<->GE when rhs < 0; bound rows always
	// have rhs >= 0.
	nUB, nLB := 0, 0
	for i := 0; i < n; i++ {
		if !math.IsInf(s.ub[i], 1) {
			nUB++
		}
		if s.lb[i] > 0 {
			nLB++
		}
	}
	m := len(p.cons) + nUB + nLB
	nSlack, nArt := 0, 0
	for _, c := range p.cons {
		op := c.op
		if c.rhs < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		default:
			return nil, fmt.Errorf("lp: internal: invalid op %v", op)
		}
	}
	nSlack += nUB // ub rows: x_i <= ub, slack
	nSlack += nLB // lb rows: x_i >= lb, surplus + artificial
	nArt += nLB

	nCols := n + nSlack + nArt
	width := nCols + 1

	// Lay the m rows out in one flat backing array, reused across solves.
	need := m * width
	s.flat = grow(s.flat, need)
	clear(s.flat)
	if cap(s.rows) < m {
		s.rows = make([][]float64, m)
	}
	s.rows = s.rows[:m]
	for i := 0; i < m; i++ {
		s.rows[i] = s.flat[i*width : (i+1)*width]
	}
	s.basis = growInt(s.basis, m)
	s.objRow = grow(s.objRow, width)
	clear(s.objRow)
	s.origObj = grow(s.origObj, n)
	copy(s.origObj, p.obj)

	t := &tableau{
		nStruct:  n,
		nCols:    nCols,
		artStart: n + nSlack,
		rows:     s.rows,
		basis:    s.basis,
		objRow:   s.objRow,
		origObj:  s.origObj,
		maxIts:   p.maxIts,
	}
	if t.maxIts <= 0 {
		t.maxIts = 50000 + 50*(m+n)
	}

	// Second pass: fill rows. Order is deterministic — problem constraints
	// first, then upper-bound rows, then lower-bound rows, each in index
	// order.
	slackCol := n
	artCol := t.artStart
	row := 0
	emit := func(op Op) {
		switch op {
		case LE:
			s.rows[row][slackCol] = 1
			s.basis[row] = slackCol
			slackCol++
		case GE:
			s.rows[row][slackCol] = -1
			slackCol++
			s.rows[row][artCol] = 1
			s.basis[row] = artCol
			artCol++
		case EQ:
			s.rows[row][artCol] = 1
			s.basis[row] = artCol
			artCol++
		}
		row++
	}
	for _, c := range p.cons {
		sign := 1.0
		op := c.op
		if c.rhs < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		r := s.rows[row]
		for _, term := range c.terms {
			r[term.Var] += sign * term.Coef
		}
		r[nCols] = sign * c.rhs
		emit(op)
	}
	for i := 0; i < n; i++ {
		if math.IsInf(s.ub[i], 1) {
			continue
		}
		r := s.rows[row]
		r[i] = 1
		r[nCols] = s.ub[i]
		emit(LE)
	}
	for i := 0; i < n; i++ {
		if s.lb[i] <= 0 {
			continue
		}
		r := s.rows[row]
		r[i] = 1
		r[nCols] = s.lb[i]
		emit(GE)
	}
	return t, nil
}
