package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"sagrelay/internal/obs"
)

// warmStartsTotal counts solves completed by the warm-started dual simplex
// path; coldFallbacksTotal counts warm attempts that were abandoned
// (ErrWarmStart) and re-solved on the cold two-phase path. Together with
// sag_lp_pivots_per_solve they make the warm-start win visible on /metrics.
var (
	warmStartsTotal    atomic.Int64
	coldFallbacksTotal atomic.Int64
)

func init() {
	obs.Default.Counter("sag_lp_warm_starts_total",
		"LP solves completed by the warm-started dual simplex path.",
		warmStartsTotal.Load)
	obs.Default.Counter("sag_lp_cold_fallbacks_total",
		"Warm-start attempts abandoned to the cold two-phase path.",
		coldFallbacksTotal.Load)
}

// ErrWarmStart reports that a warm-started solve could not be completed
// from the supplied basis — the basis was singular after the bound change,
// dual feasibility could not be restored, the dual iteration stalled, or a
// numerical breakdown appeared. WarmSolve catches it internally and falls
// back to the cold two-phase path, so callers only ever see it wrapped in
// diagnostics (or from tests poking the warm path directly); it exists so
// the fallback is typed rather than a silent wrong answer.
var ErrWarmStart = errors.New("lp: warm start unusable")

// WarmStats returns the process-wide counts of warm-started solves and of
// warm attempts that fell back to the cold path — the same values exported
// as sag_lp_warm_starts_total and sag_lp_cold_fallbacks_total. It exists
// for tooling (the benchmark emitter) that reports deltas around a
// workload.
func WarmStats() (warmStarts, coldFallbacks int64) {
	return warmStartsTotal.Load(), coldFallbacksTotal.Load()
}

// Solver runs simplex with memory reused across solves. It exists for the
// branch-and-bound hot path: every search-tree node re-solves the same base
// problem with only per-variable bounds changed, so the dense tableau (by
// far the largest allocation of a solve) is rebuilt in place inside the
// Solver's buffers instead of being re-made per node — and, via WarmSolve,
// a child node restarts from its parent's optimal basis instead of
// re-pivoting from scratch.
//
// A Solver is not safe for concurrent use; concurrent solves (e.g. parallel
// per-zone ILPs) each use their own Solver.
type Solver struct {
	// Cold-path (two-phase primal) buffers.
	flat    []float64   // backing storage for all tableau rows
	rows    [][]float64 // row views into flat
	basis   []int
	objRow  []float64
	origObj []float64
	devex   []float64 // primal Devex reference weights
	lb, ub  []float64 // effective per-variable bounds for the current solve

	// Warm-path (bounded-variable dual simplex) buffers, kept separate from
	// the cold buffers so an abandoned warm attempt never clobbers the cold
	// fallback's workspace.
	wflat   []float64
	wrows   [][]float64
	wbasis  []int
	wstatus []VarStatus
	wlow    []float64
	wupp    []float64
	wxB     []float64
	wd      []float64
	wweight []float64
	wcands  []dualCand
	wvals   []float64

	// forceBland pins pivot selection to Bland's rule from the first
	// iteration in both the primal and dual paths. Testing hook: the
	// degenerate-LP regressions compare Devex-with-stall-fallback against
	// pure Bland's.
	forceBland bool
}

// NewSolver returns an empty Solver; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// Solve minimizes p under per-variable bound overrides and returns the
// solution. lower[v] imposes x_v >= lb (values <= 0 are no-ops: x >= 0 is
// implicit), upper[v] tightens x_v's upper bound when below the problem's
// own (negative values clamp to 0). The base problem is not modified, so
// branch-and-bound can re-solve it with different bounds node after node.
// Either map may be nil. Solution.X is freshly allocated per call; all
// other working memory is reused.
//
// Bound rows are emitted in ascending variable order, so two solves of the
// same (problem, bounds) input run the identical pivot sequence — map
// iteration order never leaks into the result.
func (s *Solver) Solve(p *Problem, lower, upper map[int]float64) (*Solution, error) {
	return s.SolveContext(context.Background(), p, lower, upper)
}

// SolveContext is Solve with cooperative cancellation: the simplex
// iteration loop polls ctx every few pivots and aborts with ctx's error
// (context.Canceled or context.DeadlineExceeded) when it is done. The
// cancellation check never changes the pivot sequence of a solve that runs
// to completion, so determinism is unaffected.
func (s *Solver) SolveContext(ctx context.Context, p *Problem, lower, upper map[int]float64) (*Solution, error) {
	return s.solveCold(ctx, p, lower, upper, false)
}

// WarmSolve is SolveContext with a warm start: basis, the Basis of a
// previous optimal solve of the same problem (same variables and
// constraints; only the bound overrides may differ), seeds a bound-flipping
// dual simplex that repairs primal feasibility from the still-dual-feasible
// parent basis instead of re-pivoting from scratch. Whenever the warm start
// is unusable — singular basis after the bound change, irreparable dual
// infeasibility, stall, or numerical trouble — the typed ErrWarmStart is
// caught internally and the solve falls back to the cold two-phase path, so
// the answer is always as trustworthy as a cold solve. A nil basis goes
// straight to the cold path.
//
// The returned Solution always carries a Basis for chaining into the next
// warm solve, and Solution.WarmStarted reports which path produced it.
func (s *Solver) WarmSolve(ctx context.Context, p *Problem, lower, upper map[int]float64, basis *Basis) (*Solution, error) {
	if basis != nil {
		sol, err := s.warmAttempt(ctx, p, lower, upper, basis)
		if err == nil {
			warmStartsTotal.Add(1)
			return sol, nil
		}
		if !errors.Is(err, ErrWarmStart) {
			return nil, err
		}
		coldFallbacksTotal.Add(1)
	}
	return s.solveCold(ctx, p, lower, upper, true)
}

// solveCold runs the two-phase primal simplex. withBasis additionally
// extracts the optimal basis (for warm-starting descendants); plain
// Solve/SolveContext skip the extraction so non-tree callers pay nothing.
func (s *Solver) solveCold(ctx context.Context, p *Problem, lower, upper map[int]float64, withBasis bool) (*Solution, error) {
	t, err := s.build(p, lower, upper)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx != context.Background() {
		t.ctx = ctx
	}
	sol, err := t.solve()
	if err != nil {
		return nil, err
	}
	if withBasis && sol.Status == Optimal {
		sol.Basis = s.basisFromPoint(p, sol.X)
	}
	return sol, nil
}

// basisFromPoint crashes a bounded-variable basis from an optimal cold
// solution: columns at a bound become nonbasic at that bound, columns
// strictly inside become Basic. The crash can under-determine the basis on
// degenerate vertices (fewer than m Basic columns) — the warm-start
// factorization completes it deterministically with logical columns, and
// falls back to a cold solve if the completion is singular.
func (s *Solver) basisFromPoint(p *Problem, x []float64) *Basis {
	n, m := len(p.obj), len(p.cons)
	st := make([]VarStatus, n+m)
	const eps = 1e-7
	for i := 0; i < n; i++ {
		switch {
		case x[i] <= s.lb[i]+eps:
			st[i] = AtLower
		case !math.IsInf(s.ub[i], 1) && x[i] >= s.ub[i]-eps:
			st[i] = AtUpper
		default:
			st[i] = Basic
		}
	}
	for k, c := range p.cons {
		act := 0.0
		for _, t := range c.terms {
			act += t.Coef * x[t.Var]
		}
		slack := c.rhs - act
		switch c.op {
		case LE: // logical in [0, +Inf)
			if slack <= eps {
				st[n+k] = AtLower
			} else {
				st[n+k] = Basic
			}
		case GE: // logical in (-Inf, 0]
			if slack >= -eps {
				st[n+k] = AtUpper
			} else {
				st[n+k] = Basic
			}
		case EQ: // logical fixed at 0
			st[n+k] = AtLower
		}
	}
	return &Basis{status: st}
}

// grow returns buf resized to n, reallocating only when capacity is short.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growStatus(buf []VarStatus, n int) []VarStatus {
	if cap(buf) < n {
		return make([]VarStatus, n)
	}
	return buf[:n]
}

// validateInputs rejects non-finite model inputs up front: a single NaN
// coefficient would otherwise spread through the tableau and surface as
// garbage bounds far from its source.
func validateInputs(p *Problem, lower, upper map[int]float64) error {
	for i, c := range p.obj {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: objective coefficient of variable %d is %v", ErrNumerical, i, c)
		}
	}
	for i, ub := range p.ub {
		if math.IsNaN(ub) || math.IsInf(ub, -1) {
			return fmt.Errorf("%w: upper bound of variable %d is %v", ErrNumerical, i, ub)
		}
	}
	for k, c := range p.cons {
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return fmt.Errorf("%w: right-hand side of constraint %d is %v", ErrNumerical, k, c.rhs)
		}
		for _, term := range c.terms {
			if math.IsNaN(term.Coef) || math.IsInf(term.Coef, 0) {
				return fmt.Errorf("%w: coefficient of variable %d in constraint %d is %v", ErrNumerical, term.Var, k, term.Coef)
			}
		}
	}
	for v, b := range lower {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("%w: lower bound override of variable %d is %v", ErrNumerical, v, b)
		}
	}
	for v, b := range upper {
		if math.IsNaN(b) || math.IsInf(b, -1) {
			return fmt.Errorf("%w: upper bound override of variable %d is %v", ErrNumerical, v, b)
		}
	}
	return nil
}

// effectiveBounds fills s.lb/s.ub with the problem's own bounds tightened
// by the per-call overrides (the contract documented on Solve).
func (s *Solver) effectiveBounds(p *Problem, lower, upper map[int]float64) error {
	n := len(p.obj)
	s.ub = grow(s.ub, n)
	copy(s.ub, p.ub)
	for v, ub := range upper {
		if v < 0 || v >= n {
			return fmt.Errorf("lp: upper bound for unknown variable %d", v)
		}
		if ub < 0 {
			ub = 0
		}
		if ub < s.ub[v] {
			s.ub[v] = ub
		}
	}
	s.lb = grow(s.lb, n)
	for i := range s.lb {
		s.lb[i] = 0
	}
	for v, lb := range lower {
		if v < 0 || v >= n {
			return fmt.Errorf("lp: lower bound for unknown variable %d", v)
		}
		if lb > 0 {
			s.lb[v] = lb
		}
	}
	return nil
}

// build assembles the phase-ready tableau inside the Solver's buffers:
// finite (effective) upper bounds become explicit <= rows, positive lower
// bounds >= rows, right-hand sides are normalized non-negative, LE rows get
// slacks, GE rows surplus+artificial, EQ rows artificial — the same
// canonical form the package has always used, built without per-row
// allocations.
func (s *Solver) build(p *Problem, lower, upper map[int]float64) (*tableau, error) {
	n := len(p.obj)

	if err := validateInputs(p, lower, upper); err != nil {
		return nil, err
	}
	if err := s.effectiveBounds(p, lower, upper); err != nil {
		return nil, err
	}

	// First pass: classify every row (after rhs normalization) to size the
	// tableau. Constraint rows flip LE<->GE when rhs < 0; bound rows always
	// have rhs >= 0.
	nUB, nLB := 0, 0
	for i := 0; i < n; i++ {
		if !math.IsInf(s.ub[i], 1) {
			nUB++
		}
		if s.lb[i] > 0 {
			nLB++
		}
	}
	m := len(p.cons) + nUB + nLB
	nSlack, nArt := 0, 0
	for _, c := range p.cons {
		op := c.op
		if c.rhs < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		default:
			return nil, fmt.Errorf("lp: internal: invalid op %v", op)
		}
	}
	nSlack += nUB // ub rows: x_i <= ub, slack
	nSlack += nLB // lb rows: x_i >= lb, surplus + artificial
	nArt += nLB

	nCols := n + nSlack + nArt
	width := nCols + 1

	// Lay the m rows out in one flat backing array, reused across solves.
	need := m * width
	s.flat = grow(s.flat, need)
	clear(s.flat)
	if cap(s.rows) < m {
		s.rows = make([][]float64, m)
	}
	s.rows = s.rows[:m]
	for i := 0; i < m; i++ {
		s.rows[i] = s.flat[i*width : (i+1)*width]
	}
	s.basis = growInt(s.basis, m)
	s.objRow = grow(s.objRow, width)
	clear(s.objRow)
	s.origObj = grow(s.origObj, n)
	copy(s.origObj, p.obj)
	s.devex = grow(s.devex, nCols)

	t := &tableau{
		nStruct:    n,
		nCols:      nCols,
		artStart:   n + nSlack,
		rows:       s.rows,
		basis:      s.basis,
		objRow:     s.objRow,
		origObj:    s.origObj,
		devex:      s.devex,
		maxIts:     p.maxIts,
		forceBland: s.forceBland,
	}
	if t.maxIts <= 0 {
		t.maxIts = 50000 + 50*(m+n)
	}

	// Second pass: fill rows. Order is deterministic — problem constraints
	// first, then upper-bound rows, then lower-bound rows, each in index
	// order.
	slackCol := n
	artCol := t.artStart
	row := 0
	emit := func(op Op) {
		switch op {
		case LE:
			s.rows[row][slackCol] = 1
			s.basis[row] = slackCol
			slackCol++
		case GE:
			s.rows[row][slackCol] = -1
			slackCol++
			s.rows[row][artCol] = 1
			s.basis[row] = artCol
			artCol++
		case EQ:
			s.rows[row][artCol] = 1
			s.basis[row] = artCol
			artCol++
		}
		row++
	}
	for _, c := range p.cons {
		sign := 1.0
		op := c.op
		if c.rhs < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		r := s.rows[row]
		for _, term := range c.terms {
			r[term.Var] += sign * term.Coef
		}
		r[nCols] = sign * c.rhs
		emit(op)
	}
	for i := 0; i < n; i++ {
		if math.IsInf(s.ub[i], 1) {
			continue
		}
		r := s.rows[row]
		r[i] = 1
		r[nCols] = s.ub[i]
		emit(LE)
	}
	for i := 0; i < n; i++ {
		if s.lb[i] <= 0 {
			continue
		}
		r := s.rows[row]
		r[i] = 1
		r[nCols] = s.lb[i]
		emit(GE)
	}
	return t, nil
}
