package lp

import (
	"errors"
	"math"
	"testing"
)

// smallProblem returns min x0 s.t. x0 + x1 >= 1, both in [0,1].
func smallProblem(t *testing.T) *Problem {
	t.Helper()
	p := NewProblem()
	x0 := p.AddVariable("x0", 1)
	x1 := p.AddVariable("x1", 0)
	for _, v := range []int{x0, x1} {
		if err := p.SetUpperBound(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddConstraint([]Term{{Var: x0, Coef: 1}, {Var: x1, Coef: 1}}, GE, 1); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNumericalNaNObjective(t *testing.T) {
	p := smallProblem(t)
	if err := p.SetObjective(0, math.NaN()); err != nil {
		t.Fatal(err)
	}
	_, err := p.Solve()
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("Solve with NaN objective: err = %v, want ErrNumerical", err)
	}
}

func TestNumericalNonFiniteConstraint(t *testing.T) {
	for name, build := range map[string]func(p *Problem) error{
		"nan rhs": func(p *Problem) error {
			return p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, math.NaN())
		},
		"inf rhs": func(p *Problem) error {
			return p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, math.Inf(1))
		},
		"nan coef": func(p *Problem) error {
			return p.AddConstraint([]Term{{Var: 0, Coef: math.NaN()}, {Var: 1, Coef: 1}}, LE, 1)
		},
		"inf coef": func(p *Problem) error {
			return p.AddConstraint([]Term{{Var: 0, Coef: math.Inf(-1)}}, GE, 0)
		},
	} {
		t.Run(name, func(t *testing.T) {
			p := smallProblem(t)
			if err := build(p); err != nil {
				t.Fatal(err)
			}
			_, err := p.Solve()
			if !errors.Is(err, ErrNumerical) {
				t.Fatalf("err = %v, want ErrNumerical", err)
			}
		})
	}
}

func TestNumericalBoundOverrides(t *testing.T) {
	p := smallProblem(t)
	s := NewSolver()
	if _, err := s.Solve(p, map[int]float64{0: math.NaN()}, nil); !errors.Is(err, ErrNumerical) {
		t.Fatalf("NaN lower override: err = %v, want ErrNumerical", err)
	}
	if _, err := s.Solve(p, nil, map[int]float64{1: math.NaN()}); !errors.Is(err, ErrNumerical) {
		t.Fatalf("NaN upper override: err = %v, want ErrNumerical", err)
	}
	// +Inf upper override is a legitimate "no tightening" value.
	sol, err := s.Solve(p, nil, map[int]float64{1: math.Inf(1)})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("+Inf upper override: sol = %+v, err = %v", sol, err)
	}
}

func TestNumericalCleanProblemUnaffected(t *testing.T) {
	p := smallProblem(t)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective) > 1e-9 {
		t.Fatalf("sol = %+v, want optimal objective 0", sol)
	}
}
