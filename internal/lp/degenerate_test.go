package lp_test

import (
	"math"
	"testing"

	"sagrelay/internal/lp"
)

// bealeProblem is Beale's classic cycling example: under Dantzig's rule
// with naive tie-breaking the simplex cycles forever through degenerate
// bases. The optimum is -0.05 at x = (0.04, 0, 1, 0).
func bealeProblem(t *testing.T) *lp.Problem {
	t.Helper()
	p := lp.NewProblem()
	x1 := p.AddVariable("x1", -0.75)
	x2 := p.AddVariable("x2", 150)
	x3 := p.AddVariable("x3", -0.02)
	x4 := p.AddVariable("x4", 6)
	for _, c := range []struct {
		terms []lp.Term
		rhs   float64
	}{
		{[]lp.Term{{Var: x1, Coef: 0.25}, {Var: x2, Coef: -60}, {Var: x3, Coef: -0.04}, {Var: x4, Coef: 9}}, 0},
		{[]lp.Term{{Var: x1, Coef: 0.5}, {Var: x2, Coef: -90}, {Var: x3, Coef: -0.02}, {Var: x4, Coef: 3}}, 0},
		{[]lp.Term{{Var: x3, Coef: 1}}, 1},
	} {
		if err := p.AddConstraint(c.terms, lp.LE, c.rhs); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestBealeCycling proves the Devex+stall-fallback path terminates on
// Beale's cycling example with the same optimum as pure Bland's rule.
func TestBealeCycling(t *testing.T) {
	const want = -0.05
	for _, mode := range []struct {
		name  string
		bland bool
	}{{"devex", false}, {"bland", true}} {
		t.Run(mode.name, func(t *testing.T) {
			p := bealeProblem(t)
			s := lp.NewSolver()
			s.SetForceBland(mode.bland)
			sol, err := s.Solve(p, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != lp.Optimal {
				t.Fatalf("status %v", sol.Status)
			}
			if math.Abs(sol.Objective-want) > 1e-9 {
				t.Errorf("objective %v, want %v", sol.Objective, want)
			}
		})
	}
}

// degenerateCoverLP builds a primal-degenerate covering LP in the shape
// internal/lower produces: unit costs, heavily overlapping GE rows, so the
// optimal vertex has many tight constraints and zero-length pivot steps.
func degenerateCoverLP(t *testing.T) *lp.Problem {
	t.Helper()
	p := lp.NewProblem()
	const n = 6
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVariable("x", 1)
		if err := p.SetUpperBound(vars[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	// Every window of three consecutive variables must cover one unit; the
	// windows overlap pairwise, so the optimum x = (0,1,0,0,1,0) leaves many
	// redundant-tight rows (degenerate basic solutions along the way).
	for k := 0; k+2 < n; k++ {
		terms := []lp.Term{
			{Var: vars[k], Coef: 1},
			{Var: vars[k+1], Coef: 1},
			{Var: vars[k+2], Coef: 1},
		}
		if err := p.AddConstraint(terms, lp.GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestDegenerateCover runs the degenerate cover LP under Devex and under
// forced Bland's rule; both must terminate at the same optimum.
func TestDegenerateCover(t *testing.T) {
	var objs [2]float64
	for i, bland := range []bool{false, true} {
		p := degenerateCoverLP(t)
		s := lp.NewSolver()
		s.SetForceBland(bland)
		sol, err := s.Solve(p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("bland=%v: status %v", bland, sol.Status)
		}
		objs[i] = sol.Objective
		if ok, err := p.CheckFeasible(sol.X, 1e-9); err != nil || !ok {
			t.Fatalf("bland=%v: optimal point infeasible (%v)", bland, err)
		}
	}
	if math.Abs(objs[0]-objs[1]) > 1e-9 {
		t.Errorf("devex optimum %v != bland optimum %v", objs[0], objs[1])
	}
	if math.Abs(objs[0]-2) > 1e-9 {
		t.Errorf("optimum %v, want 2", objs[0])
	}
}

// TestDegenerateCoverWarm warm-starts the degenerate cover LP from its own
// optimal basis under a tightened bound — the degenerate-crash completion
// path (fewer Basic columns than rows) must either finish on the dual
// simplex or fall back, never mis-solve.
func TestDegenerateCoverWarm(t *testing.T) {
	p := degenerateCoverLP(t)
	s := lp.NewSolver()
	root, err := s.WarmSolve(nil, p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root.Basis == nil {
		t.Fatal("root solve returned no basis")
	}
	for v := 0; v < 6; v++ {
		warm, err := s.WarmSolve(nil, p, map[int]float64{v: 1}, nil, root.Basis)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := lp.NewSolver().Solve(p, map[int]float64{v: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("fix x%d=1: warm status %v, cold %v", v, warm.Status, cold.Status)
		}
		if warm.Status == lp.Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-9 {
			t.Errorf("fix x%d=1: warm objective %v, cold %v", v, warm.Objective, cold.Objective)
		}
	}
}
