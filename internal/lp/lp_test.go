package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// solveOrFail builds the problem with fn and returns the solution.
func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSimpleLE(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 3, y <= 2  ->  x=3, y=1? No:
	// max x + y with x<=3, y<=2, x+y<=4 -> optimum 4 (e.g. x=2,y=2 or x=3,y=1).
	p := NewProblem()
	x := p.AddVariable("x", -1)
	y := p.AddVariable("y", -1)
	if err := p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUpperBound(x, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.SetUpperBound(y, 2); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.Objective, -4, 1e-7) {
		t.Errorf("objective = %v, want -4", sol.Objective)
	}
	if sol.X[x]+sol.X[y] > 4+1e-7 || sol.X[x] > 3+1e-7 || sol.X[y] > 2+1e-7 {
		t.Errorf("solution violates constraints: %v", sol.X)
	}
}

func TestGEAndEQ(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 10, x - y == 2  ->  x=6, y=4, obj=24.
	p := NewProblem()
	x := p.AddVariable("x", 2)
	y := p.AddVariable("y", 3)
	if err := p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 2); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.X[x], 6, 1e-7) || !almost(sol.X[y], 4, 1e-7) {
		t.Errorf("solution = %v, want (6, 4)", sol.X)
	}
	if !almost(sol.Objective, 24, 1e-7) {
		t.Errorf("objective = %v, want 24", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	if err := p.AddConstraint([]Term{{x, 1}}, GE, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Term{{x, 1}}, LE, 3); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", -1) // maximize x, no bound
	_ = x
	sol := solveOrFail(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x  s.t. -x <= -5  (i.e. x >= 5)
	p := NewProblem()
	x := p.AddVariable("x", 1)
	if err := p.AddConstraint([]Term{{x, -1}}, LE, -5); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || !almost(sol.X[x], 5, 1e-7) {
		t.Errorf("got %v %v, want x=5", sol.Status, sol.X)
	}
}

func TestEqualityWithNegativeRHS(t *testing.T) {
	// min x + y  s.t. x - y == -3, x + y >= 5 -> x=1, y=4, obj=5.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	if err := p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, -3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 5); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.X[x], 1, 1e-7) || !almost(sol.X[y], 4, 1e-7) {
		t.Errorf("solution = %v, want (1, 4)", sol.X)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Classic degenerate corner; must terminate and find obj 0 at origin.
	p := NewProblem()
	x := p.AddVariable("x", 1)
	y := p.AddVariable("y", 1)
	for _, c := range [][]Term{
		{{x, 1}, {y, 1}},
		{{x, 1}, {y, 2}},
		{{x, 2}, {y, 1}},
	} {
		if err := p.AddConstraint(c, GE, 0); err != nil {
			t.Fatal(err)
		}
	}
	sol := solveOrFail(t, p)
	if sol.Status != Optimal || !almost(sol.Objective, 0, 1e-9) {
		t.Errorf("got %v obj=%v", sol.Status, sol.Objective)
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	// x + x <= 4 means 2x <= 4.
	p := NewProblem()
	x := p.AddVariable("x", -1)
	if err := p.AddConstraint([]Term{{x, 1}, {x, 1}}, LE, 4); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if !almost(sol.X[x], 2, 1e-7) {
		t.Errorf("x = %v, want 2", sol.X[x])
	}
}

func TestValidationErrors(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1)
	if err := p.AddConstraint([]Term{{x + 7, 1}}, LE, 1); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := p.AddConstraint([]Term{{x, 1}}, Op(0), 1); err == nil {
		t.Error("invalid op accepted")
	}
	if err := p.SetUpperBound(x, -1); err == nil {
		t.Error("negative upper bound accepted")
	}
	if err := p.SetUpperBound(42, 1); err == nil {
		t.Error("out-of-range upper bound accepted")
	}
	if err := p.SetObjective(42, 1); err == nil {
		t.Error("out-of-range objective accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("op strings wrong")
	}
}

// TestTransportation solves a balanced transportation problem with a known
// optimum, exercising equality rows and larger tableaus.
func TestTransportation(t *testing.T) {
	// 2 supplies (10, 20), 3 demands (10, 10, 10).
	// costs: s0: [2, 4, 5], s1: [3, 1, 7].
	// Optimal: s0->d0 10 (20), s1->d1 10 (10), s1->d2 10 (70)... check
	// alternatives: s0 could serve d2 at 5. Supplies: s0=10, s1=20.
	// LP optimum: x00=10, x11=10, x12=10 -> 2*10+1*10+7*10 = 100;
	// or x02=10, x10=10, x11=10 -> 5*10+3*10+1*10=90. The latter is better.
	costs := [2][3]float64{{2, 4, 5}, {3, 1, 7}}
	supply := []float64{10, 20}
	demand := []float64{10, 10, 10}
	p := NewProblem()
	var vars [2][3]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			vars[i][j] = p.AddVariable("x", costs[i][j])
		}
	}
	for i := 0; i < 2; i++ {
		terms := make([]Term, 3)
		for j := 0; j < 3; j++ {
			terms[j] = Term{vars[i][j], 1}
		}
		if err := p.AddConstraint(terms, EQ, supply[i]); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 3; j++ {
		terms := make([]Term, 2)
		for i := 0; i < 2; i++ {
			terms[i] = Term{vars[i][j], 1}
		}
		if err := p.AddConstraint(terms, EQ, demand[j]); err != nil {
			t.Fatal(err)
		}
	}
	sol := solveOrFail(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !almost(sol.Objective, 90, 1e-6) {
		t.Errorf("objective = %v, want 90", sol.Objective)
	}
}

// Property: for random feasible bounded LPs of the covering form
// min sum(x) s.t. random subsets sum >= 1, 0 <= x <= 1, the solution
// respects every constraint and the objective is between 0 and n.
func TestRandomCoveringLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(10)
		p := NewProblem()
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVariable("x", 1)
			if err := p.SetUpperBound(vars[i], 1); err != nil {
				return false
			}
		}
		rowsets := make([][]int, m)
		for k := 0; k < m; k++ {
			var terms []Term
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{vars[i], 1})
					rowsets[k] = append(rowsets[k], i)
				}
			}
			if len(terms) == 0 {
				terms = []Term{{vars[0], 1}}
				rowsets[k] = []int{0}
			}
			if err := p.AddConstraint(terms, GE, 1); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		for k := 0; k < m; k++ {
			s := 0.0
			for _, i := range rowsets[k] {
				s += sol.X[i]
			}
			if s < 1-1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 || x > 1+1e-6 {
				return false
			}
		}
		return sol.Objective >= -1e-9 && sol.Objective <= float64(n)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: LP relaxation objective is a valid lower bound for any feasible
// 0/1 point (tested with the all-ones point on covering instances).
func TestRelaxationLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		p := NewProblem()
		total := 0.0
		costs := make([]float64, n)
		for i := 0; i < n; i++ {
			costs[i] = 1 + rng.Float64()*5
			total += costs[i]
			v := p.AddVariable("x", costs[i])
			if err := p.SetUpperBound(v, 1); err != nil {
				return false
			}
		}
		for k := 0; k < 1+rng.Intn(6); k++ {
			var terms []Term
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{i, 1})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{0, 1}}
			}
			if err := p.AddConstraint(terms, GE, 1); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		// All-ones is feasible for covering constraints; its cost bounds the
		// LP optimum from above.
		return sol.Objective <= total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem()
	n := 12
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVariable("x", -float64(i+1))
		if err := p.SetUpperBound(vars[i], 10); err != nil {
			t.Fatal(err)
		}
	}
	p.SetMaxIterations(1)
	_, err := p.Solve()
	if err == nil {
		t.Skip("solved within one pivot; limit untestable on this instance")
	}
	if err != ErrIterationLimit {
		t.Errorf("err = %v, want ErrIterationLimit", err)
	}
}
