package lp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sagrelay/internal/fault"
)

// The warm path solves the problem in bounded-variable form: rows are only
// the problem's own constraints (no explicit bound rows), every constraint
// k gets a logical variable s_k with
//
//	a_k.x + s_k = b_k,   s_k in [0,+Inf) (LE) | (-Inf,0] (GE) | [0,0] (EQ)
//
// and variable bounds are implicit — nonbasic columns sit at a bound
// (AtLower/AtUpper). Because bounds never appear in the matrix, a
// branch-and-bound child that differs from its parent by one variable
// bound has the *same* matrix, so the parent's optimal basis stays
// structurally valid and — since reduced costs do not depend on bounds —
// dual feasible. The dual simplex then repairs primal feasibility in a
// handful of pivots where a cold solve would re-run both phases.

// singEps is the pivot tolerance below which a column is treated as
// linearly dependent during basis refactorization.
const singEps = 1e-8

// dualEps is the reduced-cost tolerance for dual feasibility.
const dualEps = 1e-7

// dualStallLimit is the number of consecutive dual iterations without
// primal-infeasibility progress after which pivot selection switches to
// Bland's rule (deterministic anti-cycling; Bland's dual rule terminates).
const dualStallLimit = 100

// dualCand is one candidate of the dual ratio test.
type dualCand struct {
	j     int
	ratio float64
	abs   float64 // |alpha_rj|
}

// warmAttempt runs the bound-flipping dual simplex from basis. Any
// condition that makes the warm start unusable returns an error wrapping
// ErrWarmStart (the caller falls back to the cold path); context and fault
// errors are returned untyped so they propagate instead of falling back.
func (s *Solver) warmAttempt(ctx context.Context, p *Problem, lower, upper map[int]float64, basis *Basis) (*Solution, error) {
	n, m := len(p.obj), len(p.cons)
	ncols := n + m
	if basis.Len() != ncols {
		return nil, fmt.Errorf("%w: basis has %d columns, problem has %d", ErrWarmStart, basis.Len(), ncols)
	}
	if err := validateInputs(p, lower, upper); err != nil {
		return nil, err
	}
	if err := s.effectiveBounds(p, lower, upper); err != nil {
		return nil, err
	}
	// An empty variable domain is infeasible outright — the cold path proves
	// the same through phase 1.
	for i := 0; i < n; i++ {
		if s.lb[i] > s.ub[i] {
			return &Solution{Status: Infeasible, WarmStarted: true}, nil
		}
	}
	if ctx == context.Background() {
		ctx = nil
	}

	// Column bounds: structural then logical.
	s.wlow = grow(s.wlow, ncols)
	s.wupp = grow(s.wupp, ncols)
	copy(s.wlow, s.lb[:n])
	copy(s.wupp, s.ub[:n])
	for k, c := range p.cons {
		switch c.op {
		case LE:
			s.wlow[n+k], s.wupp[n+k] = 0, math.Inf(1)
		case GE:
			s.wlow[n+k], s.wupp[n+k] = math.Inf(-1), 0
		case EQ:
			s.wlow[n+k], s.wupp[n+k] = 0, 0
		default:
			return nil, fmt.Errorf("lp: internal: invalid op %v", c.op)
		}
	}

	// Raw tableau [A | I | b], one flat backing array reused across solves.
	width := ncols + 1
	s.wflat = grow(s.wflat, m*width)
	clear(s.wflat)
	if cap(s.wrows) < m {
		s.wrows = make([][]float64, m)
	}
	s.wrows = s.wrows[:m]
	for k := 0; k < m; k++ {
		s.wrows[k] = s.wflat[k*width : (k+1)*width]
		r := s.wrows[k]
		for _, t := range p.cons[k].terms {
			r[t.Var] += t.Coef
		}
		r[n+k] = 1
		r[ncols] = p.cons[k].rhs
	}

	s.wstatus = growStatus(s.wstatus, ncols)
	copy(s.wstatus, basis.status)
	s.wbasis = growInt(s.wbasis, m)
	for r := range s.wbasis {
		s.wbasis[r] = -1
	}

	// Refactorize: eliminate each declared basic column (ascending index,
	// largest available pivot element — deterministic), then complete any
	// degenerate remainder with logical (then structural) columns. A
	// near-zero pivot means the basis went singular under the bound change.
	for j := 0; j < ncols; j++ {
		if s.wstatus[j] != Basic {
			continue
		}
		best, bestAbs := -1, singEps
		for r := 0; r < m; r++ {
			if s.wbasis[r] >= 0 {
				continue
			}
			if a := math.Abs(s.wrows[r][j]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: singular basis at column %d", ErrWarmStart, j)
		}
		s.welim(best, j)
	}
	for r := 0; r < m; r++ {
		if s.wbasis[r] >= 0 {
			continue
		}
		pick := -1
		if s.wstatus[n+r] != Basic && math.Abs(s.wrows[r][n+r]) > singEps {
			pick = n + r // the row's own logical, the usual degenerate filler
		} else {
			for j := n; j < ncols && pick < 0; j++ {
				if s.wstatus[j] != Basic && math.Abs(s.wrows[r][j]) > singEps {
					pick = j
				}
			}
			for j := 0; j < n && pick < 0; j++ {
				if s.wstatus[j] != Basic && math.Abs(s.wrows[r][j]) > singEps {
					pick = j
				}
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("%w: cannot complete degenerate basis at row %d", ErrWarmStart, r)
		}
		s.wstatus[pick] = Basic
		s.welim(r, pick)
	}

	// Reduced costs d = c - c_B^T B^-1 A (structural costs from the
	// objective, logical costs zero).
	s.wd = grow(s.wd, ncols)
	copy(s.wd, p.obj)
	for j := n; j < ncols; j++ {
		s.wd[j] = 0
	}
	for r := 0; r < m; r++ {
		b := s.wbasis[r]
		if b >= n || p.obj[b] == 0 {
			continue
		}
		cb := p.obj[b]
		row := s.wrows[r]
		for j := 0; j < ncols; j++ {
			s.wd[j] -= cb * row[j]
		}
	}
	for r := 0; r < m; r++ {
		s.wd[s.wbasis[r]] = 0
	}

	// Repair nonbasic statuses for dual feasibility: a nonbasic column must
	// sit at the bound its reduced cost points away from. The parent basis
	// is dual feasible by construction, so repairs are bound flips forced by
	// a crashed basis or tiny sign drift; a repair that needs an infinite
	// bound is genuine dual infeasibility and aborts the warm start.
	for j := 0; j < ncols; j++ {
		if s.wstatus[j] == Basic {
			continue
		}
		lo, up := s.wlow[j], s.wupp[j]
		if lo == up {
			s.wstatus[j] = AtLower // fixed column; never enters
			continue
		}
		switch d := s.wd[j]; {
		case d > dualEps:
			if math.IsInf(lo, -1) {
				return nil, fmt.Errorf("%w: dual infeasible at column %d", ErrWarmStart, j)
			}
			s.wstatus[j] = AtLower
		case d < -dualEps:
			if math.IsInf(up, 1) {
				return nil, fmt.Errorf("%w: dual infeasible at column %d", ErrWarmStart, j)
			}
			s.wstatus[j] = AtUpper
		default:
			if s.wstatus[j] == AtLower && math.IsInf(lo, -1) {
				s.wstatus[j] = AtUpper
			} else if s.wstatus[j] == AtUpper && math.IsInf(up, 1) {
				s.wstatus[j] = AtLower
			}
		}
	}

	// Basic values: x_B = B^-1 b - sum over nonbasic columns at a nonzero
	// bound. The rhs column was eliminated along with the rows, so
	// wrows[r][ncols] already holds (B^-1 b)[r].
	s.wxB = grow(s.wxB, m)
	for r := 0; r < m; r++ {
		s.wxB[r] = s.wrows[r][ncols]
	}
	for j := 0; j < ncols; j++ {
		if s.wstatus[j] == Basic {
			continue
		}
		v := s.wlow[j]
		if s.wstatus[j] == AtUpper {
			v = s.wupp[j]
		}
		if v == 0 {
			continue
		}
		for r := 0; r < m; r++ {
			s.wxB[r] -= s.wrows[r][j] * v
		}
	}

	maxIts := p.maxIts
	if maxIts <= 0 {
		maxIts = 50000 + 50*(m+n)
	}
	sol, err := s.dualSimplex(ctx, p, maxIts)
	if sol != nil {
		lpPivotsPerSolve.Observe(float64(sol.Iterations))
	}
	return sol, err
}

// welim makes column c basic in row r: scales the row, eliminates c from
// every other row (including the carried rhs column), and records the
// assignment. This is the refactorization workhorse — it is the same
// arithmetic as a simplex pivot but performs no pricing or ratio test, so
// it is not counted as an iteration.
func (s *Solver) welim(r, c int) {
	pr := s.wrows[r]
	inv := 1 / pr[c]
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1
	for i := range s.wrows {
		if i == r {
			continue
		}
		ri := s.wrows[i]
		f := ri[c]
		if f == 0 {
			continue
		}
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[c] = 0
	}
	s.wbasis[r] = c
}

// dualSimplex restores primal feasibility with bound-flipping dual pivots,
// pricing leaving rows with dual Devex weights (ties to the lowest basic
// variable index). A stall switches to Bland's rule; running out of the
// iteration budget or hitting non-finite values abandons the warm start.
func (s *Solver) dualSimplex(ctx context.Context, p *Problem, maxIts int) (*Solution, error) {
	n, m := len(p.obj), len(p.cons)
	ncols := n + m
	s.wweight = grow(s.wweight, m)
	for r := range s.wweight {
		s.wweight[r] = 1
	}
	bland := s.forceBland
	stall := 0
	prevInfeas := math.Inf(1)
	its := 0

	for {
		if its > maxIts {
			return nil, fmt.Errorf("%w: %v after %d dual pivots", ErrWarmStart, ErrIterationLimit, its)
		}
		if its&ctxCheckMask == 0 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if err := fault.Check(sitePivot); err != nil {
				return nil, err
			}
		}

		// Price the leaving row: the most primal-infeasible basic variable,
		// Devex-weighted; under Bland's rule the violated row whose basic
		// variable has the lowest index.
		r := -1
		bestScore := 0.0
		var violation float64
		totalInfeas := 0.0
		for i := 0; i < m; i++ {
			b := s.wbasis[i]
			x := s.wxB[i]
			var v float64
			if lo := s.wlow[b]; x < lo-feasEps {
				v = lo - x
			} else if up := s.wupp[b]; x > up+feasEps {
				v = x - up
			} else {
				continue
			}
			totalInfeas += v
			if bland {
				if r < 0 || b < s.wbasis[r] {
					r, violation = i, v
				}
				continue
			}
			score := v * v / s.wweight[i]
			if score > bestScore || (score == bestScore && r >= 0 && b < s.wbasis[r]) {
				r, bestScore, violation = i, score, v
			}
		}
		if math.IsNaN(totalInfeas) || math.IsInf(totalInfeas, 0) {
			return nil, fmt.Errorf("%w: %v", ErrWarmStart, ErrNumerical)
		}
		if r < 0 {
			break // primal feasible and dual feasible throughout: optimal
		}
		if !bland {
			if totalInfeas >= prevInfeas-1e-12 {
				if stall++; stall >= dualStallLimit {
					bland = true
					stall = 0
				}
			} else {
				stall = 0
			}
			prevInfeas = totalInfeas
		}

		leaving := s.wbasis[r]
		sigma := 1.0
		toBound := s.wupp[leaving]
		leaveStatus := AtUpper
		if s.wxB[r] < s.wlow[leaving]-feasEps {
			sigma = -1
			toBound = s.wlow[leaving]
			leaveStatus = AtLower
		}

		// Dual ratio test over nonbasic columns that can move x_B(r) toward
		// its violated bound while keeping every reduced cost on the right
		// side of zero. Candidates sorted by (ratio, index) — deterministic.
		row := s.wrows[r]
		cands := s.wcands[:0]
		for j := 0; j < ncols; j++ {
			st := s.wstatus[j]
			if st == Basic || s.wlow[j] == s.wupp[j] {
				continue
			}
			a := row[j]
			if a > -pivotEps && a < pivotEps {
				continue
			}
			sa := sigma * a
			if st == AtLower {
				if sa <= pivotEps {
					continue
				}
			} else if sa >= -pivotEps {
				continue
			}
			aa := math.Abs(a)
			cands = append(cands, dualCand{j: j, ratio: math.Abs(s.wd[j]) / aa, abs: aa})
		}
		s.wcands = cands[:0]
		if len(cands) == 0 {
			// Dual unbounded: no column can repair the violated row — the
			// subproblem is primal infeasible (the usual way a tightened
			// branch-and-bound child dies).
			return &Solution{Status: Infeasible, Iterations: its, WarmStarted: true}, nil
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].ratio != cands[b].ratio {
				return cands[a].ratio < cands[b].ratio
			}
			return cands[a].j < cands[b].j
		})

		// Bound-flipping (long-step) walk: boxed candidates whose full flip
		// still leaves the row violated are flipped outright — one pivot's
		// worth of dual progress for an O(m) update — and the first
		// candidate that can finish the repair enters the basis. Bland mode
		// takes the plain shortest step for its termination guarantee.
		enter := -1
		delta := violation
		if bland {
			enter = cands[0].j
		} else {
			for _, c := range cands {
				lo, up := s.wlow[c.j], s.wupp[c.j]
				if math.IsInf(lo, -1) || math.IsInf(up, 1) {
					enter = c.j
					break
				}
				flipGain := (up - lo) * c.abs
				if flipGain >= delta-1e-12 {
					enter = c.j
					break
				}
				delta -= flipGain
				var dlt float64
				if s.wstatus[c.j] == AtLower {
					dlt = up - lo
					s.wstatus[c.j] = AtUpper
				} else {
					dlt = lo - up
					s.wstatus[c.j] = AtLower
				}
				for i := 0; i < m; i++ {
					s.wxB[i] -= s.wrows[i][c.j] * dlt
				}
			}
			if enter < 0 {
				// Every candidate flipped and the row is still out of
				// bounds: the flips exhausted all movement available in the
				// needed direction, a primal infeasibility certificate.
				return &Solution{Status: Infeasible, Iterations: its, WarmStarted: true}, nil
			}
		}

		q := enter
		arq := row[q]
		tau := (s.wxB[r] - toBound) / arq
		qVal := s.wlow[q]
		if s.wstatus[q] == AtUpper {
			qVal = s.wupp[q]
		}
		qVal += tau

		// Dual Devex weight maintenance (reference-framework update,
		// transposed from the primal rule). Any positive weights preserve
		// correctness; this fixed formula preserves determinism.
		ref := s.wweight[r] / (arq * arq)
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			aiq := s.wrows[i][q]
			if aiq == 0 {
				continue
			}
			s.wxB[i] -= aiq * tau
			if w := aiq * aiq * ref; w > s.wweight[i] {
				s.wweight[i] = w
			}
		}
		s.wxB[r] = qVal
		s.wweight[r] = math.Max(ref, 1)

		// Pivot: scale row r, eliminate q elsewhere and from the reduced
		// costs.
		inv := 1 / arq
		for j := range row {
			row[j] *= inv
		}
		row[q] = 1
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			ri := s.wrows[i]
			f := ri[q]
			if f == 0 {
				continue
			}
			for j := range ri {
				ri[j] -= f * row[j]
			}
			ri[q] = 0
		}
		if dq := s.wd[q]; dq != 0 {
			for j := 0; j < ncols; j++ {
				s.wd[j] -= dq * row[j]
			}
		}
		s.wd[q] = 0
		s.wstatus[leaving] = leaveStatus
		s.wstatus[q] = Basic
		s.wbasis[r] = q
		its++
	}

	return s.warmSolution(p, its)
}

// warmSolution assembles and verifies the optimal solution of a completed
// dual simplex run. Verification re-checks dual feasibility and the row
// residuals against the original data — accumulated drift fails the warm
// start (typed) rather than returning a subtly wrong answer.
func (s *Solver) warmSolution(p *Problem, its int) (*Solution, error) {
	n, m := len(p.obj), len(p.cons)
	ncols := n + m
	for j := 0; j < ncols; j++ {
		if s.wstatus[j] == Basic || s.wlow[j] == s.wupp[j] {
			continue // fixed columns cannot move; their d sign is free
		}
		d := s.wd[j]
		if (s.wstatus[j] == AtLower && d < -1e-6) || (s.wstatus[j] == AtUpper && d > 1e-6) {
			return nil, fmt.Errorf("%w: dual feasibility drifted at column %d", ErrWarmStart, j)
		}
	}

	full := s.wvalsScratch(ncols)
	for j := 0; j < ncols; j++ {
		switch s.wstatus[j] {
		case AtLower:
			full[j] = s.wlow[j]
		case AtUpper:
			full[j] = s.wupp[j]
		}
	}
	for r := 0; r < m; r++ {
		full[s.wbasis[r]] = s.wxB[r]
	}

	x := make([]float64, n)
	copy(x, full[:n])
	for i := range x {
		if x[i] < 0 && x[i] > -feasEps {
			x[i] = 0
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		if math.IsNaN(x[j]) || math.IsInf(x[j], 0) {
			return nil, fmt.Errorf("%w: %v", ErrWarmStart, ErrNumerical)
		}
		obj += c * x[j]
	}
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		return nil, fmt.Errorf("%w: %v", ErrWarmStart, ErrNumerical)
	}
	for k, c := range p.cons {
		act := 0.0
		for _, t := range c.terms {
			act += t.Coef * x[t.Var]
		}
		scale := math.Max(1, math.Abs(c.rhs))
		if resid := math.Abs(act + full[n+k] - c.rhs); resid > 1e-6*scale {
			return nil, fmt.Errorf("%w: row %d residual %g", ErrWarmStart, k, resid)
		}
	}

	return &Solution{
		Status:      Optimal,
		X:           x,
		Objective:   obj,
		Iterations:  its,
		WarmStarted: true,
		Basis:       &Basis{status: append([]VarStatus(nil), s.wstatus[:ncols]...)},
	}, nil
}

// wvalsScratch returns s.wvals sized to n and zeroed — scratch for the full
// (structural + logical) value vector used during solution assembly and
// residual verification.
func (s *Solver) wvalsScratch(n int) []float64 {
	if cap(s.wvals) < n {
		s.wvals = make([]float64, n)
	}
	s.wvals = s.wvals[:n]
	clear(s.wvals)
	return s.wvals
}
