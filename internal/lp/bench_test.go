package lp_test

import (
	"context"
	"testing"

	"sagrelay/internal/benchprob"
	"sagrelay/internal/lp"
)

// BenchmarkLPSolve measures one simplex solve of the representative
// per-zone ILPQC relaxation (built by sagrelay/internal/benchprob) — the
// exact relaxation branch-and-bound re-solves at every node, so allocs/op
// here multiply across the whole search tree.
func BenchmarkLPSolve(b *testing.B) {
	p := benchprob.ILPQCRelaxation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkLPSolveReused measures the same solve through a held Solver —
// the branch-and-bound configuration, where tableau memory is recycled
// across node re-solves.
func BenchmarkLPSolveReused(b *testing.B) {
	p := benchprob.ILPQCRelaxation()
	s := lp.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := s.Solve(p, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkLPWarmSolve measures a warm-started re-solve under one changed
// bound — the branch-and-bound child-node pattern: solve the parent once,
// then repeatedly dual-simplex from its basis with a single variable fixed.
func BenchmarkLPWarmSolve(b *testing.B) {
	p := benchprob.ILPQCRelaxation()
	s := lp.NewSolver()
	ctx := context.Background()
	parent, err := s.WarmSolve(ctx, p, nil, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if parent.Status != lp.Optimal || parent.Basis == nil {
		b.Fatalf("parent solve: status %v, basis %v", parent.Status, parent.Basis)
	}
	fix := map[int]float64{0: 1} // force placement of candidate 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := s.WarmSolve(ctx, p, fix, nil, parent.Basis)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
