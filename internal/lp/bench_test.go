package lp_test

import (
	"math"
	"testing"

	"sagrelay/internal/lp"
)

// buildILPQCRelaxation constructs the LP relaxation of a representative
// per-zone ILPQC coverage instance (eqs. 3.1-3.5 of the paper): n
// subscribers, nC candidate positions, binary placement variables T_i and
// assignment variables T_ij with the big-M linearized SNR rows. Gains are
// synthetic but follow the same 1/d^3 decay shape as the two-ray model, so
// the numerical profile (many small coefficients, a few dominant ones)
// matches the real per-zone solves.
func buildILPQCRelaxation(tb testing.TB) *lp.Problem {
	tb.Helper()
	const (
		n    = 8  // subscribers in the zone (MaxZoneSS default is 10)
		nC   = 14 // candidate positions
		beta = 0.05
	)
	// Synthetic candidate-subscriber distances on a line: candidate i sits
	// at 10*i, subscriber j at 10*j + 3. Coverage radius 25.
	w := make([][]float64, nC)
	covers := make([][]bool, nC)
	for i := 0; i < nC; i++ {
		w[i] = make([]float64, n)
		covers[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			d := math.Abs(float64(10*i) - float64(10*j+3))
			if d < 1 {
				d = 1
			}
			w[i][j] = 1 / (d * d * d)
			covers[i][j] = d <= 25
		}
	}

	p := lp.NewProblem()
	tVar := make([]int, nC)
	for i := range tVar {
		tVar[i] = p.AddVariable("T", 1)
		if err := p.SetUpperBound(tVar[i], 1); err != nil {
			tb.Fatal(err)
		}
	}
	pairVar := make(map[[2]int]int)
	for i := 0; i < nC; i++ {
		for j := 0; j < n; j++ {
			if covers[i][j] {
				v := p.AddVariable("Tij", 0)
				if err := p.SetUpperBound(v, 1); err != nil {
					tb.Fatal(err)
				}
				pairVar[[2]int{i, j}] = v
			}
		}
	}
	// (3.2): T_i <= sum_j T_ij <= n*T_i.
	for i := 0; i < nC; i++ {
		low := []lp.Term{{Var: tVar[i], Coef: 1}}
		high := []lp.Term{{Var: tVar[i], Coef: -float64(n)}}
		for j := 0; j < n; j++ {
			if v, ok := pairVar[[2]int{i, j}]; ok {
				low = append(low, lp.Term{Var: v, Coef: -1})
				high = append(high, lp.Term{Var: v, Coef: 1})
			}
		}
		if err := p.AddConstraint(low, lp.LE, 0); err != nil {
			tb.Fatal(err)
		}
		if err := p.AddConstraint(high, lp.LE, 0); err != nil {
			tb.Fatal(err)
		}
	}
	// (3.3): exactly one access link per subscriber.
	for j := 0; j < n; j++ {
		var terms []lp.Term
		for i := 0; i < nC; i++ {
			if v, ok := pairVar[[2]int{i, j}]; ok {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
		}
		if len(terms) == 0 {
			tb.Fatal("subscriber uncovered in fixture")
		}
		if err := p.AddConstraint(terms, lp.EQ, 1); err != nil {
			tb.Fatal(err)
		}
	}
	// (3.5) big-M linearized per feasible pair.
	for j := 0; j < n; j++ {
		mj := 0.0
		for k := 0; k < nC; k++ {
			mj += w[k][j]
		}
		for i := 0; i < nC; i++ {
			v, ok := pairVar[[2]int{i, j}]
			if !ok {
				continue
			}
			terms := make([]lp.Term, 0, nC+2)
			for k := 0; k < nC; k++ {
				terms = append(terms, lp.Term{Var: tVar[k], Coef: w[k][j]})
			}
			terms = append(terms, lp.Term{Var: tVar[i], Coef: -w[i][j]})
			terms = append(terms, lp.Term{Var: v, Coef: mj})
			if err := p.AddConstraint(terms, lp.LE, w[i][j]/beta+mj); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return p
}

// BenchmarkLPSolve measures one simplex solve of the representative
// per-zone ILPQC relaxation — the exact relaxation branch-and-bound
// re-solves at every node, so allocs/op here multiply across the whole
// search tree.
func BenchmarkLPSolve(b *testing.B) {
	p := buildILPQCRelaxation(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkLPSolveReused measures the same solve through a held Solver —
// the branch-and-bound configuration, where tableau memory is recycled
// across node re-solves.
func BenchmarkLPSolveReused(b *testing.B) {
	p := buildILPQCRelaxation(b)
	s := lp.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := s.Solve(p, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
