// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c.x
//	subject to  a_k.x (<=|=|>=) b_k      for each constraint k
//	            0 <= x_i <= ub_i         (ub optional, +Inf by default)
//
// It substitutes for the LP path of Gurobi 5.0 used by the paper: the
// power-minimization "LPQC" (eqs. 3.6-3.9) becomes a pure LP once the
// coverage assignment is fixed, and the branch-and-bound MILP solver in
// sagrelay/internal/milp solves its node relaxations here.
//
// Pivot selection uses Devex pricing (an inexpensive steepest-edge
// approximation) with a deterministic anti-cycling guard: a fixed-iteration
// stall detector switches the phase to Bland's rule, which provably
// terminates. All tie-breaks go to the lowest variable index, so solves are
// bit-reproducible across runs and worker counts. All arithmetic is dense
// float64 and solves are bounded by an iteration budget. Problem sizes in
// this repository are at most a few hundred variables and constraints per
// zone, well within dense-simplex territory.
//
// For branch-and-bound, Solver.WarmSolve re-solves a problem under changed
// variable bounds starting from a parent Basis: a bound-flipping dual
// simplex over the bounded-variable form restores primal feasibility in a
// few pivots, falling back to the cold two-phase path (typed ErrWarmStart,
// never a wrong answer) when the warm basis is unusable.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators. (Enums start at 1 so the zero value is invalid.)
const (
	LE Op = iota + 1 // a.x <= b
	GE               // a.x >= b
	EQ               // a.x == b
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes. (Enums start at 1 so the zero value is invalid.)
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Term is one coefficient of a constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; call NewProblem.
type Problem struct {
	obj    []float64 // objective coefficient per variable
	ub     []float64 // upper bound per variable (+Inf when absent)
	names  []string
	cons   []constraint
	maxIts int
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem {
	return &Problem{maxIts: 0}
}

// SetMaxIterations caps simplex pivots per phase; 0 means the default
// (50000 + 50*(m+n)). ErrIterationLimit is returned when exceeded.
func (p *Problem) SetMaxIterations(n int) { p.maxIts = n }

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.obj) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVariable adds a variable x >= 0 with the given objective coefficient
// and returns its index. name is for diagnostics only.
func (p *Problem) AddVariable(name string, obj float64) int {
	p.obj = append(p.obj, obj)
	p.ub = append(p.ub, math.Inf(1))
	p.names = append(p.names, name)
	return len(p.obj) - 1
}

// SetObjective replaces the objective coefficient of variable i.
func (p *Problem) SetObjective(i int, obj float64) error {
	if i < 0 || i >= len(p.obj) {
		return fmt.Errorf("lp: variable %d out of range", i)
	}
	p.obj[i] = obj
	return nil
}

// SetUpperBound sets x_i <= ub (ub must be >= 0; +Inf clears the bound).
func (p *Problem) SetUpperBound(i int, ub float64) error {
	if i < 0 || i >= len(p.ub) {
		return fmt.Errorf("lp: variable %d out of range", i)
	}
	if ub < 0 {
		return fmt.Errorf("lp: negative upper bound %v for variable %d", ub, i)
	}
	p.ub[i] = ub
	return nil
}

// UpperBound returns the current upper bound of variable i (+Inf if unset).
func (p *Problem) UpperBound(i int) float64 {
	if i < 0 || i >= len(p.ub) {
		return math.Inf(1)
	}
	return p.ub[i]
}

// AddConstraint appends the constraint sum(terms) op rhs. Terms referencing
// the same variable are summed. Unknown variable indices are an error.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) error {
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: invalid operator %v", op)
	}
	merged := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			return fmt.Errorf("lp: constraint references unknown variable %d", t.Var)
		}
		merged[t.Var] += t.Coef
	}
	row := make([]Term, 0, len(merged))
	for v, c := range merged {
		if c != 0 {
			row = append(row, Term{Var: v, Coef: c})
		}
	}
	// Sort by variable so the stored row is independent of map iteration
	// order: constraint evaluation (CheckFeasible) sums terms in slice order,
	// and floating-point addition order must not vary between identical
	// problem builds.
	sort.Slice(row, func(i, j int) bool { return row[i].Var < row[j].Var })
	p.cons = append(p.cons, constraint{terms: row, op: op, rhs: rhs})
	return nil
}

// CheckFeasible evaluates every constraint and variable bound at the point
// x (length must match the variable count), with absolute tolerance tol on
// each row. It lets callers — notably branch-and-bound primal heuristics —
// test candidate integer points without a solve.
func (p *Problem) CheckFeasible(x []float64, tol float64) (bool, error) {
	if len(x) != len(p.obj) {
		return false, fmt.Errorf("lp: point has %d entries for %d variables", len(x), len(p.obj))
	}
	for i, xi := range x {
		if xi < -tol || xi > p.ub[i]+tol {
			return false, nil
		}
	}
	for _, c := range p.cons {
		lhs := 0.0
		for _, t := range c.terms {
			lhs += t.Coef * x[t.Var]
		}
		switch c.op {
		case LE:
			if lhs > c.rhs+tol {
				return false, nil
			}
		case GE:
			if lhs < c.rhs-tol {
				return false, nil
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tol {
				return false, nil
			}
		}
	}
	return true, nil
}

// Objective evaluates the objective c.x at the point x.
func (p *Problem) Objective(x []float64) (float64, error) {
	if len(x) != len(p.obj) {
		return 0, fmt.Errorf("lp: point has %d entries for %d variables", len(x), len(p.obj))
	}
	obj := 0.0
	for i, c := range p.obj {
		obj += c * x[i]
	}
	return obj, nil
}

// Solution is the result of a successful Solve with Status Optimal, or a
// diagnosis (Infeasible/Unbounded) with zeroed values.
//
// (Problem.Clone was deleted with the warm-start work: Solve never modifies
// the base problem, so branch-and-bound re-solves one shared Problem with
// per-node bound overrides and nothing cloned it any more.)
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations is the total number of simplex pivots across both phases
	// (or dual pivots, for a warm-started solve).
	Iterations int
	// Basis is the optimal basis snapshot for warm-starting a re-solve
	// under changed bounds. Only (*Solver).WarmSolve populates it (on
	// Optimal solutions); plain Solve leaves it nil so non-tree callers pay
	// nothing.
	Basis *Basis
	// WarmStarted reports that the warm-started dual simplex path produced
	// this solution (false: the cold two-phase path, whether called
	// directly or as a fallback).
	WarmStarted bool
}

// ErrIterationLimit is returned when the pivot budget is exhausted; it
// indicates a degenerate or adversarial instance rather than a model error.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// ErrNumerical is returned when a non-finite value (NaN or Inf) is found in
// the model inputs or appears in the tableau during pivoting. It turns a
// silent numerical breakdown — which would otherwise propagate NaN
// objectives into branch-and-bound bounds and poison pruning — into a typed,
// recoverable failure the degradation ladder can act on.
var ErrNumerical = errors.New("lp: non-finite value (numerical breakdown)")

// Solve runs two-phase simplex and returns the solution. Infeasible and
// unbounded problems are reported through Solution.Status with a nil error;
// the error return is reserved for resource exhaustion and internal faults.
//
// Each call uses a fresh Solver; callers that re-solve the same problem
// with varying bounds (branch-and-bound) should hold a Solver and call its
// Solve method to reuse the tableau memory.
func (p *Problem) Solve() (*Solution, error) {
	return NewSolver().Solve(p, nil, nil)
}

// SolveContext is Solve with cooperative cancellation; see
// (*Solver).SolveContext.
func (p *Problem) SolveContext(ctx context.Context) (*Solution, error) {
	return NewSolver().SolveContext(ctx, p, nil, nil)
}
