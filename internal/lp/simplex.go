package lp

import (
	"context"
	"fmt"
	"math"

	"sagrelay/internal/fault"
	"sagrelay/internal/obs"
)

// lpPivotsPerSolve is the process-wide distribution of simplex pivots per
// completed LP solve (both phases).
var lpPivotsPerSolve = obs.Default.NewHistogram(
	"sag_lp_pivots_per_solve",
	"Simplex pivots per completed LP solve.",
	obs.CountBuckets,
)

// sitePivot is the fault-injection point inside the simplex iteration loop,
// polled at the same cadence as the context check (every ctxCheckMask+1
// pivots) so chaos tests can fail, stall or "cancel" a solve mid-pivot.
var sitePivot = fault.Register("lp.pivot")

// pivotEps is the tolerance below which a coefficient is treated as zero
// during pivot selection and ratio tests.
const pivotEps = 1e-9

// feasEps is the tolerance for phase-1 feasibility (artificial residual).
const feasEps = 1e-7

// stallLimit is the number of consecutive pivots without objective
// improvement after which pivot selection abandons Devex pricing for
// Bland's anti-cycling rule (which provably terminates). The switch is
// per-phase and one-way, so the decision depends only on the pivot
// sequence itself — deterministic across runs and worker counts.
const stallLimit = 100

// stallEps scales the relative objective-improvement threshold of the
// stall detector.
const stallEps = 1e-12

// ctxCheckMask gates how often the iteration loop polls the context: every
// ctxCheckMask+1 pivots. Polling costs an atomic load plus an interface
// call, which is noise next to a dense pivot but would still be wasteful at
// every iteration of small tableaus.
const ctxCheckMask = 63

// tableau is a dense simplex tableau in canonical form. Columns are laid
// out [structural | slack/surplus | artificial]; the last entry of each row
// is the right-hand side. Tableaus are assembled by (*Solver).build, which
// owns (and reuses) the backing memory.
type tableau struct {
	nStruct  int // structural variables
	nCols    int // total variable columns
	artStart int // index of the first artificial column
	rows     [][]float64
	basis    []int
	objRow   []float64 // reduced-cost row, len nCols+1; last entry is -z
	origObj  []float64 // structural objective, installed in phase 2
	maxIts   int
	its      int
	ctx      context.Context // polled during iteration; nil means no check

	// Devex pricing state, reset at each phase install. bland pins
	// selection to Bland's rule — either from the start (forceBland, a
	// test hook) or after the stall detector trips.
	devex      []float64 // per-column reference weights
	bland      bool
	forceBland bool
	stall      int     // consecutive pivots without objective improvement
	lastZ      float64 // objective row rhs at the previous pivot
}

// resetPricing restores the Devex reference framework (all weights 1) and
// re-arms the stall detector. Called at each phase install so phase-1
// weights never leak into phase 2.
func (t *tableau) resetPricing() {
	for j := range t.devex {
		t.devex[j] = 1
	}
	t.bland = t.forceBland
	t.stall = 0
	t.lastZ = math.Inf(1)
}

func (t *tableau) pivot(r, c int) {
	pr := t.rows[r]
	pv := pr[c]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // fight rounding
	for i := range t.rows {
		if i == r {
			continue
		}
		f := t.rows[i][c]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[c] = 0
	}
	f := t.objRow[c]
	if f != 0 {
		for j := range t.objRow {
			t.objRow[j] -= f * pr[j]
		}
		t.objRow[c] = 0
	}
	t.basis[r] = c
	t.its++
}

// chooseEntering returns the entering column or -1 at optimality,
// considering only the first limit columns. Devex pricing picks the column
// maximizing d_j^2 / w_j (steepest-edge approximated against a reference
// framework); the strict > keeps ties on the lowest column index for
// bit-reproducibility. In Bland mode the first improving column wins.
func (t *tableau) chooseEntering(limit int) int {
	if t.bland {
		for j := 0; j < limit; j++ {
			if t.objRow[j] < -pivotEps {
				return j
			}
		}
		return -1
	}
	best := -1
	bestScore := 0.0
	for j := 0; j < limit; j++ {
		d := t.objRow[j]
		if d >= -pivotEps {
			continue
		}
		if score := d * d / t.devex[j]; score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// updateDevex refreshes the reference weights for a pivot on (r, c), using
// the pre-pivot row r. The entering column's weight relative to the
// reference framework propagates to every column the pivot touches; the
// leaving variable re-enters the nonbasic set with weight max(ref, 1).
// Weights only steer pricing — any positive values are correct — but this
// fixed update keeps the pivot sequence deterministic.
func (t *tableau) updateDevex(r, c int) {
	row := t.rows[r]
	arc := row[c]
	ref := t.devex[c] / (arc * arc)
	for j := 0; j < t.nCols; j++ {
		if j == c {
			continue
		}
		a := row[j]
		if a == 0 {
			continue
		}
		if w := a * a * ref; w > t.devex[j] {
			t.devex[j] = w
		}
	}
	t.devex[t.basis[r]] = math.Max(ref, 1)
}

// chooseLeaving runs the ratio test on column c, returning the row or -1
// when the column is unbounded below.
func (t *tableau) chooseLeaving(c int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i, r := range t.rows {
		a := r[c]
		if a <= pivotEps {
			continue
		}
		ratio := r[t.nCols] / a
		if ratio < bestRatio-pivotEps ||
			(ratio < bestRatio+pivotEps && (bestRow == -1 || t.basis[i] < t.basis[bestRow])) {
			bestRow, bestRatio = i, ratio
		}
	}
	return bestRow
}

// iterate runs simplex to optimality over the first limit columns. A
// cancelled context aborts the solve between pivots, returning the
// context's error so callers can distinguish cancellation from
// ErrIterationLimit.
func (t *tableau) iterate(limit int) (Status, error) {
	for {
		if t.its > t.maxIts {
			return 0, ErrIterationLimit
		}
		if t.its&ctxCheckMask == 0 {
			if t.ctx != nil {
				if err := t.ctx.Err(); err != nil {
					return 0, err
				}
			}
			if err := fault.Check(sitePivot); err != nil {
				return 0, err
			}
			// The running objective value is the cheapest breakdown sentinel:
			// any NaN/Inf produced by a degenerate pivot reaches it within a
			// pivot or two via the reduced-cost update.
			if z := t.objRow[t.nCols]; math.IsNaN(z) || math.IsInf(z, 0) {
				return 0, ErrNumerical
			}
		}
		c := t.chooseEntering(limit)
		if c < 0 {
			return Optimal, nil
		}
		r := t.chooseLeaving(c)
		if r < 0 {
			return Unbounded, nil
		}
		if !t.bland {
			t.updateDevex(r, c)
		}
		t.pivot(r, c)
		if !t.bland {
			// Stall detector: stallLimit consecutive pivots with no
			// relative objective improvement (degenerate churn, possible
			// cycling under Devex) switch this phase to Bland's rule.
			z := t.objRow[t.nCols]
			if math.Abs(z-t.lastZ) <= stallEps*(1+math.Abs(z)) {
				if t.stall++; t.stall >= stallLimit {
					t.bland = true
				}
			} else {
				t.stall = 0
			}
			t.lastZ = z
		}
	}
}

// installPhase1 sets the reduced-cost row for minimizing the sum of
// artificial variables given the initial basis.
func (t *tableau) installPhase1() {
	t.resetPricing()
	for j := range t.objRow {
		t.objRow[j] = 0
	}
	for j := t.artStart; j < t.nCols; j++ {
		t.objRow[j] = 1
	}
	// Price out the basic artificial columns.
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := range t.objRow {
				t.objRow[j] -= t.rows[i][j]
			}
		}
	}
}

// installPhase2 sets the reduced-cost row for the original objective given
// the current basis, with artificial columns frozen out.
func (t *tableau) installPhase2() {
	t.resetPricing()
	for j := range t.objRow {
		t.objRow[j] = 0
	}
	for j, c := range t.origObj {
		t.objRow[j] = c
	}
	for i, b := range t.basis {
		if b < len(t.origObj) && t.origObj[b] != 0 {
			f := t.origObj[b]
			for j := range t.objRow {
				t.objRow[j] -= f * t.rows[i][j]
			}
			t.objRow[b] = 0
		}
	}
	// Never re-enter artificials.
	for j := t.artStart; j < t.nCols; j++ {
		t.objRow[j] = math.Inf(1)
	}
}

// driveOutArtificials pivots basic artificial variables out of the basis
// after phase 1. Rows that cannot pivot (all-zero structural part) are
// redundant and are blanked.
func (t *tableau) driveOutArtificials() {
	for i, b := range t.basis {
		if b < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > pivotEps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it never constrains anything.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
}

// solve runs the two-phase simplex and records the pivot count of every
// completed solve on the process-wide histogram registry.
func (t *tableau) solve() (*Solution, error) {
	sol, err := t.run()
	if sol != nil {
		lpPivotsPerSolve.Observe(float64(sol.Iterations))
	}
	return sol, err
}

func (t *tableau) run() (*Solution, error) {
	hasArt := t.artStart < t.nCols
	if hasArt {
		t.installPhase1()
		st, err := t.iterate(t.nCols)
		if err != nil {
			return nil, err
		}
		if st == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here means
			// numerical trouble.
			return nil, fmt.Errorf("lp: internal: phase-1 unbounded")
		}
		if -t.objRow[t.nCols] > feasEps {
			return &Solution{Status: Infeasible, Iterations: t.its}, nil
		}
		t.driveOutArtificials()
	}
	t.installPhase2()
	st, err := t.iterate(t.artStart)
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: t.its}, nil
	}
	x := make([]float64, t.nStruct)
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rows[i][t.nCols]
			if x[b] < 0 && x[b] > -feasEps {
				x[b] = 0
			}
		}
	}
	obj := 0.0
	for j, c := range t.origObj {
		if math.IsNaN(x[j]) || math.IsInf(x[j], 0) {
			return nil, ErrNumerical
		}
		obj += c * x[j]
	}
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		return nil, ErrNumerical
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: t.its}, nil
}
