package lp_test

import (
	"math"
	"testing"

	"sagrelay/internal/benchprob"
	"sagrelay/internal/lp"
)

// TestSolverBoundOverrides checks that per-call bound overrides give the
// same optimum as baking the bounds into the problem itself — the contract
// branch-and-bound relies on.
func TestSolverBoundOverrides(t *testing.T) {
	// min -x0 - 2*x1 s.t. x0 + x1 <= 4, x0,x1 in [0, 3].
	build := func() *lp.Problem {
		p := lp.NewProblem()
		a := p.AddVariable("a", -1)
		b := p.AddVariable("b", -2)
		if err := p.SetUpperBound(a, 3); err != nil {
			t.Fatal(err)
		}
		if err := p.SetUpperBound(b, 3); err != nil {
			t.Fatal(err)
		}
		if err := p.AddConstraint([]lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.LE, 4); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name         string
		lower, upper map[int]float64
		wantX        []float64
		wantObj      float64
	}{
		{name: "no overrides", wantX: []float64{1, 3}, wantObj: -7},
		{name: "upper tightens", upper: map[int]float64{1: 2}, wantX: []float64{2, 2}, wantObj: -6},
		{name: "lower forces", lower: map[int]float64{0: 2.5}, wantX: []float64{2.5, 1.5}, wantObj: -5.5},
		{name: "both", lower: map[int]float64{0: 1}, upper: map[int]float64{1: 1}, wantX: []float64{3, 1}, wantObj: -5},
		{name: "negative upper clamps to zero", upper: map[int]float64{0: -2}, wantX: []float64{0, 3}, wantObj: -6},
		{name: "non-positive lower is a no-op", lower: map[int]float64{0: -1}, wantX: []float64{1, 3}, wantObj: -7},
	}
	s := lp.NewSolver()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := build()
			sol, err := s.Solve(base, tc.lower, tc.upper)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != lp.Optimal {
				t.Fatalf("status %v", sol.Status)
			}
			if math.Abs(sol.Objective-tc.wantObj) > 1e-9 {
				t.Errorf("objective %v, want %v", sol.Objective, tc.wantObj)
			}
			for i, want := range tc.wantX {
				if math.Abs(sol.X[i]-want) > 1e-9 {
					t.Errorf("x[%d] = %v, want %v", i, sol.X[i], want)
				}
			}
			// The overrides must not leak into the base problem.
			if base.UpperBound(0) != 3 || base.UpperBound(1) != 3 {
				t.Error("Solve mutated the base problem's bounds")
			}
		})
	}
}

// TestSolverInfeasibleOverrides: conflicting overrides (lb > ub) must report
// Infeasible, not corrupt later solves on the same Solver.
func TestSolverInfeasibleOverrides(t *testing.T) {
	p := lp.NewProblem()
	a := p.AddVariable("a", 1)
	if err := p.SetUpperBound(a, 1); err != nil {
		t.Fatal(err)
	}
	s := lp.NewSolver()
	sol, err := s.Solve(p, map[int]float64{a: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("lb 2 with ub 1: status %v, want infeasible", sol.Status)
	}
	sol, err = s.Solve(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || math.Abs(sol.Objective) > 1e-9 {
		t.Fatalf("solve after infeasible: status %v obj %v", sol.Status, sol.Objective)
	}
}

// TestSolverUnknownVariableBounds: out-of-range override indices are errors.
func TestSolverUnknownVariableBounds(t *testing.T) {
	p := lp.NewProblem()
	p.AddVariable("a", 1)
	s := lp.NewSolver()
	if _, err := s.Solve(p, map[int]float64{3: 1}, nil); err == nil {
		t.Error("lower bound on unknown variable: want error")
	}
	if _, err := s.Solve(p, nil, map[int]float64{-1: 1}); err == nil {
		t.Error("upper bound on unknown variable: want error")
	}
}

// TestSolverReuseAcrossShapes reuses one Solver across problems of very
// different sizes, interleaved, and checks each against a fresh
// Problem.Solve — stale buffer contents from a larger solve must never
// bleed into a smaller one.
func TestSolverReuseAcrossShapes(t *testing.T) {
	big := benchprob.ILPQCRelaxation()
	small := lp.NewProblem()
	a := small.AddVariable("a", 2)
	b := small.AddVariable("b", 3)
	if err := small.AddConstraint([]lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.GE, 10); err != nil {
		t.Fatal(err)
	}

	s := lp.NewSolver()
	for round := 0; round < 3; round++ {
		for _, p := range []*lp.Problem{big, small} {
			want, err := p.Solve()
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Solve(p, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status {
				t.Fatalf("round %d: status %v, want %v", round, got.Status, want.Status)
			}
			if math.Abs(got.Objective-want.Objective) > 1e-9 {
				t.Fatalf("round %d: objective %v, want %v", round, got.Objective, want.Objective)
			}
		}
	}
}
