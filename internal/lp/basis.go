package lp

// VarStatus is the state of one column — a structural variable or a
// constraint logical — in the bounded-variable view of a simplex basis.
type VarStatus int8

// Column states. AtLower is the zero value so a zeroed status slice is the
// natural all-at-lower-bound starting point.
const (
	// AtLower marks a nonbasic column sitting at its lower bound.
	AtLower VarStatus = iota
	// AtUpper marks a nonbasic column sitting at its (finite) upper bound.
	AtUpper
	// Basic marks a column currently in the basis.
	Basic
)

// Basis is a compact snapshot of a simplex basis over the bounded-variable
// form of a problem: one status per structural variable followed by one per
// constraint row's logical (slack) variable. It is the warm-start currency
// between a branch-and-bound parent and its children — one byte per column,
// so retaining a Basis per open search-tree node costs
// (variables + constraints) bytes, a few hundred bytes for a per-zone ILPQC
// instance.
//
// A Basis is immutable by convention: WarmSolve never modifies its input,
// so one Basis may be shared (by pointer) between both children of a
// branch-and-bound node.
type Basis struct {
	status []VarStatus
}

// Len returns the number of columns (variables + constraints) covered.
func (b *Basis) Len() int { return len(b.status) }

// NumBasic returns the number of columns marked Basic.
func (b *Basis) NumBasic() int {
	n := 0
	for _, s := range b.status {
		if s == Basic {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (b *Basis) Clone() *Basis {
	return &Basis{status: append([]VarStatus(nil), b.status...)}
}
