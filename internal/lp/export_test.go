package lp

import "context"

// Test-only exports: the degenerate-LP regressions pin pivot selection to
// Bland's rule, and the warm-start tests probe the warm attempt directly to
// assert on the typed fallback instead of the silent cold re-solve.

// SetForceBland pins pivot selection to Bland's rule from the first
// iteration in both the primal and dual paths.
func (s *Solver) SetForceBland(v bool) { s.forceBland = v }

// WarmAttempt runs only the warm-started dual simplex, surfacing the
// ErrWarmStart that WarmSolve would swallow into a cold fallback.
func (s *Solver) WarmAttempt(ctx context.Context, p *Problem, lower, upper map[int]float64, basis *Basis) (*Solution, error) {
	return s.warmAttempt(ctx, p, lower, upper, basis)
}
