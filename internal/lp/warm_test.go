package lp_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sagrelay/internal/benchprob"
	"sagrelay/internal/lp"
)

// uniqueOptimumLP builds a bounded covering LP with generic (irrational-ish
// random) costs, so the optimal vertex is unique with probability one and
// warm and cold solves must agree on Solution.X, not just the objective.
func uniqueOptimumLP(t *testing.T, seed int64, n, m int) *lp.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	for i := 0; i < n; i++ {
		v := p.AddVariable("x", 0.5+rng.Float64()*5)
		if err := p.SetUpperBound(v, 1); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < m; k++ {
		var terms []lp.Term
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				terms = append(terms, lp.Term{Var: i, Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = []lp.Term{{Var: rng.Intn(n), Coef: 1}}
		}
		if err := p.AddConstraint(terms, lp.GE, 0.5+rng.Float64()*1.5); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestWarmVsColdEquivalence solves 1000 randomized bound perturbations of a
// unique-optimum LP both warm (from the root basis) and cold, asserting
// identical statuses, objectives, and solution vectors. It also requires
// that a substantial majority of the warm attempts actually complete on the
// dual simplex — otherwise the equivalence would be vacuously comparing the
// cold path against itself.
func TestWarmVsColdEquivalence(t *testing.T) {
	p := uniqueOptimumLP(t, 1234, 14, 18)
	warmSolver := lp.NewSolver()
	coldSolver := lp.NewSolver()
	ctx := context.Background()

	root, err := warmSolver.WarmSolve(ctx, p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root.Status != lp.Optimal || root.Basis == nil {
		t.Fatalf("root: status %v, basis %v", root.Status, root.Basis)
	}

	rng := rand.New(rand.NewSource(99))
	warmed, optimal := 0, 0
	for trial := 0; trial < 1000; trial++ {
		lower := map[int]float64{}
		upper := map[int]float64{}
		for k := rng.Intn(4) + 1; k > 0; k-- {
			v := rng.Intn(p.NumVariables())
			switch rng.Intn(3) {
			case 0:
				lower[v] = 1 // fix to upper bound
			case 1:
				upper[v] = 0 // fix to zero
			case 2:
				upper[v] = rng.Float64() // fractional tightening
			}
		}
		warm, err := warmSolver.WarmSolve(ctx, p, lower, upper, root.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		cold, err := coldSolver.SolveContext(ctx, p, lower, upper)
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d (lower=%v upper=%v): warm status %v, cold %v",
				trial, lower, upper, warm.Status, cold.Status)
		}
		if warm.WarmStarted {
			warmed++
		}
		if warm.Status != lp.Optimal {
			continue
		}
		optimal++
		scale := 1 + math.Abs(cold.Objective)
		if math.Abs(warm.Objective-cold.Objective) > 1e-7*scale {
			t.Fatalf("trial %d (lower=%v upper=%v): warm objective %v, cold %v",
				trial, lower, upper, warm.Objective, cold.Objective)
		}
		for i := range cold.X {
			if math.Abs(warm.X[i]-cold.X[i]) > 1e-6 {
				t.Fatalf("trial %d (lower=%v upper=%v): x[%d] warm %v, cold %v",
					trial, lower, upper, i, warm.X[i], cold.X[i])
			}
		}
		if warm.Basis == nil {
			t.Fatalf("trial %d: optimal warm solution carries no basis", trial)
		}
	}
	if optimal == 0 {
		t.Fatal("no perturbation was feasible; test exercised nothing")
	}
	if warmed*2 < optimal {
		t.Errorf("only %d/%d optimal solves warm-started; warm path barely exercised", warmed, optimal)
	}
}

// TestWarmSolveNilBasis: a nil basis goes straight to the cold path but
// still returns a basis for chaining.
func TestWarmSolveNilBasis(t *testing.T) {
	p := benchprob.ILPQCRelaxation()
	sol, err := lp.NewSolver().WarmSolve(context.Background(), p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.WarmStarted {
		t.Error("nil-basis solve claims to be warm-started")
	}
	if sol.Basis == nil {
		t.Error("nil-basis solve returned no basis")
	}
}

// TestWarmBasisLengthMismatch: a basis from a different problem shape is a
// typed warm-start failure, and WarmSolve still returns the right answer
// via the fallback.
func TestWarmBasisLengthMismatch(t *testing.T) {
	small := lp.NewProblem()
	a := small.AddVariable("a", 1)
	if err := small.AddConstraint([]lp.Term{{Var: a, Coef: 1}}, lp.GE, 1); err != nil {
		t.Fatal(err)
	}
	s := lp.NewSolver()
	smallSol, err := s.WarmSolve(context.Background(), small, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	big := benchprob.ILPQCRelaxation()
	if _, err := s.WarmAttempt(context.Background(), big, nil, nil, smallSol.Basis); !errors.Is(err, lp.ErrWarmStart) {
		t.Fatalf("mismatched basis: error %v, want ErrWarmStart", err)
	}
	sol, err := s.WarmSolve(context.Background(), big, nil, nil, smallSol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal || sol.WarmStarted {
		t.Fatalf("fallback solve: status %v, warmStarted %v", sol.Status, sol.WarmStarted)
	}
}

// TestWarmInfeasibleOverrides: conflicting child bounds (lb > ub) are
// Infeasible through the warm path, mirroring the cold-path contract, and
// must not corrupt later solves on the same Solver.
func TestWarmInfeasibleOverrides(t *testing.T) {
	p := benchprob.ILPQCRelaxation()
	s := lp.NewSolver()
	root, err := s.WarmSolve(context.Background(), p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := s.WarmSolve(context.Background(), p, map[int]float64{0: 1}, map[int]float64{0: 0}, root.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Infeasible {
		t.Fatalf("lb 1 with ub 0: status %v, want infeasible", sol.Status)
	}
	again, err := s.WarmSolve(context.Background(), p, nil, nil, root.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != lp.Optimal || math.Abs(again.Objective-root.Objective) > 1e-9 {
		t.Fatalf("solve after infeasible: status %v obj %v (root %v)", again.Status, again.Objective, root.Objective)
	}
}

// TestWarmDeterminism: the same warm solve twice, on the same Solver and on
// a fresh one, must produce bit-identical results — pivot selection never
// depends on buffer history or map iteration order.
func TestWarmDeterminism(t *testing.T) {
	p := benchprob.ILPQCRelaxation()
	s := lp.NewSolver()
	root, err := s.WarmSolve(context.Background(), p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fix := map[int]float64{2: 1, 7: 1}
	first, err := s.WarmSolve(context.Background(), p, fix, nil, root.Basis)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, solver := range []*lp.Solver{s, lp.NewSolver()} {
			sol, err := solver.WarmSolve(context.Background(), p, fix, nil, root.Basis)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != first.Status || sol.Iterations != first.Iterations || sol.WarmStarted != first.WarmStarted {
				t.Fatalf("round %d: (status, its, warm) = (%v, %d, %v), want (%v, %d, %v)",
					round, sol.Status, sol.Iterations, sol.WarmStarted, first.Status, first.Iterations, first.WarmStarted)
			}
			for i := range first.X {
				if sol.X[i] != first.X[i] {
					t.Fatalf("round %d: x[%d] = %v, want bit-identical %v", round, i, sol.X[i], first.X[i])
				}
			}
		}
	}
}

// TestWarmChain drives a chain of progressively tightened solves, each
// warm-started from the previous solution's basis — the exact
// branch-and-bound dive pattern — checking every step against a cold solve.
func TestWarmChain(t *testing.T) {
	p := benchprob.ILPQCRelaxation()
	warm := lp.NewSolver()
	cold := lp.NewSolver()
	ctx := context.Background()
	cur, err := warm.WarmSolve(ctx, p, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lower := map[int]float64{}
	for depth := 0; depth < 10 && cur.Status == lp.Optimal; depth++ {
		// Fix the first not-yet-fixed placement variable to 1, like the
		// "place it" branch of the search tree.
		v := -1
		for i := 0; i < 14; i++ {
			if _, ok := lower[i]; !ok {
				v = i
				break
			}
		}
		if v < 0 {
			break
		}
		lower[v] = 1
		next, err := warm.WarmSolve(ctx, p, lower, nil, cur.Basis)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := cold.SolveContext(ctx, p, lower, nil)
		if err != nil {
			t.Fatal(err)
		}
		if next.Status != ref.Status {
			t.Fatalf("depth %d: warm status %v, cold %v", depth, next.Status, ref.Status)
		}
		if next.Status == lp.Optimal && math.Abs(next.Objective-ref.Objective) > 1e-7*(1+math.Abs(ref.Objective)) {
			t.Fatalf("depth %d: warm objective %v, cold %v", depth, next.Objective, ref.Objective)
		}
		cur = next
	}
}
