package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSimplexCovering stresses the solver with randomized covering LPs: it
// must terminate with status Optimal, and the solution must satisfy every
// constraint (verified independently by CheckFeasible).
// fuzzCoveringProblem builds the randomized covering LP shared by the
// fuzzers: n variables with random costs and unit upper bounds, m GE rows.
func fuzzCoveringProblem(t *testing.T, seed int64, n, m int) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	for i := 0; i < n; i++ {
		v := p.AddVariable("x", 0.5+rng.Float64()*5)
		if err := p.SetUpperBound(v, 1+rng.Float64()*3); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < m; k++ {
		var terms []Term
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{Var: i, Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{Var: rng.Intn(n), Coef: 1}}
		}
		if err := p.AddConstraint(terms, GE, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// FuzzWarmStart stresses the warm-solve entry point: a randomized covering
// LP is solved cold for its basis, then re-solved under fuzzed bound
// overrides both warm and cold. The warm result must match the cold result
// in status and objective, and its point must satisfy the constraints — the
// fallback ladder may fire, but never a wrong answer.
func FuzzWarmStart(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint16(0x0f), uint16(0x03))
	f.Add(int64(42), uint8(9), uint8(12), uint16(0xa5), uint16(0x5a))
	f.Add(int64(-7), uint8(2), uint8(1), uint16(1), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8, fixUpMask, fixDownMask uint16) {
		n := int(nRaw%12) + 1
		m := int(mRaw%15) + 1
		p := fuzzCoveringProblem(t, seed, n, m)
		s := NewSolver()
		root, err := s.WarmSolve(nil, p, nil, nil, nil)
		if err != nil {
			t.Fatalf("root solve: %v", err)
		}
		if root.Status != Optimal {
			return // infeasible instance: nothing to warm-start from
		}
		lower := map[int]float64{}
		upper := map[int]float64{}
		for i := 0; i < n && i < 16; i++ {
			if fixUpMask&(1<<i) != 0 {
				lower[i] = 1
			}
			if fixDownMask&(1<<i) != 0 {
				upper[i] = 0.5
			}
		}
		warm, err := s.WarmSolve(nil, p, lower, upper, root.Basis)
		if err != nil {
			t.Fatalf("warm solve: %v", err)
		}
		cold, err := NewSolver().Solve(p, lower, upper)
		if err != nil {
			t.Fatalf("cold solve: %v", err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("warm status %v, cold %v (lower=%v upper=%v)", warm.Status, cold.Status, lower, upper)
		}
		if warm.Status != Optimal {
			return
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*math.Max(1, math.Abs(cold.Objective)) {
			t.Fatalf("warm objective %v, cold %v (lower=%v upper=%v)", warm.Objective, cold.Objective, lower, upper)
		}
		ok, err := p.CheckFeasible(warm.X, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("warm optimal point violates constraints: %v", warm.X)
		}
		for v, lb := range lower {
			if warm.X[v] < lb-1e-6 {
				t.Fatalf("warm point violates lower override x[%d]=%v < %v", v, warm.X[v], lb)
			}
		}
		for v, ub := range upper {
			if warm.X[v] > ub+1e-6 {
				t.Fatalf("warm point violates upper override x[%d]=%v > %v", v, warm.X[v], ub)
			}
		}
	})
}

func FuzzSimplexCovering(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5))
	f.Add(int64(42), uint8(9), uint8(12))
	f.Add(int64(-7), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8) {
		n := int(nRaw%12) + 1
		m := int(mRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		for i := 0; i < n; i++ {
			v := p.AddVariable("x", 0.5+rng.Float64()*5)
			if err := p.SetUpperBound(v, 1+rng.Float64()*3); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < m; k++ {
			var terms []Term
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{Var: i, Coef: 0.5 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{Var: rng.Intn(n), Coef: 1}}
			}
			if err := p.AddConstraint(terms, GE, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("solve error: %v", err)
		}
		switch sol.Status {
		case Optimal:
			ok, err := p.CheckFeasible(sol.X, 1e-5)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("optimal point violates constraints: %v", sol.X)
			}
			obj, err := p.Objective(sol.X)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(obj-sol.Objective) > 1e-6*math.Max(1, math.Abs(obj)) {
				t.Fatalf("objective mismatch: %v vs %v", obj, sol.Objective)
			}
		case Infeasible:
			// Possible when a demand exceeds the sum of upper bounds.
		default:
			t.Fatalf("unexpected status %v for bounded covering LP", sol.Status)
		}
	})
}
