package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSimplexCovering stresses the solver with randomized covering LPs: it
// must terminate with status Optimal, and the solution must satisfy every
// constraint (verified independently by CheckFeasible).
func FuzzSimplexCovering(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5))
	f.Add(int64(42), uint8(9), uint8(12))
	f.Add(int64(-7), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8) {
		n := int(nRaw%12) + 1
		m := int(mRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		for i := 0; i < n; i++ {
			v := p.AddVariable("x", 0.5+rng.Float64()*5)
			if err := p.SetUpperBound(v, 1+rng.Float64()*3); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < m; k++ {
			var terms []Term
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{Var: i, Coef: 0.5 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{Var: rng.Intn(n), Coef: 1}}
			}
			if err := p.AddConstraint(terms, GE, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("solve error: %v", err)
		}
		switch sol.Status {
		case Optimal:
			ok, err := p.CheckFeasible(sol.X, 1e-5)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("optimal point violates constraints: %v", sol.X)
			}
			obj, err := p.Objective(sol.X)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(obj-sol.Objective) > 1e-6*math.Max(1, math.Abs(obj)) {
				t.Fatalf("objective mismatch: %v vs %v", obj, sol.Objective)
			}
		case Infeasible:
			// Possible when a demand exceeds the sum of upper bounds.
		default:
			t.Fatalf("unexpected status %v for bounded covering LP", sol.Status)
		}
	})
}
