package upper

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strconv"

	"sagrelay/internal/lower"
	"sagrelay/internal/scenario"
)

// CacheKey content-addresses the connectivity stage: everything the tree
// construction (MBMC/MUST) and the connectivity power allocation
// (UCPO/baseline) read, and nothing else. The upper tier never looks at
// subscriber positions except through the cover relays' Covers sets, so
// the key encodes the referenced subscribers' data (not their indices) and
// an entry keyed this way is valid across unrelated jobs whose coverage
// stage produced the same relay set:
//
//   - the tree/power method names and the MUST base-station restriction;
//   - the radio model and PMax (edge feasibility and power clamping);
//   - every base-station position (nearest-BS attachment, Steiner points);
//   - every subscriber's DistReq (MBMC's global d_min bound) in order;
//   - per cover relay: position plus each covered subscriber's
//     (position, DistReq, MinRxPower) in cover order (UCPO's receive-floor
//     maximum; Verify's reachability checks).
//
// A relay-set change — the only thing a delta can do to the upper tier's
// inputs — changes the key, which is exactly the ISSUE's "UCRA re-runs
// only when the relay set changed" rule.
func CacheKey(sc *scenario.Scenario, cover *lower.Result, method string, mustBS int, powerMethod string) string {
	var b bytes.Buffer
	field := func(label string, vals ...float64) {
		b.WriteString(label)
		for _, v := range vals {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		}
		b.WriteByte('\n')
	}
	count := func(label string, n int) {
		b.WriteString(label)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(n))
		b.WriteByte('\n')
	}
	b.WriteString("sagupper/1\n")
	b.WriteString(method)
	b.WriteByte('\n')
	count("mustbs", mustBS)
	b.WriteString(powerMethod)
	b.WriteByte('\n')
	field("model", sc.Model.Gt, sc.Model.Gr, sc.Model.Ht, sc.Model.Hr, sc.Model.Alpha, sc.Model.MinDist)
	field("pmax", sc.PMax)
	count("bs", len(sc.BaseStations))
	for _, bs := range sc.BaseStations {
		field("b", bs.Pos.X, bs.Pos.Y)
	}
	count("ss", len(sc.Subscribers))
	for _, s := range sc.Subscribers {
		field("d", s.DistReq)
	}
	count("cover", len(cover.Relays))
	for _, r := range cover.Relays {
		field("r", r.Pos.X, r.Pos.Y)
		count("covers", len(r.Covers))
		for _, j := range r.Covers {
			s := sc.Subscribers[j]
			field("c", s.Pos.X, s.Pos.Y, s.DistReq, s.MinRxPower)
		}
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}
