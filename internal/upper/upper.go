// Package upper implements the Upper-tier Connectivity Relay Allocation
// (UCRA) problem of the paper: place the minimum number of connectivity
// relay stations so every coverage relay has a multi-hop relay path with
// sufficient capacity to a base station, then minimize their power.
//
// It contains:
//   - MBMC, Multiple Base station Minimum Connectivity (Alg. 7): a minimum
//     spanning tree over the coverage relays and their nearest base
//     stations, steinerized with each edge's feasible distance
//   - MUST, the single-base-station baseline of [1] (DARP's upper tier),
//     which MBMC generalizes
//   - UCPO, Upper-tier Connectivity Power Optimization (Alg. 8)
package upper

import (
	"context"
	"fmt"
	"math"
	"time"

	"sagrelay/internal/geom"
	"sagrelay/internal/graph"
	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// ConnRelay is a placed connectivity relay station.
type ConnRelay struct {
	// Pos is the relay position on its tree edge.
	Pos geom.Point
	// Edge indexes the TreeEdge this relay subdivides.
	Edge int
}

// TreeEdge is one logical edge of the connectivity tree: a coverage relay
// linked to its parent (another coverage relay or a base station), possibly
// subdivided by connectivity relays.
type TreeEdge struct {
	// Child is the coverage relay index (into the lower-tier result) at the
	// child end of the edge.
	Child int
	// ParentCoverage is the parent coverage relay index, or -1 when the
	// parent is a base station.
	ParentCoverage int
	// ParentBS is the parent base station index, or -1 when the parent is a
	// coverage relay.
	ParentBS int
	// From and To are the physical endpoints (child and parent positions).
	From, To geom.Point
	// FeasDist is the feasible distance used to steinerize this edge: the
	// minimum feasible distance over the child's subtree (Section III-B).
	FeasDist float64
	// NumRelays is the number of connectivity relays placed on this edge:
	// ceil(len/FeasDist) - 1 (Alg. 7, Step 7).
	NumRelays int
}

// Length returns the physical edge length.
func (e *TreeEdge) Length() float64 { return e.From.Dist(e.To) }

// HopLength returns the per-hop distance after steinerization.
func (e *TreeEdge) HopLength() float64 {
	return e.Length() / float64(e.NumRelays+1)
}

// Result is a solved upper-tier connectivity plan.
type Result struct {
	// Method names the algorithm ("MBMC" or "MUST").
	Method string
	// Edges is the logical connectivity tree, one entry per coverage relay.
	Edges []TreeEdge
	// Relays are the placed connectivity relay stations.
	Relays []ConnRelay
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// NumRelays returns the number of placed connectivity relays.
func (r *Result) NumRelays() int { return len(r.Relays) }

// MBMC implements Algorithm 7, Multiple Base station Minimum Connectivity:
//
//  1. Build the complete graph over the coverage relays with hop-count
//     weights w1 = ceil(len/dmin) - 1, dmin the minimum subscriber feasible
//     distance (Steps 1-2, 4).
//  2. Connect each coverage relay to its nearest base station (Step 3); all
//     base stations act as a single tree root.
//  3. Take a minimum spanning tree rooted at the base stations (Step 5).
//  4. Propagate feasible distances: a relay's edge to its parent must use
//     hops no longer than the minimum feasible distance in its subtree
//     (Step 6; "equals the minimum feasible distance of all its children").
//  5. Steinerize each tree edge with w2 = ceil(len/d) - 1 evenly spaced
//     connectivity relays (Step 7).
//
// Tree construction is fast (an MST over the coverage relays), so a single
// entry check keeps the context chain unbroken through the pipeline without
// per-edge cost.
func MBMC(ctx context.Context, sc *scenario.Scenario, cover *lower.Result) (*Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("upper: MBMC: %w", err)
		}
	}
	return buildTree(ctx, sc, cover, -1, "MBMC")
}

// MUST is the single-base-station baseline of [1]: identical tree
// construction, but every coverage relay may only attach to the given base
// station. MBMC reduces to MUST when one base station exists. Cancellation
// behaves as in MBMC.
func MUST(ctx context.Context, sc *scenario.Scenario, cover *lower.Result, bsIndex int) (*Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("upper: MUST: %w", err)
		}
	}
	if bsIndex < 0 || bsIndex >= len(sc.BaseStations) {
		return nil, fmt.Errorf("upper: MUST: base station %d out of range [0,%d)", bsIndex, len(sc.BaseStations))
	}
	return buildTree(ctx, sc, cover, bsIndex, "MUST")
}

// buildTree is the shared MBMC/MUST construction; onlyBS restricts base
// station attachment when >= 0.
func buildTree(ctx context.Context, sc *scenario.Scenario, cover *lower.Result, onlyBS int, method string) (*Result, error) {
	start := time.Now()
	var span *obs.Span
	if ctx != nil {
		_, span = obs.StartSpan(ctx, "tree_build")
		defer span.End()
	}
	if err := cover.Verify(sc, false); err != nil {
		return nil, fmt.Errorf("upper: %s needs a feasible coverage result: %w", method, err)
	}
	m := len(cover.Relays)
	if m == 0 {
		return &Result{Method: method, Elapsed: time.Since(start)}, nil
	}
	// dmin: the minimum feasible distance over all subscribers (Step 2).
	dmin := math.Inf(1)
	for _, s := range sc.Subscribers {
		if s.DistReq < dmin {
			dmin = s.DistReq
		}
	}
	if dmin <= 0 || math.IsInf(dmin, 1) {
		return nil, fmt.Errorf("upper: %s: invalid minimum feasible distance %v", method, dmin)
	}
	w1 := func(len float64) float64 {
		w := math.Ceil(len/dmin) - 1
		if w < 0 {
			w = 0
		}
		return w
	}
	// Vertices: coverage relays 0..m-1, virtual root m (all base stations).
	g := graph.New(m + 1)
	root := m
	nearestBS := make([]int, m)
	for i, relay := range cover.Relays {
		// Step 3: nearest base station (or the fixed one for MUST).
		best, bestD := -1, math.Inf(1)
		for b, bs := range sc.BaseStations {
			if onlyBS >= 0 && b != onlyBS {
				continue
			}
			if d := relay.Pos.Dist(bs.Pos); d < bestD {
				best, bestD = b, d
			}
		}
		nearestBS[i] = best
		if err := g.AddEdge(i, root, w1(bestD)); err != nil {
			return nil, fmt.Errorf("upper: %s: %w", method, err)
		}
		for k := i + 1; k < m; k++ {
			if err := g.AddEdge(i, k, w1(relay.Pos.Dist(cover.Relays[k].Pos))); err != nil {
				return nil, fmt.Errorf("upper: %s: %w", method, err)
			}
		}
	}
	mst, err := g.PrimMST(root)
	if err != nil {
		return nil, fmt.Errorf("upper: %s: %w", method, err)
	}
	// Step 6: feasible distances. Own feasible distance of a coverage relay
	// is the minimum distance requirement among its subscribers; the edge
	// to the parent uses the minimum over the whole subtree.
	ownFeas := make([]float64, m)
	for i, relay := range cover.Relays {
		f := math.Inf(1)
		for _, s := range relay.Covers {
			if d := sc.Subscribers[s].DistReq; d < f {
				f = d
			}
		}
		if math.IsInf(f, 1) {
			f = dmin // a relay with no subscribers falls back to dmin
		}
		ownFeas[i] = f
	}
	subtreeFeas := make([]float64, m)
	children := mst.Children()
	var computeFeas func(v int) float64
	computeFeas = func(v int) float64 {
		f := ownFeas[v]
		for _, c := range children[v] {
			if cf := computeFeas(c); cf < f {
				f = cf
			}
		}
		subtreeFeas[v] = f
		return f
	}
	for _, c := range children[root] {
		computeFeas(c)
	}
	// Step 7: steinerize every tree edge.
	res := &Result{Method: method}
	for i := 0; i < m; i++ {
		if !mst.InTree(i) {
			return nil, fmt.Errorf("upper: %s: coverage relay %d unreachable", method, i)
		}
		parent := mst.Parent[i]
		e := TreeEdge{
			Child:          i,
			ParentCoverage: -1,
			ParentBS:       -1,
			From:           cover.Relays[i].Pos,
			FeasDist:       subtreeFeas[i],
		}
		if parent == root {
			e.ParentBS = nearestBS[i]
			e.To = sc.BaseStations[nearestBS[i]].Pos
		} else {
			e.ParentCoverage = parent
			e.To = cover.Relays[parent].Pos
		}
		n := int(math.Ceil(e.Length()/e.FeasDist)) - 1
		if n < 0 {
			n = 0
		}
		e.NumRelays = n
		edgeIdx := len(res.Edges)
		for _, p := range geom.Seg(e.From, e.To).Subdivide(n) {
			res.Relays = append(res.Relays, ConnRelay{Pos: p, Edge: edgeIdx})
		}
		res.Edges = append(res.Edges, e)
	}
	span.SetInt("edges", int64(len(res.Edges)))
	span.SetInt("relays", int64(len(res.Relays)))
	res.Elapsed = time.Since(start)
	return res, nil
}

// Verify checks structural invariants of a connectivity plan: every
// coverage relay has exactly one edge, every hop is within the edge's
// feasible distance, and relay counts are consistent.
func (r *Result) Verify(sc *scenario.Scenario, cover *lower.Result) error {
	if len(r.Edges) != len(cover.Relays) {
		return fmt.Errorf("upper: %d edges for %d coverage relays", len(r.Edges), len(cover.Relays))
	}
	perEdge := make([]int, len(r.Edges))
	for _, cr := range r.Relays {
		if cr.Edge < 0 || cr.Edge >= len(r.Edges) {
			return fmt.Errorf("upper: relay references unknown edge %d", cr.Edge)
		}
		perEdge[cr.Edge]++
	}
	for i, e := range r.Edges {
		if perEdge[i] != e.NumRelays {
			return fmt.Errorf("upper: edge %d has %d relays, recorded %d", i, perEdge[i], e.NumRelays)
		}
		if e.ParentBS < 0 && e.ParentCoverage < 0 {
			return fmt.Errorf("upper: edge %d has no parent", i)
		}
		if e.ParentBS >= len(sc.BaseStations) || e.ParentCoverage >= len(cover.Relays) {
			return fmt.Errorf("upper: edge %d parent out of range", i)
		}
		if hop := e.HopLength(); hop > e.FeasDist+1e-6 && e.Length() > 1e-9 {
			return fmt.Errorf("upper: edge %d hop length %.3f exceeds feasible distance %.3f", i, hop, e.FeasDist)
		}
	}
	// The logical tree must reach a base station from every coverage relay.
	for i := range r.Edges {
		seen := make(map[int]bool)
		v := i
		for {
			if r.Edges[v].ParentBS >= 0 {
				break
			}
			next := r.Edges[v].ParentCoverage
			if seen[next] {
				return fmt.Errorf("upper: cycle in connectivity tree at relay %d", next)
			}
			seen[next] = true
			v = next
		}
	}
	return nil
}
