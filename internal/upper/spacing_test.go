package upper

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sagrelay/internal/radio"
)

// UCPO steinerizes every edge into equal hops. By convexity of d -> d^alpha,
// equal spacing minimizes the total transmit power for a fixed relay count
// and demand: sum(P_rs/G * d_i^alpha) with sum(d_i) = L is minimized at
// d_i = L/(n+1). This test validates that optimality empirically — random
// perturbed spacings never beat the equal one.
func TestEqualSpacingOptimal(t *testing.T) {
	model := radio.DefaultModel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		length := 50 + rng.Float64()*200
		n := 1 + rng.Intn(6) // relays on the edge: n+1 hops
		demand := 0.001 + rng.Float64()*0.01
		power := func(hops []float64) float64 {
			total := 0.0
			for _, d := range hops {
				total += demand / model.Gain(d)
			}
			return total
		}
		hops := make([]float64, n+1)
		equal := length / float64(n+1)
		for i := range hops {
			hops[i] = equal
		}
		base := power(hops)
		// Random perturbations preserving the total length.
		for trial := 0; trial < 20; trial++ {
			perturbed := make([]float64, n+1)
			remaining := length
			for i := 0; i < n; i++ {
				// Keep each hop positive and leave room for the rest.
				max := remaining - float64(n-i)*1e-3
				perturbed[i] = 1e-3 + rng.Float64()*(max-1e-3)
				remaining -= perturbed[i]
			}
			perturbed[n] = remaining
			if perturbed[n] <= 0 {
				continue
			}
			if power(perturbed) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The relay count of steinerization is the minimum achieving per-hop
// lengths within the feasible distance: one fewer relay would force some
// hop beyond it.
func TestSteinerizationMinimal(t *testing.T) {
	for _, tc := range []struct {
		length, feas float64
	}{
		{100, 30}, {100, 100}, {100, 99.9}, {250, 40}, {31, 30},
	} {
		n := int(math.Ceil(tc.length/tc.feas)) - 1
		if n < 0 {
			n = 0
		}
		// n relays -> n+1 hops of length/ (n+1) <= feas.
		if hop := tc.length / float64(n+1); hop > tc.feas+1e-9 {
			t.Errorf("length %v feas %v: %d relays leave hop %v", tc.length, tc.feas, n, hop)
		}
		// n-1 relays -> some hop > feas (when n > 0).
		if n > 0 {
			if hop := tc.length / float64(n); hop <= tc.feas+1e-9 {
				t.Errorf("length %v feas %v: %d relays would already suffice", tc.length, tc.feas, n-1)
			}
		}
	}
}
