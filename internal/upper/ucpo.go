package upper

import (
	"context"
	"fmt"

	"sagrelay/internal/lower"
	"sagrelay/internal/obs"
	"sagrelay/internal/scenario"
)

// PowerAllocation assigns transmit powers to the connectivity relays.
type PowerAllocation struct {
	// Powers holds one transmit power per connectivity relay, indexed like
	// Result.Relays.
	Powers []float64
	// Total is the summed transmit power (the paper's P_H).
	Total float64
	// Method names the producing algorithm.
	Method string
}

// BaselinePower is the paper's upper-tier baseline: every connectivity
// relay transmits at PMax.
func BaselinePower(sc *scenario.Scenario, conn *Result) *PowerAllocation {
	powers := make([]float64, len(conn.Relays))
	for i := range powers {
		powers[i] = sc.PMax
	}
	return &PowerAllocation{
		Powers: powers,
		Total:  sc.PMax * float64(len(conn.Relays)),
		Method: "baseline",
	}
}

// UCPO implements Algorithm 8, Upper-tier Connectivity Power Optimization:
// for each coverage relay r_i, the relays on the edge from r_i to its
// parent relay traffic whose strongest requirement is
// P_rs^i = max over r_i's subscribers of their received-power demand; with
// the edge split into equal hops of length D_i, each relay on it needs
// transmit power P = P_rs^i / (G * D_i^(-alpha)).
//
// (The paper's Step 1 writes D_i = distance/N_i with N_i relays on the
// path; the steinerization of Alg. 7 splits an edge with N relays into N+1
// sections, so the hop length here is distance/(N_i+1) — the spacing that
// actually realizes the feasible-distance guarantee.)
//
// Cancellation is a single entry check, since the per-relay power formula
// is closed form.
func UCPO(ctx context.Context, sc *scenario.Scenario, cover *lower.Result, conn *Result) (*PowerAllocation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("upper: UCPO: %w", err)
	}
	_, span := obs.StartSpan(ctx, "ucpo")
	span.SetInt("relays", int64(len(conn.Relays)))
	defer span.End()
	if err := conn.Verify(sc, cover); err != nil {
		return nil, fmt.Errorf("upper: UCPO: %w", err)
	}
	// P_rs per coverage relay: the strongest received-power demand among
	// its subscribers.
	prs := make([]float64, len(cover.Relays))
	for i, relay := range cover.Relays {
		for _, s := range relay.Covers {
			if p := sc.Subscribers[s].MinRxPower; p > prs[i] {
				prs[i] = p
			}
		}
	}
	alloc := &PowerAllocation{
		Powers: make([]float64, len(conn.Relays)),
		Method: "UCPO",
	}
	for ri, cr := range conn.Relays {
		e := conn.Edges[cr.Edge]
		hop := e.HopLength()
		p := prs[e.Child] / sc.Model.Gain(hop)
		if p > sc.PMax {
			// Hops are bounded by the subtree feasible distance, which the
			// demand was derived from, so PMax suffices; clamp rounding.
			p = sc.PMax
		}
		alloc.Powers[ri] = p
		alloc.Total += p
	}
	return alloc, nil
}
