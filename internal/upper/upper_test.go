package upper

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"sagrelay/internal/geom"
	"sagrelay/internal/lower"
	"sagrelay/internal/radio"
	"sagrelay/internal/scenario"
)

// coverFixture builds a scenario plus a hand-made feasible coverage result.
func coverFixture(t *testing.T, bsPos []geom.Point, relays []lower.Relay, subs []scenario.Subscriber) (*scenario.Scenario, *lower.Result) {
	t.Helper()
	sc := &scenario.Scenario{
		Field:          geom.SquareField(500),
		Model:          radio.DefaultModel(),
		PMax:           scenario.DefaultPMax,
		SNRThresholdDB: -15,
		NMax:           scenario.DefaultNMax,
	}
	for i := range subs {
		subs[i].ID = i
		if subs[i].MinRxPower == 0 {
			subs[i].MinRxPower = sc.DeriveMinRxPower(subs[i].DistReq)
		}
	}
	sc.Subscribers = subs
	for i, p := range bsPos {
		sc.BaseStations = append(sc.BaseStations, scenario.BaseStation{ID: i, Pos: p})
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("fixture scenario invalid: %v", err)
	}
	assign := make([]int, len(subs))
	for i := range assign {
		assign[i] = -1
	}
	for r, relay := range relays {
		for _, s := range relay.Covers {
			assign[s] = r
		}
	}
	res := &lower.Result{Feasible: true, Relays: relays, AssignOf: assign, Method: "fixture"}
	if err := res.Verify(sc, false); err != nil {
		t.Fatalf("fixture coverage invalid: %v", err)
	}
	return sc, res
}

func TestMBMCSingleRelayDirect(t *testing.T) {
	// One coverage relay 100 from the BS with feasible distance 30:
	// ceil(100/30)-1 = 3 connectivity relays evenly spaced.
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{{Pos: geom.Pt(100, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(110, 0), DistReq: 30}},
	)
	res, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRelays() != 3 {
		t.Fatalf("placed %d relays, want 3", res.NumRelays())
	}
	if err := res.Verify(sc, cover); err != nil {
		t.Fatal(err)
	}
	e := res.Edges[0]
	if e.ParentBS != 0 || e.ParentCoverage != -1 {
		t.Errorf("edge parent = BS %d, cover %d", e.ParentBS, e.ParentCoverage)
	}
	if math.Abs(e.HopLength()-25) > 1e-9 {
		t.Errorf("hop length = %v, want 25", e.HopLength())
	}
	for _, cr := range res.Relays {
		if cr.Pos.Y != 0 || cr.Pos.X <= 0 || cr.Pos.X >= 100 {
			t.Errorf("relay off the segment: %v", cr.Pos)
		}
	}
}

func TestMBMCPicksNearestBS(t *testing.T) {
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(-200, 0), geom.Pt(100, 0)},
		[]lower.Relay{{Pos: geom.Pt(60, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(65, 0), DistReq: 35}},
	)
	res, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges[0].ParentBS != 1 {
		t.Errorf("attached to BS %d, want nearest (1)", res.Edges[0].ParentBS)
	}
}

func TestMUSTForcesGivenBS(t *testing.T) {
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(-200, 0), geom.Pt(100, 0)},
		[]lower.Relay{{Pos: geom.Pt(60, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(65, 0), DistReq: 35}},
	)
	res, err := MUST(context.Background(), sc, cover, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges[0].ParentBS != 0 {
		t.Errorf("attached to BS %d, want forced (0)", res.Edges[0].ParentBS)
	}
	// The far BS needs more relays than MBMC's nearest choice.
	mbmc, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRelays() <= mbmc.NumRelays() {
		t.Errorf("MUST to far BS placed %d <= MBMC %d", res.NumRelays(), mbmc.NumRelays())
	}
	if _, err := MUST(context.Background(), sc, cover, 7); err == nil {
		t.Error("out-of-range BS accepted")
	}
}

func TestMBMCRoutesThroughRelays(t *testing.T) {
	// A chain: BS at 0, relay A at 80, relay B at 160. B should parent to A
	// (hop-count weight 80 vs 160 direct), not straight to the BS.
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{
			{Pos: geom.Pt(80, 0), Covers: []int{0}},
			{Pos: geom.Pt(160, 0), Covers: []int{1}},
		},
		[]scenario.Subscriber{
			{Pos: geom.Pt(85, 0), DistReq: 30},
			{Pos: geom.Pt(165, 0), DistReq: 30},
		},
	)
	res, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(sc, cover); err != nil {
		t.Fatal(err)
	}
	var edgeB *TreeEdge
	for i := range res.Edges {
		if res.Edges[i].Child == 1 {
			edgeB = &res.Edges[i]
		}
	}
	if edgeB == nil || edgeB.ParentCoverage != 0 {
		t.Errorf("relay B not parented to relay A: %+v", edgeB)
	}
}

func TestFeasibleDistancePropagation(t *testing.T) {
	// Child with a strict requirement (20) behind a parent with a loose one
	// (40): the parent's uplink must use the child's 20.
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{
			{Pos: geom.Pt(70, 0), Covers: []int{0}},
			{Pos: geom.Pt(140, 0), Covers: []int{1}},
		},
		[]scenario.Subscriber{
			{Pos: geom.Pt(75, 0), DistReq: 40},
			{Pos: geom.Pt(145, 0), DistReq: 20},
		},
	)
	res, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Edges {
		switch e.Child {
		case 0: // parent edge carries the subtree: min(40, 20) = 20
			if math.Abs(e.FeasDist-20) > 1e-9 {
				t.Errorf("uplink feasible distance = %v, want 20", e.FeasDist)
			}
		case 1:
			if math.Abs(e.FeasDist-20) > 1e-9 {
				t.Errorf("child feasible distance = %v, want 20", e.FeasDist)
			}
		}
	}
}

func TestMBMCZeroLengthEdge(t *testing.T) {
	// Relay exactly at the BS: zero relays, no NaN.
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{{Pos: geom.Pt(0, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(5, 0), DistReq: 30}},
	)
	res, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRelays() != 0 {
		t.Errorf("placed %d relays on a zero-length edge", res.NumRelays())
	}
	if err := res.Verify(sc, cover); err != nil {
		t.Fatal(err)
	}
}

func TestUCPOPowers(t *testing.T) {
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{{Pos: geom.Pt(100, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(110, 0), DistReq: 30}},
	)
	conn, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := UCPO(context.Background(), sc, cover, conn)
	if err != nil {
		t.Fatal(err)
	}
	base := BaselinePower(sc, conn)
	if alloc.Total > base.Total+1e-9 {
		t.Errorf("UCPO total %v above baseline %v", alloc.Total, base.Total)
	}
	// Hand check: hop 25, demand = PMax*Gain(30)
	// power = PMax*Gain(30)/Gain(25) = PMax*(25/30)^3.
	want := sc.PMax * math.Pow(25.0/30, 3)
	for i, p := range alloc.Powers {
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("relay %d power %v, want %v", i, p, want)
		}
	}
	if math.Abs(alloc.Total-3*want) > 1e-9 {
		t.Errorf("total %v, want %v", alloc.Total, 3*want)
	}
}

func TestUCPONeverExceedsPMax(t *testing.T) {
	f := func(seed int64) bool {
		sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: 12, NumBS: 3, Seed: seed})
		if err != nil {
			return false
		}
		cover, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{})
		if err != nil || !cover.Feasible {
			return true // skip infeasible draws
		}
		conn, err := MBMC(context.Background(), sc, cover)
		if err != nil {
			return false
		}
		alloc, err := UCPO(context.Background(), sc, cover, conn)
		if err != nil {
			return false
		}
		for _, p := range alloc.Powers {
			if p < 0 || p > sc.PMax+1e-9 {
				return false
			}
		}
		return alloc.Total <= BaselinePower(sc, conn).Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMBMCNeverWorseThanEveryMUST(t *testing.T) {
	// Table II's claim: MBMC's relay count is <= the best single-BS MUST.
	f := func(seed int64) bool {
		sc, err := scenario.Generate(scenario.GenConfig{FieldSide: 500, NumSS: 10, NumBS: 4, Seed: seed})
		if err != nil {
			return false
		}
		cover, err := lower.SAMC(context.Background(), sc, lower.SAMCOptions{})
		if err != nil || !cover.Feasible {
			return true
		}
		mbmc, err := MBMC(context.Background(), sc, cover)
		if err != nil {
			return false
		}
		for b := range sc.BaseStations {
			must, err := MUST(context.Background(), sc, cover, b)
			if err != nil {
				return false
			}
			if mbmc.NumRelays() > must.NumRelays() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestEmptyCoverageYieldsEmptyPlan(t *testing.T) {
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{{Pos: geom.Pt(10, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(12, 0), DistReq: 30}},
	)
	empty := &lower.Result{Feasible: true, Relays: nil, AssignOf: []int{}}
	// An empty coverage result fails Verify because the subscriber is
	// uncovered; MBMC must reject it.
	if _, err := MBMC(context.Background(), sc, empty); err == nil {
		t.Error("MBMC accepted a coverage result that covers nobody")
	}
	_ = cover
}

func TestVerifyCatchesCorruptPlans(t *testing.T) {
	sc, cover := coverFixture(t,
		[]geom.Point{geom.Pt(0, 0)},
		[]lower.Relay{{Pos: geom.Pt(100, 0), Covers: []int{0}}},
		[]scenario.Subscriber{{Pos: geom.Pt(110, 0), DistReq: 30}},
	)
	res, err := MBMC(context.Background(), sc, cover)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the relay count.
	res.Edges[0].NumRelays++
	if err := res.Verify(sc, cover); err == nil {
		t.Error("relay-count mismatch accepted")
	}
	res.Edges[0].NumRelays--
	// Orphan edge.
	res.Edges[0].ParentBS = -1
	if err := res.Verify(sc, cover); err == nil {
		t.Error("orphan edge accepted")
	}
}
