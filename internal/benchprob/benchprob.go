// Package benchprob builds the representative benchmark problem instances
// shared by the internal/lp and internal/milp benchmarks, tests, and the
// cmd/sagbench -bench-json emitter. Keeping one copy of the ILPQC fixture
// guarantees every consumer measures the identical model — pivot counts and
// node counts recorded across PRs stay comparable.
package benchprob

import (
	"fmt"
	"math"

	"sagrelay/internal/lp"
)

// ILPQC constructs a representative per-zone ILPQC coverage instance
// (eqs. 3.1-3.5 of the paper): n subscribers, nC candidate positions,
// binary placement variables T_i and assignment variables T_ij, the
// coverage/link constraints (3.2)-(3.3) and the big-M linearized SNR rows
// (3.5). It mirrors what sagrelay/internal/lower builds for each
// Zone-Partition zone, sized at the MaxZoneSS default. The returned isInt
// marks every variable integer.
//
// Gains are synthetic but follow the same 1/d^3 decay shape as the two-ray
// model, so the numerical profile (many small coefficients, a few dominant
// ones) matches the real per-zone solves. Construction is static; failures
// are programming errors and panic.
func ILPQC() (*lp.Problem, []bool) {
	p := ILPQCRelaxation()
	isInt := make([]bool, p.NumVariables())
	for i := range isInt {
		isInt[i] = true
	}
	return p, isInt
}

// ILPQCRelaxation constructs the LP relaxation of the ILPQC instance — the
// exact relaxation branch-and-bound re-solves at every node.
func ILPQCRelaxation() *lp.Problem {
	const (
		n    = 8  // subscribers in the zone (MaxZoneSS default is 10)
		nC   = 14 // candidate positions
		beta = 0.05
	)
	// Synthetic candidate-subscriber distances on a line: candidate i sits
	// at 10*i, subscriber j at 10*j + 3. Coverage radius 25.
	w := make([][]float64, nC)
	covers := make([][]bool, nC)
	for i := 0; i < nC; i++ {
		w[i] = make([]float64, n)
		covers[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			d := math.Abs(float64(10*i) - float64(10*j+3))
			if d < 1 {
				d = 1
			}
			w[i][j] = 1 / (d * d * d)
			covers[i][j] = d <= 25
		}
	}

	p := lp.NewProblem()
	tVar := make([]int, nC)
	for i := range tVar {
		tVar[i] = p.AddVariable("T", 1)
		must(p.SetUpperBound(tVar[i], 1))
	}
	pairVar := make(map[[2]int]int)
	for i := 0; i < nC; i++ {
		for j := 0; j < n; j++ {
			if covers[i][j] {
				v := p.AddVariable("Tij", 0)
				must(p.SetUpperBound(v, 1))
				pairVar[[2]int{i, j}] = v
			}
		}
	}
	// (3.2): T_i <= sum_j T_ij <= n*T_i.
	for i := 0; i < nC; i++ {
		low := []lp.Term{{Var: tVar[i], Coef: 1}}
		high := []lp.Term{{Var: tVar[i], Coef: -float64(n)}}
		for j := 0; j < n; j++ {
			if v, ok := pairVar[[2]int{i, j}]; ok {
				low = append(low, lp.Term{Var: v, Coef: -1})
				high = append(high, lp.Term{Var: v, Coef: 1})
			}
		}
		must(p.AddConstraint(low, lp.LE, 0))
		must(p.AddConstraint(high, lp.LE, 0))
	}
	// (3.3): exactly one access link per subscriber.
	for j := 0; j < n; j++ {
		var terms []lp.Term
		for i := 0; i < nC; i++ {
			if v, ok := pairVar[[2]int{i, j}]; ok {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
		}
		if len(terms) == 0 {
			panic("benchprob: subscriber uncovered in fixture")
		}
		must(p.AddConstraint(terms, lp.EQ, 1))
	}
	// (3.5) big-M linearized per feasible pair.
	for j := 0; j < n; j++ {
		mj := 0.0
		for k := 0; k < nC; k++ {
			mj += w[k][j]
		}
		for i := 0; i < nC; i++ {
			v, ok := pairVar[[2]int{i, j}]
			if !ok {
				continue
			}
			terms := make([]lp.Term, 0, nC+2)
			for k := 0; k < nC; k++ {
				terms = append(terms, lp.Term{Var: tVar[k], Coef: w[k][j]})
			}
			terms = append(terms, lp.Term{Var: tVar[i], Coef: -w[i][j]})
			terms = append(terms, lp.Term{Var: v, Coef: mj})
			must(p.AddConstraint(terms, lp.LE, w[i][j]/beta+mj))
		}
	}
	return p
}

func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("benchprob: static fixture construction failed: %v", err))
	}
}
