package geom

import (
	"math"
	"testing"
)

func TestSquareField(t *testing.T) {
	r := SquareField(500)
	if !r.Min.AlmostEqual(Pt(-250, -250), 0) || !r.Max.AlmostEqual(Pt(250, 250), 0) {
		t.Errorf("SquareField(500) = %v", r)
	}
	if r.Width() != 500 || r.Height() != 500 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Center().AlmostEqual(Pt(0, 0), 0) {
		t.Errorf("center = %v", r.Center())
	}
}

func TestNewRectOrdersCorners(t *testing.T) {
	r := NewRect(Pt(5, -1), Pt(-3, 7))
	if !r.Min.AlmostEqual(Pt(-3, -1), 0) || !r.Max.AlmostEqual(Pt(5, 7), 0) {
		t.Errorf("NewRect = %v", r)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		p    Point
		in   bool
		want Point
	}{
		{Pt(5, 5), true, Pt(5, 5)},
		{Pt(0, 0), true, Pt(0, 0)},
		{Pt(10, 10), true, Pt(10, 10)},
		{Pt(-1, 5), false, Pt(0, 5)},
		{Pt(11, 12), false, Pt(10, 10)},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p, 0); got != tt.in {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.in)
		}
		if got := r.Clamp(tt.p); !got.AlmostEqual(tt.want, 0) {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectExpandUnion(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2)).Expand(1)
	if !r.Min.AlmostEqual(Pt(-1, -1), 0) || !r.Max.AlmostEqual(Pt(3, 3), 0) {
		t.Errorf("Expand = %v", r)
	}
	u := NewRect(Pt(0, 0), Pt(1, 1)).Union(NewRect(Pt(5, -2), Pt(6, 0)))
	if !u.Min.AlmostEqual(Pt(0, -2), 0) || !u.Max.AlmostEqual(Pt(6, 1), 0) {
		t.Errorf("Union = %v", u)
	}
}

func TestBoundingRect(t *testing.T) {
	if _, ok := BoundingRect(nil); ok {
		t.Error("BoundingRect(nil) reported ok")
	}
	r, ok := BoundingRect([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if !ok || !r.Min.AlmostEqual(Pt(-2, -1), 0) || !r.Max.AlmostEqual(Pt(4, 5), 0) {
		t.Errorf("BoundingRect = %v ok=%v", r, ok)
	}
}

func TestBoundingRectOfCircles(t *testing.T) {
	if _, ok := BoundingRectOfCircles(nil); ok {
		t.Error("empty input reported ok")
	}
	r, ok := BoundingRectOfCircles([]Circle{C(Pt(0, 0), 2), C(Pt(10, 0), 1)})
	if !ok || !r.Min.AlmostEqual(Pt(-2, -2), 0) || !r.Max.AlmostEqual(Pt(11, 2), 0) {
		t.Errorf("BoundingRectOfCircles = %v ok=%v", r, ok)
	}
}

func TestGridCenters(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	pts := GridCenters(r, 5)
	if len(pts) != 4 {
		t.Fatalf("got %d grid centers, want 4: %v", len(pts), pts)
	}
	want := []Point{Pt(2.5, 2.5), Pt(7.5, 2.5), Pt(2.5, 7.5), Pt(7.5, 7.5)}
	for i, w := range want {
		if !pts[i].AlmostEqual(w, 1e-12) {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], w)
		}
	}
}

func TestGridCentersPartialCells(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(7, 3))
	pts := GridCenters(r, 5)
	// ceil(7/5)=2 columns, ceil(3/5)=1 row.
	if len(pts) != 2 {
		t.Fatalf("got %d centers, want 2: %v", len(pts), pts)
	}
	for _, p := range pts {
		if !r.Contains(p, 0) {
			t.Errorf("grid center %v outside rect", p)
		}
	}
}

func TestGridCentersInvalid(t *testing.T) {
	if pts := GridCenters(SquareField(100), 0); pts != nil {
		t.Errorf("zero cell size should yield nil, got %d pts", len(pts))
	}
	if pts := GridCenters(SquareField(100), -2); pts != nil {
		t.Errorf("negative cell size should yield nil, got %d pts", len(pts))
	}
}

func TestGridCentersDensityScaling(t *testing.T) {
	r := SquareField(100)
	coarse := len(GridCenters(r, 20))
	fine := len(GridCenters(r, 10))
	if coarse != 25 || fine != 100 {
		t.Errorf("coarse=%d (want 25), fine=%d (want 100)", coarse, fine)
	}
	if math.Abs(float64(fine)/float64(coarse)-4) > 1e-12 {
		t.Error("halving cell size should quadruple candidates")
	}
}
