package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCircleContains(t *testing.T) {
	c := C(Pt(0, 0), 10)
	tests := []struct {
		name string
		p    Point
		tol  float64
		want bool
	}{
		{"center", Pt(0, 0), 0, true},
		{"interior", Pt(5, 5), 0, true},
		{"boundary", Pt(10, 0), 1e-9, true},
		{"outside", Pt(10.1, 0), 0, false},
		{"outside-with-tol", Pt(10.05, 0), 0.1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Contains(tt.p, tt.tol); got != tt.want {
				t.Errorf("Contains(%v, %v) = %v, want %v", tt.p, tt.tol, got, tt.want)
			}
		})
	}
}

func TestCircleIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Circle
		want int
	}{
		{"two-points", C(Pt(0, 0), 5), C(Pt(6, 0), 5), 2},
		{"tangent-external", C(Pt(0, 0), 3), C(Pt(6, 0), 3), 1},
		{"tangent-internal", C(Pt(0, 0), 5), C(Pt(2, 0), 3), 1},
		{"disjoint", C(Pt(0, 0), 2), C(Pt(10, 0), 2), 0},
		{"nested", C(Pt(0, 0), 10), C(Pt(1, 0), 2), 0},
		{"concentric", C(Pt(0, 0), 5), C(Pt(0, 0), 5), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Intersect(tt.b)
			if len(got) != tt.want {
				t.Fatalf("Intersect returned %d points (%v), want %d", len(got), got, tt.want)
			}
			for _, p := range got {
				if !tt.a.OnBoundary(p, 1e-7) || !tt.b.OnBoundary(p, 1e-7) {
					t.Errorf("intersection point %v not on both boundaries", p)
				}
			}
		})
	}
}

// Property: every reported intersection point lies on both circle boundaries.
func TestIntersectOnBoundariesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := C(Pt(rng.Float64()*100, rng.Float64()*100), 1+rng.Float64()*50)
		b := C(Pt(rng.Float64()*100, rng.Float64()*100), 1+rng.Float64()*50)
		for _, p := range a.Intersect(b) {
			if !a.OnBoundary(p, 1e-6) || !b.OnBoundary(p, 1e-6) {
				t.Fatalf("case %d: point %v not on boundaries of %v and %v", i, p, a, b)
			}
		}
	}
}

func TestClosestBoundaryPoint(t *testing.T) {
	c := C(Pt(0, 0), 5)
	got := c.ClosestBoundaryPoint(Pt(10, 0))
	if !got.AlmostEqual(Pt(5, 0), 1e-12) {
		t.Errorf("ClosestBoundaryPoint = %v, want (5,0)", got)
	}
	// From the center: any boundary point is fine, must be on the boundary.
	got = c.ClosestBoundaryPoint(Pt(0, 0))
	if !c.OnBoundary(got, 1e-9) {
		t.Errorf("ClosestBoundaryPoint from center = %v not on boundary", got)
	}
}

func TestPointAtAngleOf(t *testing.T) {
	c := C(Pt(1, 1), 2)
	for _, theta := range []float64{0, math.Pi / 3, math.Pi, -math.Pi / 4} {
		p := c.PointAt(theta)
		if !c.OnBoundary(p, 1e-9) {
			t.Errorf("PointAt(%v) = %v not on boundary", theta, p)
		}
		back := c.AngleOf(p)
		// Compare angles modulo 2*pi.
		d := math.Mod(back-theta+3*math.Pi*2, 2*math.Pi)
		if d > 1e-9 && 2*math.Pi-d > 1e-9 {
			t.Errorf("AngleOf(PointAt(%v)) = %v", theta, back)
		}
	}
}

func TestCommonPoint(t *testing.T) {
	tests := []struct {
		name  string
		disks []Circle
		want  bool
	}{
		{"empty", nil, false},
		{"single", []Circle{C(Pt(3, 3), 1)}, true},
		{"overlapping-pair", []Circle{C(Pt(0, 0), 5), C(Pt(6, 0), 5)}, true},
		{"disjoint-pair", []Circle{C(Pt(0, 0), 2), C(Pt(10, 0), 2)}, false},
		{"three-with-core", []Circle{C(Pt(0, 0), 5), C(Pt(4, 0), 5), C(Pt(2, 3), 5)}, true},
		{
			// Pairwise-overlapping but no common point (Helly violation shape).
			"pairwise-only",
			[]Circle{C(Pt(0, 0), 5.2), C(Pt(10, 0), 5.2), C(Pt(5, 8.66), 5.2)},
			false,
		},
		{"nested", []Circle{C(Pt(0, 0), 10), C(Pt(1, 1), 1)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, ok := CommonPoint(tt.disks, 1e-9)
			if ok != tt.want {
				t.Fatalf("CommonPoint ok = %v, want %v", ok, tt.want)
			}
			if ok {
				for _, d := range tt.disks {
					if !d.Contains(p, 1e-6) {
						t.Errorf("returned point %v not inside %v", p, d)
					}
				}
			}
		})
	}
}

// Property: whenever CommonPoint succeeds, the point is in every disk; and
// shrinking all disks around a shared point keeps it feasible.
func TestCommonPointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shared := Pt(rng.Float64()*50, rng.Float64()*50)
		n := 2 + rng.Intn(5)
		disks := make([]Circle, n)
		for i := range disks {
			// Center within r of shared, so shared is in every disk.
			r := 5 + rng.Float64()*20
			theta := rng.Float64() * 2 * math.Pi
			off := rng.Float64() * r * 0.9
			disks[i] = C(shared.Add(Pt(math.Cos(theta), math.Sin(theta)).Scale(off)), r)
		}
		p, ok := CommonPoint(disks, 1e-9)
		if !ok {
			return false
		}
		for _, d := range disks {
			if !d.Contains(p, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionCandidates(t *testing.T) {
	circles := []Circle{C(Pt(0, 0), 5), C(Pt(6, 0), 5), C(Pt(100, 100), 3)}
	pts := IntersectionCandidates(circles)
	// 3 centers + 2 intersection points of the overlapping pair.
	if len(pts) != 5 {
		t.Fatalf("got %d candidates, want 5: %v", len(pts), pts)
	}
	// The isolated circle's center must be among the candidates so it stays
	// coverable.
	found := false
	for _, p := range pts {
		if p.AlmostEqual(Pt(100, 100), 1e-9) {
			found = true
		}
	}
	if !found {
		t.Error("isolated circle center missing from candidates")
	}
}

func TestOverlaps(t *testing.T) {
	if !C(Pt(0, 0), 3).Overlaps(C(Pt(5, 0), 3)) {
		t.Error("touching disks should overlap")
	}
	if C(Pt(0, 0), 2).Overlaps(C(Pt(5, 0), 2)) {
		t.Error("separated disks should not overlap")
	}
}
